//! Pipeline stall attribution.
//!
//! Maps one cycle's scheduler state to the [`StallCause`] telemetry
//! vocabulary. Attribution is deliberately coarse and allocation-free —
//! it runs inside `Machine::step` — and hierarchical: an empty queue
//! explains everything downstream of it, an unconfigurable demand
//! explains starvation, and only leftover contention counts as
//! `Starved`.

use rsp_isa::units::{TypeCounts, UnitType};
use rsp_obs::StallCause;

/// Attribute the issue stage's (lack of) progress.
///
/// * `queue_len` — occupied wake-up-array entries;
/// * `ready` — entries requesting execution this cycle;
/// * `granted` — grants actually made;
/// * `unscheduled` — demand signature of the ready-but-unscheduled
///   instructions (after grants);
/// * `configured` — units of each type currently live (FFUs + RFUs).
///
/// Returns `None` when the stage made all the progress it was asked for.
#[inline]
pub fn classify_issue(
    queue_len: usize,
    ready: usize,
    granted: usize,
    unscheduled: &TypeCounts,
    configured: &TypeCounts,
) -> Option<StallCause> {
    if queue_len == 0 {
        return Some(StallCause::QueueEmpty);
    }
    if granted >= ready {
        return None;
    }
    // Some ready instruction was left waiting: is any of the leftover
    // demand for a unit type with no live unit at all? That is the
    // steering gap (or a zombie/dead-slot episode) rather than ordinary
    // contention.
    for &t in &UnitType::ALL {
        if unscheduled.get(t) > 0 && configured.get(t) == 0 {
            return Some(StallCause::UnitUnconfigured);
        }
    }
    Some(StallCause::Starved)
}

/// Attribute a dispatch-stage blockage: the wake-up array or the reorder
/// buffer ran out of entries. Returns `None` when dispatch was not
/// blocked by either.
#[inline]
pub fn classify_dispatch(queue_full: bool, rob_full: bool) -> Option<StallCause> {
    if queue_full {
        Some(StallCause::QueueFull)
    } else if rob_full {
        Some(StallCause::RobFull)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(a: [u8; 5]) -> TypeCounts {
        TypeCounts::new(a)
    }

    #[test]
    fn empty_queue_dominates() {
        assert_eq!(
            classify_issue(0, 0, 0, &TypeCounts::ZERO, &counts([1; 5])),
            Some(StallCause::QueueEmpty)
        );
    }

    #[test]
    fn full_progress_is_no_stall() {
        assert_eq!(
            classify_issue(4, 2, 2, &TypeCounts::ZERO, &counts([1; 5])),
            None
        );
        // Nothing ready (all waiting on dependencies) is not a stall
        // the scheduler can be blamed for either.
        assert_eq!(
            classify_issue(4, 0, 0, &TypeCounts::ZERO, &counts([1; 5])),
            None
        );
    }

    #[test]
    fn missing_unit_type_beats_starvation() {
        // Leftover FP-ALU demand with zero FP-ALUs configured.
        let unscheduled = counts([0, 0, 0, 2, 0]);
        let configured = counts([2, 1, 1, 0, 1]);
        assert_eq!(
            classify_issue(6, 3, 1, &unscheduled, &configured),
            Some(StallCause::UnitUnconfigured)
        );
    }

    #[test]
    fn leftover_contention_is_starved() {
        let unscheduled = counts([2, 0, 0, 0, 0]);
        let configured = counts([1, 1, 1, 1, 1]);
        assert_eq!(
            classify_issue(6, 3, 1, &unscheduled, &configured),
            Some(StallCause::Starved)
        );
    }

    #[test]
    fn dispatch_attribution_prefers_queue() {
        assert_eq!(classify_dispatch(false, false), None);
        assert_eq!(classify_dispatch(true, false), Some(StallCause::QueueFull));
        assert_eq!(classify_dispatch(false, true), Some(StallCause::RobFull));
        assert_eq!(classify_dispatch(true, true), Some(StallCause::QueueFull));
    }
}

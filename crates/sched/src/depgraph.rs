//! Register dataflow (dependency) graphs over instruction sequences —
//! the analysis behind the paper's Fig. 4 example and the wake-up
//! array's dependency columns.
//!
//! For a straight-line instruction sequence, instruction `j` depends on
//! instruction `i < j` iff `i` is the **latest** earlier writer of one of
//! `j`'s source registers (true/RAW dependencies only — the register
//! update unit renames around WAR/WAW, and memory ordering is handled
//! separately by the simulator's in-order memory rule).

use rsp_isa::regs::AnyReg;
use rsp_isa::Instruction;
use std::collections::HashMap;

/// A RAW dependency graph over a straight-line instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepGraph {
    /// `preds[j]` = sorted indices of the instructions whose results
    /// instruction `j` consumes.
    preds: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Build the RAW graph of `instrs`.
    pub fn build(instrs: &[Instruction]) -> DepGraph {
        let mut last_writer: HashMap<AnyReg, usize> = HashMap::new();
        let mut preds = Vec::with_capacity(instrs.len());
        for (j, instr) in instrs.iter().enumerate() {
            let mut p: Vec<usize> = instr
                .arch_sources()
                .filter_map(|r| last_writer.get(&r).copied())
                .collect();
            p.sort_unstable();
            p.dedup();
            preds.push(p);
            if let Some(d) = instr.arch_dest() {
                last_writer.insert(d, j);
            }
        }
        DepGraph { preds }
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True iff the graph covers no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Producers of instruction `j`.
    #[inline]
    pub fn preds(&self, j: usize) -> &[usize] {
        &self.preds[j]
    }

    /// All edges `(producer, consumer)`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.preds
            .iter()
            .enumerate()
            .flat_map(|(j, ps)| ps.iter().map(move |&i| (i, j)))
            .collect()
    }

    /// Instructions with no producers (the graph's roots).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&j| self.preds[j].is_empty())
            .collect()
    }

    /// Length of the longest dependency chain (critical path, counted in
    /// instructions) — a lower bound on execution time at unit latency.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.len()];
        for j in 0..self.len() {
            depth[j] = 1 + self.preds[j].iter().map(|&i| depth[i]).max().unwrap_or(0);
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// ASCII rendering: one line per instruction with its producers.
    pub fn render(&self, instrs: &[Instruction]) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (j, instr) in instrs.iter().enumerate() {
            let deps = if self.preds[j].is_empty() {
                "-".to_string()
            } else {
                self.preds[j]
                    .iter()
                    .map(|i| format!("E{}", i + 1))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = writeln!(
                s,
                "Entry {:<2} {:<24} <- {}",
                j + 1,
                instr.to_string(),
                deps
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_isa::regs::{FReg, IReg};
    use rsp_isa::Opcode;

    fn r(n: u8) -> IReg {
        IReg::new(n)
    }
    fn fr(n: u8) -> FReg {
        FReg::new(n)
    }

    #[test]
    fn raw_dependencies_found() {
        let instrs = vec![
            Instruction::rri(Opcode::Addi, r(1), r(0), 1),   // 0
            Instruction::rri(Opcode::Addi, r(2), r(0), 2),   // 1
            Instruction::rrr(Opcode::Add, r(3), r(1), r(2)), // 2: dep 0,1
            Instruction::rrr(Opcode::Mul, r(4), r(3), r(3)), // 3: dep 2
        ];
        let g = DepGraph::build(&instrs);
        assert_eq!(g.preds(0), &[] as &[usize]);
        assert_eq!(g.preds(2), &[0, 1]);
        assert_eq!(g.preds(3), &[2]);
        assert_eq!(g.roots(), vec![0, 1]);
        assert_eq!(g.critical_path_len(), 3);
        assert_eq!(g.edges(), vec![(0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn latest_writer_wins() {
        let instrs = vec![
            Instruction::rri(Opcode::Addi, r(1), r(0), 1), // 0 writes r1
            Instruction::rri(Opcode::Addi, r(1), r(0), 2), // 1 rewrites r1
            Instruction::rrr(Opcode::Add, r(2), r(1), r(0)), // 2 reads r1
        ];
        let g = DepGraph::build(&instrs);
        assert_eq!(g.preds(2), &[1], "must depend on the latest writer only");
    }

    #[test]
    fn zero_register_never_a_dependency() {
        let instrs = vec![
            Instruction::rri(Opcode::Addi, r(0), r(0), 5), // write to r0 discarded
            Instruction::rrr(Opcode::Add, r(1), r(0), r(0)),
        ];
        let g = DepGraph::build(&instrs);
        assert_eq!(g.preds(1), &[] as &[usize]);
    }

    #[test]
    fn int_and_fp_files_are_distinct() {
        let instrs = vec![
            Instruction::rri(Opcode::Addi, r(1), r(0), 1), // writes r1
            Instruction::fff(Opcode::Fadd, fr(1), fr(2), fr(3)), // writes f1
            Instruction::fff(Opcode::Fmul, fr(4), fr(1), fr(1)), // reads f1
        ];
        let g = DepGraph::build(&instrs);
        assert_eq!(g.preds(2), &[1], "f1 dep must not alias r1");
    }

    #[test]
    fn store_depends_on_data_and_base() {
        let instrs = vec![
            Instruction::rri(Opcode::Addi, r(1), r(0), 8),  // base
            Instruction::rri(Opcode::Addi, r(2), r(0), 42), // data
            Instruction::sw(r(2), r(1), 0),
        ];
        let g = DepGraph::build(&instrs);
        assert_eq!(g.preds(2), &[0, 1]);
    }

    #[test]
    fn render_lists_entries() {
        let instrs = vec![
            Instruction::rri(Opcode::Addi, r(1), r(0), 1),
            Instruction::rrr(Opcode::Add, r(2), r(1), r(1)),
        ];
        let g = DepGraph::build(&instrs);
        let out = g.render(&instrs);
        assert!(out.contains("Entry 1"), "{out}");
        assert!(out.contains("<- E1"), "{out}");
        assert!(out.contains("<- -"), "{out}");
    }
}

//! # rsp-sched — select-free wake-up-array scheduling
//!
//! Implements the instruction scheduling substrate of the paper's §4,
//! which adopts the wake-up array of Brown, Stark & Patt's *select-free
//! instruction scheduling logic* (MICRO-34) and extends its
//! resource-availability inputs for a reconfigurable processor.
//!
//! * [`wakeup`] — the wake-up array itself (Figs. 5 and 6): per-entry
//!   resource vectors (which unit type the instruction needs), dependency
//!   columns (which entries must produce results first), scheduled bits,
//!   and the countdown timers that assert an entry's result-available
//!   line `latency` cycles after its grant.
//! * [`arbiter`] — the per-type grant arbitration the paper leaves to the
//!   scheduler proper ("contention … must be handled by the scheduler
//!   after multiple instructions that use the same resources request
//!   execution"): oldest-first, one instruction per idle unit per cycle.
//! * [`depgraph`] — register dataflow analysis used to rebuild the
//!   paper's Fig. 4 example and to seed wake-up dependency columns.
//! * [`stall`] — allocation-free stall attribution feeding the
//!   `rsp-obs` telemetry layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod depgraph;
pub mod stall;
pub mod wakeup;

pub use arbiter::{arbitrate, arbitrate_into, Grant};
pub use depgraph::DepGraph;
pub use wakeup::{Entry, EntryState, SlotIdx, WakeupArray, PAPER_QUEUE_SIZE};

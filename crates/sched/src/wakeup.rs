//! The wake-up array (paper §4.1, Figs. 5 and 6).
//!
//! Each occupied entry holds:
//! * a **resource vector** — which one of the five unit types the
//!   instruction needs (Fig. 5's left columns);
//! * **dependency columns** — which other entries must produce a result
//!   before this one may execute (Fig. 5's right columns);
//! * a **scheduled bit** — set on grant so the entry stops requesting
//!   ("to keep an instruction from requesting execution once it has been
//!   scheduled, since instructions may take several cycles");
//! * a **countdown timer** — started on grant; the entry's
//!   result-available line asserts when the producer's result can feed
//!   dependents.
//!
//! ### Timer convention
//!
//! The paper sets the timer to `N − 1` for an `N`-cycle instruction and
//! asserts the line "once the time reaches a count of one"; a one-cycle
//! instruction asserts immediately. Observably this means: a dependent's
//! request line can first assert `N` cycles after the producer's grant
//! (the wake-up/select loop is one cycle). This module realises the same
//! observable timing with a simpler convention: [`WakeupArray::grant`]
//! sets `timer = N`; [`WakeupArray::tick`] decrements; the
//! result-available line is the predicate `timer == 0`. Requests are
//! evaluated at the top of each cycle, before grants and ticks, so a
//! producer granted at cycle `C` with latency `N` wakes dependents at
//! cycle `C + N` — one-cycle producers chain back-to-back.
//! [`Entry::paper_timer`] converts back to the paper's `N − 1` count for
//! the Fig. 6 trace output.
//!
//! Entries are **not** removed at completion but at retirement ("entries
//! … are not removed until the instruction is retired"); clearing an
//! entry clears its column in every other entry, so late-arriving
//! dependents never wait on a retired producer.

use rsp_isa::units::{TypeCounts, UnitType};
use serde::{Deserialize, Serialize};

/// The paper's instruction queue depth: seven entries, which is what
/// makes the 3-bit requirement encoders and adders sufficient.
pub const PAPER_QUEUE_SIZE: usize = 7;

/// Decrement one type's count in an incremental demand signature.
#[inline]
fn dec(counts: &mut TypeCounts, t: UnitType) {
    let v = counts.get(t);
    debug_assert!(v > 0, "incremental demand counter underflow for {t:?}");
    counts.set(t, v.saturating_sub(1));
}

/// Index of a wake-up array slot.
pub type SlotIdx = usize;

/// One wake-up array entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    /// The one functional-unit type this instruction needs (its one-hot
    /// resource vector).
    pub unit: UnitType,
    /// Dependency columns: bit `i` set ⇒ this entry needs the result of
    /// the entry in slot `i`. (Capacity ≤ 64 slots.)
    pub deps: u64,
    /// The scheduled bit.
    pub scheduled: bool,
    /// Remaining cycles until this entry's result-available line asserts
    /// (`None` before grant; `Some(0)` = asserted).
    pub timer: Option<u32>,
    /// Caller-supplied identity (ROB index / sequence number); also the
    /// age key for oldest-first arbitration.
    pub tag: u64,
}

impl Entry {
    /// The entry's result-available line.
    #[inline]
    pub fn result_available(&self) -> bool {
        self.timer == Some(0)
    }

    /// The timer in the paper's `N − 1` convention (`None` before grant
    /// or once asserted).
    pub fn paper_timer(&self) -> Option<u32> {
        match self.timer {
            Some(t) if t > 0 => Some(t.saturating_sub(1)),
            _ => None,
        }
    }
}

/// Lifecycle state of an entry, derived for traces and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryState {
    /// Waiting on dependencies or resources; requesting when both clear.
    Waiting,
    /// Granted; executing (timer running).
    Executing,
    /// Result available; occupying the slot until retirement.
    Done,
}

/// The wake-up array.
///
/// ```
/// use rsp_sched::WakeupArray;
/// use rsp_isa::UnitType;
///
/// let mut w = WakeupArray::paper(); // 7 entries
/// let producer = w.insert(UnitType::IntAlu, &[], 0).unwrap();
/// let consumer = w.insert(UnitType::IntMdu, &[producer], 1).unwrap();
///
/// // Only the producer requests; the consumer waits on its column.
/// assert_eq!(w.requests(&[true; 5]), vec![producer]);
/// w.grant(producer, 2); // 2-cycle latency
/// w.tick();
/// assert!(w.requests(&[true; 5]).is_empty(), "result not ready yet");
/// w.tick();
/// assert_eq!(w.requests(&[true; 5]), vec![consumer]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WakeupArray {
    slots: Vec<Option<Entry>>,
    /// Per-slot count of dependency columns whose producer result is not
    /// yet available (0 for empty slots). `pending[s] == 0` means entry
    /// `s`'s wake-up condition is met; maintained incrementally by every
    /// mutation so requests and demand signatures need no dep-walk.
    pending: Vec<u8>,
    /// Incremental demand signature over unscheduled entries (§3.2).
    demand_unsched: TypeCounts,
    /// Incremental demand signature over ready entries — unscheduled
    /// with `pending == 0` (§3.1).
    demand_rdy: TypeCounts,
    /// Bitmask of slots whose countdown timer is still running
    /// (`timer == Some(t)` with `t > 0`): `tick` walks only these
    /// instead of scanning every slot.
    ticking: u64,
}

impl WakeupArray {
    /// An empty array of `capacity` slots (≤ 64).
    pub fn new(capacity: usize) -> WakeupArray {
        assert!((1..=64).contains(&capacity), "capacity must be 1..=64");
        WakeupArray {
            slots: vec![None; capacity],
            pending: vec![0; capacity],
            demand_unsched: TypeCounts::ZERO,
            demand_rdy: TypeCounts::ZERO,
            ticking: 0,
        }
    }

    /// The paper's seven-entry array.
    pub fn paper() -> WakeupArray {
        WakeupArray::new(PAPER_QUEUE_SIZE)
    }

    /// Empty every slot for a fresh run, keeping the allocation (used by
    /// the simulator's batched driver).
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.pending.fill(0);
        self.demand_unsched = TypeCounts::ZERO;
        self.demand_rdy = TypeCounts::ZERO;
        self.ticking = 0;
    }

    /// Capacity in slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slot count.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True iff no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// True iff every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.slots.iter().all(|s| s.is_some())
    }

    /// The entry in `slot`, if any.
    #[inline]
    pub fn get(&self, slot: SlotIdx) -> Option<&Entry> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    /// Iterate `(slot, entry)` over occupied slots.
    pub fn entries(&self) -> impl Iterator<Item = (SlotIdx, &Entry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e)))
    }

    /// Insert an instruction needing `unit`, depending on the results of
    /// `deps` (slot indices of in-flight producers), with age `tag`.
    /// Returns the allocated slot, or `None` if the array is full.
    ///
    /// # Panics
    /// Panics if a dependency references an empty slot — the register
    /// update unit must only record dependencies on live entries.
    pub fn insert(&mut self, unit: UnitType, deps: &[SlotIdx], tag: u64) -> Option<SlotIdx> {
        let free = self.slots.iter().position(|s| s.is_none())?;
        let mut depmask = 0u64;
        for &d in deps {
            assert!(d < self.capacity(), "dependency slot out of range");
            assert!(d != free, "self-dependency");
            assert!(self.slots[d].is_some(), "dependency on an empty slot {d}");
            depmask |= 1 << d;
        }
        // Count producers whose result is not yet available (the mask
        // de-duplicates repeated dependency mentions).
        let mut pending = 0u8;
        let mut m = depmask;
        while m != 0 {
            let d = m.trailing_zeros() as usize;
            m &= m - 1;
            if !self.slots[d].as_ref().unwrap().result_available() {
                pending += 1;
            }
        }
        self.slots[free] = Some(Entry {
            unit,
            deps: depmask,
            scheduled: false,
            timer: None,
            tag,
        });
        self.pending[free] = pending;
        self.demand_unsched.add(unit, 1);
        if pending == 0 {
            self.demand_rdy.add(unit, 1);
        }
        Some(free)
    }

    /// Fig. 6 for one entry: does it request execution this cycle?
    ///
    /// `resource_available[t]` are the five availability lines computed
    /// by the Eq. 1 circuits (true = an idle unit of that type exists).
    pub fn requests_entry(&self, slot: SlotIdx, resource_available: &[bool; 5]) -> bool {
        let Some(e) = self.get(slot) else {
            return false;
        };
        if e.scheduled {
            return false;
        }
        if !resource_available[e.unit.index()] {
            return false;
        }
        // Every needed entry column must have its available line high.
        let mut deps = e.deps;
        while deps != 0 {
            let d = deps.trailing_zeros() as usize;
            deps &= deps - 1;
            match self.get(d) {
                Some(p) if p.result_available() => {}
                Some(_) => return false,
                // Column bits on empty slots cannot exist: clear()
                // removes them. Defensive: treat as satisfied.
                None => {}
            }
        }
        true
    }

    /// All requesting slots this cycle, in slot order, appended to a
    /// caller-provided buffer (cleared first). The hot loop reuses one
    /// buffer across cycles so no allocation happens in steady state;
    /// the incremental `pending` counters stand in for the per-entry
    /// dependency walk of [`WakeupArray::requests_entry`].
    pub fn requests_into(&self, resource_available: &[bool; 5], out: &mut Vec<SlotIdx>) {
        out.clear();
        for (s, e) in self.slots.iter().enumerate() {
            let requesting = match e {
                Some(e) => {
                    !e.scheduled && self.pending[s] == 0 && resource_available[e.unit.index()]
                }
                None => false,
            };
            debug_assert_eq!(
                requesting,
                self.requests_entry(s, resource_available),
                "pending counter out of sync with dependency walk in slot {s}"
            );
            if requesting {
                out.push(s);
            }
        }
    }

    /// All requesting slots this cycle, in slot order.
    pub fn requests(&self, resource_available: &[bool; 5]) -> Vec<SlotIdx> {
        let mut out = Vec::with_capacity(self.capacity());
        self.requests_into(resource_available, &mut out);
        out
    }

    /// Grant execution to `slot` with the instruction's `latency`
    /// (cycles ≥ 1): sets the scheduled bit and starts the countdown.
    ///
    /// # Panics
    /// Panics if the slot is empty or already scheduled.
    pub fn grant(&mut self, slot: SlotIdx, latency: u32) {
        let e = self.slots[slot].as_mut().expect("grant on empty slot");
        assert!(!e.scheduled, "grant on already-scheduled slot {slot}");
        assert!(latency >= 1, "latency must be at least one cycle");
        e.scheduled = true;
        e.timer = Some(latency);
        self.ticking |= 1 << slot;
        // Was unscheduled (and ready iff pending == 0); now neither. The
        // timer starts ≥ 1, so no result became available.
        let unit = e.unit;
        dec(&mut self.demand_unsched, unit);
        if self.pending[slot] == 0 {
            dec(&mut self.demand_rdy, unit);
        }
    }

    /// The reschedule input of the scheduled bit (Fig. 6): de-assert it
    /// so the entry requests again (replay). Clears the timer.
    pub fn reschedule(&mut self, slot: SlotIdx) {
        let Some(e) = self.slots[slot].as_mut() else {
            return;
        };
        if !e.scheduled {
            // Unscheduled entries carry no timer; nothing changes.
            debug_assert_eq!(e.timer, None);
            return;
        }
        let was_available = e.result_available();
        let unit = e.unit;
        e.scheduled = false;
        e.timer = None;
        self.ticking &= !(1 << slot);
        self.demand_unsched.add(unit, 1);
        if self.pending[slot] == 0 {
            self.demand_rdy.add(unit, 1);
        }
        if was_available {
            // The result line de-asserts: dependents lose a satisfied
            // column and may fall out of the ready set.
            self.producer_result_lost(slot);
        }
    }

    /// Retire (or squash) the entry in `slot`: empty the slot and clear
    /// its column in every other entry.
    pub fn clear(&mut self, slot: SlotIdx) {
        let Some(e) = self.slots[slot].take() else {
            // Already empty: column bits on empty slots cannot exist.
            return;
        };
        if !e.scheduled {
            dec(&mut self.demand_unsched, e.unit);
            if self.pending[slot] == 0 {
                dec(&mut self.demand_rdy, e.unit);
            }
        }
        self.pending[slot] = 0;
        self.ticking &= !(1 << slot);
        let bit = 1u64 << slot;
        let result_was_missing = !e.result_available();
        for (i, s) in self.slots.iter_mut().enumerate() {
            let Some(d) = s.as_mut() else { continue };
            if d.deps & bit == 0 {
                continue;
            }
            d.deps &= !bit;
            if result_was_missing {
                // The dependent was counting this unavailable producer;
                // dropping the column may complete its wake-up.
                debug_assert!(self.pending[i] > 0);
                self.pending[i] -= 1;
                if self.pending[i] == 0 && !d.scheduled {
                    self.demand_rdy.add(d.unit, 1);
                }
            }
        }
    }

    /// Advance every running countdown timer by one cycle.
    pub fn tick(&mut self) {
        // Pass 1: decrement running timers (only the slots in the
        // `ticking` mask — expired timers stay at zero and are skipped),
        // recording which result lines assert this cycle (the 1 → 0
        // transitions).
        let mut newly_available = 0u64;
        let mut running = self.ticking;
        while running != 0 {
            let i = running.trailing_zeros() as usize;
            running &= running - 1;
            let e = self.slots[i]
                .as_mut()
                .expect("ticking bit set on empty slot");
            let t = e.timer.as_mut().expect("ticking bit set without timer");
            debug_assert!(*t > 0, "ticking bit set on expired timer");
            *t -= 1;
            if *t == 0 {
                newly_available |= 1 << i;
                self.ticking &= !(1 << i);
            }
        }
        if newly_available == 0 {
            return;
        }
        // Pass 2: wake dependents of the newly available results.
        for (i, e) in self.slots.iter_mut().enumerate() {
            let Some(e) = e else { continue };
            let hits = (e.deps & newly_available).count_ones() as u8;
            if hits > 0 {
                debug_assert!(self.pending[i] >= hits);
                self.pending[i] -= hits;
                if self.pending[i] == 0 && !e.scheduled {
                    self.demand_rdy.add(e.unit, 1);
                }
            }
        }
    }

    /// A producer's asserted result line went away (replay): every
    /// dependent regains a pending column; ready ones drop out.
    fn producer_result_lost(&mut self, slot: SlotIdx) {
        let bit = 1u64 << slot;
        for (i, s) in self.slots.iter_mut().enumerate() {
            let Some(d) = s.as_mut() else { continue };
            if d.deps & bit == 0 {
                continue;
            }
            if self.pending[i] == 0 && !d.scheduled {
                dec(&mut self.demand_rdy, d.unit);
            }
            self.pending[i] += 1;
        }
    }

    /// Derived lifecycle state of an entry.
    pub fn state(&self, slot: SlotIdx) -> Option<EntryState> {
        self.get(slot).map(|e| match (e.scheduled, e.timer) {
            (false, _) => EntryState::Waiting,
            (true, Some(0)) => EntryState::Done,
            (true, _) => EntryState::Executing,
        })
    }

    /// Demand signature of all **unscheduled** entries — the selection
    /// unit's §3.2 reading ("instructions … that have not been
    /// scheduled"). O(1): maintained incrementally on every mutation.
    pub fn demand_unscheduled(&self) -> TypeCounts {
        debug_assert_eq!(self.demand_unsched, self.demand_unscheduled_scan());
        self.demand_unsched
    }

    /// Demand signature of entries that are **ready** (unscheduled with
    /// all dependencies satisfied, ignoring resource availability) — the
    /// selection unit's §3.1 reading ("ready to be executed"). O(1):
    /// maintained incrementally on every mutation.
    pub fn demand_ready(&self) -> TypeCounts {
        debug_assert_eq!(self.demand_rdy, self.demand_ready_scan());
        self.demand_rdy
    }

    /// [`WakeupArray::demand_unscheduled`] recomputed from scratch by
    /// scanning every slot — the specification the incremental counter
    /// is checked against (differential tests and debug assertions).
    pub fn demand_unscheduled_scan(&self) -> TypeCounts {
        self.entries()
            .filter(|(_, e)| !e.scheduled)
            .map(|(_, e)| (e.unit, 1))
            .collect()
    }

    /// [`WakeupArray::demand_ready`] recomputed from scratch via the
    /// per-entry dependency walk — the specification the incremental
    /// counter is checked against.
    pub fn demand_ready_scan(&self) -> TypeCounts {
        let all_avail = [true; 5];
        (0..self.capacity())
            .filter(|&s| self.requests_entry(s, &all_avail))
            .map(|s| (self.get(s).unwrap().unit, 1))
            .collect()
    }

    /// Render the Fig. 5 bit matrix: one row per occupied slot, the five
    /// unit columns then one column per slot.
    pub fn matrix(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "{:<12}", "entry");
        for &t in &UnitType::ALL {
            let _ = write!(s, "{:>8}", t.to_string());
        }
        for i in 0..self.capacity() {
            let _ = write!(s, "  E{}", i + 1);
        }
        let _ = writeln!(s);
        for (i, e) in self.entries() {
            let _ = write!(s, "{:<12}", format!("Entry {}", i + 1));
            for &t in &UnitType::ALL {
                let _ = write!(s, "{:>8}", if e.unit == t { 1 } else { 0 });
            }
            for d in 0..self.capacity() {
                let _ = write!(s, "{:>4}", if e.deps & (1 << d) != 0 { 1 } else { 0 });
            }
            let _ = writeln!(s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [bool; 5] = [true; 5];

    fn no_unit(t: UnitType) -> [bool; 5] {
        let mut a = [true; 5];
        a[t.index()] = false;
        a
    }

    #[test]
    fn insert_until_full() {
        let mut w = WakeupArray::paper();
        for i in 0..7 {
            assert_eq!(w.insert(UnitType::IntAlu, &[], i), Some(i as usize));
        }
        assert!(w.is_full());
        assert_eq!(w.insert(UnitType::IntAlu, &[], 7), None);
        assert_eq!(w.len(), 7);
    }

    #[test]
    fn independent_entry_requests_when_resource_available() {
        let mut w = WakeupArray::paper();
        let s = w.insert(UnitType::Lsu, &[], 0).unwrap();
        assert!(w.requests_entry(s, &ALL));
        assert!(!w.requests_entry(s, &no_unit(UnitType::Lsu)));
        // Other resources' availability is irrelevant.
        assert!(w.requests_entry(s, &no_unit(UnitType::FpMdu)));
    }

    #[test]
    fn dependent_waits_for_producer_result() {
        let mut w = WakeupArray::paper();
        let p = w.insert(UnitType::IntAlu, &[], 0).unwrap();
        let c = w.insert(UnitType::IntMdu, &[p], 1).unwrap();
        assert!(!w.requests_entry(c, &ALL), "producer not granted yet");
        w.grant(p, 3);
        assert!(!w.requests_entry(c, &ALL), "producer still executing");
        w.tick();
        w.tick();
        assert!(!w.requests_entry(c, &ALL), "one cycle left");
        w.tick();
        assert!(w.get(p).unwrap().result_available());
        assert!(w.requests_entry(c, &ALL), "result available after 3 ticks");
    }

    #[test]
    fn one_cycle_producer_chains_next_cycle() {
        let mut w = WakeupArray::paper();
        let p = w.insert(UnitType::IntAlu, &[], 0).unwrap();
        let c = w.insert(UnitType::IntAlu, &[p], 1).unwrap();
        w.grant(p, 1);
        assert!(!w.requests_entry(c, &ALL), "same cycle: not yet");
        w.tick();
        assert!(w.requests_entry(c, &ALL), "next cycle: ready");
    }

    #[test]
    fn paper_timer_convention() {
        let mut w = WakeupArray::paper();
        let p = w.insert(UnitType::FpMdu, &[], 0).unwrap();
        assert_eq!(w.get(p).unwrap().paper_timer(), None);
        w.grant(p, 5);
        // Paper: timer set to N−1 = 4.
        assert_eq!(w.get(p).unwrap().paper_timer(), Some(4));
        w.tick();
        assert_eq!(w.get(p).unwrap().paper_timer(), Some(3));
        for _ in 0..4 {
            w.tick();
        }
        assert_eq!(w.get(p).unwrap().paper_timer(), None);
        assert!(w.get(p).unwrap().result_available());
    }

    #[test]
    fn scheduled_bit_stops_requests() {
        let mut w = WakeupArray::paper();
        let s = w.insert(UnitType::IntAlu, &[], 0).unwrap();
        assert!(w.requests_entry(s, &ALL));
        w.grant(s, 4);
        assert!(!w.requests_entry(s, &ALL));
        // Reschedule (replay) makes it request again.
        w.reschedule(s);
        assert!(w.requests_entry(s, &ALL));
        assert_eq!(w.state(s), Some(EntryState::Waiting));
    }

    #[test]
    fn retirement_clears_columns() {
        let mut w = WakeupArray::paper();
        let p = w.insert(UnitType::IntAlu, &[], 0).unwrap();
        let c = w.insert(UnitType::IntAlu, &[p], 1).unwrap();
        // Producer completes and retires before the consumer is granted.
        w.grant(p, 1);
        w.tick();
        w.clear(p);
        assert_eq!(w.get(p), None);
        assert_eq!(w.get(c).unwrap().deps, 0, "column cleared");
        assert!(w.requests_entry(c, &ALL));
        // The freed slot is reusable and fresh inserts into it don't
        // resurrect dependencies.
        let n = w.insert(UnitType::FpAlu, &[], 2).unwrap();
        assert_eq!(n, p);
        assert!(!w.get(c).unwrap().deps & (1 << n) != 0 || w.get(c).unwrap().deps == 0);
    }

    #[test]
    fn multi_dependency_needs_all_results() {
        let mut w = WakeupArray::paper();
        let a = w.insert(UnitType::IntAlu, &[], 0).unwrap();
        let b = w.insert(UnitType::IntAlu, &[], 1).unwrap();
        let c = w.insert(UnitType::FpAlu, &[a, b], 2).unwrap();
        w.grant(a, 1);
        w.tick();
        assert!(!w.requests_entry(c, &ALL), "b still outstanding");
        w.grant(b, 2);
        w.tick();
        w.tick();
        assert!(w.requests_entry(c, &ALL));
    }

    #[test]
    fn demand_signatures() {
        let mut w = WakeupArray::paper();
        let a = w.insert(UnitType::IntAlu, &[], 0).unwrap();
        let _b = w.insert(UnitType::Lsu, &[], 1).unwrap();
        let _c = w.insert(UnitType::FpMdu, &[a], 2).unwrap();
        let unsched = w.demand_unscheduled();
        assert_eq!(unsched.total(), 3);
        let ready = w.demand_ready();
        assert_eq!(ready.total(), 2, "FpMdu blocked on dependency");
        assert_eq!(ready.get(UnitType::FpMdu), 0);
        w.grant(a, 1);
        assert_eq!(w.demand_unscheduled().total(), 2);
    }

    #[test]
    fn state_machine() {
        let mut w = WakeupArray::paper();
        let s = w.insert(UnitType::IntMdu, &[], 0).unwrap();
        assert_eq!(w.state(s), Some(EntryState::Waiting));
        w.grant(s, 2);
        assert_eq!(w.state(s), Some(EntryState::Executing));
        w.tick();
        assert_eq!(w.state(s), Some(EntryState::Executing));
        w.tick();
        assert_eq!(w.state(s), Some(EntryState::Done));
        w.clear(s);
        assert_eq!(w.state(s), None);
    }

    #[test]
    fn matrix_renders_fig5_style() {
        let mut w = WakeupArray::paper();
        let p = w.insert(UnitType::Lsu, &[], 0).unwrap();
        let _ = w.insert(UnitType::IntMdu, &[p], 1).unwrap();
        let m = w.matrix();
        assert!(m.contains("Entry 1"), "{m}");
        assert!(m.contains("Entry 2"), "{m}");
        assert!(m.contains("LSU"), "{m}");
    }

    /// The incremental demand counters must track the from-scratch scans
    /// through every mutation, including the reschedule (replay) path
    /// that de-asserts an already-available result line.
    #[test]
    fn incremental_demand_tracks_scans() {
        let mut w = WakeupArray::paper();
        let check = |w: &WakeupArray| {
            assert_eq!(w.demand_unscheduled(), w.demand_unscheduled_scan());
            assert_eq!(w.demand_ready(), w.demand_ready_scan());
        };
        let a = w.insert(UnitType::IntAlu, &[], 0).unwrap();
        let b = w.insert(UnitType::Lsu, &[a], 1).unwrap();
        let c = w.insert(UnitType::FpMdu, &[a, b], 2).unwrap();
        check(&w);
        w.grant(a, 2);
        check(&w);
        w.tick();
        check(&w);
        w.tick(); // a's result line asserts; b becomes ready
        check(&w);
        assert_eq!(w.demand_ready().get(UnitType::Lsu), 1);
        assert_eq!(w.demand_ready().get(UnitType::FpMdu), 0);
        // Replay a: its result de-asserts and b leaves the ready set.
        w.reschedule(a);
        check(&w);
        assert_eq!(w.demand_ready().get(UnitType::Lsu), 0);
        // Reschedule of an unscheduled slot is a no-op.
        w.reschedule(b);
        check(&w);
        // Re-grant and complete both producers; c becomes ready.
        w.grant(a, 1);
        w.tick();
        w.grant(b, 1);
        w.tick();
        check(&w);
        assert_eq!(w.demand_ready().get(UnitType::FpMdu), 1);
        // Retire the producers; c keeps its readiness, columns clear.
        w.clear(a);
        w.clear(b);
        check(&w);
        assert_eq!(w.get(c).unwrap().deps, 0);
        // Clearing a still-executing producer must also wake dependents.
        let d = w.insert(UnitType::IntMdu, &[c], 3).unwrap();
        w.grant(c, 5);
        check(&w);
        w.clear(c); // squash mid-execution
        check(&w);
        assert_eq!(w.demand_ready().get(UnitType::IntMdu), 1);
        let _ = d;
    }

    #[test]
    fn requests_into_reuses_buffer() {
        let mut w = WakeupArray::paper();
        let a = w.insert(UnitType::IntAlu, &[], 0).unwrap();
        let b = w.insert(UnitType::Lsu, &[], 1).unwrap();
        let mut buf = vec![99, 98, 97];
        w.requests_into(&ALL, &mut buf);
        assert_eq!(buf, vec![a, b], "buffer cleared then filled in slot order");
        w.grant(a, 1);
        w.requests_into(&no_unit(UnitType::Lsu), &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic]
    fn dependency_on_empty_slot_panics() {
        let mut w = WakeupArray::paper();
        let _ = w.insert(UnitType::IntAlu, &[3], 0);
    }

    #[test]
    #[should_panic]
    fn double_grant_panics() {
        let mut w = WakeupArray::paper();
        let s = w.insert(UnitType::IntAlu, &[], 0).unwrap();
        w.grant(s, 1);
        w.grant(s, 1);
    }
}

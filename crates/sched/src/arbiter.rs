//! Grant arbitration.
//!
//! The wake-up logic is *select-free*: it "only determines when an
//! instruction is ready for execution and generates an execution request
//! … contention between instructions must be handled by the scheduler
//! after multiple instructions that use the same resources request
//! execution" (paper §4.1). This module is that scheduler: it matches
//! requesting entries to idle units of their type, **oldest first** (by
//! entry tag), at most one instruction per idle unit per cycle.

use crate::wakeup::{SlotIdx, WakeupArray};
use rsp_isa::units::{TypeCounts, UnitType};

/// One issued grant: which slot goes to which unit type, plus how many
/// idle units of that type remained before this grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The wake-up slot granted execution.
    pub slot: SlotIdx,
    /// The unit type it issues to.
    pub unit: UnitType,
}

/// Arbitrate one cycle into a caller-provided buffer (cleared first):
/// `requests` are the requesting slots (from
/// [`WakeupArray::requests_into`]); `idle_units[t]` is the number of
/// idle units of each type. Grants come out grouped by unit type in
/// [`UnitType::ALL`] order, oldest tag first within a type.
///
/// Allocation-free: requests fit a fixed on-stack table (the array
/// capacity is ≤ 64 slots) and the per-type grouping is a single sort
/// by `(type, tag)`. The hot loop reuses one grant buffer per machine.
///
/// Note the arbiter does **not** mutate the array — the caller issues
/// [`WakeupArray::grant`] per returned grant once it has bound a concrete
/// unit (the simulator also marks the unit busy in the fabric).
pub fn arbitrate_into(
    array: &WakeupArray,
    requests: &[SlotIdx],
    idle_units: &TypeCounts,
    grants: &mut Vec<Grant>,
) {
    grants.clear();
    // (type index, tag, slot) sorts into exactly the emission order:
    // types ascending, oldest tag first within a type.
    let mut keyed = [(0usize, 0u64, 0usize); 64];
    let n = requests.len();
    debug_assert!(n <= 64, "more requests than the 64-slot maximum");
    for (k, &s) in keyed.iter_mut().zip(requests) {
        let e = array.get(s).expect("requesting slot must be occupied");
        *k = (e.unit.index(), e.tag, s);
    }
    let keyed = &mut keyed[..n];
    keyed.sort_unstable();
    let mut quota_left = idle_units.as_array();
    for &(t, _, slot) in keyed.iter() {
        if quota_left[t] > 0 {
            quota_left[t] -= 1;
            grants.push(Grant {
                slot,
                unit: UnitType::from_index(t).expect("valid type index"),
            });
        }
    }
}

/// [`arbitrate_into`] with a freshly allocated grant buffer.
pub fn arbitrate(array: &WakeupArray, requests: &[SlotIdx], idle_units: &TypeCounts) -> Vec<Grant> {
    let mut grants = Vec::with_capacity(requests.len());
    arbitrate_into(array, requests, idle_units, &mut grants);
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_bounded_by_idle_units() {
        let mut w = WakeupArray::paper();
        for i in 0..4 {
            w.insert(UnitType::IntAlu, &[], 10 + i).unwrap();
        }
        let reqs = w.requests(&[true; 5]);
        assert_eq!(reqs.len(), 4);
        let grants = arbitrate(&w, &reqs, &TypeCounts::new([2, 0, 0, 0, 0]));
        assert_eq!(grants.len(), 2);
        // Oldest (lowest tag) first.
        assert_eq!(grants[0].slot, 0);
        assert_eq!(grants[1].slot, 1);
    }

    #[test]
    fn oldest_first_is_by_tag_not_slot() {
        let mut w = WakeupArray::paper();
        // Fill, then clear slot 0 and reuse it for a *younger* entry.
        let a = w.insert(UnitType::IntAlu, &[], 100).unwrap();
        let _b = w.insert(UnitType::IntAlu, &[], 50).unwrap();
        w.clear(a);
        let c = w.insert(UnitType::IntAlu, &[], 200).unwrap();
        assert_eq!(c, 0, "slot reused");
        let reqs = w.requests(&[true; 5]);
        let grants = arbitrate(&w, &reqs, &TypeCounts::new([1, 0, 0, 0, 0]));
        assert_eq!(
            grants,
            vec![Grant {
                slot: 1,
                unit: UnitType::IntAlu
            }]
        );
    }

    #[test]
    fn types_arbitrate_independently() {
        let mut w = WakeupArray::paper();
        w.insert(UnitType::IntAlu, &[], 0).unwrap();
        w.insert(UnitType::Lsu, &[], 1).unwrap();
        w.insert(UnitType::FpMdu, &[], 2).unwrap();
        let reqs = w.requests(&[true; 5]);
        let grants = arbitrate(&w, &reqs, &TypeCounts::new([1, 1, 1, 1, 1]));
        assert_eq!(grants.len(), 3);
        let grants = arbitrate(&w, &reqs, &TypeCounts::new([0, 0, 1, 0, 1]));
        assert_eq!(grants.len(), 2);
        assert!(grants.iter().all(|g| g.unit != UnitType::IntAlu));
    }

    #[test]
    fn no_requests_no_grants() {
        let w = WakeupArray::paper();
        assert!(arbitrate(&w, &[], &TypeCounts::new([7, 7, 7, 7, 7])).is_empty());
    }
}

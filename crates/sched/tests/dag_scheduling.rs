//! Property-based scheduling test: random dependency DAGs pushed through
//! the wake-up array + arbiter must schedule every instruction exactly
//! once, never violate a dependency's latency, and never oversubscribe
//! the available units.

use proptest::prelude::*;
use rsp_isa::units::{TypeCounts, UnitType};
use rsp_sched::{arbitrate, WakeupArray};

#[derive(Debug, Clone)]
struct DagSpec {
    /// (unit type index, predecessors as indices < own index)
    nodes: Vec<(usize, Vec<usize>)>,
    /// idle units per type, all ≥ 1 so every node can eventually run
    units: [u8; 5],
    /// latency per type, 1..=6
    lat: [u32; 5],
}

fn arb_dag(max_nodes: usize) -> impl Strategy<Value = DagSpec> {
    (1..=max_nodes).prop_flat_map(move |n| {
        let nodes = (0..n)
            .map(|i| {
                let preds = if i == 0 {
                    Just(Vec::new()).boxed()
                } else {
                    proptest::collection::vec(0..i, 0..=i.min(3)).boxed()
                };
                (0usize..5, preds)
            })
            .collect::<Vec<_>>();
        (
            nodes,
            proptest::array::uniform5(1u8..4),
            proptest::array::uniform5(1u32..7),
        )
            .prop_map(|(nodes, units, lat)| DagSpec { nodes, units, lat })
    })
}

/// Schedule the whole DAG through a 7-entry array with windowed insertion
/// (like the dispatcher): insert in index order as slots free up.
fn schedule(spec: &DagSpec) -> Vec<(usize, u64)> {
    let n = spec.nodes.len();
    let mut w = WakeupArray::paper();
    let idle = TypeCounts::new(spec.units);
    let mut slot_of = vec![usize::MAX; n];
    let mut granted_at = vec![None::<u64>; n];
    let mut done_at = vec![None::<u64>; n];
    let mut retired = vec![false; n];
    let mut next_insert = 0usize;

    for cycle in 0..10_000u64 {
        // Retire entries whose results are available and whose own
        // dependents no longer need the row? The paper retires in order;
        // here we retire in index order once complete.
        while let Some(first) = (0..n).find(|&i| !retired[i]) {
            match done_at[first] {
                Some(d) if d <= cycle => {
                    w.clear(slot_of[first]);
                    retired[first] = true;
                }
                _ => break,
            }
        }
        // Dispatch in order while slots are free.
        while next_insert < n && !w.is_full() {
            let (t, preds) = &spec.nodes[next_insert];
            // Deps only on still-live (unretired) producers.
            let deps: Vec<usize> = preds
                .iter()
                .filter(|&&p| !retired[p])
                .map(|&p| slot_of[p])
                .collect();
            let slot = w
                .insert(UnitType::from_index(*t).unwrap(), &deps, next_insert as u64)
                .unwrap();
            slot_of[next_insert] = slot;
            next_insert += 1;
        }
        // Issue.
        let reqs = w.requests(&[true; 5]);
        let grants = arbitrate(&w, &reqs, &idle);
        // Per-cycle unit budget respected by construction; verify anyway.
        let mut per_type = [0u8; 5];
        for g in &grants {
            per_type[g.unit.index()] += 1;
            assert!(per_type[g.unit.index()] <= spec.units[g.unit.index()]);
            let i = w.get(g.slot).unwrap().tag as usize;
            let lat = spec.lat[g.unit.index()];
            w.grant(g.slot, lat);
            granted_at[i] = Some(cycle);
            done_at[i] = Some(cycle + lat as u64);
        }
        w.tick();
        if retired.iter().all(|&r| r) {
            break;
        }
    }
    assert!(retired.iter().all(|&r| r), "DAG did not drain");
    (0..n).map(|i| (i, granted_at[i].unwrap())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dags_schedule_completely_and_respect_dependencies(spec in arb_dag(24)) {
        let grants = schedule(&spec);
        // Every node granted exactly once (by construction of the vec).
        for (i, g) in &grants {
            for &p in &spec.nodes[*i].1 {
                let (_, pg) = grants[p];
                let plat = spec.lat[spec.nodes[p].0] as u64;
                prop_assert!(
                    *g >= pg + plat,
                    "node {i} granted at {g} before producer {p} (granted {pg}, latency {plat}) finished"
                );
            }
        }
    }

    /// Greedy list-scheduling optimality bound: the wake-up schedule
    /// finishes within (critical path × max latency + serialisation)
    /// cycles — a coarse but real performance guarantee.
    #[test]
    fn schedule_length_is_bounded(spec in arb_dag(20)) {
        let grants = schedule(&spec);
        let makespan = grants
            .iter()
            .map(|&(i, g)| g + spec.lat[spec.nodes[i].0] as u64)
            .max()
            .unwrap_or(0);
        let total_work: u64 = spec
            .nodes
            .iter()
            .map(|(t, _)| spec.lat[*t] as u64)
            .sum();
        // With ≥1 unit per type and a 7-slot window, the makespan cannot
        // exceed serial execution plus one window-refill bubble per node.
        prop_assert!(
            makespan <= total_work + spec.nodes.len() as u64 * 2 + 7,
            "makespan {makespan} vs serial bound {total_work}"
        );
    }
}

//! The pipeline driver.
//!
//! [`Processor`] validates a configuration and runs programs;
//! [`Machine`] is one run's live state, stepped one cycle at a time and
//! fully inspectable (wake-up array, fabric, register file), which is
//! what the figure-reproduction experiments use for their traces.
//!
//! Stage order within [`Machine::step`] (one cycle):
//! 1. **retire** — in-order completion from the register-update-unit
//!    head, write-back to the architectural register file;
//! 2. **complete** — executions whose latency elapsed this cycle finish:
//!    units are freed, control flow is verified, mispredicts flush;
//! 3. **issue** — select-free wake-up requests are arbitrated
//!    oldest-first onto idle units; operands are forwarded and the
//!    result computed (memory ops access memory here, in order and
//!    non-speculatively);
//! 4. **steer** — the configuration-steering policy observes the ready
//!    demand and may start partial reconfigurations;
//! 5. **dispatch** — decoded instructions enter the wake-up array and
//!    the register update unit, with dependency columns from the
//!    dependency buffer (plus the in-order memory/branch chains);
//! 6. **fetch** — the front end fetches and decodes along the predicted
//!    path;
//! 7. **tick** — timers, reconfiguration progress, unit drain.

use crate::config::{DemandMode, PolicyKind, SelectMode, SimConfig};
use crate::exec::{execute, operand_value};
use crate::frontend::{FetchUnit, FetchedInstr};
use crate::lanes::SteerRecord;
use crate::rob::{Rob, RobEntry, Seq, Stage};
use crate::stats::SimReport;
use rsp_core::cem::CemUnit;
use rsp_core::loader::LoaderStats;
use rsp_core::policy::{DemandDriven, PaperSteering, PolicyOutcome, StaticPolicy, SteeringPolicy};
use rsp_core::select::{ConfigChoice, SelectionUnit};
use rsp_core::smooth::SmoothedSteering;
use rsp_fabric::alloc::PlacedUnit;
use rsp_fabric::fabric::{Fabric, UnitId};
use rsp_fabric::fault::FaultEvent;
use rsp_isa::mem::DataMemory;
use rsp_isa::program::ProgramError;
use rsp_isa::semantics::ArchState;
use rsp_isa::units::{TypeCounts, UnitType};
use rsp_isa::Program;
use rsp_obs::{Event, Histo, StallCause, Telemetry};
use rsp_sched::{arbitrate_into, Grant, SlotIdx, WakeupArray};
use std::collections::VecDeque;

/// Errors surfaced by [`Processor::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The simulator configuration is inconsistent.
    BadConfig(String),
    /// The program failed static validation.
    BadProgram(ProgramError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            RunError::BadProgram(e) => write!(f, "bad program: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The steering policy instance driving one run.
#[derive(Debug, Clone)]
pub enum PolicyInstance {
    /// The paper's mechanism.
    Paper(PaperSteering),
    /// Never reconfigure.
    Static(StaticPolicy),
    /// Greedy demand-driven steering (§5 future work / oracle).
    Demand(DemandDriven),
    /// The paper's mechanism behind an EWMA demand filter (E11).
    Smoothed(SmoothedSteering),
}

impl PolicyInstance {
    fn build(cfg: &SimConfig) -> PolicyInstance {
        match cfg.policy {
            PolicyKind::Paper {
                tie,
                cem,
                partial,
                fault_aware,
            } => {
                let unit = SelectionUnit {
                    tie,
                    cem: CemUnit { kind: cem },
                    ..SelectionUnit::PAPER
                };
                let mut p = PaperSteering::new(unit, cfg.steering_set.clone());
                p.loader.partial = partial;
                p.loader.fault_aware = fault_aware;
                PolicyInstance::Paper(p)
            }
            PolicyKind::Static => {
                let label = cfg
                    .initial_config
                    .map(|i| cfg.steering_set.predefined[i].name.clone())
                    .unwrap_or_else(|| "empty".into());
                PolicyInstance::Static(StaticPolicy::new(label))
            }
            PolicyKind::DemandDriven => PolicyInstance::Demand(DemandDriven::default()),
            PolicyKind::PaperSmoothed { shift } => {
                let mut s = SmoothedSteering::paper_default(shift);
                s.inner.loader = rsp_core::ConfigurationLoader::new(cfg.steering_set.clone());
                PolicyInstance::Smoothed(s)
            }
        }
    }

    fn tick(
        &mut self,
        demand: &TypeCounts,
        fabric: &mut Fabric,
        obs: &mut Telemetry,
    ) -> PolicyOutcome {
        match self {
            PolicyInstance::Paper(p) => p.tick_observed(demand, fabric, obs),
            PolicyInstance::Static(p) => p.tick_observed(demand, fabric, obs),
            PolicyInstance::Demand(p) => p.tick_observed(demand, fabric, obs),
            PolicyInstance::Smoothed(p) => p.tick_observed(demand, fabric, obs),
        }
    }

    fn name(&self) -> String {
        match self {
            PolicyInstance::Paper(p) => p.name(),
            PolicyInstance::Static(p) => p.name(),
            PolicyInstance::Demand(p) => p.name(),
            PolicyInstance::Smoothed(p) => p.name(),
        }
    }

    /// Loader counters, for paper-policy runs.
    pub fn loader_stats(&self) -> Option<&LoaderStats> {
        match self {
            PolicyInstance::Paper(p) => Some(p.loader.stats()),
            PolicyInstance::Smoothed(p) => Some(p.inner.loader.stats()),
            _ => None,
        }
    }

    fn policy_loads(&self) -> u64 {
        match self {
            PolicyInstance::Demand(p) => p.loads_started,
            _ => 0,
        }
    }
}

/// The simulator entry point: a validated configuration.
#[derive(Debug, Clone)]
pub struct Processor {
    cfg: SimConfig,
}

impl Processor {
    /// Build a processor; panics on an invalid configuration (use
    /// [`Processor::try_new`] to handle errors).
    pub fn new(cfg: SimConfig) -> Processor {
        Processor::try_new(cfg).expect("invalid simulator configuration")
    }

    /// Fallible constructor.
    pub fn try_new(cfg: SimConfig) -> Result<Processor, RunError> {
        cfg.validate().map_err(RunError::BadConfig)?;
        Ok(Processor { cfg })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Run `program` to completion (or until `max_cycles`); the program
    /// must pass [`Program::validate`].
    pub fn run(&mut self, program: &Program, max_cycles: u64) -> Result<SimReport, RunError> {
        let mut m = self.start(program)?;
        while m.cycle() < max_cycles && m.step() {}
        Ok(m.report())
    }

    /// Begin a run, returning the live machine for cycle-level driving
    /// and inspection.
    pub fn start(&self, program: &Program) -> Result<Machine, RunError> {
        program.validate().map_err(RunError::BadProgram)?;
        Ok(Machine::new(self.cfg.clone(), program))
    }
}

/// Reusable per-cycle working buffers: every stage of [`Machine::step`]
/// that needs a temporary list borrows one of these instead of
/// allocating, so the steady-state cycle loop performs zero heap
/// allocations (the throughput harness and a counting-allocator test
/// pin this).
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// `stage_complete`: executions due this cycle, oldest first.
    due: Vec<Seq>,
    /// `stage_issue`: requesting wake-up slots.
    requests: Vec<SlotIdx>,
    /// `stage_issue`: arbitrated grants.
    grants: Vec<Grant>,
    /// `stage_dispatch`: one instruction's dependency columns.
    deps: Vec<usize>,
    /// `flush_after`: squashed register-update-unit entries.
    squashed: Vec<RobEntry>,
    /// `stage_tick`: reconfigurations that completed this cycle.
    loads_done: Vec<PlacedUnit>,
}

/// Live state of one run.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: SimConfig,
    cycle: u64,
    halted: bool,
    fetch: FetchUnit,
    dispatch_buf: VecDeque<FetchedInstr>,
    wakeup: WakeupArray,
    rob: Rob,
    regfile: ArchState,
    mem: DataMemory,
    fabric: Fabric,
    policy: PolicyInstance,
    draining: Vec<(UnitId, u64)>,
    /// Select-free recovery, indexed by wake-up slot: first cycle the
    /// slot may request again (0 = no cooldown; real cooldowns are
    /// always ≥ 1 because the penalty is clamped to at least one cycle).
    collision_cooldown: Vec<u64>,
    scratch: Scratch,
    /// Telemetry bus: disabled by default ([`Telemetry::off`]), in which
    /// case every hook below degenerates to a branch on a bool.
    telemetry: Telemetry,
    /// Issue-stage stall-episode register: the cause attributed last
    /// cycle, so an `Event::Stall` fires only when the cause *changes*.
    issue_stall: Option<StallCause>,
    /// Dispatch-stage stall-episode register (same edge-triggering).
    dispatch_stall: Option<StallCause>,
    /// Steering choice seen last cycle (telemetry only; the loader keeps
    /// its own authoritative copy).
    last_choice: Option<ConfigChoice>,
    /// Cycle of the most recent selection *change*, open until the next
    /// RFU grant closes the decision-to-grant latency sample.
    pending_decision: Option<u64>,
    /// When `Some`, every steer stage appends a [`SteerRecord`] — the
    /// per-cycle (demand, busy-mask, choice) triple the bit-sliced lane
    /// kernel replays in its differential tests. Off by default.
    steer_log: Option<Vec<SteerRecord>>,
    // statistics
    retired: u64,
    collisions: u64,
    retired_mix: TypeCounts,
    issued_ffu: u64,
    issued_rfu: u64,
    flushes: u64,
    squashed: u64,
    stalls: crate::stats::StallStats,
}

impl Machine {
    pub(crate) fn new(cfg: SimConfig, program: &Program) -> Machine {
        let mut fabric = Fabric::new(cfg.fabric.clone());
        if let Some(i) = cfg.initial_config {
            fabric.load_instantly(&cfg.steering_set.predefined[i]);
        }
        let policy = PolicyInstance::build(&cfg);
        Machine {
            fetch: FetchUnit::new(program.to_words(), &cfg),
            dispatch_buf: VecDeque::new(),
            wakeup: WakeupArray::new(cfg.queue_size),
            rob: Rob::new(cfg.rob_size),
            regfile: ArchState::new(),
            mem: DataMemory::new(cfg.data_mem_words),
            fabric,
            policy,
            draining: Vec::new(),
            collision_cooldown: vec![0; cfg.queue_size],
            scratch: Scratch::default(),
            telemetry: Telemetry::off(),
            issue_stall: None,
            dispatch_stall: None,
            last_choice: None,
            pending_decision: None,
            steer_log: None,
            cfg,
            cycle: 0,
            halted: false,
            retired: 0,
            collisions: 0,
            retired_mix: TypeCounts::ZERO,
            issued_ffu: 0,
            issued_rfu: 0,
            flushes: 0,
            squashed: 0,
            stalls: crate::stats::StallStats::default(),
        }
    }

    /// Re-arm this machine for a fresh run of `program` under the same
    /// configuration, reusing the existing allocations (wake-up array,
    /// register update unit, data memory). Produces a machine
    /// behaviourally identical to a freshly constructed one — the batched
    /// driver ([`crate::batch`]) relies on this.
    pub fn reset(&mut self, program: &Program) {
        self.fetch = FetchUnit::new(program.to_words(), &self.cfg);
        self.dispatch_buf.clear();
        self.wakeup.reset();
        self.rob.reset();
        self.regfile = ArchState::new();
        self.mem.reset();
        self.fabric = Fabric::new(self.cfg.fabric.clone());
        if let Some(i) = self.cfg.initial_config {
            self.fabric
                .load_instantly(&self.cfg.steering_set.predefined[i]);
        }
        self.policy = PolicyInstance::build(&self.cfg);
        self.draining.clear();
        self.collision_cooldown.fill(0);
        self.telemetry.reset();
        self.issue_stall = None;
        self.dispatch_stall = None;
        self.last_choice = None;
        self.pending_decision = None;
        if let Some(log) = &mut self.steer_log {
            log.clear();
        }
        self.cycle = 0;
        self.halted = false;
        self.retired = 0;
        self.collisions = 0;
        self.retired_mix = TypeCounts::ZERO;
        self.issued_ffu = 0;
        self.issued_rfu = 0;
        self.flushes = 0;
        self.squashed = 0;
        self.stalls = crate::stats::StallStats::default();
    }

    /// The current cycle number.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True once the program has architecturally ended.
    #[inline]
    pub fn finished(&self) -> bool {
        self.halted
    }

    /// The wake-up array (for figure traces).
    pub fn wakeup(&self) -> &WakeupArray {
        &self.wakeup
    }

    /// The fabric (for figure traces).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The committed architectural register state.
    pub fn regfile(&self) -> &ArchState {
        &self.regfile
    }

    /// The data memory.
    pub fn mem(&self) -> &DataMemory {
        &self.mem
    }

    /// Mutable data memory access (for pre-loading inputs before the
    /// first step).
    pub fn mem_mut(&mut self) -> &mut DataMemory {
        &mut self.mem
    }

    /// The steering policy instance.
    pub fn policy(&self) -> &PolicyInstance {
        &self.policy
    }

    /// Install a telemetry bus ([`Telemetry::counting`] or
    /// [`Telemetry::ring`]); the default [`Telemetry::off`] keeps every
    /// hook free. Usually called right after [`Processor::start`], but
    /// swapping mid-run is allowed (counters then cover a suffix).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        self.telemetry.set_cycle(self.cycle);
    }

    /// The telemetry bus (metrics registry + optional event ring).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Start recording a [`SteerRecord`] per cycle — the stimulus the
    /// bit-sliced lane kernel ([`crate::lanes`]) replays to prove
    /// bit-identical steering. Cheap (one busy-mask fold and a push per
    /// cycle), but off by default.
    pub fn enable_steer_log(&mut self) {
        self.steer_log = Some(Vec::new());
    }

    /// Take the recorded steer log (empty if logging was never enabled);
    /// logging continues if it was on.
    pub fn take_steer_log(&mut self) -> Vec<SteerRecord> {
        match &mut self.steer_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Mutable telemetry access (e.g. to drain the event ring mid-run).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The demand signature the steering policy would observe right now
    /// (per the configured [`DemandMode`]).
    pub fn current_demand(&self) -> TypeCounts {
        match self.cfg.demand_mode {
            DemandMode::Ready => self.wakeup.demand_ready(),
            DemandMode::Unscheduled => self.wakeup.demand_unscheduled(),
        }
    }

    /// In-flight instruction count (dispatched, not yet retired).
    pub fn in_flight(&self) -> usize {
        self.rob.len()
    }

    /// Instructions retired so far (cheaper than [`Machine::report`] when
    /// only the count is needed, e.g. per-sample trace recording).
    #[inline]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Snapshot report (valid mid-run or at the end).
    pub fn report(&self) -> SimReport {
        let (trace_hits, trace_misses) = self.fetch.trace_stats();
        SimReport {
            cycles: self.cycle,
            retired: self.retired,
            halted: self.halted,
            retired_mix: self.retired_mix,
            issued_ffu: self.issued_ffu,
            issued_rfu: self.issued_rfu,
            flushes: self.flushes,
            squashed: self.squashed,
            trace_hits,
            trace_misses,
            stalls: self.stalls,
            collisions: self.collisions,
            fabric: self.fabric.stats(),
            faults: self.fabric.fault_stats(),
            loader: self.policy.loader_stats().cloned().unwrap_or_default(),
            policy: self.policy.name(),
            policy_loads: self.policy.policy_loads(),
            metrics: self.telemetry.snapshot(),
        }
    }

    /// Render a one-glance snapshot of the whole pipeline: front end,
    /// queue/ROB occupancy, per-entry states, and the fabric slot map —
    /// the debugging view behind the Fig. 6 trace. Marked cold: this is
    /// diagnostic output, never part of the hot loop.
    #[cold]
    #[inline(never)]
    pub fn render_pipeline(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cycle {:<8} fetch pc {}  buffered {}  retired {}",
            self.cycle,
            self.fetch.pc(),
            self.dispatch_buf.len(),
            self.retired
        );
        let _ = writeln!(
            s,
            "queue {}/{}  in-flight {}/{}",
            self.wakeup.len(),
            self.wakeup.capacity(),
            self.rob.len(),
            self.cfg.rob_size
        );
        for e in self.rob.iter() {
            let stage = match e.stage {
                Stage::Dispatched => "waiting".to_string(),
                Stage::Executing { unit, done_at } => {
                    format!("executing on {unit:?}, done@{done_at}")
                }
                Stage::Completed => "completed".to_string(),
            };
            let _ = writeln!(
                s,
                "  #{:<4} pc={:<5} slot={} {:<24} {}",
                e.seq,
                e.pc,
                e.wakeup_slot,
                e.instr.to_string(),
                stage
            );
        }
        let _ = writeln!(s, "fabric {}", self.fabric.slot_map());
        s
    }

    /// Check cross-structure invariants (used by stress tests; cheap
    /// enough to call every cycle in debug runs). Panics on violation.
    ///
    /// 1. Register-update-unit entries are in strictly increasing seq
    ///    order and within capacity.
    /// 2. Every entry's wake-up slot is occupied, tagged with its seq,
    ///    carries its unit type, and the scheduled bit mirrors the entry
    ///    stage.
    /// 3. Every occupied wake-up slot belongs to a live entry.
    /// 4. The set of busy functional units equals (executing entries'
    ///    units) ∪ (draining squashed units), with no double booking.
    /// 5. Completed entries with a destination have a pending value.
    ///
    /// [`Machine::step`] calls this every cycle only under the `validate`
    /// cargo feature (it allocates and rescans every structure); the
    /// stress and fuzz tests call it directly.
    #[cold]
    #[inline(never)]
    pub fn check_invariants(&self) {
        use std::collections::HashSet;
        // (1)
        assert!(self.rob.len() <= self.cfg.rob_size);
        let seqs: Vec<Seq> = self.rob.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "ROB order violated");

        // (2)
        let mut slots_of_entries = HashSet::new();
        for e in self.rob.iter() {
            let w = self
                .wakeup
                .get(e.wakeup_slot)
                .unwrap_or_else(|| panic!("seq {} lost its wake-up slot", e.seq));
            assert_eq!(w.tag, e.seq, "wake-up tag mismatch");
            assert_eq!(w.unit, e.instr.unit_type(), "wake-up unit column mismatch");
            assert_eq!(
                w.scheduled,
                e.stage != Stage::Dispatched,
                "scheduled bit out of sync for seq {}",
                e.seq
            );
            assert!(slots_of_entries.insert(e.wakeup_slot), "slot double-booked");
            // (5)
            if e.stage == Stage::Completed && e.instr.arch_dest().is_some() {
                assert!(e.value.is_some(), "completed seq {} missing value", e.seq);
            }
        }
        // (3)
        for (slot, _) in self.wakeup.entries() {
            assert!(
                slots_of_entries.contains(&slot),
                "orphan wake-up entry in slot {slot}"
            );
        }
        // (4)
        let mut expected_busy: HashSet<UnitId> = self
            .rob
            .iter()
            .filter_map(|e| match e.stage {
                Stage::Executing { unit, .. } => Some(unit),
                _ => None,
            })
            .collect();
        for &(unit, _) in &self.draining {
            assert!(
                expected_busy.insert(unit),
                "draining unit {unit:?} also executing"
            );
        }
        let actually_busy: HashSet<UnitId> = self
            .fabric
            .units()
            .into_iter()
            .filter(|u| u.busy)
            .map(|u| u.id)
            .collect();
        assert_eq!(actually_busy, expected_busy, "fabric busy-set mismatch");
    }

    /// Advance one cycle; returns `false` once the program has ended.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        // Heavyweight cross-structure validation, opt-in via the
        // `validate` feature (it rescans and allocates every cycle).
        #[cfg(feature = "validate")]
        self.check_invariants();
        self.telemetry.set_cycle(self.cycle);
        self.stage_retire();
        if !self.halted {
            self.stage_complete();
            self.stage_issue();
            self.stage_steer();
            self.stage_dispatch();
            self.stage_fetch();
        }
        self.stage_tick();
        self.cycle += 1;
        // Natural end: everything drained without an explicit halt.
        if !self.halted
            && self.rob.is_empty()
            && self.dispatch_buf.is_empty()
            && self.fetch.drained()
        {
            self.halted = true;
        }
        !self.halted
    }

    fn stage_retire(&mut self) {
        for _ in 0..self.cfg.retire_width {
            let Some(head) = self.rob.head() else { break };
            if head.stage != Stage::Completed {
                break;
            }
            let e = self.rob.retire_head();
            self.wakeup.clear(e.wakeup_slot);
            self.collision_cooldown[e.wakeup_slot] = 0;
            if let (Some(d), Some(v)) = (e.instr.dest, e.value) {
                self.regfile.write(d, v);
            }
            self.retired += 1;
            if self.retired_mix.get(e.instr.unit_type()) < u8::MAX {
                self.retired_mix.add(e.instr.unit_type(), 1);
            }
            // Train the branch predictor at retirement (non-speculative).
            if e.instr.opcode.is_conditional_branch() {
                let taken = e.resolved_next != Some(e.pc + 1);
                self.fetch.train(e.pc, taken);
            }
            self.regfile.pc = e.resolved_next.unwrap_or(u64::MAX);
            if e.resolved_next.is_none() {
                self.halted = true;
                break;
            }
        }
    }

    fn stage_complete(&mut self) {
        // Collect due completions oldest-first; re-check existence because
        // an older mispredict flushes younger due entries. The list lives
        // in a scratch buffer (taken out of `self` because `flush_after`
        // below needs the whole machine).
        let mut due = std::mem::take(&mut self.scratch.due);
        due.clear();
        due.extend(self.rob.iter().filter_map(|e| match e.stage {
            Stage::Executing { done_at, .. } if done_at <= self.cycle => Some(e.seq),
            _ => None,
        }));
        for &seq in &due {
            let Some(e) = self.rob.get_mut(seq) else {
                continue; // flushed by an older branch this same cycle
            };
            let Stage::Executing { unit, .. } = e.stage else {
                continue;
            };
            e.stage = Stage::Completed;
            let opcode = e.instr.opcode;
            let predicted = e.predicted_next;
            let resolved = e.resolved_next;
            self.fabric.clear_busy(unit);
            if opcode.is_control_flow() {
                // `jal` is followed at decode and always matches; `jalr`
                // stopped the front end, so it always needs a redirect;
                // conditional branches redirect only on mispredict.
                let mispredict = match opcode {
                    rsp_isa::Opcode::Jalr => true,
                    _ => resolved != Some(predicted),
                };
                if mispredict {
                    self.flush_after(seq, resolved.unwrap_or(u64::MAX));
                }
            }
        }
        self.scratch.due = due;
    }

    fn flush_after(&mut self, seq: Seq, redirect_to: u64) {
        let mut squashed = std::mem::take(&mut self.scratch.squashed);
        self.rob.flush_after_into(seq, &mut squashed);
        for e in &squashed {
            self.wakeup.clear(e.wakeup_slot);
            self.collision_cooldown[e.wakeup_slot] = 0;
            if let Stage::Executing { unit, done_at } = e.stage {
                let remaining = done_at.saturating_sub(self.cycle);
                if remaining == 0 {
                    self.fabric.clear_busy(unit);
                } else {
                    // Paper §3.2: a unit mid-execution stays busy (and
                    // non-reconfigurable) until its operation drains.
                    self.draining.push((unit, remaining));
                }
            }
        }
        self.squashed += squashed.len() as u64;
        self.flushes += 1;
        self.dispatch_buf.clear();
        self.fetch.redirect(redirect_to);
        self.scratch.squashed = squashed;
    }

    /// Edge-triggered stall-episode emission for the issue stage: an
    /// [`Event::Stall`] fires only when the attributed cause *changes*
    /// (`None` closes the episode silently).
    fn note_issue_stall(&mut self, cause: Option<StallCause>) {
        if !self.telemetry.enabled() || cause == self.issue_stall {
            return;
        }
        self.issue_stall = cause;
        if let Some(cause) = cause {
            self.telemetry.emit(Event::Stall { cause });
        }
    }

    /// Dispatch-stage counterpart of [`Machine::note_issue_stall`].
    fn note_dispatch_stall(&mut self, cause: Option<StallCause>) {
        if !self.telemetry.enabled() || cause == self.dispatch_stall {
            return;
        }
        self.dispatch_stall = cause;
        if let Some(cause) = cause {
            self.telemetry.emit(Event::Stall { cause });
        }
    }

    fn stage_issue(&mut self) {
        if self.wakeup.is_empty() {
            self.stalls.queue_empty += 1;
            self.note_issue_stall(Some(StallCause::QueueEmpty));
            return;
        }
        // Idle units per type and per-type configured-at-all counts come
        // from the fabric's incremental counters — no unit scan.
        let idle = self.fabric.idle_counts();
        let configured = self.fabric.configured_counts();
        let mut avail = [false; 5];
        for &t in &UnitType::ALL {
            avail[t.index()] = idle.get(t) > 0;
            debug_assert_eq!(avail[t.index()], self.fabric.available(t));
        }
        // Stat: a waiting entry whose unit type is not configured at all
        // (the wake-up array's incremental demand counters know the
        // per-type waiting population without a slot scan).
        let unscheduled = self.wakeup.demand_unscheduled();
        if UnitType::ALL
            .iter()
            .any(|&t| unscheduled.get(t) > 0 && configured.get(t) == 0)
        {
            self.stalls.unit_unconfigured += 1;
        }

        self.wakeup
            .requests_into(&avail, &mut self.scratch.requests);
        // How many entries would request with every resource available:
        // exactly the ready-demand total (incremental counter).
        let ready_any = self.wakeup.demand_ready().total() as usize;
        // Select-free mode: slots in collision recovery cannot request.
        if let SelectMode::SelectFree { .. } = self.cfg.select_mode {
            let now = self.cycle;
            let cd = &self.collision_cooldown;
            self.scratch.requests.retain(|&s| cd[s] <= now);
        }
        // The grant list is taken out of the scratch space for the issue
        // loop below, which borrows the machine broadly.
        let mut grants = std::mem::take(&mut self.scratch.grants);
        arbitrate_into(&self.wakeup, &self.scratch.requests, &idle, &mut grants);
        if ready_any > grants.len() {
            self.stalls.starved_requests += 1;
        }
        // Select-free mode: requesting entries that fired into a
        // contended unit type collide and pay the recovery penalty.
        if let SelectMode::SelectFree { penalty } = self.cfg.select_mode {
            let mut granted: u64 = 0;
            for g in &grants {
                granted |= 1 << g.slot;
            }
            for &s in &self.scratch.requests {
                if granted & (1 << s) == 0 {
                    // This entry asserted a request for a type whose idle
                    // units were oversubscribed this cycle: a collision.
                    self.collision_cooldown[s] = self.cycle + penalty.max(1) as u64;
                    self.collisions += 1;
                }
            }
        }
        for &g in &grants {
            let tag = self.wakeup.get(g.slot).expect("granted slot occupied").tag;
            let unit = self
                .fabric
                .idle_unit(g.unit)
                .expect("arbiter only grants within idle counts");
            self.fabric.set_busy(unit);
            match unit {
                UnitId::Ffu(_) => self.issued_ffu += 1,
                UnitId::Rfu { .. } => self.issued_rfu += 1,
            }
            // Read the entry's fields, resolve operands, execute.
            let (instr, pc, producers, dispatched_at) = {
                let e = self.rob.get(tag).expect("wake-up tag names a live entry");
                (e.instr, e.pc, e.src_producers, e.dispatched_at)
            };
            let s1 = instr
                .src1
                .map(|r| operand_value(&self.rob, &self.regfile, r, producers[0]));
            let s2 = instr
                .src2
                .map(|r| operand_value(&self.rob, &self.regfile, r, producers[1]));
            let issued = execute(&instr, pc, s1, s2, &mut self.mem);
            let latency = self.cfg.latencies.of(instr.opcode.latency_class());
            let e = self.rob.get_mut(tag).unwrap();
            e.value = issued.value;
            e.resolved_next = issued.resolved_next;
            e.stage = Stage::Executing {
                unit,
                done_at: self.cycle + latency as u64,
            };
            self.wakeup.grant(g.slot, latency);
            if self.telemetry.enabled() {
                self.telemetry
                    .record_cycles(Histo::QueueResidency, self.cycle - dispatched_at);
                if let (UnitId::Rfu { .. }, Some(decided)) = (unit, self.pending_decision) {
                    self.telemetry
                        .record_cycles(Histo::DecisionToGrant, self.cycle - decided);
                    self.pending_decision = None;
                }
            }
        }
        if self.telemetry.enabled() {
            // Attribute the stage's (lack of) progress after grants have
            // consumed their scheduled bits.
            let cause = rsp_sched::stall::classify_issue(
                self.wakeup.len(),
                ready_any,
                grants.len(),
                &self.wakeup.demand_unscheduled(),
                &configured,
            );
            self.note_issue_stall(cause);
        }
        self.scratch.grants = grants;
    }

    fn stage_steer(&mut self) {
        let demand = match self.cfg.demand_mode {
            DemandMode::Ready => self.wakeup.demand_ready(),
            DemandMode::Unscheduled => self.wakeup.demand_unscheduled(),
        };
        // Snapshot the busy mask *before* the policy runs: busy bits only
        // change in complete/issue (both precede steer) and in the fabric
        // tick (the last stage), so this one snapshot is what both the
        // loader's span-busy checks and the fault tick's idle-victim
        // check observed this cycle.
        let busy = if self.steer_log.is_some() {
            self.fabric.busy_mask()
        } else {
            0
        };
        let outcome = self
            .policy
            .tick(&demand, &mut self.fabric, &mut self.telemetry);
        if let Some(log) = &mut self.steer_log {
            log.push(SteerRecord {
                demand,
                busy,
                chosen: outcome.choice.map(|c| c.two_bit()),
                loads_started: outcome.loads_started as u8,
            });
        }
        if self.telemetry.enabled() {
            if let Some(c) = outcome.choice {
                if self.last_choice.is_some_and(|prev| prev != c) {
                    // A selection change opens a decision-to-grant latency
                    // window, closed by the next RFU issue.
                    self.pending_decision = Some(self.cycle);
                }
                self.last_choice = Some(c);
            }
        }
    }

    fn stage_dispatch(&mut self) {
        // Groups whose front-end latency elapsed become dispatchable now
        // (appended straight into the dispatch buffer; the fetch unit
        // recycles its group buffers).
        self.fetch.drain_into(self.cycle, &mut self.dispatch_buf);

        let mut queue_full = false;
        let mut rob_full = false;
        for _ in 0..self.cfg.dispatch_width {
            if self.dispatch_buf.is_empty() {
                break;
            }
            if self.wakeup.is_full() {
                self.stalls.queue_full += 1;
                queue_full = true;
                break;
            }
            if self.rob.is_full() {
                self.stalls.rob_full += 1;
                rob_full = true;
                break;
            }
            let f = self.dispatch_buf.pop_front().unwrap();
            // Dependency columns: register producers, plus the in-order
            // memory chain and branch chains (DESIGN.md §5 ordering
            // rules). Built in a scratch buffer reused across dispatches.
            let deps = &mut self.scratch.deps;
            deps.clear();
            let add_dep = |rob: &Rob, seq: Option<Seq>, deps: &mut Vec<usize>| {
                if let Some(e) = seq.and_then(|s| rob.get(s)) {
                    deps.push(e.wakeup_slot);
                }
            };
            for src in [f.instr.src1, f.instr.src2] {
                if let Some(r) = src.filter(|r| !r.is_hardwired_zero()) {
                    add_dep(&self.rob, self.rob.producer_of(r), deps);
                }
            }
            if f.instr.opcode.is_memory() {
                add_dep(&self.rob, self.rob.last_mem(), deps);
                add_dep(&self.rob, self.rob.last_branch(), deps);
            }
            if f.instr.opcode.is_control_flow() {
                // In-order branch resolution: lets the branch chain act as
                // a sound speculation guard for memory operations.
                add_dep(&self.rob, self.rob.last_branch(), deps);
            }
            deps.sort_unstable();
            deps.dedup();
            let tag = self.rob.next_seq();
            let slot = self
                .wakeup
                .insert(f.instr.unit_type(), &self.scratch.deps, tag)
                .expect("checked not full");
            let seq = self.rob.dispatch(&f, slot);
            debug_assert_eq!(seq, tag);
            if self.telemetry.enabled() {
                if let Some(e) = self.rob.get_mut(seq) {
                    e.dispatched_at = self.cycle;
                }
            }
        }
        self.note_dispatch_stall(rsp_sched::stall::classify_dispatch(queue_full, rob_full));
    }

    fn stage_fetch(&mut self) {
        // Backpressure: keep at most two groups' worth buffered.
        if self.dispatch_buf.len() < 2 * self.cfg.fetch_width {
            self.fetch.cycle(self.cycle);
        }
    }

    fn stage_tick(&mut self) {
        self.wakeup.tick();
        self.fabric.tick_into(&mut self.scratch.loads_done);
        if self.telemetry.enabled() {
            for pu in &self.scratch.loads_done {
                self.telemetry.emit(Event::LoadPlaced {
                    head: pu.head as u32,
                    unit: pu.unit,
                });
            }
            // Translate the fabric's per-tick fault events. `LoadPlaced`
            // is skipped: the fabric only pushes it when the fault model
            // is live, while `loads_done` above covers every run.
            for ev in self.fabric.fault_events() {
                match *ev {
                    FaultEvent::LoadFailed { head, unit } => {
                        self.telemetry.emit(Event::LoadFailed {
                            head: head as u32,
                            unit,
                        })
                    }
                    FaultEvent::UpsetInjected { head, unit } => {
                        self.telemetry.emit(Event::UpsetInjected {
                            head: head as u32,
                            unit,
                        })
                    }
                    FaultEvent::UpsetDetected { head, unit } => {
                        self.telemetry.emit(Event::UpsetDetected {
                            head: head as u32,
                            unit,
                        })
                    }
                    FaultEvent::ScrubPass { detected } => {
                        self.telemetry.emit(Event::ScrubPass { detected })
                    }
                    FaultEvent::LoadPlaced { .. } => {}
                }
            }
        }
        let mut i = 0;
        while i < self.draining.len() {
            self.draining[i].1 -= 1;
            if self.draining[i].1 == 0 {
                let (unit, _) = self.draining.swap_remove(i);
                self.fabric.clear_busy(unit);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_isa::asm::assemble;
    use rsp_isa::semantics::ReferenceInterpreter;

    fn run_text(src: &str) -> (SimReport, Machine) {
        let p = assemble("t", src).unwrap();
        let proc = Processor::new(SimConfig::default());
        let mut m = proc.start(&p).unwrap();
        while m.cycle() < 100_000 && m.step() {}
        (m.report(), m)
    }

    /// Differential check against the golden model.
    fn check_vs_reference(src: &str) -> SimReport {
        let p = assemble("t", src).unwrap();
        let cfg = SimConfig::default();
        let mut reference = ReferenceInterpreter::new(DataMemory::new(cfg.data_mem_words));
        reference.run(&p.instrs, 1_000_000);
        assert!(reference.halted(), "reference did not halt");

        let proc = Processor::new(cfg);
        let mut m = proc.start(&p).unwrap();
        while m.cycle() < 1_000_000 && m.step() {}
        let r = m.report();
        assert!(r.halted, "simulator did not halt");
        assert_eq!(r.retired, reference.retired, "retired count diverged");
        assert_eq!(
            m.regfile().iregs(),
            reference.state.iregs(),
            "int registers diverged"
        );
        assert_eq!(
            m.regfile().fregs(),
            reference.state.fregs(),
            "fp registers diverged"
        );
        assert_eq!(m.mem().cells(), reference.mem.cells(), "memory diverged");
        r
    }

    #[test]
    fn straight_line_arithmetic() {
        let r = check_vs_reference(
            "addi r1, r0, 6\naddi r2, r0, 7\nmul r3, r1, r2\nsub r4, r3, r1\nhalt",
        );
        assert_eq!(r.retired, 5);
        assert!(r.cycles > 0);
    }

    #[test]
    fn loop_with_branches() {
        check_vs_reference(
            "addi r1, r0, 10\nloop: add r2, r2, r1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt",
        );
    }

    #[test]
    fn memory_ordering_store_then_load() {
        check_vs_reference("addi r1, r0, 42\nsw r1, 5(r0)\nlw r2, 5(r0)\naddi r3, r2, 1\nhalt");
    }

    #[test]
    fn fp_pipeline() {
        check_vs_reference(
            "addi r1, r0, 9\nfcvt.i.f f1, r1\nfsqrt f2, f1\nfmul f3, f2, f2\nfcvt.f.i r2, f3\nhalt",
        );
    }

    #[test]
    fn taken_branch_flushes_wrong_path() {
        let (r, m) =
            run_text("addi r1, r0, 1\nbne r1, r0, 3\naddi r2, r0, 99\naddi r3, r0, 98\nhalt");
        assert!(r.flushes >= 1, "taken branch must flush");
        assert_eq!(
            m.regfile().iregs()[2],
            0,
            "wrong-path write must not commit"
        );
        assert_eq!(m.regfile().iregs()[3], 0);
        assert_eq!(r.retired, 3, "addi, bne, halt");
    }

    #[test]
    fn wrong_path_stores_never_reach_memory() {
        // bne jumps over a store; the store must not execute even
        // speculatively.
        let (_, m) = run_text("addi r1, r0, 1\nbne r1, r0, 3\nsw r1, 7(r0)\nnop\nhalt");
        assert_eq!(m.mem().load_int(7), 0, "speculative store leaked");
    }

    #[test]
    fn jal_and_jalr_flow() {
        check_vs_reference("jal r31, 3\naddi r9, r0, 1\nhalt\naddi r5, r0, 7\njalr r0, r31, 0");
    }

    #[test]
    fn fall_off_end_via_out_of_range_jalr() {
        // jalr to an index past the program end: the front end drains and
        // the machine halts after retiring everything — matching the
        // reference interpreter's fall-off-the-end rule.
        let (r, _) = run_text("addi r1, r0, 100\njalr r0, r1, 0");
        assert!(r.halted);
        assert_eq!(r.retired, 2);
    }

    #[test]
    fn out_of_order_issue_overlaps_latencies() {
        // A long divide followed by independent adds: the adds must
        // retire without waiting ~12 cycles each.
        let (r, _) = run_text(
            "addi r1, r0, 100\naddi r2, r0, 7\ndiv r3, r1, r2\n\
             addi r4, r0, 1\naddi r5, r0, 2\naddi r6, r0, 3\nhalt",
        );
        // In-order would take > 12 cycles for the divide alone; the
        // machine must overlap: total well under divide latency + 5.
        assert!(r.retired == 7);
        assert!(r.cycles < 30, "no overlap? took {} cycles", r.cycles);
    }

    #[test]
    fn deterministic_across_runs() {
        let src = "addi r1, r0, 50\nloop: mul r2, r1, r1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt";
        let (a, _) = run_text(src);
        let (b, _) = run_text(src);
        assert_eq!(a, b);
    }

    #[test]
    fn faults_degrade_timing_but_never_correctness() {
        use rsp_fabric::fault::{FaultParams, PPM};
        let src = "addi r1, r0, 40\nloop: mul r2, r1, r1\nfcvt.i.f f1, r2\nfmul f2, f1, f1\n\
                   addi r1, r1, -1\nbne r1, r0, loop\nhalt";
        let p = assemble("t", src).unwrap();
        let mut reference = ReferenceInterpreter::new(DataMemory::new(4096));
        reference.run(&p.instrs, 1_000_000);

        let run = |faults: FaultParams| {
            let mut cfg = SimConfig::default();
            cfg.fabric.faults = faults;
            let proc = Processor::new(cfg);
            let mut m = proc.start(&p).unwrap();
            while m.cycle() < 1_000_000 && m.step() {}
            let r = m.report();
            assert!(r.halted, "faulty run must still halt");
            assert_eq!(r.retired, reference.retired, "retired diverged");
            assert_eq!(m.regfile().iregs(), reference.state.iregs());
            assert_eq!(m.regfile().fregs(), reference.state.fregs());
            r
        };
        let clean = run(FaultParams::default());
        // Brutal fault environment: every load fails half the time, an
        // upset strikes every 20 cycles on average, slot 3 is dead.
        let faulty = run(FaultParams {
            seed: 9,
            load_failure_ppm: PPM / 2,
            upset_ppm: PPM / 20,
            scrub_interval: 64,
            dead_slots: vec![3],
        });
        assert!(faulty.faults.upsets_injected > 0, "{:?}", faulty.faults);
        assert!(faulty.faults.scrubs > 0);
        assert!(
            faulty.cycles >= clean.cycles,
            "faults can only slow the machine: {} < {}",
            faulty.cycles,
            clean.cycles
        );
        assert_eq!(clean.faults, Default::default());
        let l = &faulty.loader;
        assert!(
            l.load_failures > 0 || l.skipped_dead > 0,
            "loader must see fault events: {l:?}"
        );
    }

    #[test]
    fn report_policy_fields() {
        let (r, _) = run_text("nop\nhalt");
        assert_eq!(r.policy, "paper-steering");
        assert!(
            !r.loader.selections.is_empty(),
            "paper policy must report per-config selection counts"
        );
        let p = assemble("t", "nop\nhalt").unwrap();
        let mut proc = Processor::new(SimConfig::static_on(1));
        let r = proc.run(&p, 1000).unwrap();
        assert_eq!(r.policy, "static:Config 2");
        assert_eq!(
            r.loader,
            LoaderStats::default(),
            "policies without a loader report all-default counters"
        );
        assert_eq!(r.fabric.loads_started, 0);
    }

    #[test]
    fn cycle_budget_stops_infinite_loop() {
        let p = assemble("t", "loop: jal r0, loop\nhalt").unwrap();
        let mut proc = Processor::new(SimConfig::default());
        let r = proc.run(&p, 500).unwrap();
        assert!(!r.halted);
        assert_eq!(r.cycles, 500);
    }

    #[test]
    fn bimodal_predictor_removes_loop_flushes() {
        // A counted loop whose back edge is taken 39 times: under
        // not-taken prediction every taken edge flushes; bimodal learns
        // it after two iterations.
        let src = "addi r1, r0, 40\nloop: add r2, r2, r1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt";
        let p = assemble("t", src).unwrap();
        let not_taken = Processor::new(SimConfig::default())
            .run(&p, 100_000)
            .unwrap();
        let cfg = SimConfig {
            branch_prediction: crate::config::BranchPrediction::Bimodal { entries: 128 },
            ..SimConfig::default()
        };
        let mut proc = Processor::new(cfg);
        let bimodal = proc.run(&p, 100_000).unwrap();
        assert_eq!(bimodal.retired, not_taken.retired);
        assert!(
            bimodal.flushes < not_taken.flushes / 4,
            "bimodal {} vs not-taken {} flushes",
            bimodal.flushes,
            not_taken.flushes
        );
        assert!(
            bimodal.ipc() > not_taken.ipc(),
            "bimodal {:.3} vs not-taken {:.3}",
            bimodal.ipc(),
            not_taken.ipc()
        );
    }

    #[test]
    fn pipeline_renderer_shows_live_state() {
        let p = assemble("t", "addi r1, r0, 3\ndiv r2, r1, r1\nmul r3, r2, r2\nhalt").unwrap();
        let proc = Processor::new(SimConfig::default());
        let mut m = proc.start(&p).unwrap();
        let mut saw_executing = false;
        while m.cycle() < 200 && m.step() {
            let snap = m.render_pipeline();
            assert!(snap.contains("queue"), "{snap}");
            if snap.contains("executing on") {
                saw_executing = true;
                assert!(snap.contains("done@"), "{snap}");
            }
        }
        assert!(saw_executing, "renderer never showed an executing entry");
    }

    #[test]
    fn select_free_collisions_cost_cycles_but_preserve_results() {
        // Four independent ALU ops on a machine with exactly one ALU:
        // in select-free mode the three losers collide and replay.
        let src = "addi r1, r0, 1\naddi r2, r0, 2\naddi r3, r0, 3\naddi r4, r0, 4\nhalt";
        let p = assemble("t", src).unwrap();
        let mut base = SimConfig {
            policy: PolicyKind::Static,
            initial_config: None,
            ..SimConfig::default()
        };
        base.fabric.ffus = vec![UnitType::IntAlu];

        let arb = Processor::new(base.clone()).run(&p, 10_000).unwrap();
        let mut sf_cfg = base.clone();
        sf_cfg.select_mode = crate::config::SelectMode::SelectFree { penalty: 2 };
        let proc = Processor::new(sf_cfg);
        let mut m = proc.start(&p).unwrap();
        while m.cycle() < 10_000 && m.step() {}
        let sf = m.report();

        assert_eq!(arb.collisions, 0);
        assert!(sf.collisions > 0, "oversubscription must collide");
        assert!(sf.cycles >= arb.cycles, "collisions cannot speed things up");
        assert_eq!(sf.retired, arb.retired);
        assert_eq!(m.regfile().iregs()[1..=4], [1, 2, 3, 4]);
    }

    #[test]
    fn bad_program_rejected() {
        let p = Program::new("bad", vec![]);
        let proc = Processor::new(SimConfig::default());
        assert!(matches!(proc.start(&p), Err(RunError::BadProgram(_))));
    }
}

//! Issue-time execution: operand forwarding and result computation.
//!
//! When the scheduler grants an entry, its operands are — by wake-up
//! construction — available: each producer has either completed (its
//! pending value sits in its register-update-unit entry) or retired (its
//! value is in the committed register file). [`operand_value`] implements
//! that forwarding; [`execute`] computes the result using the same
//! semantics module (`rsp_isa::semantics`) as the golden-model
//! interpreter, so the pipeline cannot diverge from the reference on
//! instruction behaviour, only on timing.

use crate::rob::{Rob, Seq};
use rsp_isa::mem::DataMemory;
use rsp_isa::regs::AnyReg;
use rsp_isa::semantics::{effective_addr, exec_compute, ArchState, Value};
use rsp_isa::{Instruction, Opcode};

/// Read one operand: forwarded from an in-flight producer if the
/// dependency-buffer snapshot names one that is still in the unit,
/// otherwise from the committed register file.
pub fn operand_value(rob: &Rob, regfile: &ArchState, reg: AnyReg, producer: Option<Seq>) -> Value {
    if let Some(seq) = producer {
        if let Some(e) = rob.get(seq) {
            return e
                .value
                .expect("wake-up logic granted a consumer before its producer's result");
        }
    }
    regfile.read(reg)
}

/// Result of executing one instruction at issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Issued {
    /// Pending destination value (written back at retirement).
    pub value: Option<Value>,
    /// Actual next PC (`None` = control flow left the program, i.e.
    /// architectural halt).
    pub resolved_next: Option<u64>,
    /// True iff this is the `halt` instruction.
    pub halt: bool,
}

/// Execute `instr` (any opcode) with already-resolved operand values.
/// Memory operations access `mem` here — they are only issued in program
/// order and non-speculatively, so the access is architecturally final.
pub fn execute(
    instr: &Instruction,
    pc: u64,
    src1: Option<Value>,
    src2: Option<Value>,
    mem: &mut DataMemory,
) -> Issued {
    if instr.opcode.is_memory() {
        let addr = effective_addr(src1.expect("memory op needs a base"), instr.imm);
        let value = match instr.opcode {
            Opcode::Lw => Some(Value::Int(mem.load_int(addr))),
            Opcode::Flw => Some(Value::Fp(mem.load_fp(addr))),
            Opcode::Sw => {
                mem.store_int(addr, src2.expect("store needs data").as_int());
                None
            }
            Opcode::Fsw => {
                mem.store_fp(addr, src2.expect("store needs data").as_fp());
                None
            }
            _ => unreachable!(),
        };
        return Issued {
            value,
            resolved_next: Some(pc + 1),
            halt: false,
        };
    }

    let r = exec_compute(instr.opcode, src1, src2, instr.imm, pc);
    let resolved_next = if r.halt {
        None
    } else {
        match r.branch {
            Some(b) if b.taken => {
                if b.target < 0 {
                    None // jump out of the program: architectural halt
                } else {
                    Some(b.target as u64)
                }
            }
            _ => Some(pc + 1),
        }
    };
    Issued {
        value: r.write,
        resolved_next,
        halt: r.halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rob::{fetched, Stage};
    use rsp_isa::regs::IReg;

    fn r(n: u8) -> IReg {
        IReg::new(n)
    }

    #[test]
    fn forwarding_prefers_in_flight_producer() {
        let mut rob = Rob::new(4);
        let a = rob.dispatch(
            &fetched(0, Instruction::rri(Opcode::Addi, r(1), r(0), 5)),
            0,
        );
        rob.get_mut(a).unwrap().value = Some(Value::Int(5));
        rob.get_mut(a).unwrap().stage = Stage::Completed;
        let mut regfile = ArchState::new();
        regfile.write(AnyReg::Int(r(1)), Value::Int(99)); // stale committed value
        let v = operand_value(&rob, &regfile, AnyReg::Int(r(1)), Some(a));
        assert_eq!(v.as_int(), 5, "must forward, not read stale regfile");
        // After retirement the committed file is authoritative.
        rob.retire_head();
        regfile.write(AnyReg::Int(r(1)), Value::Int(5));
        let v = operand_value(&rob, &regfile, AnyReg::Int(r(1)), Some(a));
        assert_eq!(v.as_int(), 5);
    }

    #[test]
    fn execute_straight_line() {
        let mut mem = DataMemory::new(8);
        let i = Instruction::rrr(Opcode::Add, r(1), r(2), r(3));
        let out = execute(&i, 7, Some(Value::Int(2)), Some(Value::Int(3)), &mut mem);
        assert_eq!(out.value, Some(Value::Int(5)));
        assert_eq!(out.resolved_next, Some(8));
        assert!(!out.halt);
    }

    #[test]
    fn execute_memory_ops() {
        let mut mem = DataMemory::new(8);
        let sw = Instruction::sw(r(2), r(1), 1);
        let out = execute(&sw, 0, Some(Value::Int(3)), Some(Value::Int(42)), &mut mem);
        assert_eq!(out.value, None);
        assert_eq!(mem.load_int(4), 42);
        let lw = Instruction::lw(r(5), r(1), 1);
        let out = execute(&lw, 1, Some(Value::Int(3)), None, &mut mem);
        assert_eq!(out.value, Some(Value::Int(42)));
    }

    #[test]
    fn branch_resolution() {
        let mut mem = DataMemory::new(8);
        let b = Instruction::branch(Opcode::Beq, r(1), r(2), 5);
        let taken = execute(&b, 10, Some(Value::Int(1)), Some(Value::Int(1)), &mut mem);
        assert_eq!(taken.resolved_next, Some(15));
        let not = execute(&b, 10, Some(Value::Int(1)), Some(Value::Int(2)), &mut mem);
        assert_eq!(not.resolved_next, Some(11));
    }

    #[test]
    fn halt_and_negative_target() {
        let mut mem = DataMemory::new(8);
        let out = execute(&Instruction::HALT, 3, None, None, &mut mem);
        assert!(out.halt);
        assert_eq!(out.resolved_next, None);
        let j = Instruction::jalr(r(0), r(1), 0);
        let out = execute(&j, 3, Some(Value::Int(-9)), None, &mut mem);
        assert_eq!(out.resolved_next, None, "negative target halts");
        let out = execute(&j, 3, Some(Value::Int(1)), None, &mut mem);
        assert_eq!(out.resolved_next, Some(1));
    }
}

//! Bit-plane arithmetic primitives for the lane kernel.
//!
//! A *plane group* `[u64; N]` holds one N-bit quantity for each of 64
//! lanes, transposed: bit `b` of lane `l`'s value lives in bit `l` of
//! plane `b`. Every function here is a pure combinational circuit over
//! such groups — ripple-carry adders, borrow-chain comparators, and
//! mask-select muxes — evaluating all 64 lanes per word operation.
//!
//! The const parameter `N` is the bit width; widths in the kernel are
//! small (2..=12), so the compiler fully unrolls every loop.

/// All-lanes mask constant.
pub const ALL: u64 = u64::MAX;

/// Plane group of the constant `c`: plane `b` is all-ones iff bit `b`
/// of `c` is set (every lane holds `c`).
#[inline]
pub fn splat<const N: usize>(c: u8) -> [u64; N] {
    let c = c as u64; // widths may exceed 8 bits (zero-filled above c)
    let mut out = [0u64; N];
    for (b, plane) in out.iter_mut().enumerate() {
        *plane = if (c >> b) & 1 != 0 { ALL } else { 0 };
    }
    out
}

/// Lanes where `a == b` (1 = equal).
#[inline]
pub fn eq<const N: usize>(a: &[u64; N], b: &[u64; N]) -> u64 {
    let mut m = ALL;
    for i in 0..N {
        m &= !(a[i] ^ b[i]);
    }
    m
}

/// Lanes where `a == c` for a constant `c`.
#[inline]
pub fn eq_const<const N: usize>(a: &[u64; N], c: u8) -> u64 {
    let c = c as u64;
    let mut m = ALL;
    for (b, plane) in a.iter().enumerate() {
        m &= if (c >> b) & 1 != 0 { *plane } else { !*plane };
    }
    m
}

/// Lanes where `a < b` (unsigned): the borrow out of `a - b`.
#[inline]
pub fn lt<const N: usize>(a: &[u64; N], b: &[u64; N]) -> u64 {
    let mut borrow = 0u64;
    for i in 0..N {
        // Borrow out of bit i of a - b - borrow_in.
        borrow = (!a[i] & (b[i] | borrow)) | (b[i] & borrow);
    }
    borrow
}

/// Lanes where `a` is zero.
#[inline]
pub fn is_zero<const N: usize>(a: &[u64; N]) -> u64 {
    let mut any = 0u64;
    for plane in a {
        any |= plane;
    }
    !any
}

/// Per-lane select: `m ? a : b`.
#[inline]
pub fn mux<const N: usize>(m: u64, a: &[u64; N], b: &[u64; N]) -> [u64; N] {
    let mut out = [0u64; N];
    for i in 0..N {
        out[i] = (a[i] & m) | (b[i] & !m);
    }
    out
}

/// Per-lane select against a constant: `m ? c : b`.
#[inline]
pub fn mux_const<const N: usize>(m: u64, c: u8, b: &[u64; N]) -> [u64; N] {
    let c = c as u64;
    let mut out = [0u64; N];
    for (i, plane) in out.iter_mut().enumerate() {
        let cb = if (c >> i) & 1 != 0 { m } else { 0 };
        *plane = cb | (b[i] & !m);
    }
    out
}

/// Ripple-carry add: `a + b` mod `2^N`, returning the carry-out mask.
#[inline]
pub fn add<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut carry = 0u64;
    for i in 0..N {
        out[i] = a[i] ^ b[i] ^ carry;
        carry = (a[i] & b[i]) | (carry & (a[i] ^ b[i]));
    }
    (out, carry)
}

/// Borrow-chain subtract: `a - b` mod `2^N` (two's complement),
/// returning the borrow-out mask (lanes where `a < b`).
#[inline]
pub fn sub<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut borrow = 0u64;
    for i in 0..N {
        out[i] = a[i] ^ b[i] ^ borrow;
        borrow = (!a[i] & (b[i] | borrow)) | (b[i] & borrow);
    }
    (out, borrow)
}

/// Increment the lanes selected by `m` in place; returns the carry-out
/// mask (lanes that wrapped from the maximum value to zero).
#[inline]
pub fn inc_masked<const N: usize>(a: &mut [u64; N], m: u64) -> u64 {
    let mut carry = m;
    for plane in a.iter_mut() {
        let s = *plane ^ carry;
        carry &= *plane;
        *plane = s;
    }
    carry
}

/// Decrement the lanes selected by `m` in place; returns the borrow-out
/// mask (lanes that wrapped from zero to the maximum value).
#[inline]
pub fn dec_masked<const N: usize>(a: &mut [u64; N], m: u64) -> u64 {
    let mut borrow = m;
    for plane in a.iter_mut() {
        let s = *plane ^ borrow;
        borrow &= !*plane;
        *plane = s;
    }
    borrow
}

/// Add the constant `c` to every lane (mod `2^N`); returns carry-out.
#[inline]
pub fn add_const<const N: usize>(a: &mut [u64; N], c: u8) -> u64 {
    let (out, carry) = add(a, &splat::<N>(c));
    *a = out;
    carry
}

/// Zero-extend an `A`-bit group into a `B`-bit group (`B >= A`).
#[inline]
pub fn widen<const A: usize, const B: usize>(a: &[u64; A]) -> [u64; B] {
    debug_assert!(B >= A);
    let mut out = [0u64; B];
    out[..A].copy_from_slice(a);
    out
}

/// Read lane `l`'s value out of a plane group (the inverse transpose,
/// used by the per-lane extraction and test APIs, not the hot kernel).
#[inline]
pub fn extract<const N: usize>(a: &[u64; N], lane_bit: u32) -> u8 {
    let mut v = 0u8;
    for (b, plane) in a.iter().enumerate() {
        v |= (((plane >> lane_bit) & 1) as u8) << b;
    }
    v
}

/// Write `v` into lane `l` of a plane group (stimulus/state builders).
#[inline]
pub fn insert<const N: usize>(a: &mut [u64; N], lane_bit: u32, v: u8) {
    let v = v as u64;
    for (b, plane) in a.iter_mut().enumerate() {
        let bit = 1u64 << lane_bit;
        if (v >> b) & 1 != 0 {
            *plane |= bit;
        } else {
            *plane &= !bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Pack 64 scalar values into a plane group.
    fn pack<const N: usize>(vals: &[u8; 64]) -> [u64; N] {
        let mut g = [0u64; N];
        for (l, &v) in vals.iter().enumerate() {
            insert(&mut g, l as u32, v & ((1u16 << N) - 1) as u8);
        }
        g
    }

    fn unpack<const N: usize>(g: &[u64; N]) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (l, o) in out.iter_mut().enumerate() {
            *o = extract(g, l as u32);
        }
        out
    }

    proptest! {
        #[test]
        fn arithmetic_matches_scalar(
            a in proptest::collection::vec(0u8..32, 64),
            b in proptest::collection::vec(0u8..32, 64),
            m in any::<u64>(),
        ) {
            const N: usize = 5;
            let mask = (1u8 << N) - 1;
            let a: [u8; 64] = a.try_into().unwrap();
            let b: [u8; 64] = b.try_into().unwrap();
            let (ga, gb) = (pack::<N>(&a), pack::<N>(&b));

            let (sum, carry) = add(&ga, &gb);
            let (diff, borrow) = sub(&ga, &gb);
            let eqm = eq(&ga, &gb);
            let ltm = lt(&ga, &gb);
            let zm = is_zero(&ga);
            let muxed = mux(m, &ga, &gb);
            let mut inc = ga;
            let inc_carry = inc_masked(&mut inc, m);
            let mut dec = ga;
            let dec_borrow = dec_masked(&mut dec, m);

            for l in 0..64usize {
                let bit = |x: u64| (x >> l) & 1 != 0;
                prop_assert_eq!(extract(&sum, l as u32), a[l].wrapping_add(b[l]) & mask);
                prop_assert_eq!(bit(carry), (a[l] as u16 + b[l] as u16) > mask as u16);
                prop_assert_eq!(extract(&diff, l as u32), a[l].wrapping_sub(b[l]) & mask);
                prop_assert_eq!(bit(borrow), a[l] < b[l]);
                prop_assert_eq!(bit(eqm), a[l] == b[l]);
                prop_assert_eq!(bit(ltm), a[l] < b[l]);
                prop_assert_eq!(bit(zm), a[l] == 0);
                prop_assert_eq!(
                    extract(&muxed, l as u32),
                    if bit(m) { a[l] } else { b[l] }
                );
                let want_inc = if bit(m) { a[l].wrapping_add(1) & mask } else { a[l] };
                prop_assert_eq!(extract(&inc, l as u32), want_inc);
                prop_assert_eq!(bit(inc_carry), bit(m) && a[l] == mask);
                let want_dec = if bit(m) { a[l].wrapping_sub(1) & mask } else { a[l] };
                prop_assert_eq!(extract(&dec, l as u32), want_dec);
                prop_assert_eq!(bit(dec_borrow), bit(m) && a[l] == 0);
            }
        }

        #[test]
        fn const_forms_match_general(v in 0u8..32, m in any::<u64>()) {
            const N: usize = 5;
            let g = splat::<N>(v);
            prop_assert_eq!(unpack(&g), [v; 64]);
            prop_assert_eq!(eq_const(&g, v), ALL);
            if v > 0 {
                prop_assert_eq!(eq_const(&g, v - 1), 0);
            }
            let zero = [0u64; N];
            prop_assert_eq!(mux_const(m, v, &zero), mux(m, &g, &zero));
            let mut a = splat::<N>(7);
            let carry = add_const(&mut a, v);
            prop_assert_eq!(extract(&a, 0), 7u8.wrapping_add(v) & 0x1F);
            prop_assert_eq!(carry != 0, 7u16 + v as u16 > 31);
        }
    }

    #[test]
    fn widen_zero_extends() {
        let a = splat::<3>(0b101);
        let w: [u64; 6] = widen(&a);
        assert_eq!(extract(&w, 17), 0b101);
        assert_eq!(w[3] | w[4] | w[5], 0);
    }
}

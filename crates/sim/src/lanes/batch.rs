//! The bit-sliced lane batch: N machines' steering loops in lockstep.
//!
//! [`LaneBatch`] holds the *steering-visible* state of N independent
//! machines (N a multiple of 64) as transposed bit planes: every
//! boolean column of machine state — one bit of a slot encoding, one
//! bit of a load countdown — is packed across lanes into `N / 64`
//! `u64` words. [`LaneBatch::step`] then evaluates one full cycle of
//! the paper's four-stage selection unit *and* the configuration
//! loader and fault tick for 64 lanes per word, entirely in registers:
//!
//! 1. **Unit decode** — each queue entry's valid bit + 3-bit type code
//!    becomes five per-type demand bit-planes.
//! 2. **Requirement counters** — carry-save ripple adders accumulate
//!    the 3-bit saturating per-type requirement words (the demand is
//!    bounded by the ≤ 7-entry queue, so the counters cannot wrap).
//! 3. **Barrel-shift CEM** — candidate availability shifts become
//!    plane reindexing: constant shifts for the predefined candidates,
//!    a 3-way mux on the current configuration's live counts.
//! 4. **Minimal-error selection** — a borrow-chain comparator tree
//!    emits the two-bit [`ConfigChoice`] code for all 64 lanes of a
//!    word at once, honouring the tie rule (current config favoured).
//!
//! The loader (partial-reconfiguration skip rule, span-busy and port
//! checks, overlap destruction, load countdowns) and the fault tick
//! (keyed upset strikes, scrub passes) run in the same pass, so a
//! lane's `ConfigChoice`/CEM/steering trace is bit-identical to the
//! scalar [`crate::Machine`] driven by the same per-cycle demand and
//! busy stimulus — `tests/lanes_differential.rs` proves this per
//! cycle, per lane, against recorded scalar runs.
//!
//! What stays scalar: the per-lane fault *schedule* (one keyed hash
//! draw per lane per cycle, only when `upset_ppm > 0`) and the rare
//! scrub pass. Everything per-cycle on the steering path is planes.
//!
//! [`ConfigChoice`]: rsp_core::select::ConfigChoice

use super::plane;
use super::stimulus::LaneStimulus;
use crate::config::{PolicyKind, SimConfig};
use rsp_core::cem::CemKind;
use rsp_core::select::TieBreak;
use rsp_fabric::fault::{keyed_chance_ppm, keyed_draw, stream};
use rsp_isa::units::{TypeCounts, UnitType};

/// Hard cap on RFU slots the lane kernel supports (fixed-size local
/// plane arrays in the hot loop; the paper's fabric has 8).
pub const MAX_LANE_SLOTS: usize = 12;

/// Hard cap on distinct load sites across all candidates (4-bit site
/// ids; the paper's three candidates have 5 + 4 + 4 = 13).
pub const MAX_LANE_SITES: usize = 16;

/// Predefined candidates the two-bit choice encoding can address.
pub const MAX_LANE_CANDIDATES: usize = 3;

/// Number of unit types (canonical [`UnitType::ALL`] order throughout).
const NTYPES: usize = 5;

/// Slot-encoding constants mirrored from `rsp_isa::units::SlotEncoding`.
const ENC_EMPTY: u8 = 0b000;
const ENC_CONT: u8 = 0b111;

// Plane-group widths. Counts are 4-bit (≤ MAX_LANE_SLOTS + FFUs ≤ 15),
// raw CEM errors 6-bit (≤ 5 types × 7), placement costs 5-bit
// (≤ MAX_LANE_SLOTS differing slots), load countdowns 8-bit
// (validated ≤ 255 at construction), the degraded-streak counter 8-bit
// (only `== 0` and `≥ 32` are ever observed, so saturating at 255 is
// equivalent to the scalar u32), and EWMA accumulators 12-bit
// (8 fraction bits + 3 value bits + headroom; the filter provably
// stays in [0, 7 << 8]).
const CNT_BITS: usize = 4;
const ERR_BITS: usize = 6;
const COST_BITS: usize = 5;
const REM_BITS: usize = 8;
const SITE_BITS: usize = 4;
const STREAK_BITS: usize = 8;
const ACC_BITS: usize = 12;
/// Fraction bits of the EWMA demand filter (`DemandFilter::FRAC_BITS`).
const FRAC_BITS: usize = 8;
/// Capacity-hysteresis threshold of the fault-aware view
/// (`rsp_core::policy::DEFAULT_CAPACITY_HYSTERESIS`): streaks are
/// compared against 32, which in planes is "any of bits 5..=7 set".
const HYSTERESIS: u32 = 32;
// The streak comparator below hard-wires bits 5..=7; keep it honest.
const _: () = assert!(HYSTERESIS == 32);

/// Steering-policy parameters the kernel branches on (resolved once
/// from [`PolicyKind`]; every branch is lane-uniform).
#[derive(Debug, Clone, Copy)]
struct PolicyParams {
    /// False for `PolicyKind::Static`: skip selection + loader.
    has_selection: bool,
    tie: TieBreak,
    partial: bool,
    fault_aware: bool,
    /// EWMA shift (0 = unfiltered), clamped to 7 like `DemandFilter`.
    smooth_shift: u32,
}

/// One loadable unit span of a predefined configuration.
#[derive(Debug, Clone)]
struct LaneSite {
    head: usize,
    cost: usize,
    /// Head slot encoding of the unit type.
    enc: u8,
    /// Load countdown pushed when the load begins (`cost × latency`).
    rem_init: u8,
    /// Every distinct `(head, encoding, cost)` unit — across the
    /// initial configuration and all candidates — whose span overlaps
    /// this site and must be destroyed when the load begins.
    overlaps: Vec<(usize, u8, usize)>,
}

/// One predefined steering candidate, pre-lowered for the kernel.
#[derive(Debug, Clone)]
struct LaneCandidate {
    /// Site ids in placement (slot-ascending) order — the loader's
    /// `placement.units()` iteration order.
    sites: Vec<usize>,
    /// CEM availability shift per type, from `total_counts` (RFU +
    /// steering-set FFUs, 3-bit clamped): 0, 1, or 2.
    shifts: [u8; NTYPES],
    /// Full slot-encoding vector of the placement (for `diff_count`).
    slot_enc: Vec<u8>,
}

/// Validated, pre-lowered steering parameters shared by all lanes.
///
/// [`LaneParams::from_config`] is the single gate deciding whether a
/// [`SimConfig`] is lane-steppable; everything the per-word kernel
/// consults is precomputed here.
#[derive(Debug, Clone)]
pub struct LaneParams {
    n_slots: usize,
    queue_len: usize,
    policy: PolicyParams,
    candidates: Vec<LaneCandidate>,
    sites: Vec<LaneSite>,
    /// Per-type *fabric* FFU counts (`FabricParams::ffus`) — added to
    /// the live RFU counts to form the current configuration's
    /// availability, exactly like `Fabric::configured_counts`.
    ffu: [u8; NTYPES],
    /// Initial slot encodings (`initial_config` placement or empty).
    init_enc: Vec<u8>,
    upset_ppm: u32,
    scrub_interval: u64,
    default_seed: u64,
}

impl LaneParams {
    /// Lower a [`SimConfig`] into lane-kernel parameters, or explain
    /// why the configuration is outside the bit-sliced subset.
    ///
    /// Rejected (with the scalar [`crate::Machine`] as the fallback):
    /// `DemandDriven` (floating-point greedy search, not a circuit),
    /// the `ExactDivider` CEM ablation (a real divider), fabrics with
    /// more than one reconfiguration port, queue sizes beyond the
    /// 3-bit encoder width, and fault models with load failures or
    /// dead slots (boot-static re-placement is a per-machine search).
    pub fn from_config(cfg: &SimConfig) -> Result<LaneParams, String> {
        cfg.validate()?;
        let policy = match cfg.policy {
            PolicyKind::Paper {
                tie,
                cem,
                partial,
                fault_aware,
            } => {
                if cem != CemKind::BarrelShifter {
                    return Err("lane kernel: CEM must be BarrelShifter (ExactDivider \
                                is a real divider, not a shift circuit)"
                        .into());
                }
                PolicyParams {
                    has_selection: true,
                    tie,
                    partial,
                    fault_aware,
                    smooth_shift: 0,
                }
            }
            PolicyKind::PaperSmoothed { shift } => PolicyParams {
                has_selection: true,
                tie: TieBreak::FavorCurrent,
                partial: true,
                fault_aware: false,
                smooth_shift: shift.min(7),
            },
            PolicyKind::Static => PolicyParams {
                has_selection: false,
                tie: TieBreak::FavorCurrent,
                partial: true,
                fault_aware: false,
                smooth_shift: 0,
            },
            PolicyKind::DemandDriven => {
                return Err("lane kernel: DemandDriven steering is a greedy \
                            floating-point search, not a selection circuit"
                    .into())
            }
        };
        let n_slots = cfg.fabric.rfu_slots;
        if n_slots > MAX_LANE_SLOTS {
            return Err(format!(
                "lane kernel: {n_slots} RFU slots exceeds the {MAX_LANE_SLOTS}-slot cap"
            ));
        }
        if cfg.queue_size > 7 {
            return Err("lane kernel: queue size beyond 7 overflows the 3-bit \
                        requirement counters"
                .into());
        }
        if cfg.fabric.reconfig_ports != 1 {
            return Err("lane kernel: exactly one reconfiguration port is supported".into());
        }
        let faults = &cfg.fabric.faults;
        if faults.load_failure_ppm != 0 {
            return Err("lane kernel: load-failure faults are not supported".into());
        }
        if !faults.dead_slots.is_empty() {
            return Err("lane kernel: dead slots require the boot-static \
                        re-placement search; use the scalar machine"
                .into());
        }
        let set = &cfg.steering_set;
        if set.predefined.len() > MAX_LANE_CANDIDATES {
            return Err(format!(
                "lane kernel: at most {MAX_LANE_CANDIDATES} predefined candidates \
                 fit the two-bit choice encoding"
            ));
        }

        let mut ffu = [0u8; NTYPES];
        for &t in &cfg.fabric.ffus {
            ffu[t.index()] += 1;
        }
        for &f in &ffu {
            // Live counts (≤ n_slots units) + FFUs must fit the 4-bit
            // count planes.
            if f as usize + n_slots > (1 << CNT_BITS) - 1 {
                return Err("lane kernel: per-type availability overflows the \
                            4-bit count planes"
                    .into());
            }
        }

        let placement_enc = |config: &rsp_fabric::config::Configuration| -> Vec<u8> {
            (0..n_slots)
                .map(|s| match config.placement.unit_at(s) {
                    Some(pu) if pu.head == s => pu.unit.encoding(),
                    Some(_) => ENC_CONT,
                    None => ENC_EMPTY,
                })
                .collect()
        };

        // Every unit that can ever exist at runtime comes from the
        // initial configuration or a candidate placement; collect the
        // distinct (head, encoding, cost) set for overlap destruction.
        let mut known_units: Vec<(usize, u8, usize)> = Vec::new();
        let initial = cfg.initial_config.map(|i| &set.predefined[i]);
        for config in initial.into_iter().chain(set.predefined.iter()) {
            for pu in config.placement.units() {
                let rec = (pu.head, pu.unit.encoding(), pu.unit.slot_cost());
                if !known_units.contains(&rec) {
                    known_units.push(rec);
                }
            }
        }

        let lat = cfg.fabric.per_slot_load_latency;
        let mut sites: Vec<LaneSite> = Vec::new();
        let mut candidates = Vec::new();
        for i in 0..set.predefined.len() {
            let config = &set.predefined[i];
            let mut site_ids = Vec::new();
            for pu in config.placement.units() {
                let cost = pu.unit.slot_cost();
                let rem = cost as u64 * lat;
                if rem > u8::MAX as u64 {
                    return Err("lane kernel: per-slot load latency overflows the \
                                8-bit countdown planes"
                        .into());
                }
                let enc = pu.unit.encoding();
                let id = sites
                    .iter()
                    .position(|s| s.head == pu.head && s.enc == enc)
                    .unwrap_or_else(|| {
                        let overlaps = known_units
                            .iter()
                            .filter(|&&(g, _, c)| g < pu.head + cost && g + c > pu.head)
                            .copied()
                            .collect();
                        sites.push(LaneSite {
                            head: pu.head,
                            cost,
                            enc,
                            rem_init: rem as u8,
                            overlaps,
                        });
                        sites.len() - 1
                    });
                site_ids.push(id);
            }
            let mut shifts = [0u8; NTYPES];
            let totals = set.total_counts(i);
            for (t, s) in shifts.iter_mut().enumerate() {
                let avail = totals.get(UnitType::ALL[t]).min(7);
                *s = if avail & 0b100 != 0 {
                    2
                } else if avail & 0b010 != 0 {
                    1
                } else {
                    0
                };
            }
            candidates.push(LaneCandidate {
                sites: site_ids,
                shifts,
                slot_enc: placement_enc(config),
            });
        }
        if sites.len() > MAX_LANE_SITES {
            return Err(format!(
                "lane kernel: {} load sites exceed the {MAX_LANE_SITES}-site cap",
                sites.len()
            ));
        }

        let init_enc = match initial {
            Some(config) => placement_enc(config),
            None => vec![ENC_EMPTY; n_slots],
        };

        Ok(LaneParams {
            n_slots,
            queue_len: cfg.queue_size,
            policy,
            candidates,
            sites,
            ffu,
            init_enc,
            upset_ppm: faults.upset_ppm,
            scrub_interval: faults.scrub_interval,
            default_seed: faults.seed,
        })
    }

    /// Reconfigurable slots per lane fabric.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Instruction-queue entries each lane's decoders observe.
    pub fn queue_len(&self) -> usize {
        self.queue_len
    }

    /// Number of predefined candidates (scored choices are `1 + this`).
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }
}

/// Aggregate counters over all lanes (plain integers, not planes —
/// updated from output-plane popcounts once per step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Steps taken (cycles per lane).
    pub steps: u64,
    /// Selections by two-bit choice code, summed over lanes.
    pub selections: [u64; 4],
    /// Lane-cycles where the choice differed from the lane's previous
    /// one (the loader's `selection_changes`).
    pub selection_changes: u64,
    /// Reconfiguration loads begun, summed over lanes.
    pub loads_started: u64,
    /// Reconfiguration loads completed, summed over lanes.
    pub loads_completed: u64,
    /// Upset strikes that corrupted a span.
    pub upsets_injected: u64,
    /// Upset strikes that dissipated harmlessly (busy or dirty head).
    pub upsets_dissipated: u64,
    /// Corrupted units detected (and cleared) by scrub passes.
    pub upsets_detected: u64,
    /// Scrub passes (global — the countdown is lane-uniform).
    pub scrub_passes: u64,
}

/// Mutable per-lane machine state, as bit planes.
///
/// Layout: all vectors are plane-major — plane `p` of a group occupies
/// `words` consecutive `u64`s starting at `p * words` — so the
/// per-word kernel strides by `words` and every load hits a distinct
/// cache line only once per plane.
#[derive(Debug, Clone)]
struct LaneState {
    words: usize,
    /// Slot encodings: 3 planes per slot, `(s * 3 + b) * words + w`.
    enc: Vec<u64>,
    /// Corruption bits, one plane per slot.
    corrupted: Vec<u64>,
    /// Load in flight (1 port ⇒ 1 bit/lane).
    loading: Vec<u64>,
    /// Site id of the in-flight load (valid under `loading`).
    site: Vec<u64>,
    /// Remaining load cycles (valid under `loading`).
    rem: Vec<u64>,
    /// Degraded-capacity streak (fault-aware hysteresis).
    streak: Vec<u64>,
    /// Effective-capacity view engaged.
    view: Vec<u64>,
    /// Last two-bit choice + validity (the loader's `last_choice`).
    last: Vec<u64>,
    have_last: Vec<u64>,
    /// EWMA accumulators: `(t * ACC_BITS + b) * words + w`
    /// (empty unless the policy smooths).
    acc: Vec<u64>,
}

/// Per-cycle outputs, refreshed by every [`LaneBatch::step`].
#[derive(Debug, Clone)]
struct LaneOut {
    /// Two-bit choice planes (all-zero under the static policy).
    choice: Vec<u64>,
    /// Choice differed from the lane's previous selection.
    changed: Vec<u64>,
    /// A load began this cycle.
    started: Vec<u64>,
    /// Raw (unscaled) CEM error planes, `(1 + k) × ERR_BITS`:
    /// multiply by [`rsp_core::cem::ERROR_SCALE`] for the scalar
    /// telemetry's score values.
    err: Vec<u64>,
}

/// A struct-of-arrays batch of N lane machines stepped in lockstep.
#[derive(Debug, Clone)]
pub struct LaneBatch {
    params: LaneParams,
    lanes: usize,
    words: usize,
    cycle: u64,
    state: LaneState,
    out: LaneOut,
    /// Per-lane fault seeds (default: the config's fault seed).
    seeds: Vec<u64>,
    fault_tick: u64,
    scrub_countdown: u64,
    stats: LaneStats,
}

#[inline]
fn group_load<const N: usize>(v: &[u64], base_plane: usize, words: usize, w: usize) -> [u64; N] {
    core::array::from_fn(|b| v[(base_plane + b) * words + w])
}

#[inline]
fn group_store<const N: usize>(
    v: &mut [u64],
    base_plane: usize,
    words: usize,
    w: usize,
    g: &[u64; N],
) {
    for (b, p) in g.iter().enumerate() {
        v[(base_plane + b) * words + w] = *p;
    }
}

impl LaneBatch {
    /// Build a batch of `lanes` machines (a positive multiple of 64)
    /// from a lane-steppable configuration. Every lane starts in the
    /// reset state of the scalar [`crate::Machine`]: `initial_config`
    /// loaded instantly, no load in flight, no faults accumulated.
    // `is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.82.
    #[allow(unknown_lints, clippy::manual_is_multiple_of)]
    pub fn new(cfg: &SimConfig, lanes: usize) -> Result<LaneBatch, String> {
        if lanes == 0 || lanes % 64 != 0 {
            return Err(format!(
                "lanes must be a positive multiple of 64, got {lanes}"
            ));
        }
        let params = LaneParams::from_config(cfg)?;
        let words = lanes / 64;
        let k = params.candidates.len();
        let smoothing = params.policy.smooth_shift > 0;
        let mut state = LaneState {
            words,
            enc: vec![0; params.n_slots * 3 * words],
            corrupted: vec![0; params.n_slots * words],
            loading: vec![0; words],
            site: vec![0; SITE_BITS * words],
            rem: vec![0; REM_BITS * words],
            streak: vec![0; STREAK_BITS * words],
            view: vec![0; words],
            last: vec![0; 2 * words],
            have_last: vec![0; words],
            acc: if smoothing {
                vec![0; NTYPES * ACC_BITS * words]
            } else {
                Vec::new()
            },
        };
        for (s, &e) in params.init_enc.iter().enumerate() {
            for b in 0..3 {
                if (e >> b) & 1 != 0 {
                    for w in 0..words {
                        state.enc[(s * 3 + b) * words + w] = plane::ALL;
                    }
                }
            }
        }
        let out = LaneOut {
            choice: vec![0; 2 * words],
            changed: vec![0; words],
            started: vec![0; words],
            err: vec![0; (1 + k) * ERR_BITS * words],
        };
        Ok(LaneBatch {
            seeds: vec![params.default_seed; lanes],
            scrub_countdown: params.scrub_interval,
            params,
            lanes,
            words,
            cycle: 0,
            state,
            out,
            fault_tick: 0,
            stats: LaneStats::default(),
        })
    }

    /// Number of lanes stepped in lockstep.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// 64-lane words per plane (`lanes / 64`).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Cycles stepped so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The lowered per-lane machine parameters.
    pub fn params(&self) -> &LaneParams {
        &self.params
    }

    /// Aggregate counters over all lanes.
    pub fn stats(&self) -> &LaneStats {
        &self.stats
    }

    /// Override one lane's fault seed (before the first step, to match
    /// a scalar machine whose `FaultParams::seed` differs).
    pub fn set_fault_seed(&mut self, lane: usize, seed: u64) {
        self.seeds[lane] = seed;
    }

    /// Advance every lane by one cycle, reading the stimulus row at
    /// `cycle_in_stim`. Allocation-free: all work happens in
    /// fixed-size locals and preallocated planes.
    pub fn step(&mut self, stim: &LaneStimulus, cycle_in_stim: usize) {
        assert_eq!(stim.lanes(), self.lanes, "stimulus lane count mismatch");
        assert_eq!(
            stim.queue_len(),
            self.params.queue_len,
            "stimulus queue mismatch"
        );
        assert_eq!(
            stim.n_slots(),
            self.params.n_slots,
            "stimulus slot mismatch"
        );
        assert!(cycle_in_stim < stim.cycles(), "stimulus cycle out of range");

        for w in 0..self.words {
            step_word(
                &self.params,
                &mut self.state,
                &mut self.out,
                &mut self.stats,
                stim,
                cycle_in_stim,
                w,
            );
        }
        if self.params.upset_ppm > 0 {
            self.fault_pass(stim, cycle_in_stim);
        }
        if self.params.policy.has_selection {
            for w in 0..self.words {
                let b0 = self.out.choice[w];
                let b1 = self.out.choice[self.words + w];
                self.stats.selections[0] += (!b0 & !b1).count_ones() as u64;
                self.stats.selections[1] += (b0 & !b1).count_ones() as u64;
                self.stats.selections[2] += (!b0 & b1).count_ones() as u64;
                self.stats.selections[3] += (b0 & b1).count_ones() as u64;
                self.stats.selection_changes += self.out.changed[w].count_ones() as u64;
                self.stats.loads_started += self.out.started[w].count_ones() as u64;
            }
        }
        self.cycle += 1;
        self.stats.steps += 1;
    }

    /// The scalar fault tick, one lane at a time: a keyed upset draw
    /// per lane (each lane's schedule is its own seed, the shared tick
    /// counter, and the shared streams — identical to a scalar fabric
    /// with that seed), then the lane-uniform scrub countdown.
    fn fault_pass(&mut self, stim: &LaneStimulus, cycle: usize) {
        self.fault_tick += 1;
        let words = self.words;
        let ns = self.params.n_slots;
        for lane in 0..self.lanes {
            let seed = self.seeds[lane];
            if !keyed_chance_ppm(
                seed,
                stream::UPSET_STRIKE,
                self.fault_tick,
                0,
                self.params.upset_ppm,
            ) {
                continue;
            }
            let target =
                (keyed_draw(seed, stream::UPSET_TARGET, self.fault_tick, 0) % ns as u64) as usize;
            let (w, bit) = (lane / 64, (lane % 64) as u32);
            let enc_at = |state: &LaneState, s: usize| -> u8 {
                let g: [u64; 3] = group_load(&state.enc, s * 3, words, w);
                plane::extract(&g, bit)
            };
            // Walk continuations back to the unit head (the scalar
            // `alloc.units()` victim search).
            let mut s = target;
            let head = loop {
                let e = enc_at(&self.state, s);
                if e == ENC_EMPTY {
                    break None;
                }
                if e == ENC_CONT {
                    debug_assert!(s > 0, "continuation at slot 0");
                    s -= 1;
                    continue;
                }
                break Some((s, UnitType::from_encoding(e).expect("valid encoding")));
            };
            let Some((head, unit)) = head else {
                self.stats.upsets_dissipated += 1;
                continue;
            };
            let busy = (stim.busy_plane(cycle, head, w) >> bit) & 1 != 0;
            let corrupt = (self.state.corrupted[head * words + w] >> bit) & 1 != 0;
            if busy || corrupt {
                self.stats.upsets_dissipated += 1;
                continue;
            }
            for x in head..head + unit.slot_cost() {
                self.state.corrupted[x * words + w] |= 1u64 << bit;
            }
            self.stats.upsets_injected += 1;
        }

        if self.params.scrub_interval > 0 {
            self.scrub_countdown = self.scrub_countdown.saturating_sub(1);
            if self.scrub_countdown == 0 {
                self.scrub_countdown = self.params.scrub_interval;
                self.stats.scrub_passes += 1;
                self.scrub();
            }
        }
    }

    /// One scrub pass over all lanes at once: for every (slot, type)
    /// pair, lanes with a corrupted unit head there get the span's
    /// corruption *and* encodings cleared (the scalar walk removes the
    /// unit from the allocation vector). Plane-safe because unit spans
    /// are disjoint and `ENC_CONT` matches no unit-type encoding.
    fn scrub(&mut self) {
        let words = self.words;
        for w in 0..words {
            for h in 0..self.params.n_slots {
                let corr_h = self.state.corrupted[h * words + w];
                if corr_h == 0 {
                    continue;
                }
                let g: [u64; 3] = group_load(&self.state.enc, h * 3, words, w);
                for &t in &UnitType::ALL {
                    let m = plane::eq_const(&g, t.encoding()) & corr_h;
                    if m == 0 {
                        continue;
                    }
                    self.stats.upsets_detected += m.count_ones() as u64;
                    for x in h..h + t.slot_cost() {
                        self.state.corrupted[x * words + w] &= !m;
                        for b in 0..3 {
                            self.state.enc[(x * 3 + b) * words + w] &= !m;
                        }
                    }
                }
            }
        }
    }

    // ---- per-lane extraction (tests, telemetry; not the hot path) ----

    #[inline]
    fn loc(&self, lane: usize) -> (usize, u32) {
        assert!(lane < self.lanes);
        (lane / 64, (lane % 64) as u32)
    }

    /// One lane's slot encodings (3-bit values, `n_slots` long).
    pub fn lane_alloc(&self, lane: usize) -> Vec<u8> {
        let (w, bit) = self.loc(lane);
        (0..self.params.n_slots)
            .map(|s| {
                let g: [u64; 3] = group_load(&self.state.enc, s * 3, self.words, w);
                plane::extract(&g, bit)
            })
            .collect()
    }

    /// One lane's corrupted-slot mask.
    pub fn lane_corrupted(&self, lane: usize) -> u64 {
        let (w, bit) = self.loc(lane);
        let mut mask = 0;
        for s in 0..self.params.n_slots {
            if (self.state.corrupted[s * self.words + w] >> bit) & 1 != 0 {
                mask |= 1 << s;
            }
        }
        mask
    }

    /// One lane's configured counts (live RFU units + fabric FFUs) —
    /// `Fabric::configured_counts`.
    pub fn lane_configured_counts(&self, lane: usize) -> TypeCounts {
        self.lane_counts(lane, false)
    }

    /// One lane's effective counts (zombies excluded) —
    /// `Fabric::effective_counts`.
    pub fn lane_effective_counts(&self, lane: usize) -> TypeCounts {
        self.lane_counts(lane, true)
    }

    fn lane_counts(&self, lane: usize, effective: bool) -> TypeCounts {
        let alloc = self.lane_alloc(lane);
        let corrupted = self.lane_corrupted(lane);
        let mut c = TypeCounts::ZERO;
        for (t, &f) in self.params.ffu.iter().enumerate() {
            c.add(UnitType::ALL[t], f);
        }
        for (s, &e) in alloc.iter().enumerate() {
            if e == ENC_EMPTY || e == ENC_CONT {
                continue;
            }
            if effective && (corrupted >> s) & 1 != 0 {
                continue;
            }
            c.add(UnitType::from_encoding(e).expect("valid encoding"), 1);
        }
        c
    }

    /// One lane's in-flight load: `Some((head, remaining))`.
    pub fn lane_load_in_flight(&self, lane: usize) -> Option<(usize, u8)> {
        let (w, bit) = self.loc(lane);
        if (self.state.loading[w] >> bit) & 1 == 0 {
            return None;
        }
        let site: [u64; SITE_BITS] = group_load(&self.state.site, 0, self.words, w);
        let rem: [u64; REM_BITS] = group_load(&self.state.rem, 0, self.words, w);
        let id = plane::extract(&site, bit) as usize;
        Some((self.params.sites[id].head, plane::extract(&rem, bit)))
    }

    /// One lane's choice this cycle (two-bit code; `None` under the
    /// static policy).
    pub fn lane_choice(&self, lane: usize) -> Option<u8> {
        if !self.params.policy.has_selection {
            return None;
        }
        let (w, bit) = self.loc(lane);
        let g = [self.out.choice[w], self.out.choice[self.words + w]];
        Some(plane::extract(&g, bit))
    }

    /// Whether this cycle's choice differed from the lane's previous
    /// selection (the telemetry `changed` flag).
    pub fn lane_changed(&self, lane: usize) -> bool {
        let (w, bit) = self.loc(lane);
        (self.out.changed[w] >> bit) & 1 != 0
    }

    /// Whether a reconfiguration load began this cycle.
    pub fn lane_started(&self, lane: usize) -> bool {
        let (w, bit) = self.loc(lane);
        (self.out.started[w] >> bit) & 1 != 0
    }

    /// One lane's raw CEM errors `[current, cand 1, …]` this cycle —
    /// multiply by [`rsp_core::cem::ERROR_SCALE`] to get the scalar
    /// telemetry's `SteeringDecision` scores.
    pub fn lane_raw_errors(&self, lane: usize) -> Vec<u8> {
        let (w, bit) = self.loc(lane);
        (0..=self.params.candidates.len())
            .map(|j| {
                let g: [u64; ERR_BITS] = group_load(&self.out.err, j * ERR_BITS, self.words, w);
                plane::extract(&g, bit)
            })
            .collect()
    }

    /// Whether the fault-aware effective-capacity view is engaged.
    pub fn lane_effective_view(&self, lane: usize) -> bool {
        let (w, bit) = self.loc(lane);
        (self.state.view[w] >> bit) & 1 != 0
    }
}

/// One cycle of the steering loop for word `w` (64 lanes): decode,
/// requirement counters, optional EWMA filter, live counts, the
/// fault-aware view, CEM, selection, loader, and the load countdown —
/// all in local plane registers, stored back once.
fn step_word(
    params: &LaneParams,
    state: &mut LaneState,
    out: &mut LaneOut,
    stats: &mut LaneStats,
    stim: &LaneStimulus,
    cycle: usize,
    w: usize,
) {
    let words = state.words;
    let ns = params.n_slots;
    let pol = params.policy;
    let k = params.candidates.len();

    // ---- load state planes into registers ----
    let mut enc = [[0u64; 3]; MAX_LANE_SLOTS];
    let mut corr = [0u64; MAX_LANE_SLOTS];
    let mut busy = [0u64; MAX_LANE_SLOTS];
    for s in 0..ns {
        enc[s] = group_load(&state.enc, s * 3, words, w);
        corr[s] = state.corrupted[s * words + w];
        busy[s] = stim.busy_plane(cycle, s, w);
    }
    let mut loading = state.loading[w];
    let mut site_pl: [u64; SITE_BITS] = group_load(&state.site, 0, words, w);
    let mut rem_pl: [u64; REM_BITS] = group_load(&state.rem, 0, words, w);

    if pol.has_selection {
        // ---- stage 1 + 2: unit decode into demand planes, summed by
        // carry-save requirement counters ----
        let mut req = [[0u64; 3]; NTYPES];
        for e in 0..params.queue_len {
            let valid = stim.entry_plane(cycle, e, 0, w);
            let code = [
                stim.entry_plane(cycle, e, 1, w),
                stim.entry_plane(cycle, e, 2, w),
                stim.entry_plane(cycle, e, 3, w),
            ];
            for (t, r) in req.iter_mut().enumerate() {
                let m = valid & plane::eq_const(&code, t as u8);
                let carry = plane::inc_masked(r, m);
                debug_assert_eq!(carry, 0, "≤7-entry queue cannot overflow 3-bit counters");
            }
        }

        // ---- optional EWMA demand filter (PaperSmoothed) ----
        if pol.smooth_shift > 0 {
            let sh = pol.smooth_shift as usize;
            for (t, r) in req.iter_mut().enumerate() {
                let acc: [u64; ACC_BITS] = group_load(&state.acc, t * ACC_BITS, words, w);
                let mut target = [0u64; ACC_BITS];
                target[FRAC_BITS..FRAC_BITS + 3].copy_from_slice(r);
                // delta = (target - acc) >> shift, arithmetic in
                // 12-bit two's complement (plane reindex + sign fill).
                let (diff, _) = plane::sub(&target, &acc);
                let delta: [u64; ACC_BITS] =
                    core::array::from_fn(|i| diff[(i + sh).min(ACC_BITS - 1)]);
                let (acc2, _) = plane::add(&acc, &delta);
                // out = (acc + 128) >> 8; the accumulator never
                // exceeds 7 << 8, so bits 8..=10 are the whole value.
                let (rounded, _) = plane::add(&acc2, &plane::splat(0x80));
                *r = [
                    rounded[FRAC_BITS],
                    rounded[FRAC_BITS + 1],
                    rounded[FRAC_BITS + 2],
                ];
                group_store(&mut state.acc, t * ACC_BITS, words, w, &acc2);
            }
        }

        // ---- live counts from the encoding planes (recomputed every
        // cycle, so load/destroy/upset/scrub bookkeeping is free) ----
        let mut cur = [[0u64; CNT_BITS]; NTYPES];
        if pol.fault_aware {
            let mut eff = [[0u64; CNT_BITS]; NTYPES];
            for s in 0..ns {
                for (t, ty) in UnitType::ALL.iter().enumerate() {
                    let m = plane::eq_const(&enc[s], ty.encoding());
                    plane::inc_masked(&mut cur[t], m);
                    plane::inc_masked(&mut eff[t], m & !corr[s]);
                }
            }
            // Degraded = effective ≠ nominal (dead slots are rejected
            // at construction, so `dead_degraded` is always false and
            // the FFU contribution cancels out of the comparison).
            let mut deg = 0u64;
            for t in 0..NTYPES {
                for b in 0..CNT_BITS {
                    deg |= cur[t][b] ^ eff[t][b];
                }
            }
            let mut streak: [u64; STREAK_BITS] = group_load(&state.streak, 0, words, w);
            let carry = plane::inc_masked(&mut streak, deg);
            for p in streak.iter_mut() {
                // Saturate wrapped lanes, zero non-degraded lanes.
                *p = (*p | carry) & deg;
            }
            let over = streak[5] | streak[6] | streak[7];
            let view = deg & (state.view[w] | over);
            state.view[w] = view;
            group_store(&mut state.streak, 0, words, w, &streak);
            for t in 0..NTYPES {
                cur[t] = plane::mux(view, &eff[t], &cur[t]);
            }
        } else {
            for e in enc.iter().take(ns) {
                for (t, ty) in UnitType::ALL.iter().enumerate() {
                    let m = plane::eq_const(e, ty.encoding());
                    plane::inc_masked(&mut cur[t], m);
                }
            }
        }
        for (t, c) in cur.iter_mut().enumerate() {
            plane::add_const(c, params.ffu[t]);
        }

        // ---- stage 3: barrel-shift CEM ----
        // Candidate 0 (current config): per-lane availability shift,
        // computed as a mux over the saturated 3-bit quantity.
        let mut errs = [[0u64; ERR_BITS]; 1 + MAX_LANE_CANDIDATES];
        for (t, r) in req.iter().enumerate() {
            let ge8 = cur[t][3];
            let a2 = cur[t][2] | ge8;
            let a1 = cur[t][1] | ge8;
            let s2 = a2;
            let s1 = !a2 & a1;
            let n = !a2 & !a1;
            let term = [
                (s2 & r[2]) | (s1 & r[1]) | (n & r[0]),
                (s1 & r[2]) | (n & r[1]),
                n & r[2],
            ];
            let (sum, _) = plane::add(&errs[0], &plane::widen::<3, ERR_BITS>(&term));
            errs[0] = sum;
        }
        // Candidates 1..=k: constant shifts → plane reindexing.
        for (i, cand) in params.candidates.iter().enumerate() {
            for (t, r) in req.iter().enumerate() {
                let term = match cand.shifts[t] {
                    0 => *r,
                    1 => [r[1], r[2], 0],
                    _ => [r[2], 0, 0],
                };
                let (sum, _) = plane::add(&errs[i + 1], &plane::widen::<3, ERR_BITS>(&term));
                errs[i + 1] = sum;
            }
        }

        // ---- placement costs (diff_count against the live alloc) ----
        let mut costs = [[0u64; COST_BITS]; MAX_LANE_CANDIDATES];
        for (i, cand) in params.candidates.iter().enumerate() {
            for (s, e) in enc.iter().enumerate().take(ns) {
                let differs = !plane::eq_const(e, cand.slot_enc[s]);
                plane::inc_masked(&mut costs[i], differs);
            }
        }

        // ---- stage 4: minimal-error selection with tie rules ----
        let mut best = [0u64; 2];
        let mut best_err = errs[0];
        let mut best_cost = [0u64; COST_BITS];
        for i in 0..k {
            let err_i = &errs[i + 1];
            let cost_i = &costs[i];
            let lt_err = plane::lt(err_i, &best_err);
            let eq_err = plane::eq(err_i, &best_err);
            let lt_cost = plane::lt(cost_i, &best_cost);
            let best_is_current = !(best[0] | best[1]);
            let tie_ok = match pol.tie {
                // Displace the incumbent only if it is not the current
                // config and the challenger is strictly cheaper.
                TieBreak::FavorCurrent => !best_is_current & lt_cost,
                // Displace the current config on any tie; otherwise
                // cheaper wins.
                TieBreak::PreferPredefined => best_is_current | lt_cost,
            };
            let better = lt_err | (eq_err & tie_ok);
            best = plane::mux_const(better, (i + 1) as u8, &best);
            best_err = plane::mux(better, err_i, &best_err);
            best_cost = plane::mux(better, cost_i, &best_cost);
        }

        // ---- outputs + last-choice bookkeeping ----
        out.choice[w] = best[0];
        out.choice[words + w] = best[1];
        for (j, e) in errs.iter().enumerate().take(1 + k) {
            group_store(&mut out.err, j * ERR_BITS, words, w, e);
        }
        let last: [u64; 2] = group_load(&state.last, 0, words, w);
        out.changed[w] = state.have_last[w] & !plane::eq(&best, &last);
        group_store(&mut state.last, 0, words, w, &best);
        state.have_last[w] = plane::ALL;

        // ---- configuration loader ----
        let mut started = 0u64;
        for (i, cand) in params.candidates.iter().enumerate() {
            let chose = plane::eq_const(&best, (i + 1) as u8);
            if chose == 0 {
                continue;
            }
            for &sid in &cand.sites {
                let site = &params.sites[sid];
                let already = plane::eq_const(&enc[site.head], site.enc);
                let attempt = if pol.partial {
                    // Skip spans that already hold the unit — unless
                    // fault-aware and the span is a zombie (forced
                    // reload rewrites the corrupted configuration).
                    let zombie = if pol.fault_aware {
                        already & corr[site.head]
                    } else {
                        0
                    };
                    chose & (!already | zombie)
                } else {
                    chose
                };
                if attempt == 0 {
                    continue;
                }
                let mut span_busy = 0u64;
                for b in &busy[site.head..site.head + site.cost] {
                    span_busy |= b;
                }
                // One port: `loading` doubles as the port-free check.
                let success = attempt & !loading & !span_busy;
                if success == 0 {
                    continue;
                }
                for &(g, u_enc, u_cost) in &site.overlaps {
                    let ov = success & plane::eq_const(&enc[g], u_enc);
                    if ov == 0 {
                        continue;
                    }
                    for x in g..g + u_cost {
                        for p in enc[x].iter_mut() {
                            *p &= !ov;
                        }
                        corr[x] &= !ov;
                    }
                }
                loading |= success;
                site_pl = plane::mux_const(success, sid as u8, &site_pl);
                rem_pl = plane::mux_const(success, site.rem_init, &rem_pl);
                started |= success;
            }
        }
        out.started[w] = started;
    }

    // ---- fabric load countdown (the scalar `tick_into` retain loop;
    // runs under every policy — vacuous when nothing is loading) ----
    let ticking = loading & !plane::is_zero(&rem_pl);
    plane::dec_masked(&mut rem_pl, ticking);
    let done = loading & plane::is_zero(&rem_pl);
    loading &= !done;
    if done != 0 {
        stats.loads_completed += done.count_ones() as u64;
        for (sid, site) in params.sites.iter().enumerate() {
            let dm = done & plane::eq_const(&site_pl, sid as u8);
            if dm == 0 {
                continue;
            }
            enc[site.head] = plane::mux_const(dm, site.enc, &enc[site.head]);
            for e in enc
                .iter_mut()
                .take(site.head + site.cost)
                .skip(site.head + 1)
            {
                *e = plane::mux_const(dm, ENC_CONT, e);
            }
        }
    }

    // ---- store state planes back ----
    for s in 0..ns {
        group_store(&mut state.enc, s * 3, words, w, &enc[s]);
        state.corrupted[s * words + w] = corr[s];
    }
    state.loading[w] = loading;
    group_store(&mut state.site, 0, words, w, &site_pl);
    group_store(&mut state.rem, 0, words, w, &rem_pl);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use rsp_fabric::config::SteeringSet;

    #[test]
    fn rejects_unsupported_configs() {
        let lanes = 64;
        let cfg = SimConfig {
            policy: PolicyKind::DemandDriven,
            ..SimConfig::default()
        };
        assert!(LaneBatch::new(&cfg, lanes).is_err());
        let cfg = SimConfig {
            policy: PolicyKind::Paper {
                tie: TieBreak::FavorCurrent,
                cem: CemKind::ExactDivider,
                partial: true,
                fault_aware: false,
            },
            ..SimConfig::default()
        };
        assert!(LaneBatch::new(&cfg, lanes).is_err());
        let mut cfg = SimConfig::default();
        cfg.fabric.reconfig_ports = 2;
        assert!(LaneBatch::new(&cfg, lanes).is_err());
        let cfg = SimConfig {
            queue_size: 9,
            ..SimConfig::default()
        };
        assert!(LaneBatch::new(&cfg, lanes).is_err());
        let mut cfg = SimConfig::default();
        cfg.fabric.faults.load_failure_ppm = 10;
        assert!(LaneBatch::new(&cfg, lanes).is_err());
        let mut cfg = SimConfig::default();
        cfg.fabric.faults.dead_slots = vec![7];
        assert!(LaneBatch::new(&cfg, lanes).is_err());
        assert!(LaneBatch::new(&SimConfig::default(), 63).is_err());
        assert!(LaneBatch::new(&SimConfig::default(), 0).is_err());
        assert!(LaneBatch::new(&SimConfig::default(), 128).is_ok());
    }

    #[test]
    fn paper_default_lowering() {
        let p = LaneParams::from_config(&SimConfig::default()).unwrap();
        assert_eq!(p.num_candidates(), 3);
        // 5 + 4 + 4 units, but Config 1 and Config 2 share the
        // Int-ALU site at slot 0 and Config 2/3 placements overlap at
        // distinct heads — just bound it.
        assert!(p.sites.len() <= MAX_LANE_SITES);
        // Config 1 + FFUs = [3,2,3,1,1] → shifts [1,1,1,0,0].
        assert_eq!(p.candidates[0].shifts, [1, 1, 1, 0, 0]);
        // Config 3 + FFUs = [1,1,3,2,2] → shifts [0,0,1,1,1].
        assert_eq!(p.candidates[2].shifts, [0, 0, 1, 1, 1]);
        // Initial config (Config 1) encodings: ALU ALU MDU LSU LSU…
        let set = SteeringSet::paper_default();
        let want: Vec<u8> = (0..8)
            .map(|s| match set.predefined[0].placement.unit_at(s) {
                Some(pu) if pu.head == s => pu.unit.encoding(),
                Some(_) => ENC_CONT,
                None => ENC_EMPTY,
            })
            .collect();
        assert_eq!(p.init_enc, want);
    }

    #[test]
    fn idle_lanes_keep_current_config() {
        // Zero demand → every candidate scores 0 → FavorCurrent keeps
        // the current configuration and never reconfigures.
        let cfg = SimConfig::default();
        let mut batch = LaneBatch::new(&cfg, 128).unwrap();
        let stim = LaneStimulus::new(128, 4, cfg.queue_size, 8);
        let init = batch.lane_alloc(77);
        for c in 0..16 {
            batch.step(&stim, c % 4);
        }
        assert_eq!(batch.lane_choice(77), Some(0));
        assert_eq!(batch.lane_alloc(77), init);
        assert_eq!(batch.stats().loads_started, 0);
        assert_eq!(batch.stats().selections[0], 16 * 128);
        assert_eq!(batch.lane_raw_errors(77), vec![0, 0, 0, 0]);
        assert!(batch.lane_load_in_flight(77).is_none());
    }

    #[test]
    fn demand_steers_and_loads_complete() {
        // All-FP demand must steer to Config 3 ([0,0,2,1,1]) and,
        // after cost × latency cycles per span, deliver FP units.
        let cfg = SimConfig::default();
        let mut batch = LaneBatch::new(&cfg, 64).unwrap();
        let mut stim = LaneStimulus::new(64, 1, cfg.queue_size, 8);
        for lane in 0..64 {
            stim.set_demand_counts(lane, 0, &TypeCounts::new([0, 0, 0, 3, 3]))
                .unwrap();
        }
        for _ in 0..2000 {
            batch.step(&stim, 0);
        }
        // Once Config 3 is fully loaded its error ties the current
        // configuration's and FavorCurrent settles on Current.
        assert_eq!(batch.lane_choice(13), Some(0));
        let counts = batch.lane_configured_counts(13);
        assert_eq!(counts.get(UnitType::FpAlu), 2); // 1 RFU + 1 FFU
        assert_eq!(counts.get(UnitType::FpMdu), 2);
        assert_eq!(counts, batch.lane_effective_counts(13));
        assert!(batch.stats().loads_completed >= 64);
    }

    #[test]
    fn static_policy_never_selects() {
        let cfg = SimConfig::static_on(1);
        let mut batch = LaneBatch::new(&cfg, 64).unwrap();
        let mut stim = LaneStimulus::new(64, 1, cfg.queue_size, 8);
        for lane in 0..64 {
            stim.set_demand_counts(lane, 0, &TypeCounts::new([0, 0, 0, 3, 3]))
                .unwrap();
        }
        let init = batch.lane_alloc(0);
        for _ in 0..100 {
            batch.step(&stim, 0);
        }
        assert_eq!(batch.lane_choice(0), None);
        assert_eq!(batch.lane_alloc(0), init);
        assert_eq!(batch.stats().selections, [0, 0, 0, 0]);
    }
}

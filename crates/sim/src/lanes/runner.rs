//! Batch driver for the lane kernel, mirroring [`BatchRunner`].
//!
//! [`LaneRunner`] owns a [`LaneBatch`] plus the [`LaneStimulus`] it
//! replays (wrapping around when the run is longer than the recorded
//! trace — synthetic-mix traces are built to be replay-safe), and
//! exposes the same run-to-summary shape the scalar throughput harness
//! drives, so the bench can report aggregate lane cycles/sec next to
//! the scalar per-machine floor.
//!
//! [`BatchRunner`]: crate::batch::BatchRunner

use super::batch::{LaneBatch, LaneStats};
use super::stimulus::LaneStimulus;
use crate::batch::BatchSummary;
use crate::config::SimConfig;

/// Aggregate result of a lane-kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSummary {
    /// Lanes stepped in lockstep.
    pub lanes: usize,
    /// Kernel steps taken (cycles per lane).
    pub cycles: u64,
    /// Aggregate lane-cycles evaluated (`lanes * cycles`) — the unit
    /// the throughput harness divides wall time into.
    pub lane_cycles: u64,
    /// Reconfiguration loads begun, summed over lanes.
    pub loads_started: u64,
    /// Lane-cycles where the selection changed.
    pub selection_changes: u64,
    /// Selections by two-bit choice code, summed over lanes.
    pub selections: [u64; 4],
}

impl LaneSummary {
    /// View as a [`BatchSummary`] for harness code that aggregates
    /// scalar batches: each lane-cycle counts as a simulated cycle;
    /// lanes retire nothing (they run the steering loop, not the
    /// pipeline), and a lockstep batch always completes its budget.
    pub fn as_batch(&self) -> BatchSummary {
        BatchSummary {
            runs: self.lanes as u64,
            sim_cycles: self.lane_cycles,
            retired: 0,
            all_halted: true,
        }
    }
}

/// Steps a [`LaneBatch`] through a replayed [`LaneStimulus`].
#[derive(Debug)]
pub struct LaneRunner {
    batch: LaneBatch,
    stim: LaneStimulus,
}

impl LaneRunner {
    /// Build a batch for `cfg` sized to the stimulus' lane count. Errors
    /// if the configuration is outside the lane kernel's envelope or the
    /// stimulus geometry (queue length, slot count) does not match it.
    pub fn new(cfg: &SimConfig, stim: LaneStimulus) -> Result<LaneRunner, String> {
        let batch = LaneBatch::new(cfg, stim.lanes())?;
        if stim.queue_len() != batch.params().queue_len() {
            return Err(format!(
                "stimulus queue length {} != configured {}",
                stim.queue_len(),
                batch.params().queue_len()
            ));
        }
        if stim.n_slots() != batch.params().n_slots() {
            return Err(format!(
                "stimulus slot count {} != configured {}",
                stim.n_slots(),
                batch.params().n_slots()
            ));
        }
        Ok(LaneRunner { batch, stim })
    }

    /// The batch (for per-lane extraction and fault seeding).
    pub fn batch(&self) -> &LaneBatch {
        &self.batch
    }

    /// Mutable batch access (e.g. [`LaneBatch::set_fault_seed`]).
    pub fn batch_mut(&mut self) -> &mut LaneBatch {
        &mut self.batch
    }

    /// The stimulus being replayed.
    pub fn stimulus(&self) -> &LaneStimulus {
        &self.stim
    }

    /// Step every lane one cycle, replaying the stimulus cyclically.
    pub fn step(&mut self) {
        let at = (self.batch.cycle() % self.stim.cycles() as u64) as usize;
        self.batch.step(&self.stim, at);
    }

    /// Step `cycles` more cycles and summarize the whole run so far.
    pub fn run(&mut self, cycles: u64) -> LaneSummary {
        for _ in 0..cycles {
            self.step();
        }
        self.summary()
    }

    /// Summary of everything stepped so far.
    pub fn summary(&self) -> LaneSummary {
        let stats: &LaneStats = self.batch.stats();
        LaneSummary {
            lanes: self.batch.lanes(),
            cycles: self.batch.cycle(),
            lane_cycles: self.batch.cycle() * self.batch.lanes() as u64,
            loads_started: stats.loads_started,
            selection_changes: stats.selection_changes,
            selections: stats.selections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_wraps_stimulus_and_summarizes() {
        let cfg = SimConfig::default();
        let mut stim = LaneStimulus::new(128, 3, cfg.queue_size, cfg.fabric.rfu_slots);
        // A mild integer demand on cycle 1 of the 3-cycle trace.
        for lane in 0..128 {
            stim.set_demand_counts(lane, 1, &rsp_isa::units::TypeCounts::new([2, 1, 0, 0, 0]))
                .unwrap();
        }
        let mut runner = LaneRunner::new(&cfg, stim).expect("runner");
        let sum = runner.run(9); // three full wraps
        assert_eq!(sum.lanes, 128);
        assert_eq!(sum.cycles, 9);
        assert_eq!(sum.lane_cycles, 9 * 128);
        assert_eq!(sum.selections.iter().sum::<u64>(), 9 * 128);
        let b = sum.as_batch();
        assert_eq!(b.runs, 128);
        assert_eq!(b.sim_cycles, 9 * 128);
        assert!(b.all_halted);
    }

    #[test]
    fn runner_rejects_geometry_mismatch() {
        let cfg = SimConfig::default();
        let stim = LaneStimulus::new(64, 2, 3, cfg.fabric.rfu_slots);
        assert!(LaneRunner::new(&cfg, stim).is_err());
    }
}

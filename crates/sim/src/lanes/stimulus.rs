//! Transposed per-cycle inputs for the lane kernel.
//!
//! The bit-sliced kernel evaluates the *closed steering loop* —
//! selection, configuration loader, fabric load/fault tick — for all
//! lanes in lockstep. What it cannot evaluate combinationally is the
//! out-of-order core feeding it, so the per-cycle inputs of the
//! selection unit are supplied as a pre-transposed stimulus:
//!
//! * the instruction-queue snapshot each lane's decoders see (stage 1
//!   input): up to `queue_len` entries, each a valid bit plus a 3-bit
//!   unit-type code, and
//! * the per-slot busy mask of each lane's fabric (consulted by the
//!   loader's span-busy check and by the fault tick's idle-victim
//!   check; in the scalar machine both observe the same snapshot
//!   because issue precedes steer and the fabric tick ends the cycle).
//!
//! Layouts are plane-major so the kernel's per-word loop reads
//! contiguous words: entry planes at `((cycle * queue_len + e) * 4 +
//! p) * words + w` (plane 0 = valid, planes 1..=3 = type-code bits) and
//! busy planes at `(cycle * n_slots + s) * words + w`.

use super::plane;
use rsp_isa::units::{TypeCounts, UnitType};

/// Planes per queue entry: one valid bit + three type-code bits.
const ENTRY_PLANES: usize = 4;

/// Pre-transposed per-cycle inputs for a batch of lanes.
#[derive(Debug, Clone)]
pub struct LaneStimulus {
    lanes: usize,
    words: usize,
    cycles: usize,
    queue_len: usize,
    n_slots: usize,
    /// Queue-entry planes, `cycles * queue_len * ENTRY_PLANES * words`.
    entries: Vec<u64>,
    /// Per-slot busy planes, `cycles * n_slots * words`.
    busy: Vec<u64>,
}

impl LaneStimulus {
    /// An all-idle stimulus: every queue empty, every slot idle.
    ///
    /// `lanes` must be a positive multiple of 64; `cycles`, `queue_len`
    /// (≤ 7, the 3-bit encoder width) and `n_slots` (≤ 64, the busy
    /// mask width) must be positive.
    // `is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.82.
    #[allow(unknown_lints, clippy::manual_is_multiple_of)]
    pub fn new(lanes: usize, cycles: usize, queue_len: usize, n_slots: usize) -> LaneStimulus {
        assert!(
            lanes > 0 && lanes % 64 == 0,
            "lanes must be a positive multiple of 64"
        );
        assert!(cycles > 0, "stimulus must cover at least one cycle");
        assert!((1..=7).contains(&queue_len), "queue_len must be 1..=7");
        assert!((1..=64).contains(&n_slots), "n_slots must be 1..=64");
        let words = lanes / 64;
        LaneStimulus {
            lanes,
            words,
            cycles,
            queue_len,
            n_slots,
            entries: vec![0; cycles * queue_len * ENTRY_PLANES * words],
            busy: vec![0; cycles * n_slots * words],
        }
    }

    /// Number of lanes covered.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of cycles of stimulus held.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Queue entries per cycle per lane.
    pub fn queue_len(&self) -> usize {
        self.queue_len
    }

    /// Busy-mask slots per cycle per lane.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    fn entry_base(&self, cycle: usize, e: usize) -> usize {
        (cycle * self.queue_len + e) * ENTRY_PLANES * self.words
    }

    /// Set one lane's queue snapshot for one cycle. Entries beyond
    /// `row.len()` are cleared (invalid).
    pub fn set_row(&mut self, lane: usize, cycle: usize, row: &[UnitType]) {
        assert!(lane < self.lanes && cycle < self.cycles);
        assert!(row.len() <= self.queue_len, "row exceeds queue length");
        let (w, b) = (lane / 64, (lane % 64) as u32);
        for e in 0..self.queue_len {
            let base = self.entry_base(cycle, e);
            let code: u8 = match row.get(e) {
                Some(t) => 1 | ((t.index() as u8) << 1),
                None => 0,
            };
            for p in 0..ENTRY_PLANES {
                let idx = base + p * self.words + w;
                let bit = 1u64 << b;
                if (code >> p) & 1 != 0 {
                    self.entries[idx] |= bit;
                } else {
                    self.entries[idx] &= !bit;
                }
            }
        }
    }

    /// Set one lane's queue snapshot from per-type demand counts,
    /// expanded in canonical [`UnitType::ALL`] order. Errors if the
    /// total exceeds the queue length.
    pub fn set_demand_counts(
        &mut self,
        lane: usize,
        cycle: usize,
        demand: &TypeCounts,
    ) -> Result<(), String> {
        if demand.total() as usize > self.queue_len {
            return Err(format!(
                "demand total {} exceeds queue length {}",
                demand.total(),
                self.queue_len
            ));
        }
        let mut row = [UnitType::IntAlu; 7];
        let mut n = 0;
        for &t in &UnitType::ALL {
            for _ in 0..demand.get(t) {
                row[n] = t;
                n += 1;
            }
        }
        self.set_row(lane, cycle, &row[..n]);
        Ok(())
    }

    /// Set one lane's per-slot busy mask for one cycle (bit `s` = slot
    /// `s` is executing this cycle).
    pub fn set_busy_mask(&mut self, lane: usize, cycle: usize, mask: u64) {
        assert!(lane < self.lanes && cycle < self.cycles);
        assert!(
            self.n_slots == 64 || mask < (1u64 << self.n_slots),
            "busy mask has bits beyond n_slots"
        );
        let (w, b) = (lane / 64, (lane % 64) as u32);
        for s in 0..self.n_slots {
            let idx = (cycle * self.n_slots + s) * self.words + w;
            let bit = 1u64 << b;
            if (mask >> s) & 1 != 0 {
                self.busy[idx] |= bit;
            } else {
                self.busy[idx] &= !bit;
            }
        }
    }

    /// Kernel view: word `w` of entry plane `p` (0 = valid, 1..=3 =
    /// type-code bits) of queue entry `e` at `cycle`.
    #[inline]
    pub(crate) fn entry_plane(&self, cycle: usize, e: usize, p: usize, w: usize) -> u64 {
        self.entries[self.entry_base(cycle, e) + p * self.words + w]
    }

    /// Kernel view: word `w` of the busy plane of slot `s` at `cycle`.
    #[inline]
    pub(crate) fn busy_plane(&self, cycle: usize, s: usize, w: usize) -> u64 {
        self.busy[(cycle * self.n_slots + s) * self.words + w]
    }

    /// Test/debug view: one lane's queue row at `cycle`, decoded back
    /// from the planes.
    pub fn row(&self, lane: usize, cycle: usize) -> Vec<UnitType> {
        let (w, b) = (lane / 64, (lane % 64) as u32);
        let mut out = Vec::new();
        for e in 0..self.queue_len {
            let base = self.entry_base(cycle, e);
            let mut code = [0u64; ENTRY_PLANES];
            for (p, plane) in code.iter_mut().enumerate() {
                *plane = self.entries[base + p * self.words + w];
            }
            let v = plane::extract(&code, b);
            if v & 1 != 0 {
                out.push(UnitType::from_index((v >> 1) as usize).expect("valid type code"));
            }
        }
        out
    }

    /// Test/debug view: one lane's busy mask at `cycle`.
    pub fn busy_mask(&self, lane: usize, cycle: usize) -> u64 {
        let (w, b) = (lane / 64, (lane % 64) as u32);
        let mut mask = 0u64;
        for s in 0..self.n_slots {
            let idx = (cycle * self.n_slots + s) * self.words + w;
            if (self.busy[idx] >> b) & 1 != 0 {
                mask |= 1 << s;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_round_trips() {
        let mut s = LaneStimulus::new(128, 4, 7, 8);
        let row = [UnitType::Lsu, UnitType::FpMdu, UnitType::IntAlu];
        s.set_row(70, 2, &row);
        assert_eq!(s.row(70, 2), row.to_vec());
        assert!(s.row(70, 1).is_empty());
        assert!(s.row(71, 2).is_empty());
        // Overwriting with a shorter row clears the tail.
        s.set_row(70, 2, &row[..1]);
        assert_eq!(s.row(70, 2), vec![UnitType::Lsu]);
    }

    #[test]
    fn demand_counts_expand_in_canonical_order() {
        let mut s = LaneStimulus::new(64, 2, 7, 8);
        let demand = TypeCounts::new([2, 0, 1, 0, 1]);
        s.set_demand_counts(5, 0, &demand).unwrap();
        assert_eq!(
            s.row(5, 0),
            vec![
                UnitType::IntAlu,
                UnitType::IntAlu,
                UnitType::Lsu,
                UnitType::FpMdu
            ]
        );
        let over = TypeCounts::new([7, 1, 0, 0, 0]);
        assert!(s.set_demand_counts(5, 0, &over).is_err());
    }

    #[test]
    fn busy_round_trips() {
        let mut s = LaneStimulus::new(128, 3, 7, 8);
        s.set_busy_mask(65, 1, 0b1010_0001);
        assert_eq!(s.busy_mask(65, 1), 0b1010_0001);
        assert_eq!(s.busy_mask(64, 1), 0);
        assert_eq!(s.busy_mask(65, 0), 0);
        assert_eq!(s.busy_plane(1, 0, 1) >> 1, 1);
        assert_eq!(s.busy_plane(1, 1, 1), 0);
    }
}

//! Bit-sliced struct-of-arrays lane kernel: the selection circuit for
//! thousands of machines per core.
//!
//! The paper's steering unit is a small combinational circuit — decode
//! the queue's demand signature, count required units in 3-bit
//! saturating counters, score each candidate configuration with the
//! barrel-shift CEM, pick the minimal-error choice. Scored one machine
//! at a time (the scalar [`Machine`](crate::processor::Machine)) that
//! circuit costs a few hundred nanoseconds per cycle. This module
//! evaluates it *transposed*: the state of `N` independent machines
//! (`N` a multiple of 64) is held as bit planes — bit `l` of plane `b`
//! is bit `b` of lane `l`'s value — and every gate of the circuit
//! becomes one `u64` bitwise op per 64 lanes.
//!
//! Pipeline per step (one cycle for all lanes, per 64-lane word):
//!
//! 1. **decode** ([`plane`], [`stimulus`]) — queue-entry type codes
//!    become per-type demand bit-planes;
//! 2. **count** — bit-sliced saturating requirement counters
//!    (ripple-carry over `u64` columns), optionally EWMA-smoothed;
//! 3. **CEM** — barrel-shift error evaluation as shift-mask
//!    arithmetic: candidate shifts are compile-time-constant plane
//!    reindexes, the current config's shift is muxed from its live
//!    availability counts;
//! 4. **select** — minimal-error choice with the paper's tie rules
//!    (current configuration favored), emitting the two-bit
//!    [`ConfigChoice`](rsp_core::select::ConfigChoice) code of all 64
//!    lanes of a word at once; the loader, load countdown, and keyed
//!    fault tick then advance each lane's fabric state in place.
//!
//! What the kernel does *not* evaluate is the out-of-order core that
//! feeds the queue, so per-cycle demand and busy masks are supplied as
//! a pre-transposed [`LaneStimulus`] — either synthetic
//! ([`rsp_workloads::lanes`]-style traces) or recorded from scalar
//! runs ([`record_steering`]) for bit-exact differential testing.
//!
//! [`rsp_workloads::lanes`]: https://docs.rs/rsp-workloads

pub mod plane;

mod batch;
mod record;
mod runner;
mod stimulus;

pub use batch::{
    LaneBatch, LaneParams, LaneStats, MAX_LANE_CANDIDATES, MAX_LANE_SITES, MAX_LANE_SLOTS,
};
pub use record::{record_steering, stimulus_from_records, RecordedRun, SteerRecord};
pub use runner::{LaneRunner, LaneSummary};
pub use stimulus::LaneStimulus;

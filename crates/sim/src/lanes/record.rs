//! Recording scalar steering stimuli and replaying them into lanes.
//!
//! The lane kernel evaluates the closed steering loop (selection,
//! loader, load countdown, fault tick) but not the out-of-order core
//! that produces the demand it observes. To compare the kernel against
//! the scalar [`Machine`](crate::processor::Machine) bit-for-bit, we
//! record the selection unit's per-cycle *inputs* from a scalar run —
//! the raw demand signature and the fabric busy mask at the steer
//! stage — together with the scalar's per-cycle *outputs* (choice and
//! loads started), then replay the inputs through a [`LaneBatch`] and
//! check the outputs match on every cycle.
//!
//! One busy snapshot per cycle serves both consumers in the kernel
//! (loader span-busy check and fault-tick idle-victim check) because in
//! the scalar machine busy bits only change before steer (complete /
//! issue) and at the very end of the cycle (fabric tick).

use super::stimulus::LaneStimulus;
use crate::config::SimConfig;
use crate::processor::Processor;
use rsp_isa::units::TypeCounts;
use rsp_isa::Program;

/// One steer-stage observation from a scalar run: the policy inputs
/// seen this cycle and the outcome it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteerRecord {
    /// Raw ready-demand signature (pre-filter, pre-saturation).
    pub demand: TypeCounts,
    /// Fabric busy mask at the steer stage (bit `s` = slot `s` busy).
    pub busy: u64,
    /// Two-bit configuration choice, `None` for policies that never
    /// select (e.g. [`PolicyKind::Static`](crate::config::PolicyKind)).
    pub chosen: Option<u8>,
    /// Reconfiguration loads the policy started this cycle.
    pub loads_started: u8,
}

/// A scalar run's complete steer log plus its cycle count.
#[derive(Debug, Clone)]
pub struct RecordedRun {
    /// Per-cycle steer observations, index = cycle. May be shorter than
    /// `cycles`: the halting cycle retires without reaching steer.
    pub records: Vec<SteerRecord>,
    /// Total machine cycles the run took (or the cap, if it hit it).
    pub cycles: u64,
}

/// Run `program` on the scalar machine under `cfg`, recording the
/// steer-stage stimulus and outcome of every cycle (up to
/// `max_cycles`).
pub fn record_steering(
    cfg: &SimConfig,
    program: &Program,
    max_cycles: u64,
) -> Result<RecordedRun, String> {
    let proc = Processor::try_new(cfg.clone()).map_err(|e| e.to_string())?;
    let mut m = proc.start(program).map_err(|e| e.to_string())?;
    m.enable_steer_log();
    while m.cycle() < max_cycles && m.step() {}
    Ok(RecordedRun {
        records: m.take_steer_log(),
        cycles: m.cycle(),
    })
}

/// Build a lane stimulus replaying `runs` across `lanes` lanes: lane
/// `l` replays run `l % runs.len()`. The stimulus covers the longest
/// run; shorter lanes idle (zero demand, no busy slots) past their
/// recorded length, so comparisons against the scalar are only
/// meaningful within each lane's own recorded window.
pub fn stimulus_from_records(
    runs: &[RecordedRun],
    lanes: usize,
    queue_len: usize,
    n_slots: usize,
) -> Result<LaneStimulus, String> {
    if runs.is_empty() {
        return Err("no recorded runs to replay".into());
    }
    let cycles = runs
        .iter()
        .map(|r| r.records.len())
        .max()
        .expect("non-empty");
    if cycles == 0 {
        return Err("all recorded runs are empty".into());
    }
    let mut stim = LaneStimulus::new(lanes, cycles, queue_len, n_slots);
    for lane in 0..lanes {
        let run = &runs[lane % runs.len()];
        for (cycle, rec) in run.records.iter().enumerate() {
            stim.set_demand_counts(lane, cycle, &rec.demand)?;
            stim.set_busy_mask(lane, cycle, rec.busy);
        }
    }
    Ok(stim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_workloads::synth::SynthSpec;

    #[test]
    fn records_and_replays_a_scalar_run() {
        let cfg = SimConfig::default();
        let program = SynthSpec {
            body_len: 80,
            ..SynthSpec::new("record-smoke", rsp_workloads::UnitMix::INT_HEAVY, 11)
        }
        .generate();
        let run = record_steering(&cfg, &program, 2_000).expect("record");
        assert!(!run.records.is_empty());
        assert!(run.cycles as usize >= run.records.len());
        // The paper policy always chooses something each steer cycle.
        assert!(run.records.iter().all(|r| r.chosen.is_some()));

        let stim = stimulus_from_records(
            std::slice::from_ref(&run),
            128,
            cfg.queue_size,
            cfg.fabric.rfu_slots,
        )
        .expect("stimulus");
        assert_eq!(stim.cycles(), run.records.len());
        // Every lane replays the same single run.
        for (cycle, rec) in run.records.iter().enumerate() {
            assert_eq!(stim.busy_mask(0, cycle), rec.busy);
            assert_eq!(stim.busy_mask(127, cycle), rec.busy);
            assert_eq!(stim.row(64, cycle).len(), rec.demand.total() as usize);
        }
    }

    #[test]
    fn stimulus_requires_records() {
        assert!(stimulus_from_records(&[], 64, 7, 8).is_err());
        let empty = RecordedRun {
            records: Vec::new(),
            cycles: 0,
        };
        assert!(stimulus_from_records(&[empty], 64, 7, 8).is_err());
    }
}

//! Steering trace recording: per-cycle observability of demand, fabric
//! contents, and reconfiguration activity, serialisable to JSON for
//! offline analysis/plotting.

use crate::processor::Machine;
use rsp_isa::units::TypeCounts;
use serde::{Deserialize, Serialize};

/// One sampled cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Cycle number at sampling time.
    pub cycle: u64,
    /// Demand signature the steering policy observes.
    pub demand: TypeCounts,
    /// Units of each type configured in the RFU fabric.
    pub rfu_counts: TypeCounts,
    /// **Effective** availability: configured units (FFUs + RFUs) minus
    /// zombies corrupted by undetected upsets — the capacity the
    /// fault-aware selection unit scores against. Defaults to zero when
    /// absent so traces recorded before this field existed still parse.
    #[serde(default)]
    pub effective_counts: TypeCounts,
    /// Raw 3-bit slot encodings of the allocation vector.
    pub alloc: Vec<u8>,
    /// Reconfigurations in flight.
    pub loads_in_flight: usize,
    /// Occupied wake-up entries.
    pub queue_len: usize,
    /// In-flight (dispatched, unretired) instructions.
    pub in_flight: usize,
    /// Instructions retired so far.
    pub retired: u64,
    /// Configured units currently corrupted by undetected upsets.
    pub corrupted_units: usize,
    /// Slots marked permanently dead by the fault model.
    pub dead_slots: usize,
    /// Cumulative scrub passes performed so far.
    pub scrubs: u64,
}

/// A recorded steering trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SteeringTrace {
    /// Samples in cycle order.
    pub samples: Vec<TraceSample>,
}

impl SteeringTrace {
    /// Empty trace.
    pub fn new() -> SteeringTrace {
        SteeringTrace::default()
    }

    /// Sample the machine's current state.
    pub fn record(&mut self, m: &Machine) {
        self.samples.push(TraceSample {
            cycle: m.cycle(),
            demand: m.current_demand(),
            rfu_counts: m.fabric().rfu_counts(),
            effective_counts: m.fabric().effective_counts(),
            alloc: m.fabric().alloc().encodings().iter().map(|e| e.0).collect(),
            loads_in_flight: m.fabric().loads_in_flight(),
            queue_len: m.wakeup().len(),
            in_flight: m.in_flight(),
            retired: m.retired(),
            corrupted_units: m.fabric().corrupted_units(),
            dead_slots: m.fabric().dead_slot_count(),
            scrubs: m.fabric().fault_stats().scrubs,
        });
    }

    /// Drive `m` to completion (or `max_cycles`), sampling every
    /// `interval` cycles. Returns the final report.
    // The lint's suggestion (`u64::is_multiple_of`) needs Rust 1.87; the
    // workspace MSRV is 1.82. `allow` instead of `expect`: older clippy
    // doesn't know this lint and would flag an unfulfilled expectation.
    #[allow(unknown_lints, clippy::manual_is_multiple_of)]
    pub fn drive(
        &mut self,
        m: &mut Machine,
        interval: u64,
        max_cycles: u64,
    ) -> crate::stats::SimReport {
        let interval = interval.max(1);
        self.record(m);
        while m.cycle() < max_cycles && m.step() {
            if m.cycle() % interval == 0 {
                self.record(m);
            }
        }
        // Final sample — unless the loop's periodic sample already
        // covered this cycle (final cycle a multiple of `interval`),
        // which would duplicate it.
        if self.samples.last().map(|s| s.cycle) != Some(m.cycle()) {
            self.record(m);
        }
        m.report()
    }

    /// Cycles (sampled) during which the fabric's unit mix differed from
    /// the previous sample — a coarse steering-activity measure.
    pub fn config_change_samples(&self) -> usize {
        self.samples
            .windows(2)
            .filter(|w| w[0].rfu_counts != w[1].rfu_counts)
            .count()
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialises")
    }

    /// ASCII timeline: one row per unit type showing the *configured* RFU
    /// count (digits) at each sample, and one showing observed demand —
    /// a terminal-friendly view of steering following the workload.
    pub fn render_timeline(&self) -> String {
        use rsp_isa::units::UnitType;
        use std::fmt::Write;
        let mut s = String::new();
        if self.samples.is_empty() {
            return s;
        }
        let digit = |v: u8| char::from_digit(v.min(9) as u32, 10).unwrap();
        let _ = writeln!(
            s,
            "timeline: {} samples, cycles {}..{}",
            self.samples.len(),
            self.samples.first().unwrap().cycle,
            self.samples.last().unwrap().cycle
        );
        let _ = writeln!(s, "configured RFU units per type (one digit per sample):");
        for &t in &UnitType::ALL {
            let _ = write!(s, "  {:<8} |", t.to_string());
            for smp in &self.samples {
                s.push(digit(smp.rfu_counts.get(t)));
            }
            let _ = writeln!(s, "|");
        }
        let _ = writeln!(s, "observed demand per type:");
        for &t in &UnitType::ALL {
            let _ = write!(s, "  {:<8} |", t.to_string());
            for smp in &self.samples {
                s.push(digit(smp.demand.get(t)));
            }
            let _ = writeln!(s, "|");
        }
        let _ = write!(s, "  {:<8} |", "loads");
        for smp in &self.samples {
            s.push(if smp.loads_in_flight > 0 { '*' } else { '.' });
        }
        let _ = writeln!(s, "|");
        // Fault visibility: corrupted (zombie) units and dead slots per
        // sample. Omitted entirely for clean runs to keep the common
        // fault-free view unchanged.
        if self.samples.iter().any(|p| p.corrupted_units > 0) {
            let _ = write!(s, "  {:<8} |", "corrupt");
            for smp in &self.samples {
                s.push(digit(smp.corrupted_units.min(9) as u8));
            }
            let _ = writeln!(s, "|");
            // Effective (post-fault) capacity over time: total configured
            // units minus zombies — the dips line up with the corrupt row
            // and show how much capacity the steering can actually use.
            let _ = write!(s, "  {:<8} |", "effcap");
            for smp in &self.samples {
                s.push(digit(smp.effective_counts.total().min(9) as u8));
            }
            let _ = writeln!(s, "|");
        }
        if self.samples.iter().any(|p| p.dead_slots > 0) {
            let _ = write!(s, "  {:<8} |", "dead");
            for smp in &self.samples {
                s.push(digit(smp.dead_slots.min(9) as u8));
            }
            let _ = writeln!(s, "|");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Processor, SimConfig};
    use rsp_isa::asm::assemble;

    #[test]
    fn trace_records_and_serialises() {
        let p = assemble(
            "t",
            "addi r1, r0, 20\nloop: mul r2, r1, r1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt",
        )
        .unwrap();
        let proc = Processor::new(SimConfig::default());
        let mut m = proc.start(&p).unwrap();
        let mut trace = SteeringTrace::new();
        let report = trace.drive(&mut m, 5, 100_000);
        assert!(report.halted);
        assert!(trace.samples.len() > 3);
        // Samples are in nondecreasing cycle order and retired counts
        // are monotone.
        assert!(trace.samples.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(trace
            .samples
            .windows(2)
            .all(|w| w[0].retired <= w[1].retired));
        let json = trace.to_json();
        let back: SteeringTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    /// Regression: when the run ends on a cycle that is a multiple of
    /// `interval`, the unconditional post-loop record used to push a
    /// second, identical sample for that cycle.
    #[test]
    fn no_duplicate_trailing_sample() {
        let p = assemble(
            "t",
            "addi r1, r0, 30\nloop: mul r2, r1, r1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt",
        )
        .unwrap();
        // interval 1 makes the final cycle always a sampling cycle.
        let proc = Processor::new(SimConfig::default());
        let mut m = proc.start(&p).unwrap();
        let mut trace = SteeringTrace::new();
        trace.drive(&mut m, 1, 100_000);
        assert!(
            trace.samples.windows(2).all(|w| w[0].cycle < w[1].cycle),
            "cycle numbers must be strictly increasing"
        );
        // Budget-exhaustion path: cut the run at a multiple of the
        // interval so the last step lands exactly on a sampling cycle.
        let proc = Processor::new(SimConfig::default());
        let mut m = proc.start(&p).unwrap();
        let mut trace = SteeringTrace::new();
        trace.drive(&mut m, 5, 20);
        assert!(trace.samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
        assert_eq!(trace.samples.last().unwrap().cycle, 20);
        // A final cycle off the sampling grid still gets its sample.
        let proc = Processor::new(SimConfig::default());
        let mut m = proc.start(&p).unwrap();
        let mut trace = SteeringTrace::new();
        trace.drive(&mut m, 7, 23);
        assert_eq!(trace.samples.last().unwrap().cycle, 23);
        assert!(trace.samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn effective_counts_default_for_old_traces() {
        // Samples recorded before the effective_counts field existed
        // must keep parsing (and read as zero effective capacity).
        let json = r#"{"cycle":1,"demand":[0,0,0,0,0],"rfu_counts":[1,0,0,0,0],
            "alloc":[0,0,0,0,0,0,0,0],"loads_in_flight":0,"queue_len":0,
            "in_flight":0,"retired":0,"corrupted_units":0,"dead_slots":0,"scrubs":0}"#;
        let s: TraceSample = serde_json::from_str(json).unwrap();
        assert_eq!(s.effective_counts, TypeCounts::ZERO);
    }

    #[test]
    fn effective_capacity_row_appears_under_faults() {
        use crate::PolicyKind;
        let p = assemble(
            "t",
            "addi r1, r0, 120\nloop: mul r2, r1, r1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt",
        )
        .unwrap();
        let mut cfg = SimConfig {
            policy: PolicyKind::PAPER_FAULT_AWARE,
            ..SimConfig::default()
        };
        cfg.fabric.faults.seed = 3;
        cfg.fabric.faults.upset_ppm = 100_000;
        cfg.fabric.faults.scrub_interval = 64;
        let proc = Processor::new(cfg);
        let mut m = proc.start(&p).unwrap();
        let mut trace = SteeringTrace::new();
        trace.drive(&mut m, 1, 5_000);
        assert!(
            trace.samples.iter().any(|s| s.corrupted_units > 0),
            "the upset rate must corrupt at least one sampled cycle"
        );
        // Effective capacity dips whenever zombies are live.
        let max_eff = trace
            .samples
            .iter()
            .map(|s| s.effective_counts.total())
            .max()
            .unwrap();
        assert!(trace
            .samples
            .iter()
            .any(|s| s.effective_counts.total() < max_eff));
        let tl = trace.render_timeline();
        assert!(tl.contains("effcap"), "missing effcap row in:\n{tl}");
        assert!(tl.contains("corrupt"), "missing corrupt row in:\n{tl}");
    }

    #[test]
    fn timeline_renders_rows_per_type() {
        let p = assemble("t", "addi r1, r0, 3\nmul r2, r1, r1\nhalt").unwrap();
        let proc = Processor::new(SimConfig::default());
        let mut m = proc.start(&p).unwrap();
        let mut trace = SteeringTrace::new();
        trace.drive(&mut m, 1, 1000);
        let tl = trace.render_timeline();
        for label in ["Int-ALU", "FP-MDU", "loads", "timeline:"] {
            assert!(tl.contains(label), "missing {label} in:\n{tl}");
        }
        assert!(SteeringTrace::new().render_timeline().is_empty());
    }
}

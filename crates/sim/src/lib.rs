//! # rsp-sim — cycle-accurate simulator of the reconfigurable
//! superscalar processor
//!
//! Implements the host architecture of Fig. 1 (derived from Niyonkuru &
//! Zeidler's run-time reconfigurable processor) around the steering
//! machinery of `rsp-core`:
//!
//! * instruction memory + **fetch unit** + **trace cache** ([`frontend`]);
//! * decoder (via `rsp-isa`'s binary decoding — the front end fetches
//!   *words*);
//! * a 7-entry instruction queue realised as the **wake-up array** of
//!   `rsp-sched`;
//! * the **register update unit** ([`rob`]): dispatch, renaming,
//!   out-of-order issue, operand forwarding, in-order completion;
//! * **fixed + reconfigurable functional units** (`rsp-fabric`), steered
//!   each cycle by an `rsp-core` policy;
//! * separate data memory and the architectural register file.
//!
//! ### Pipeline semantics (one [`processor::Machine::step`] = one cycle)
//!
//! Stages run in this order within a cycle: retire → complete → issue →
//! steer → dispatch → fetch/decode → tick. An instruction granted at
//! cycle `C` with latency `L` completes at the top of cycle `C+L`; a
//! dependent can be granted in that same cycle `C+L` (operand forwarding
//! through the register update unit).
//!
//! Ordering rules (DESIGN.md §5):
//! * conditional branches and `jalr` predict not-taken / sequential;
//!   mispredicts flush at branch completion;
//! * `jal` redirects at decode (target is static);
//! * memory operations issue in program order and non-speculatively —
//!   each memory op carries wake-up dependencies on the previous memory
//!   op and the previous unresolved branch. Loads/stores access data
//!   memory at issue; nothing speculative ever reaches memory.
//!
//! Every run can be differentially checked against the in-order
//! [`rsp_isa::ReferenceInterpreter`] (same ISA semantics module):
//! identical final registers, memory, and retired-instruction count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod exec;
pub mod frontend;
pub mod lanes;
pub mod pool;
pub mod processor;
pub mod rob;
pub mod stats;
pub mod trace;

pub use batch::{run_batch, BatchRunner, BatchSummary};
pub use config::{BranchPrediction, DemandMode, Latencies, PolicyKind, SelectMode, SimConfig};
pub use lanes::{LaneBatch, LaneRunner, LaneStimulus, LaneSummary};
pub use pool::{MachinePool, PoolStats};
pub use processor::{Processor, RunError};
pub use rsp_fabric::fault::{FaultParams, FaultStats};
pub use rsp_obs::{MetricsSnapshot, Telemetry};
pub use stats::SimReport;
pub use trace::{SteeringTrace, TraceSample};

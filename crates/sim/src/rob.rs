//! The register update unit (reorder buffer + rename).
//!
//! Paper §2: "The register update unit collects decoded instructions from
//! the instruction queue and dispatches them to the various functional
//! units … resolves all dependencies that occur between instructions and
//! registers [dependency buffer] … writes computation results back to the
//! register file during the write-back stage … allows the processor to
//! perform out-of-order execution of instructions, in-order completion of
//! instructions, and operand forwarding."
//!
//! Realisation here:
//! * entries live in program order; the head retires first (in-order
//!   completion);
//! * the *dependency buffer* is the rename map: architectural register →
//!   sequence number of its latest in-flight writer; dispatch resolves
//!   each source either to a producer (forwarded from the producer's ROB
//!   entry at issue) or to the committed register file;
//! * an instruction keeps its wake-up array slot from dispatch to
//!   retirement (paper §4.1: entries are not removed until retirement),
//!   so the array *is* the scheduling window.

use crate::frontend::FetchedInstr;
use rsp_fabric::fabric::UnitId;
use rsp_isa::regs::{AnyReg, NUM_REGS};
use rsp_isa::semantics::Value;
use rsp_isa::Instruction;
use rsp_sched::SlotIdx;
use std::collections::VecDeque;

/// Monotone per-dispatch sequence number (also the age tag in the
/// wake-up array).
pub type Seq = u64;

/// Where an entry is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// In the queue, not yet granted.
    Dispatched,
    /// Granted to a unit; completes at `done_at`.
    Executing {
        /// The functional unit executing it.
        unit: UnitId,
        /// Cycle at the top of which the result is complete.
        done_at: u64,
    },
    /// Result computed; waiting for in-order retirement.
    Completed,
}

/// One register-update-unit entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RobEntry {
    /// Age / identity.
    pub seq: Seq,
    /// The instruction's PC.
    pub pc: u64,
    /// The instruction.
    pub instr: Instruction,
    /// The PC the front end continued at (prediction to verify).
    pub predicted_next: u64,
    /// The wake-up array slot held from dispatch to retirement.
    pub wakeup_slot: SlotIdx,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Producer seq for src1/src2 (dependency buffer snapshot at
    /// dispatch); `None` = read the committed register file.
    pub src_producers: [Option<Seq>; 2],
    /// The pending destination value (set at issue, written back at
    /// retirement).
    pub value: Option<Value>,
    /// The resolved next PC (set at completion; `pc + 1` for straight-
    /// line instructions, the branch target for taken control flow,
    /// `None` = control flow left the program / halt).
    pub resolved_next: Option<u64>,
    /// Cycle the entry was dispatched, for the telemetry layer's
    /// queue-residency histogram. Stamped by the pipeline driver only
    /// when telemetry is enabled; 0 otherwise.
    pub dispatched_at: u64,
}

/// The dependency buffer: architectural register → latest in-flight
/// writer, as a flat array over [`AnyReg::dense_index`] — a hashed map
/// here showed up hot in the cycle-loop profile.
type RenameMap = [Option<Seq>; 2 * NUM_REGS];

const EMPTY_RENAME: RenameMap = [None; 2 * NUM_REGS];

/// The register update unit.
#[derive(Debug, Clone)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
    next_seq: Seq,
    rename: RenameMap,
    last_mem: Option<Seq>,
    last_branch: Option<Seq>,
}

impl Default for Rob {
    fn default() -> Rob {
        Rob {
            entries: VecDeque::new(),
            capacity: 0,
            next_seq: 0,
            rename: EMPTY_RENAME,
            last_mem: None,
            last_branch: None,
        }
    }
}

impl Rob {
    /// An empty unit with room for `capacity` in-flight instructions.
    pub fn new(capacity: usize) -> Rob {
        Rob {
            capacity,
            ..Rob::default()
        }
    }

    /// Empty the unit for a fresh run, keeping the entry and rename-map
    /// allocations (used by the batched driver's machine reuse).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.rename = EMPTY_RENAME;
        self.next_seq = 0;
        self.last_mem = None;
        self.last_branch = None;
    }

    /// In-flight instruction count.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True iff dispatch must stall.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The oldest entry.
    #[inline]
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// The sequence number the next dispatch will receive (needed by the
    /// caller to tag the wake-up entry before dispatching).
    #[inline]
    pub fn next_seq(&self) -> Seq {
        self.next_seq
    }

    /// Index of the entry with sequence number `seq`, if present.
    ///
    /// Entries are in strictly increasing seq order (dispatch appends,
    /// retire pops the front, flush drains the tail), and gaps only
    /// appear after flushes — so the entry sits at index
    /// `seq - front.seq` or below. Starting there and walking down makes
    /// the gap-free common case a single probe.
    fn index_of(&self, seq: Seq) -> Option<usize> {
        let front = self.entries.front()?.seq;
        if seq < front {
            return None;
        }
        let mut i = ((seq - front) as usize).min(self.entries.len() - 1);
        loop {
            let s = self.entries[i].seq;
            if s == seq {
                return Some(i);
            }
            if s < seq || i == 0 {
                return None;
            }
            i -= 1;
        }
    }

    /// Entry by sequence number.
    pub fn get(&self, seq: Seq) -> Option<&RobEntry> {
        let i = self.index_of(seq)?;
        Some(&self.entries[i])
    }

    /// Mutable entry by sequence number.
    pub fn get_mut(&mut self, seq: Seq) -> Option<&mut RobEntry> {
        let i = self.index_of(seq)?;
        Some(&mut self.entries[i])
    }

    /// Iterate entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Mutable iteration oldest-first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// The seq of the latest in-flight writer of `reg`, if any — the
    /// dependency-buffer lookup.
    pub fn producer_of(&self, reg: AnyReg) -> Option<Seq> {
        self.rename[reg.dense_index()]
    }

    /// The latest in-flight memory operation (for the in-order memory
    /// chain).
    #[inline]
    pub fn last_mem(&self) -> Option<Seq> {
        self.last_mem
    }

    /// The latest in-flight control-flow instruction (the speculation
    /// guard for memory operations).
    #[inline]
    pub fn last_branch(&self) -> Option<Seq> {
        self.last_branch
    }

    /// Dispatch a fetched instruction into the unit. The caller has
    /// already allocated `wakeup_slot`. Returns the entry's seq.
    ///
    /// # Panics
    /// Panics if the unit is full.
    pub fn dispatch(&mut self, f: &FetchedInstr, wakeup_slot: SlotIdx) -> Seq {
        assert!(!self.is_full(), "dispatch into a full register update unit");
        let seq = self.next_seq;
        self.next_seq += 1;
        let srcs = [f.instr.src1, f.instr.src2];
        let src_producers = [
            srcs[0]
                .filter(|r| !r.is_hardwired_zero())
                .and_then(|r| self.producer_of(r)),
            srcs[1]
                .filter(|r| !r.is_hardwired_zero())
                .and_then(|r| self.producer_of(r)),
        ];
        self.entries.push_back(RobEntry {
            seq,
            pc: f.pc,
            instr: f.instr,
            predicted_next: f.predicted_next,
            wakeup_slot,
            stage: Stage::Dispatched,
            src_producers,
            value: None,
            resolved_next: None,
            dispatched_at: 0,
        });
        if let Some(d) = f.instr.arch_dest() {
            self.rename[d.dense_index()] = Some(seq);
        }
        if f.instr.opcode.is_memory() {
            self.last_mem = Some(seq);
        }
        if f.instr.opcode.is_control_flow() {
            self.last_branch = Some(seq);
        }
        seq
    }

    /// Retire the head entry (must be [`Stage::Completed`]); returns it.
    ///
    /// # Panics
    /// Panics if the unit is empty or the head is not completed.
    pub fn retire_head(&mut self) -> RobEntry {
        let e = self.entries.pop_front().expect("retire on empty unit");
        assert_eq!(e.stage, Stage::Completed, "in-order completion violated");
        self.forget(&e);
        e
    }

    /// Squash every entry younger than `seq` (exclusive) into `out`
    /// (cleared first), youngest-last, for the caller to release wake-up
    /// slots and units. Rebuilds the dependency buffer from the
    /// survivors, reusing the rename map's allocation — the hot loop
    /// passes a scratch buffer so a flush allocates nothing in steady
    /// state.
    pub fn flush_after_into(&mut self, seq: Seq, out: &mut Vec<RobEntry>) {
        out.clear();
        let split = self.entries.iter().position(|e| e.seq > seq);
        let Some(split) = split else {
            return;
        };
        out.extend(self.entries.drain(split..));
        // Rebuild rename / chain pointers from the survivors.
        self.rename = EMPTY_RENAME;
        self.last_mem = None;
        self.last_branch = None;
        for e in &self.entries {
            if let Some(d) = e.instr.arch_dest() {
                self.rename[d.dense_index()] = Some(e.seq);
            }
            if e.instr.opcode.is_memory() {
                self.last_mem = Some(e.seq);
            }
            if e.instr.opcode.is_control_flow() {
                self.last_branch = Some(e.seq);
            }
        }
    }

    /// [`Rob::flush_after_into`] with a freshly allocated buffer.
    pub fn flush_after(&mut self, seq: Seq) -> Vec<RobEntry> {
        let mut squashed = Vec::new();
        self.flush_after_into(seq, &mut squashed);
        squashed
    }

    /// Remove a retired entry's traces from the dependency buffer (its
    /// consumers now read the committed register file).
    fn forget(&mut self, e: &RobEntry) {
        if let Some(d) = e.instr.arch_dest() {
            let r = &mut self.rename[d.dense_index()];
            if *r == Some(e.seq) {
                *r = None;
            }
        }
        if self.last_mem == Some(e.seq) {
            self.last_mem = None;
        }
        if self.last_branch == Some(e.seq) {
            self.last_branch = None;
        }
    }
}

/// Convenience for tests: a fetched wrapper around a bare instruction.
pub fn fetched(pc: u64, instr: Instruction) -> FetchedInstr {
    FetchedInstr {
        pc,
        instr,
        predicted_next: pc + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_isa::regs::IReg;
    use rsp_isa::Opcode;

    fn r(n: u8) -> IReg {
        IReg::new(n)
    }

    #[test]
    fn dispatch_tracks_rename() {
        let mut rob = Rob::new(8);
        let a = rob.dispatch(
            &fetched(0, Instruction::rri(Opcode::Addi, r(1), r(0), 1)),
            0,
        );
        let b = rob.dispatch(
            &fetched(1, Instruction::rrr(Opcode::Add, r(2), r(1), r(1))),
            1,
        );
        assert_eq!(rob.get(b).unwrap().src_producers, [Some(a), Some(a)]);
        // r2's writer is b; r1's writer is a.
        assert_eq!(rob.producer_of(AnyReg::Int(r(2))), Some(b));
        assert_eq!(rob.producer_of(AnyReg::Int(r(1))), Some(a));
        assert_eq!(rob.producer_of(AnyReg::Int(r(3))), None);
    }

    #[test]
    fn zero_register_sources_have_no_producer() {
        let mut rob = Rob::new(8);
        rob.dispatch(
            &fetched(0, Instruction::rri(Opcode::Addi, r(0), r(0), 1)),
            0,
        );
        let b = rob.dispatch(
            &fetched(1, Instruction::rri(Opcode::Addi, r(1), r(0), 2)),
            1,
        );
        assert_eq!(rob.get(b).unwrap().src_producers, [None, None]);
    }

    #[test]
    fn mem_and_branch_chains() {
        let mut rob = Rob::new(8);
        assert_eq!(rob.last_mem(), None);
        let l = rob.dispatch(&fetched(0, Instruction::lw(r(1), r(0), 0)), 0);
        assert_eq!(rob.last_mem(), Some(l));
        let br = rob.dispatch(
            &fetched(1, Instruction::branch(Opcode::Beq, r(0), r(0), 1)),
            1,
        );
        assert_eq!(rob.last_branch(), Some(br));
        let s = rob.dispatch(&fetched(2, Instruction::sw(r(1), r(0), 1)), 2);
        assert_eq!(rob.last_mem(), Some(s));
    }

    #[test]
    fn retirement_is_in_order_and_forgets() {
        let mut rob = Rob::new(8);
        let a = rob.dispatch(
            &fetched(0, Instruction::rri(Opcode::Addi, r(1), r(0), 1)),
            0,
        );
        rob.get_mut(a).unwrap().stage = Stage::Completed;
        let e = rob.retire_head();
        assert_eq!(e.seq, a);
        assert_eq!(rob.producer_of(AnyReg::Int(r(1))), None, "rename forgotten");
        assert!(rob.is_empty());
    }

    #[test]
    #[should_panic]
    fn retiring_incomplete_head_panics() {
        let mut rob = Rob::new(8);
        rob.dispatch(&fetched(0, Instruction::NOP), 0);
        let _ = rob.retire_head();
    }

    #[test]
    fn flush_rebuilds_dependency_buffer() {
        let mut rob = Rob::new(8);
        let a = rob.dispatch(
            &fetched(0, Instruction::rri(Opcode::Addi, r(1), r(0), 1)),
            0,
        );
        let br = rob.dispatch(
            &fetched(1, Instruction::branch(Opcode::Bne, r(1), r(0), 3)),
            1,
        );
        let c = rob.dispatch(
            &fetched(2, Instruction::rri(Opcode::Addi, r(1), r(0), 2)),
            2,
        );
        let _d = rob.dispatch(&fetched(3, Instruction::lw(r(2), r(1), 0)), 3);
        assert_eq!(rob.producer_of(AnyReg::Int(r(1))), Some(c));
        let squashed = rob.flush_after(br);
        assert_eq!(squashed.len(), 2);
        assert_eq!(rob.len(), 2);
        // r1's writer reverts to a; the squashed load leaves no chain.
        assert_eq!(rob.producer_of(AnyReg::Int(r(1))), Some(a));
        assert_eq!(rob.last_mem(), None);
        assert_eq!(rob.last_branch(), Some(br));
    }

    #[test]
    fn flush_after_youngest_is_noop() {
        let mut rob = Rob::new(8);
        let a = rob.dispatch(&fetched(0, Instruction::NOP), 0);
        assert!(rob.flush_after(a).is_empty());
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut rob = Rob::new(2);
        rob.dispatch(&fetched(0, Instruction::NOP), 0);
        rob.dispatch(&fetched(1, Instruction::NOP), 1);
        assert!(rob.is_full());
    }

    #[test]
    #[should_panic]
    fn dispatch_into_full_panics() {
        let mut rob = Rob::new(1);
        rob.dispatch(&fetched(0, Instruction::NOP), 0);
        rob.dispatch(&fetched(1, Instruction::NOP), 1);
    }
}

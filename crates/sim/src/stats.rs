//! Run statistics and the simulation report.

use rsp_core::loader::LoaderStats;
use rsp_fabric::fabric::FabricStats;
use rsp_fabric::fault::FaultStats;
use rsp_isa::units::TypeCounts;
use rsp_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Cycle-level stall/occupancy accounting. A cycle can contribute to
/// several counters (e.g. queue full *and* nothing issued).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallStats {
    /// Cycles where dispatch stalled because the instruction queue
    /// (wake-up array) was full.
    pub queue_full: u64,
    /// Cycles where dispatch stalled because the ROB was full.
    pub rob_full: u64,
    /// Cycles where at least one entry requested execution but received
    /// no grant (its unit type had no idle — or no configured — unit).
    pub starved_requests: u64,
    /// Cycles where the queue was completely empty (front-end starvation
    /// or program drain).
    pub queue_empty: u64,
    /// Cycles with at least one entry whose unit type had **no unit
    /// configured at all** (only possible transiently: the FFUs always
    /// provide one of each type in the default architecture).
    pub unit_unconfigured: u64,
}

/// The report produced by a completed (or budget-exhausted) run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions retired (architecturally executed).
    pub retired: u64,
    /// True iff the program halted (vs. the cycle budget running out).
    pub halted: bool,
    /// Per-type retired-instruction mix.
    pub retired_mix: TypeCounts,
    /// Instructions issued to FFUs.
    pub issued_ffu: u64,
    /// Instructions issued to RFUs.
    pub issued_rfu: u64,
    /// Branch mispredictions (pipeline flushes).
    pub flushes: u64,
    /// Instructions squashed by flushes.
    pub squashed: u64,
    /// Trace-cache hits / misses (fetch groups).
    pub trace_hits: u64,
    /// Trace-cache misses (fetch groups).
    pub trace_misses: u64,
    /// Stall accounting.
    pub stalls: StallStats,
    /// Select-free scheduling collisions (0 in arbitrated mode).
    pub collisions: u64,
    /// Fabric reconfiguration counters.
    pub fabric: FabricStats,
    /// Fault-injection counters (all-zero when the fault model is off).
    pub faults: FaultStats,
    /// Configuration-loader counters (all-default for policies without a
    /// configuration loader: static and demand-driven runs).
    pub loader: LoaderStats,
    /// Steering policy name.
    pub policy: String,
    /// Demand-driven policy loads (demand policy only).
    pub policy_loads: u64,
    /// Telemetry metrics snapshot (empty when telemetry was disabled).
    pub metrics: MetricsSnapshot,
}

impl SimReport {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Fraction of issues that went to reconfigurable units.
    pub fn rfu_issue_fraction(&self) -> f64 {
        let total = self.issued_ffu + self.issued_rfu;
        if total == 0 {
            0.0
        } else {
            self.issued_rfu as f64 / total as f64
        }
    }

    /// Trace-cache hit rate over fetch groups.
    pub fn trace_hit_rate(&self) -> f64 {
        let total = self.trace_hits + self.trace_misses;
        if total == 0 {
            0.0
        } else {
            self.trace_hits as f64 / total as f64
        }
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{:<28} cycles={:<8} retired={:<8} IPC={:.3} reconfigs={:<4} flushes={}",
            self.policy,
            self.cycles,
            self.retired,
            self.ipc(),
            self.fabric.loads_started,
            self.flushes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_division_by_zero() {
        let r = SimReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.rfu_issue_fraction(), 0.0);
        assert_eq!(r.trace_hit_rate(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let r = SimReport {
            cycles: 100,
            retired: 250,
            issued_ffu: 3,
            issued_rfu: 1,
            trace_hits: 9,
            trace_misses: 1,
            ..SimReport::default()
        };
        assert_eq!(r.ipc(), 2.5);
        assert_eq!(r.rfu_issue_fraction(), 0.25);
        assert_eq!(r.trace_hit_rate(), 0.9);
        assert!(r.summary().contains("IPC=2.500"));
    }
}

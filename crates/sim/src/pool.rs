//! A bounded pool of scalar [`Machine`]s for `rsp-serve`.
//!
//! The serve engine steps many tenants concurrently; building a
//! `Machine` from scratch (fabric, wake-up array, policy tables) per
//! tenant is the expensive path, while [`Machine::reset`] on a machine
//! built for the *same* [`SimConfig`] is pinned by the batch-runner
//! tests to be equivalent to a fresh build. The pool exploits that:
//! released machines are cached with their config, and a lease for a
//! matching config reuses one via `reset` instead of rebuilding.
//!
//! The pool never blocks: a lease beyond the cache simply builds a new
//! machine (admission control lives in the serve scheduler, not here),
//! and a release beyond [`MachinePool::capacity`] drops the machine.
//! [`PoolStats`] counts reuses vs. rebuilds so the serve telemetry can
//! report cache effectiveness.

use crate::config::SimConfig;
use crate::processor::{Machine, Processor, RunError};
use rsp_isa::Program;
use serde::{Deserialize, Serialize};

/// Lease/reuse counters for pool effectiveness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Total leases served.
    pub leases: u64,
    /// Leases satisfied by resetting a cached machine (cheap path).
    pub reuses: u64,
    /// Leases that had to build a machine from scratch.
    pub rebuilds: u64,
    /// Machines returned to the pool.
    pub releases: u64,
    /// Releases dropped because the pool was at capacity.
    pub dropped: u64,
    /// Machines currently leased out (leases minus releases).
    #[serde(default)]
    pub in_use: u64,
    /// High-water mark of concurrently leased machines.
    #[serde(default)]
    pub peak_in_use: u64,
}

/// A bounded cache of idle machines keyed by their [`SimConfig`].
#[derive(Debug)]
pub struct MachinePool {
    free: Vec<(SimConfig, Machine)>,
    capacity: usize,
    stats: PoolStats,
}

impl MachinePool {
    /// A pool caching at most `capacity` idle machines.
    pub fn new(capacity: usize) -> MachinePool {
        MachinePool {
            free: Vec::with_capacity(capacity.min(64)),
            capacity,
            stats: PoolStats::default(),
        }
    }

    /// Maximum number of idle machines the pool retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Idle machines currently cached.
    pub fn free(&self) -> usize {
        self.free.len()
    }

    /// Lease a machine configured as `cfg` and started on `program`.
    ///
    /// Reuses a cached machine with an identical config when one is
    /// available (via [`Machine::reset`]); otherwise builds one. The
    /// caller owns the machine until it hands it back with
    /// [`MachinePool::release`].
    pub fn lease(&mut self, cfg: &SimConfig, program: &Program) -> Result<Machine, RunError> {
        self.stats.leases += 1;
        if let Some(i) = self.free.iter().position(|(c, _)| c == cfg) {
            let (_, mut m) = self.free.swap_remove(i);
            m.reset(program);
            self.stats.reuses += 1;
            self.track_occupancy();
            return Ok(m);
        }
        let m = Processor::try_new(cfg.clone())?.start(program)?;
        self.stats.rebuilds += 1;
        self.track_occupancy();
        Ok(m)
    }

    fn track_occupancy(&mut self) {
        self.stats.in_use += 1;
        self.stats.peak_in_use = self.stats.peak_in_use.max(self.stats.in_use);
    }

    /// Return a machine to the pool. Dropped (not cached) when the pool
    /// is at capacity.
    pub fn release(&mut self, cfg: SimConfig, machine: Machine) {
        self.stats.releases += 1;
        self.stats.in_use = self.stats.in_use.saturating_sub(1);
        if self.free.len() < self.capacity {
            self.free.push((cfg, machine));
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Lease/reuse counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use rsp_isa::asm::assemble;

    fn tiny_program(name: &str) -> Program {
        assemble(
            name,
            "addi r1, r0, 5\n addi r2, r1, 2\n add r3, r1, r2\n halt",
        )
        .unwrap()
    }

    #[test]
    fn lease_release_lease_reuses_matching_config() {
        let cfg = SimConfig::default();
        let p = tiny_program("t");
        let mut pool = MachinePool::new(4);
        let m = pool.lease(&cfg, &p).unwrap();
        assert_eq!(pool.stats().rebuilds, 1);
        pool.release(cfg.clone(), m);
        assert_eq!(pool.free(), 1);
        let _m2 = pool.lease(&cfg, &p).unwrap();
        let s = pool.stats();
        assert_eq!((s.leases, s.reuses, s.rebuilds), (2, 1, 1));
        assert_eq!(pool.free(), 0);
    }

    #[test]
    fn mismatched_config_rebuilds() {
        let cfg_a = SimConfig::default();
        let cfg_b = SimConfig {
            policy: PolicyKind::Static,
            ..SimConfig::default()
        };
        let p = tiny_program("t");
        let mut pool = MachinePool::new(4);
        let m = pool.lease(&cfg_a, &p).unwrap();
        pool.release(cfg_a, m);
        let _m2 = pool.lease(&cfg_b, &p).unwrap();
        let s = pool.stats();
        assert_eq!((s.reuses, s.rebuilds), (0, 2));
        // The cached cfg_a machine is still there for a later lease.
        assert_eq!(pool.free(), 1);
    }

    #[test]
    fn release_beyond_capacity_drops() {
        let cfg = SimConfig::default();
        let p = tiny_program("t");
        let mut pool = MachinePool::new(1);
        let a = pool.lease(&cfg, &p).unwrap();
        let b = pool.lease(&cfg, &p).unwrap();
        pool.release(cfg.clone(), a);
        pool.release(cfg.clone(), b);
        assert_eq!(pool.free(), 1);
        assert_eq!(pool.stats().dropped, 1);
    }

    #[test]
    fn occupancy_tracks_outstanding_leases_and_peak() {
        let cfg = SimConfig::default();
        let p = tiny_program("t");
        let mut pool = MachinePool::new(4);
        let a = pool.lease(&cfg, &p).unwrap();
        let b = pool.lease(&cfg, &p).unwrap();
        assert_eq!(pool.stats().in_use, 2);
        assert_eq!(pool.stats().peak_in_use, 2);
        pool.release(cfg.clone(), a);
        assert_eq!(pool.stats().in_use, 1);
        let c = pool.lease(&cfg, &p).unwrap();
        assert_eq!(pool.stats().in_use, 2);
        pool.release(cfg.clone(), b);
        pool.release(cfg.clone(), c);
        let s = pool.stats();
        assert_eq!(s.in_use, 0);
        assert_eq!(s.peak_in_use, 2, "peak survives releases");
    }

    #[test]
    fn reused_machine_runs_identically_to_fresh() {
        // A pooled lease must be indistinguishable from a fresh build:
        // run the same program both ways and compare reports.
        let cfg = SimConfig::default();
        let p = tiny_program("t");
        let mut pool = MachinePool::new(2);
        let mut warm = pool.lease(&cfg, &p).unwrap();
        while !warm.finished() {
            warm.step();
        }
        pool.release(cfg.clone(), warm);

        let mut reused = pool.lease(&cfg, &p).unwrap();
        while !reused.finished() {
            reused.step();
        }
        let mut fresh = Processor::new(cfg).start(&p).unwrap();
        while !fresh.finished() {
            fresh.step();
        }
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(reused.cycle(), fresh.cycle());
        assert_eq!(reused.retired(), fresh.retired());
        assert_eq!(reused.regfile().iregs(), fresh.regfile().iregs());
    }
}

//! Simulator configuration.

use rsp_core::cem::CemKind;
use rsp_core::select::TieBreak;
use rsp_fabric::config::SteeringSet;
use rsp_fabric::fabric::FabricParams;
use rsp_isa::LatencyClass;
use serde::{Deserialize, Serialize};

/// Execution latencies per [`LatencyClass`] (cycles ≥ 1). Units are not
/// pipelined: a unit is busy for the whole latency, which is what makes
/// the paper's "do not reconfigure a busy RFU" rule matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Latencies {
    /// Integer ALU ops, branches, jumps.
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Integer divide / remainder.
    pub int_div: u32,
    /// Loads.
    pub load: u32,
    /// Stores.
    pub store: u32,
    /// FP add/sub/compare/convert.
    pub fp_alu: u32,
    /// FP multiply.
    pub fp_mul: u32,
    /// FP divide / square root.
    pub fp_div: u32,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            int_alu: 1,
            int_mul: 4,
            int_div: 12,
            load: 2,
            store: 1,
            fp_alu: 3,
            fp_mul: 5,
            fp_div: 16,
        }
    }
}

impl Latencies {
    /// Latency of a class.
    #[inline]
    pub fn of(&self, class: LatencyClass) -> u32 {
        let l = match class {
            LatencyClass::IntAlu => self.int_alu,
            LatencyClass::IntMul => self.int_mul,
            LatencyClass::IntDiv => self.int_div,
            LatencyClass::Load => self.load,
            LatencyClass::Store => self.store,
            LatencyClass::FpAlu => self.fp_alu,
            LatencyClass::FpMul => self.fp_mul,
            LatencyClass::FpDiv => self.fp_div,
        };
        l.max(1)
    }
}

/// Conditional-branch prediction scheme of the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BranchPrediction {
    /// Static not-taken (the minimal scheme assumed throughout the
    /// experiments unless stated otherwise). Default.
    #[default]
    NotTaken,
    /// A bimodal table of 2-bit saturating counters indexed by PC,
    /// trained at retirement. Conditional branches have static targets
    /// in this ISA, so a predicted-taken branch redirects at decode with
    /// no extra pipeline cost.
    Bimodal {
        /// Number of counters (power of two recommended).
        entries: usize,
    },
}

/// How resource contention among requesting entries is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SelectMode {
    /// A precise oldest-first arbiter: losers simply retry next cycle at
    /// no cost (an idealised select stage). Default.
    #[default]
    Arbitrated,
    /// Select-free scheduling after Brown/Stark/Patt: entries fire
    /// without waiting for select; when more entries than units of a
    /// type request, the collision victims are squashed at the unit and
    /// must re-request after `penalty` recovery cycles (the scheduling
    /// replay loop). Models the cost of removing the select logic from
    /// the critical path.
    SelectFree {
        /// Recovery cycles a collision victim pays before re-requesting.
        penalty: u32,
    },
}

/// Which demand signature the steering policy sees each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DemandMode {
    /// Entries that are ready to execute (deps satisfied, unscheduled) —
    /// the paper §3.1 reading. Default.
    #[default]
    Ready,
    /// All unscheduled entries (paper §3.2 reading).
    Unscheduled,
}

/// Which steering policy drives the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The paper's selection unit + configuration loader.
    Paper {
        /// Stage-4 tie-break rule (E3 ablation).
        tie: TieBreak,
        /// Stage-3 division implementation (E5 ablation).
        cem: CemKind,
        /// Partial reconfiguration (false = E2 full-reload ablation).
        partial: bool,
        /// Fault-aware selection and loading: effective-capacity
        /// candidate scoring with hysteresis, dead-span re-placement,
        /// zombie force-reloads. Fault-free behaviour is bit-identical,
        /// so old configs (which lack the field) default to `false`.
        #[serde(default)]
        fault_aware: bool,
    },
    /// Never reconfigure; run on `initial_config` forever.
    Static,
    /// Greedy demand-driven steering without predefined configurations
    /// (paper §5 future work; the oracle when reconfiguration latency
    /// is 0).
    DemandDriven,
    /// The paper's mechanism with a shift-based EWMA demand filter
    /// (α = 2^-shift) in front of the selection unit — the churn fix of
    /// experiment E11.
    PaperSmoothed {
        /// Smoothing shift (0 = unfiltered).
        shift: u32,
    },
}

impl PolicyKind {
    /// The paper's default policy.
    pub const PAPER: PolicyKind = PolicyKind::Paper {
        tie: TieBreak::FavorCurrent,
        cem: CemKind::BarrelShifter,
        partial: true,
        fault_aware: false,
    };

    /// The paper's policy with the fault-aware selection/loader paths
    /// enabled (DESIGN.md §11).
    pub const PAPER_FAULT_AWARE: PolicyKind = PolicyKind::Paper {
        tie: TieBreak::FavorCurrent,
        cem: CemKind::BarrelShifter,
        partial: true,
        fault_aware: true,
    };
}

impl Default for PolicyKind {
    fn default() -> Self {
        PolicyKind::PAPER
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Instructions fetched/decoded per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched into the queue per cycle.
    pub dispatch_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Instruction queue (wake-up array) depth — the paper's is 7.
    pub queue_size: usize,
    /// Register update unit (reorder buffer) capacity.
    pub rob_size: usize,
    /// Front-end depth in cycles on a trace-cache miss (fetch + decode).
    pub front_latency_miss: u32,
    /// Front-end depth in cycles on a trace-cache hit (pre-decoded).
    pub front_latency_hit: u32,
    /// Trace cache capacity in instruction groups (0 disables it).
    pub trace_cache_groups: usize,
    /// Execution latencies.
    pub latencies: Latencies,
    /// Fabric geometry and reconfiguration parameters.
    pub fabric: FabricParams,
    /// Predefined steering configurations + FFU inventory.
    pub steering_set: SteeringSet,
    /// Steering policy.
    pub policy: PolicyKind,
    /// Index into `steering_set.predefined` preloaded at reset
    /// (`None` = empty fabric). Static policies should set this.
    pub initial_config: Option<usize>,
    /// Demand signature mode for the policy.
    pub demand_mode: DemandMode,
    /// Contention-resolution model for the scheduler.
    pub select_mode: SelectMode,
    /// Conditional-branch prediction scheme.
    pub branch_prediction: BranchPrediction,
    /// Data memory size in 64-bit words.
    pub data_mem_words: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 4,
            dispatch_width: 4,
            retire_width: 4,
            queue_size: rsp_sched::PAPER_QUEUE_SIZE,
            rob_size: 32,
            front_latency_miss: 2,
            front_latency_hit: 1,
            trace_cache_groups: 256,
            latencies: Latencies::default(),
            fabric: FabricParams::default(),
            steering_set: SteeringSet::paper_default(),
            policy: PolicyKind::PAPER,
            initial_config: Some(0),
            demand_mode: DemandMode::Ready,
            select_mode: SelectMode::Arbitrated,
            branch_prediction: BranchPrediction::NotTaken,
            data_mem_words: 4096,
        }
    }
}

impl SimConfig {
    /// Sanity-check the configuration. Called by the processor at
    /// construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.dispatch_width == 0 || self.retire_width == 0 {
            return Err("widths must be at least 1".into());
        }
        if self.queue_size == 0 || self.queue_size > 64 {
            return Err("queue size must be 1..=64".into());
        }
        if self.rob_size < self.queue_size {
            return Err("ROB must be at least as large as the queue".into());
        }
        if self.front_latency_hit == 0 || self.front_latency_miss < self.front_latency_hit {
            return Err("front-end latencies must satisfy 1 <= hit <= miss".into());
        }
        if let Some(i) = self.initial_config {
            if i >= self.steering_set.predefined.len() {
                return Err(format!("initial_config {i} out of range"));
            }
        }
        if self.steering_set.rfu_slots != self.fabric.rfu_slots {
            return Err("steering set and fabric disagree on RFU slot count".into());
        }
        if self.data_mem_words == 0 {
            return Err("data memory must be non-empty".into());
        }
        self.fabric
            .faults
            .validate(self.fabric.rfu_slots)
            .map_err(|e| format!("fault model: {e}"))?;
        Ok(())
    }

    /// A configuration for a static baseline pinned to predefined config
    /// `i`.
    pub fn static_on(i: usize) -> SimConfig {
        SimConfig {
            policy: PolicyKind::Static,
            initial_config: Some(i),
            ..SimConfig::default()
        }
    }

    /// The oracle configuration: demand-driven steering on a
    /// zero-latency, many-port fabric.
    pub fn oracle() -> SimConfig {
        SimConfig {
            policy: PolicyKind::DemandDriven,
            initial_config: None,
            fabric: FabricParams {
                per_slot_load_latency: 0,
                reconfig_ports: 8,
                ..FabricParams::default()
            },
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate().unwrap();
        SimConfig::static_on(2).validate().unwrap();
        SimConfig::oracle().validate().unwrap();
    }

    #[test]
    fn latency_lookup_clamps_to_one() {
        let l = Latencies {
            store: 0,
            ..Latencies::default()
        };
        assert_eq!(l.of(LatencyClass::Store), 1);
        assert_eq!(l.of(LatencyClass::FpDiv), 16);
        assert_eq!(l.of(LatencyClass::IntAlu), 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let bad = SimConfig {
            queue_size: 0,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            rob_size: 3,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            initial_config: Some(9),
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            front_latency_miss: 1,
            front_latency_hit: 2,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let mut bad = SimConfig::default();
        bad.fabric.rfu_slots = 4;
        assert!(bad.validate().is_err());
        let mut bad = SimConfig::default();
        bad.fabric.faults.upset_ppm = 2_000_000;
        assert!(bad.validate().is_err());
        let mut bad = SimConfig::default();
        bad.fabric.faults.dead_slots = vec![8];
        assert!(bad.validate().is_err());
        let mut ok = SimConfig::default();
        ok.fabric.faults.upset_ppm = 500;
        ok.fabric.faults.scrub_interval = 100;
        ok.fabric.faults.dead_slots = vec![7];
        ok.validate().unwrap();
    }

    #[test]
    fn config_serializes() {
        let c = SimConfig::default();
        let j = serde_json::to_string(&c).unwrap();
        let d: SimConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn paper_policy_json_without_fault_aware_field_parses() {
        // Configs written before the fault-aware field existed must keep
        // deserialising (and mean fault_aware = false).
        let j = r#"{"Paper":{"tie":"FavorCurrent","cem":"BarrelShifter","partial":true}}"#;
        let p: PolicyKind = serde_json::from_str(j).unwrap();
        assert_eq!(p, PolicyKind::PAPER);
        let j = serde_json::to_string(&PolicyKind::PAPER_FAULT_AWARE).unwrap();
        let d: PolicyKind = serde_json::from_str(&j).unwrap();
        assert_eq!(d, PolicyKind::PAPER_FAULT_AWARE);
        assert_ne!(PolicyKind::PAPER, PolicyKind::PAPER_FAULT_AWARE);
    }
}

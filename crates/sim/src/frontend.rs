//! The front end: instruction memory, fetch unit, trace cache, decoder.
//!
//! The fetch unit fetches up to `fetch_width` *encoded words* per cycle
//! along the predicted path and decodes them; a fetch group becomes
//! available for dispatch after the front-end latency — one cycle when
//! the group starts at a trace-cache hit (the trace cache holds
//! pre-decoded instructions, paper §2), two on a miss (configurable).
//!
//! Prediction rules:
//! * sequential fall-through by default;
//! * conditional branches predict **not-taken** (fetch continues
//!   sequentially past them);
//! * `jal` redirects *at decode* — its target is static, so following it
//!   is not a speculation that can fail;
//! * `jalr` and `halt` stop fetch: the former until the back end resolves
//!   the target and calls [`FetchUnit::redirect`], the latter for good
//!   (retiring the halt ends the program).

use crate::config::{BranchPrediction, SimConfig};
use rsp_isa::encode::{decode, Word};
use rsp_isa::{Instruction, Opcode};
use std::collections::VecDeque;

/// Bimodal predictor: 2-bit saturating counters indexed by PC
/// (state ≥ 2 = predict taken), trained at retirement.
#[derive(Debug, Clone)]
struct Bimodal {
    counters: Vec<u8>,
}

impl Bimodal {
    fn new(entries: usize) -> Bimodal {
        Bimodal {
            // Initialise weakly not-taken, matching the static scheme
            // until branches bias the counters.
            counters: vec![1; entries.max(1)],
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) % self.counters.len()
    }

    fn predict_taken(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn train(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// A decoded instruction annotated with its fetch context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchedInstr {
    /// The instruction's index (PC).
    pub pc: u64,
    /// The decoded instruction.
    pub instr: Instruction,
    /// The PC the front end continued at after this instruction (the
    /// prediction the back end checks control flow against).
    pub predicted_next: u64,
}

#[derive(Debug, Clone)]
struct FetchGroup {
    ready_at: u64,
    instrs: Vec<FetchedInstr>,
}

/// Direct-mapped trace cache over fetch-group start PCs.
#[derive(Debug, Clone)]
struct TraceCache {
    tags: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
}

impl TraceCache {
    fn new(groups: usize) -> TraceCache {
        TraceCache {
            tags: vec![None; groups],
            hits: 0,
            misses: 0,
        }
    }

    /// Probe-and-fill: returns true on hit.
    fn access(&mut self, pc: u64) -> bool {
        if self.tags.is_empty() {
            self.misses += 1;
            return false;
        }
        let idx = (pc as usize) % self.tags.len();
        if self.tags[idx] == Some(pc) {
            self.hits += 1;
            true
        } else {
            self.tags[idx] = Some(pc);
            self.misses += 1;
            false
        }
    }
}

/// The fetch unit.
#[derive(Debug, Clone)]
pub struct FetchUnit {
    /// The program image, decoded once at construction — refetching a
    /// loop body costs an array read, not a re-decode.
    decoded: Vec<Instruction>,
    pc: u64,
    stopped: bool,
    inflight: VecDeque<FetchGroup>,
    /// Recycled group buffers (drained or squashed): `cycle` pops one
    /// instead of allocating, so steady-state fetch is allocation-free.
    spare: Vec<Vec<FetchedInstr>>,
    trace: TraceCache,
    predictor: Option<Bimodal>,
    fetch_width: usize,
    latency_hit: u64,
    latency_miss: u64,
}

impl FetchUnit {
    /// A fetch unit over an encoded program image.
    ///
    /// # Panics
    /// Panics if any word fails to decode (images come from
    /// [`rsp_isa::Program::to_words`], which only emits decodable words).
    pub fn new(words: Vec<Word>, cfg: &SimConfig) -> FetchUnit {
        FetchUnit {
            decoded: words
                .iter()
                .map(|&w| decode(w).expect("instruction memory holds undecodable word"))
                .collect(),
            pc: 0,
            stopped: false,
            inflight: VecDeque::new(),
            spare: Vec::new(),
            trace: TraceCache::new(cfg.trace_cache_groups),
            predictor: match cfg.branch_prediction {
                BranchPrediction::NotTaken => None,
                BranchPrediction::Bimodal { entries } => Some(Bimodal::new(entries)),
            },
            fetch_width: cfg.fetch_width,
            latency_hit: cfg.front_latency_hit as u64,
            latency_miss: cfg.front_latency_miss as u64,
        }
    }

    /// The next PC the unit would fetch.
    #[inline]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// True iff fetch is stopped (after `jalr`/`halt`, or PC past the
    /// program end) *and* nothing is in flight.
    pub fn drained(&self) -> bool {
        self.inflight.is_empty() && (self.stopped || self.pc as usize >= self.decoded.len())
    }

    /// Trace-cache `(hits, misses)` so far.
    pub fn trace_stats(&self) -> (u64, u64) {
        (self.trace.hits, self.trace.misses)
    }

    /// Fetch one group this cycle (call at most once per cycle, and only
    /// when the dispatch buffer has room).
    pub fn cycle(&mut self, now: u64) {
        if self.stopped || self.pc as usize >= self.decoded.len() {
            return;
        }
        let hit = self.trace.access(self.pc);
        let latency = if hit {
            self.latency_hit
        } else {
            self.latency_miss
        };
        let mut instrs = self.spare.pop().unwrap_or_default();
        instrs.clear();
        for _ in 0..self.fetch_width {
            let Some(&instr) = self.decoded.get(self.pc as usize) else {
                break;
            };
            let pc = self.pc;
            let predicted_next = match instr.opcode {
                // Static target: follow it at decode.
                Opcode::Jal => (pc as i64 + instr.imm as i64).max(0) as u64,
                // Unknown target / end of program: stop after this one.
                Opcode::Jalr | Opcode::Halt => {
                    self.stopped = true;
                    pc + 1
                }
                // Conditional branches: the dynamic predictor may follow
                // the (static) taken target at decode.
                op if op.is_conditional_branch() => match &self.predictor {
                    Some(b) if b.predict_taken(pc) => (pc as i64 + instr.imm as i64).max(0) as u64,
                    _ => pc + 1,
                },
                // Plain fall-through.
                _ => pc + 1,
            };
            instrs.push(FetchedInstr {
                pc,
                instr,
                predicted_next,
            });
            self.pc = predicted_next;
            if self.stopped {
                break;
            }
        }
        if instrs.is_empty() {
            self.spare.push(instrs);
        } else {
            self.inflight.push_back(FetchGroup {
                ready_at: now + latency,
                instrs,
            });
        }
    }

    /// Append the decoded instructions whose front-end latency has
    /// elapsed to `out` (the simulator's dispatch buffer), recycling the
    /// group buffers — the steady-state path allocates nothing.
    pub fn drain_into(&mut self, now: u64, out: &mut VecDeque<FetchedInstr>) {
        while let Some(g) = self.inflight.front() {
            if g.ready_at > now {
                break;
            }
            let mut g = self.inflight.pop_front().unwrap();
            out.extend(g.instrs.drain(..));
            self.spare.push(g.instrs);
        }
    }

    /// Pop the decoded instructions whose front-end latency has elapsed.
    pub fn drain(&mut self, now: u64) -> Vec<FetchedInstr> {
        let mut out = VecDeque::new();
        self.drain_into(now, &mut out);
        out.into()
    }

    /// Redirect after a control-flow resolution: squash everything in
    /// flight and resume fetching at `target` (indices past the program
    /// end leave the unit drained — the fall-off-the-end halt).
    pub fn redirect(&mut self, target: u64) {
        for mut g in self.inflight.drain(..) {
            g.instrs.clear();
            self.spare.push(g.instrs);
        }
        self.pc = target;
        self.stopped = false;
    }

    /// Train the dynamic predictor with a retired conditional branch's
    /// outcome (no-op under static not-taken prediction).
    pub fn train(&mut self, pc: u64, taken: bool) {
        if let Some(b) = &mut self.predictor {
            b.train(pc, taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_isa::regs::IReg;
    use rsp_isa::Program;

    fn r(n: u8) -> IReg {
        IReg::new(n)
    }

    fn unit_for(instrs: Vec<Instruction>) -> FetchUnit {
        let p = Program::new("t", instrs);
        FetchUnit::new(p.to_words(), &SimConfig::default())
    }

    #[test]
    fn fetch_group_arrives_after_latency() {
        let mut f = unit_for(vec![
            Instruction::rri(Opcode::Addi, r(1), r(0), 1),
            Instruction::rri(Opcode::Addi, r(2), r(0), 2),
            Instruction::HALT,
        ]);
        f.cycle(0);
        assert!(f.drain(0).is_empty(), "miss latency is 2");
        assert!(f.drain(1).is_empty());
        let got = f.drain(2);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].pc, 0);
        assert_eq!(got[2].instr, Instruction::HALT);
        assert!(f.drained(), "halt stops fetch");
    }

    #[test]
    fn trace_cache_hit_shortens_latency() {
        let mut f = unit_for(vec![
            Instruction::rri(Opcode::Addi, r(1), r(0), 1),
            Instruction::HALT,
        ]);
        f.cycle(0);
        let _ = f.drain(10);
        // Re-fetch the same group (as after a loop back edge).
        f.redirect(0);
        f.cycle(10);
        assert_eq!(f.drain(11).len(), 2, "hit latency is 1");
        let (h, m) = f.trace_stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn conditional_branches_fetch_through() {
        let mut f = unit_for(vec![
            Instruction::branch(Opcode::Beq, r(0), r(0), 2),
            Instruction::rri(Opcode::Addi, r(1), r(0), 1),
            Instruction::HALT,
        ]);
        f.cycle(0);
        let got = f.drain(2);
        assert_eq!(got.len(), 3, "not-taken prediction keeps fetching");
        assert_eq!(got[0].predicted_next, 1);
    }

    #[test]
    fn jal_redirects_at_decode() {
        let f_instrs = vec![
            Instruction::jal(r(31), 2),                    // 0 -> 2
            Instruction::rri(Opcode::Addi, r(1), r(0), 9), // 1: skipped
            Instruction::HALT,                             // 2
        ];
        let mut f = unit_for(f_instrs);
        f.cycle(0);
        let got = f.drain(2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].pc, 0);
        assert_eq!(got[0].predicted_next, 2);
        assert_eq!(got[1].pc, 2, "fetch followed the jal in the same group");
    }

    #[test]
    fn jalr_stops_fetch_until_redirect() {
        let mut f = unit_for(vec![
            Instruction::jalr(r(0), r(1), 0),
            Instruction::rri(Opcode::Addi, r(1), r(0), 1),
            Instruction::HALT,
        ]);
        f.cycle(0);
        let got = f.drain(2);
        assert_eq!(got.len(), 1, "nothing fetched past the jalr");
        assert!(f.drained());
        f.redirect(2);
        f.cycle(3);
        let got = f.drain(5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].instr, Instruction::HALT);
    }

    #[test]
    fn redirect_squashes_inflight() {
        let mut f = unit_for(vec![
            Instruction::rri(Opcode::Addi, r(1), r(0), 1),
            Instruction::rri(Opcode::Addi, r(2), r(0), 2),
            Instruction::rri(Opcode::Addi, r(3), r(0), 3),
            Instruction::rri(Opcode::Addi, r(4), r(0), 4),
            Instruction::rri(Opcode::Addi, r(5), r(0), 5),
            Instruction::HALT,
        ]);
        f.cycle(0); // group 0: pcs 0-3
        f.redirect(5);
        assert!(f.drain(10).is_empty(), "in-flight group squashed");
        f.cycle(10);
        let got = f.drain(12);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].pc, 5);
    }

    #[test]
    fn out_of_range_redirect_drains() {
        let mut f = unit_for(vec![Instruction::HALT]);
        f.redirect(100);
        f.cycle(0);
        assert!(f.drain(5).is_empty());
        assert!(f.drained());
    }

    #[test]
    fn bimodal_predictor_learns_taken_branches() {
        let cfg = SimConfig {
            branch_prediction: crate::config::BranchPrediction::Bimodal { entries: 64 },
            ..SimConfig::default()
        };
        let p = Program::new(
            "t",
            vec![
                Instruction::branch(Opcode::Bne, r(1), r(0), 2), // 0 -> 2 when taken
                Instruction::rri(Opcode::Addi, r(9), r(0), 1),   // 1 (fall-through path)
                Instruction::HALT,                               // 2
            ],
        );
        let mut f = FetchUnit::new(p.to_words(), &cfg);
        // Untrained: weakly not-taken.
        f.cycle(0);
        let got = f.drain(2);
        assert_eq!(got[0].predicted_next, 1, "untrained predicts not-taken");
        // Train taken twice -> counters saturate toward taken.
        f.train(0, true);
        f.train(0, true);
        f.redirect(0);
        f.cycle(10);
        let got = f.drain(12);
        assert_eq!(got[0].predicted_next, 2, "trained predicts taken");
        // The group followed the predicted target at decode.
        assert_eq!(got[1].pc, 2);
        // Training not-taken twice flips it back.
        f.train(0, false);
        f.train(0, false);
        f.redirect(0);
        f.cycle(20);
        let got = f.drain(22);
        assert_eq!(got[0].predicted_next, 1);
    }

    #[test]
    fn zero_size_trace_cache_always_misses() {
        let cfg = SimConfig {
            trace_cache_groups: 0,
            ..SimConfig::default()
        };
        let p = Program::new("t", vec![Instruction::HALT]);
        let mut f = FetchUnit::new(p.to_words(), &cfg);
        f.cycle(0);
        f.redirect(0);
        f.cycle(5);
        let (h, m) = f.trace_stats();
        assert_eq!(h, 0);
        assert_eq!(m, 2);
    }
}

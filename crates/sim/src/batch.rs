//! Batched program driver: run many programs back to back on one
//! reused [`Machine`].
//!
//! [`Processor::run`](crate::Processor::run) builds a fresh [`Machine`]
//! per program — fine for one long simulation, wasteful when sweeping
//! thousands of short synthetic workloads (the throughput-harness and
//! experiment-sweep pattern). [`BatchRunner`] validates the
//! configuration once and reuses one machine's wake-up array, register
//! update unit and data memory across programs via [`Machine::reset`],
//! so per-run setup cost stays flat no matter how many programs flow
//! through.
//!
//! A batched run of a program is behaviourally identical to
//! [`Processor::run`](crate::Processor::run) on that program: [`Machine::reset`] restores every
//! piece of architectural and microarchitectural state (a unit test and
//! the differential suite pin this down).
//!
//! ```
//! use rsp_sim::{BatchRunner, SimConfig};
//! use rsp_workloads::kernels;
//!
//! let mut runner = BatchRunner::new(SimConfig::default()).unwrap();
//! for n in [8, 16, 32] {
//!     let report = runner.run(&kernels::dot_product(n), 100_000).unwrap();
//!     assert!(report.halted);
//! }
//! ```

use crate::config::SimConfig;
use crate::processor::{Machine, RunError};
use crate::stats::SimReport;
use rsp_isa::Program;
use serde::{Deserialize, Serialize};

/// Drives many programs through one reused [`Machine`].
#[derive(Debug, Clone)]
pub struct BatchRunner {
    cfg: SimConfig,
    machine: Option<Machine>,
}

impl BatchRunner {
    /// Validate `cfg` once; the machine itself is built lazily on the
    /// first run.
    pub fn new(cfg: SimConfig) -> Result<BatchRunner, RunError> {
        cfg.validate().map_err(RunError::BadConfig)?;
        Ok(BatchRunner { cfg, machine: None })
    }

    /// The configuration every batched run uses.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Reset (or lazily build) the machine for `program` and hand it
    /// back for cycle-level driving; the caller steps it.
    pub fn start(&mut self, program: &Program) -> Result<&mut Machine, RunError> {
        program.validate().map_err(RunError::BadProgram)?;
        match &mut self.machine {
            Some(m) => m.reset(program),
            None => self.machine = Some(Machine::new(self.cfg.clone(), program)),
        }
        Ok(self.machine.as_mut().expect("machine just ensured"))
    }

    /// Run one program to completion (or `max_cycles`), reusing the
    /// machine from the previous run.
    pub fn run(&mut self, program: &Program, max_cycles: u64) -> Result<SimReport, RunError> {
        let m = self.start(program)?;
        while m.cycle() < max_cycles && m.step() {}
        Ok(m.report())
    }
}

/// Aggregate counters from a [`run_batch`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Programs run.
    pub runs: u64,
    /// Total simulated cycles across all runs.
    pub sim_cycles: u64,
    /// Total instructions retired across all runs.
    pub retired: u64,
    /// True iff every program halted within its cycle budget
    /// (vacuously true for an empty summary).
    pub all_halted: bool,
}

impl Default for BatchSummary {
    /// The empty summary: zero runs, and `all_halted` vacuously *true*
    /// so that `absorb` computes "every absorbed run halted" regardless
    /// of how the summary was built.
    fn default() -> BatchSummary {
        BatchSummary {
            runs: 0,
            sim_cycles: 0,
            retired: 0,
            all_halted: true,
        }
    }
}

impl BatchSummary {
    /// Fold one run's report into the aggregate.
    pub fn absorb(&mut self, report: &SimReport) {
        self.runs += 1;
        self.sim_cycles += report.cycles;
        self.retired += report.retired;
        self.all_halted &= report.halted;
    }
}

/// Run every program on one reused machine with a per-program cycle
/// budget, returning aggregate counters. The throughput harness in
/// `rsp-bench` builds on this.
pub fn run_batch(
    cfg: &SimConfig,
    programs: &[Program],
    max_cycles: u64,
) -> Result<BatchSummary, RunError> {
    let mut runner = BatchRunner::new(cfg.clone())?;
    let mut sum = BatchSummary::default();
    for p in programs {
        let report = runner.run(p, max_cycles)?;
        sum.absorb(&report);
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::Processor;
    use rsp_workloads::kernels;
    use rsp_workloads::synth::{SynthSpec, UnitMix};

    /// A batched run must be bit-identical to a fresh-machine run,
    /// including after the machine was dirtied by a different program.
    #[test]
    fn reset_machine_matches_fresh_machine() {
        let cfg = SimConfig::default();
        let a = kernels::dot_product(24);
        let b = SynthSpec::new("mix", UnitMix::BALANCED, 7).generate();
        let c = kernels::matmul(4);

        let mut fresh = Vec::new();
        for p in [&a, &b, &c] {
            fresh.push(Processor::new(cfg.clone()).run(p, 1_000_000).unwrap());
        }

        let mut runner = BatchRunner::new(cfg).unwrap();
        for (p, want) in [&a, &b, &c].into_iter().zip(&fresh) {
            let got = runner.run(p, 1_000_000).unwrap();
            assert_eq!(&got, want, "batched run diverged on {}", p.name);
        }
        // Run the first program again after the machine saw the others.
        let again = runner.run(&a, 1_000_000).unwrap();
        assert_eq!(&again, &fresh[0]);
    }

    #[test]
    fn run_batch_aggregates() {
        let cfg = SimConfig::default();
        let programs = vec![kernels::dot_product(8), kernels::checksum(8)];
        let sum = run_batch(&cfg, &programs, 100_000).unwrap();
        assert_eq!(sum.runs, 2);
        assert!(sum.all_halted);
        let individual: u64 = programs
            .iter()
            .map(|p| Processor::new(cfg.clone()).run(p, 100_000).unwrap().cycles)
            .sum();
        assert_eq!(sum.sim_cycles, individual);
    }

    /// Regression: `BatchSummary::default()` used to report
    /// `all_halted == false`, so summaries built via `Default` (rather
    /// than through `run_batch`) claimed a halt failure even when every
    /// absorbed run halted.
    #[test]
    fn default_summary_is_vacuously_all_halted() {
        let sum = BatchSummary::default();
        assert!(sum.all_halted, "empty summary is vacuously all-halted");
        assert_eq!(sum.runs, 0);

        let mut sum = BatchSummary::default();
        let halted = Processor::new(SimConfig::default())
            .run(&kernels::dot_product(4), 100_000)
            .unwrap();
        sum.absorb(&halted);
        assert!(sum.all_halted, "halted runs keep all_halted true");

        // A budget-exhausted run still flips it off.
        let truncated = Processor::new(SimConfig::default())
            .run(&kernels::dot_product(64), 10)
            .unwrap();
        assert!(!truncated.halted);
        sum.absorb(&truncated);
        assert!(!sum.all_halted);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let bad_cfg = SimConfig {
            queue_size: 0,
            ..SimConfig::default()
        };
        assert!(BatchRunner::new(bad_cfg).is_err());
        let mut runner = BatchRunner::new(SimConfig::default()).unwrap();
        let empty = Program::new("empty", vec![]);
        assert!(matches!(
            runner.run(&empty, 100),
            Err(RunError::BadProgram(_))
        ));
        // A rejected program must not poison the runner.
        assert!(
            runner
                .run(&kernels::dot_product(4), 100_000)
                .unwrap()
                .halted
        );
    }
}

//! End-to-end simulator throughput: simulated cycles per wall second and
//! complete program runs per policy.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rsp_bench::throughput::workload_classes;
use rsp_sim::{run_batch, Processor, SimConfig};
use rsp_workloads::{kernels, PhasedSpec, SynthSpec, UnitMix};

fn bench_end_to_end(c: &mut Criterion) {
    let phased = PhasedSpec::int_fp_mem(300, 2, 9).generate();
    let mut g = c.benchmark_group("full-run");
    for (label, cfg) in [
        ("paper-steering", SimConfig::default()),
        ("static:Config1", SimConfig::static_on(0)),
        ("oracle", SimConfig::oracle()),
    ] {
        g.bench_function(format!("phased/{label}"), |b| {
            b.iter(|| {
                let mut p = Processor::new(cfg.clone());
                black_box(p.run(&phased, 10_000_000).unwrap())
            })
        });
    }
    let dot = kernels::dot_product(64);
    g.bench_function("kernel/dot_product(64)", |b| {
        b.iter(|| {
            let mut p = Processor::new(SimConfig::default());
            black_box(p.run(&dot, 10_000_000).unwrap())
        })
    });
    g.finish();

    // Steady-state stepping rate on a long straight-line program.
    let long = SynthSpec {
        body_len: 5000,
        ..SynthSpec::new("long", UnitMix::BALANCED, 4)
    }
    .generate();
    let mut g = c.benchmark_group("step-rate");
    g.throughput(Throughput::Elements(2000));
    g.bench_function("2000 cycles, paper steering", |b| {
        b.iter_batched(
            || Processor::new(SimConfig::default()).start(&long).unwrap(),
            |mut m| {
                for _ in 0..2000 {
                    if !m.step() {
                        break;
                    }
                }
                black_box(m.cycle())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();

    // Steady-state cycles/sec through the batched driver — the exact
    // path the standalone throughput harness (`rsp-bench --bin
    // throughput`, BENCH_throughput.json) measures: one machine reused
    // across the whole program set, so per-run setup is amortised and
    // the number tracks the cost of `Machine::step` itself.
    let cfg = SimConfig::default();
    let classes = workload_classes();
    let mix = classes
        .iter()
        .find(|c| c.name == "synthetic-mix")
        .expect("harness always defines the synthetic-mix class");
    let pass_cycles = run_batch(&cfg, &mix.programs, 10_000_000)
        .unwrap()
        .sim_cycles;
    let mut g = c.benchmark_group("batched-throughput");
    g.throughput(Throughput::Elements(pass_cycles));
    g.bench_function(
        format!("synthetic-mix/{} sim-cycles per pass", pass_cycles),
        |b| b.iter(|| black_box(run_batch(&cfg, &mix.programs, 10_000_000).unwrap())),
    );
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);

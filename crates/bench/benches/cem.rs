//! Cost of one configuration-error-metric evaluation: the paper's barrel
//! shifter vs the "more accurate divider" it rejects (Fig. 3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rsp_core::cem::CemUnit;
use rsp_isa::units::TypeCounts;
use rsp_workloads::mixes::all_signatures;

fn bench_cem(c: &mut Criterion) {
    let demands = all_signatures(7);
    let avail = TypeCounts::new([3, 2, 3, 1, 1]);
    let mut g = c.benchmark_group("cem");
    for (label, unit) in [
        ("barrel-shifter", CemUnit::PAPER),
        ("exact-divider", CemUnit::EXACT),
    ] {
        g.bench_function(format!("{label} x792"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for d in &demands {
                    acc = acc.wrapping_add(unit.error(black_box(d), black_box(&avail)));
                }
                black_box(acc)
            })
        });
    }
    g.bench_function("raw 3-bit adder tree", |b| {
        let d = TypeCounts::new([2, 1, 2, 1, 1]);
        b.iter(|| black_box(CemUnit::PAPER.raw_error(black_box(&d), black_box(&avail))))
    });
    g.finish();
}

criterion_group!(benches, bench_cem);
criterion_main!(benches);

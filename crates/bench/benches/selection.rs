//! Latency of the configuration selection unit — the circuit the paper
//! argues must be "fast and efficient" enough to sit in the pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rsp_core::SelectionUnit;
use rsp_fabric::config::SteeringSet;
use rsp_isa::units::TypeCounts;
use rsp_workloads::mixes::all_signatures;

fn bench_selection(c: &mut Criterion) {
    let set = SteeringSet::paper_default();
    let demands = all_signatures(7);
    let current = &set.predefined[0];
    let current_counts = current.counts.saturating_add(&set.ffu);

    let mut g = c.benchmark_group("selection-unit");
    g.bench_function("choose (fast path, 1 eval)", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % demands.len();
            black_box(SelectionUnit::PAPER.choose(
                black_box(demands[i]),
                current_counts,
                &current.placement,
                &set,
            ))
        })
    });
    g.bench_function("select_from_counts (full trace, 1 eval)", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % demands.len();
            black_box(SelectionUnit::PAPER.select_from_counts(
                black_box(demands[i]),
                current_counts,
                &current.placement,
                &set,
            ))
        })
    });
    g.bench_function("choose x792 (whole signature space)", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &d in &demands {
                acc ^= SelectionUnit::PAPER
                    .choose(d, current_counts, &current.placement, &set)
                    .1;
            }
            black_box(acc)
        })
    });
    g.finish();

    c.bench_function("requirement-encoder (7 one-hots)", |b| {
        use rsp_core::decode::OneHot;
        use rsp_core::RequirementEncoder;
        use rsp_isa::UnitType;
        let hots: Vec<OneHot> = (0..7)
            .map(|i| OneHot::of(UnitType::from_index(i % 5).unwrap()))
            .collect();
        b.iter(|| black_box(RequirementEncoder::PAPER.encode(black_box(&hots))))
    });

    let _ = TypeCounts::ZERO; // keep import used in all cfgs
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);

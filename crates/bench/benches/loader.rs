//! Configuration-loader cycle cost: the XOR diff + begin-load scan.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rsp_core::{ConfigChoice, ConfigurationLoader};
use rsp_fabric::config::SteeringSet;
use rsp_fabric::fabric::{Fabric, FabricParams};

fn bench_loader(c: &mut Criterion) {
    let set = SteeringSet::paper_default();
    c.bench_function("loader.apply steering Config1 -> Config3", |b| {
        b.iter_batched(
            || {
                let fabric =
                    Fabric::with_configuration(FabricParams::default(), &set.predefined[0]);
                (ConfigurationLoader::new(set.clone()), fabric)
            },
            |(mut loader, mut fabric)| {
                black_box(loader.apply(ConfigChoice::Predefined(2), &mut fabric))
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("loader.apply no-op (current)", |b| {
        let mut loader = ConfigurationLoader::new(set.clone());
        let mut fabric = Fabric::with_configuration(FabricParams::default(), &set.predefined[0]);
        b.iter(|| black_box(loader.apply(ConfigChoice::Current, &mut fabric)))
    });
    c.bench_function("alloc diff_count (8 slots)", |b| {
        let a = &set.predefined[0].placement;
        let d = &set.predefined[2].placement;
        b.iter(|| black_box(a.diff_count(black_box(d))))
    });
}

criterion_group!(benches, bench_loader);
criterion_main!(benches);

//! Wake-up array cycle cost: request evaluation + arbitration + tick,
//! at the paper's 7 entries and at larger windows (E9's scaling axis).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rsp_isa::units::{TypeCounts, UnitType};
use rsp_sched::{arbitrate, WakeupArray};

fn full_array(n: usize) -> WakeupArray {
    let mut w = WakeupArray::new(n);
    for i in 0..n {
        // A chain every third entry to mix ready and waiting entries.
        let deps: Vec<usize> = if i % 3 == 2 { vec![i - 1] } else { vec![] };
        w.insert(UnitType::from_index(i % 5).unwrap(), &deps, i as u64)
            .unwrap();
    }
    w
}

fn bench_wakeup(c: &mut Criterion) {
    let idle = TypeCounts::new([2, 1, 2, 1, 1]);
    let avail = [true; 5];
    let mut g = c.benchmark_group("wakeup-array");
    for n in [7usize, 16, 32, 64] {
        let w = full_array(n);
        g.bench_function(format!("requests+arbitrate, {n} entries"), |b| {
            b.iter(|| {
                let reqs = w.requests(black_box(&avail));
                black_box(arbitrate(&w, &reqs, &idle))
            })
        });
        g.bench_function(format!("tick, {n} entries"), |b| {
            let mut w = full_array(n);
            for s in 0..n {
                if w.get(s).is_some_and(|e| e.deps == 0) {
                    w.grant(s, 5);
                }
            }
            b.iter(|| {
                w.tick();
                black_box(&w);
            })
        });
    }
    g.finish();

    c.bench_function("insert+clear churn (7 entries)", |b| {
        let mut w = WakeupArray::paper();
        let mut tag = 0u64;
        b.iter(|| {
            let s = w.insert(UnitType::IntAlu, &[], tag).unwrap();
            tag += 1;
            w.clear(s);
            black_box(&w);
        })
    });
}

criterion_group!(benches, bench_wakeup);
criterion_main!(benches);

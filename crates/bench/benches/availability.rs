//! Cost of the Eq. 1 / Fig. 7 availability computation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rsp_fabric::availability::{available_all, available_circuit, AvailabilityInputs};
use rsp_fabric::AllocationVector;
use rsp_isa::units::UnitType;

fn bench_availability(c: &mut Criterion) {
    let mut alloc = AllocationVector::empty(8);
    alloc.place(0, UnitType::Lsu);
    alloc.place(1, UnitType::FpAlu);
    alloc.place(4, UnitType::IntMdu);
    alloc.place(6, UnitType::Lsu);
    let slot_available = vec![true, false, false, false, true, false, true, false];
    let ffus: Vec<(UnitType, bool)> = UnitType::ALL.iter().map(|&t| (t, true)).collect();
    let inputs = AvailabilityInputs {
        alloc: &alloc,
        slot_available: &slot_available,
        ffus: &ffus,
    };
    c.bench_function("available_all (5 types, 8 slots + 5 FFUs)", |b| {
        b.iter(|| black_box(available_all(black_box(&inputs))))
    });
    c.bench_function("available_circuit (gate-level, 1 type)", |b| {
        b.iter(|| black_box(available_circuit(UnitType::Lsu, black_box(&inputs))))
    });
}

criterion_group!(benches, bench_availability);
criterion_main!(benches);

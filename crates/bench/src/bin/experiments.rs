//! Experiment runner: regenerates every table and figure of the paper
//! plus the quantitative studies E1–E9 (see DESIGN.md §4 and
//! EXPERIMENTS.md).
//!
//! ```text
//! experiments <id>|all|list [--out-dir DIR] [--resume] [--verbose]
//!             [--cache-dir DIR] [--code-version V]
//!             [--shard K/N | --spawn N | --merge]
//! experiments study run|status <study-id> [--cache-dir DIR] ...
//! experiments study explain <key-prefix> --cache-dir DIR
//! experiments study gc --cache-dir DIR
//! experiments study list
//! ```
//!
//! Sweep-engine experiments (`e1-ipc`, `fault-sweep`,
//! `serve-saturation`) additionally honour
//! the sharding flags: `--shard K/N` runs one shard of the grid into a
//! keyed journal and exits (no merge — run the other shards, then
//! `--merge`); `--spawn N` forks one worker subprocess per shard and
//! merges when all succeed; `--merge` only replays the journals in
//! `--out-dir`, verifies the key set and the sweep's cross-point
//! assertions, and writes the `BENCH_*.json` artifact. `--resume` skips
//! points already journalled. The merged artifact is byte-identical
//! however the grid was split.
//!
//! With `--cache-dir DIR`, every cacheable point result is also a
//! content-addressed artifact in a shared store (DESIGN.md §17):
//! reruns, other shards, and other hosts sharing the store dedupe
//! work, and the run prints a `cache: …` summary line. `--code-version`
//! overrides the version baked into every cache key (defaults to the
//! crate version) — flip it to invalidate the store wholesale. The
//! `study` subcommand runs multi-stage DAGs (sweep → pivot → report)
//! over the same store.

use std::path::PathBuf;
use std::process::exit;

use rsp_bench::experiments::{run, studies, sweep_runner, ALL_IDS};
use rsp_bench::{CasStore, Executor, Shard, SweepConfig, SweepError, SweepRunner};

struct Cli {
    positionals: Vec<String>,
    cfg: SweepConfig,
    merge_only: bool,
    sweep_flags_used: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id> [--out-dir DIR] [--resume] [--verbose]\n\
         \x20                    [--cache-dir DIR] [--code-version V]\n\
         \x20                    [--shard K/N | --spawn N | --merge]\n\
         \x20      experiments study run|status <study-id> [flags]\n\
         \x20      experiments study explain <key-prefix> --cache-dir DIR\n\
         \x20      experiments study gc --cache-dir DIR\n\
         \x20      experiments study list"
    );
    eprintln!("ids:");
    for id in ALL_IDS {
        eprintln!("  {id}");
    }
    eprintln!("studies:");
    for id in studies::STUDY_IDS {
        eprintln!("  {id}");
    }
    exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut positionals: Vec<String> = Vec::new();
    let mut cfg = SweepConfig::default();
    let mut merge_only = false;
    let mut sweep_flags_used = false;
    let mut spawn: Option<u32> = None;
    let need = |what: &str, v: Option<String>| -> String {
        v.unwrap_or_else(|| {
            eprintln!("{what} needs a value");
            exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out-dir" => cfg.out_dir = PathBuf::from(need("--out-dir", args.next())),
            "--cache-dir" => {
                cfg.cache_dir = Some(PathBuf::from(need("--cache-dir", args.next())));
            }
            "--code-version" => cfg.code_version = need("--code-version", args.next()),
            "--resume" => {
                cfg.resume = true;
                sweep_flags_used = true;
            }
            "--verbose" => cfg.verbose = true,
            "--shard" => {
                let s = need("--shard", args.next());
                match Shard::parse(&s) {
                    Ok(shard) => cfg.executor = Executor::Shard(shard),
                    Err(e) => {
                        eprintln!("{e}");
                        exit(2);
                    }
                }
                sweep_flags_used = true;
            }
            "--spawn" => {
                let n: u32 = need("--spawn", args.next()).parse().unwrap_or_else(|_| {
                    eprintln!("--spawn needs a shard count");
                    exit(2);
                });
                spawn = Some(n);
                sweep_flags_used = true;
            }
            "--merge" => {
                merge_only = true;
                sweep_flags_used = true;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
            other => positionals.push(other.to_string()),
        }
    }
    if positionals.first().map(String::as_str) != Some("study") && positionals.len() > 1 {
        eprintln!("more than one experiment id given");
        usage();
    }
    if let Some(count) = spawn {
        let exe = std::env::current_exe().expect("own executable path");
        cfg.executor = Executor::Workers {
            exe,
            args: positionals.clone(),
            count,
        };
    }
    Cli {
        positionals,
        cfg,
        merge_only,
        sweep_flags_used,
    }
}

fn fail(e: SweepError) -> ! {
    eprintln!("error: {e}");
    exit(1);
}

/// Drive one sweep per the CLI. Shard runs journal and stop; everything
/// else runs (unless `--merge`) and then merges, printing the report.
fn drive_sweep(sweep: &dyn SweepRunner, cli: &Cli) {
    let is_shard_run = matches!(cli.cfg.executor, Executor::Shard(_));
    if !cli.merge_only {
        let summary = sweep.run(&cli.cfg).unwrap_or_else(|e| fail(e));
        if is_shard_run {
            eprintln!(
                "{} shard {} {}: journal {}",
                sweep.name(),
                summary.shard,
                summary.progress,
                summary.journal.display()
            );
            if let Some(cache) = &summary.cache {
                eprintln!("{}", cache.summary_line());
            }
            return;
        }
        if let Some(cache) = &summary.cache {
            println!("{}", cache.summary_line());
        }
    }
    let merged = sweep.merge(&cli.cfg).unwrap_or_else(|e| fail(e));
    println!("{}", merged.report);
    if let Some(path) = &merged.artifact {
        println!(
            "wrote {} ({} points from {} journal fragment(s))",
            path.display(),
            merged.points,
            merged.fragments
        );
    }
}

fn open_store(cli: &Cli) -> CasStore {
    let Some(dir) = &cli.cfg.cache_dir else {
        eprintln!("this study action needs --cache-dir");
        exit(2);
    };
    CasStore::open(dir).unwrap_or_else(|e| fail(e))
}

/// Every cache key any registered sweep or study can reach under the
/// current code version — the `study gc` live set.
fn reachable_keys(cli: &Cli) -> std::collections::BTreeSet<String> {
    let store = open_store(cli);
    let mut live = std::collections::BTreeSet::new();
    let sweep_ids = ALL_IDS
        .iter()
        .copied()
        .chain(std::iter::once("fault-sweep-reduced"));
    for id in sweep_ids {
        if let Some(sweep) = sweep_runner(id) {
            if !sweep.cacheable() {
                continue;
            }
            let hashes = sweep.point_hashes(&cli.cfg).unwrap_or_else(|e| fail(e));
            live.extend(hashes);
        }
    }
    for id in studies::STUDY_IDS {
        let study = studies::study(id).expect("listed study resolves");
        let plans = study.plan(&cli.cfg, &store).unwrap_or_else(|e| fail(e));
        live.extend(plans.into_iter().map(|p| p.key));
    }
    live
}

/// Dispatch `experiments study <action> [target]`.
fn drive_study(cli: &Cli) {
    let action = cli.positionals.get(1).map(String::as_str);
    let target = cli.positionals.get(2).map(String::as_str);
    if cli.sweep_flags_used {
        eprintln!("--shard/--spawn/--merge/--resume apply to sweep ids, not 'study'");
        exit(2);
    }
    match (action, target) {
        (Some("list"), None) => {
            for id in studies::STUDY_IDS {
                println!("{id}");
            }
        }
        (Some("run"), Some(id)) => {
            let Some(study) = studies::study(id) else {
                eprintln!("unknown study '{id}'; try: experiments study list");
                exit(2);
            };
            let report = study.run(&cli.cfg).unwrap_or_else(|e| fail(e));
            for node in &report.nodes {
                println!(
                    "  [{}] {:<6} {:<12} {}{}",
                    if node.cached { "cached " } else { "ran    " },
                    node.kind,
                    node.id,
                    &node.key[..16.min(node.key.len())],
                    match node.points {
                        Some(p) => format!(" ({p} points)"),
                        None => String::new(),
                    }
                );
            }
            println!(
                "study {}: {}/{} node(s) cached; {}",
                report.name,
                report.nodes_cached,
                report.nodes.len(),
                report.cache.summary_line()
            );
            println!("{}", report.report);
            println!(
                "wrote {}",
                cli.cfg.out_dir.join(format!("STUDY_{id}.txt")).display()
            );
        }
        (Some("status"), Some(id)) => {
            let Some(study) = studies::study(id) else {
                eprintln!("unknown study '{id}'; try: experiments study list");
                exit(2);
            };
            print!("{}", study.status(&cli.cfg).unwrap_or_else(|e| fail(e)));
        }
        (Some("explain"), Some(prefix)) => {
            let store = open_store(cli);
            let found = store.find(prefix).unwrap_or_else(|e| fail(e));
            if found.is_empty() {
                eprintln!("no object matches prefix {prefix:?}");
                exit(1);
            }
            for obj in found {
                println!("{} ({})", obj.key, obj.kind);
                println!("  name:         {}", obj.name);
                println!("  code_version: {}", obj.code_version);
                println!("  inputs:       {}", obj.inputs.len());
                for input in &obj.inputs {
                    println!("    {input}");
                }
            }
        }
        (Some("gc"), None) => {
            let live = reachable_keys(cli);
            let store = open_store(cli);
            let summary = store.gc(&live).unwrap_or_else(|e| fail(e));
            println!(
                "gc: kept {} object(s), removed {} object(s), {} claim(s), {} quarantined",
                summary.kept, summary.removed, summary.claims_removed, summary.quarantine_removed
            );
        }
        _ => {
            eprintln!(
                "usage: experiments study run|status <study-id> | explain <key-prefix> | gc | list"
            );
            exit(2);
        }
    }
}

fn main() {
    let cli = parse_cli();
    match cli.positionals.first().map(String::as_str) {
        None | Some("list") => usage(),
        Some("study") => drive_study(&cli),
        Some("all") => {
            if cli.sweep_flags_used {
                eprintln!("--shard/--spawn/--merge/--resume apply to a single sweep id, not 'all'");
                exit(2);
            }
            for id in ALL_IDS.iter().filter(|&&i| i != "all") {
                if let Some(sweep) = sweep_runner(id) {
                    drive_sweep(sweep.as_ref(), &cli);
                } else {
                    let text = run(id).expect("known id");
                    println!("{text}");
                }
                println!("{}", "=".repeat(78));
            }
        }
        Some(id) => {
            if let Some(sweep) = sweep_runner(id) {
                drive_sweep(sweep.as_ref(), &cli);
            } else if cli.sweep_flags_used {
                eprintln!("'{id}' is not a sweep experiment; --shard/--spawn/--merge/--resume need one of: e1-ipc, fault-sweep, serve-saturation");
                exit(2);
            } else {
                match run(id) {
                    Some(text) => println!("{text}"),
                    None => {
                        eprintln!("unknown experiment '{id}'; try: experiments list");
                        exit(2);
                    }
                }
            }
        }
    }
}

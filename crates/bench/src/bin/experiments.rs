//! Experiment runner: regenerates every table and figure of the paper
//! plus the quantitative studies E1–E9 (see DESIGN.md §4 and
//! EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p rsp-bench --bin experiments -- <id>|all|list
//! ```

use rsp_bench::experiments::{run, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("list");
    match id {
        "list" | "--help" | "-h" => {
            eprintln!("usage: experiments <id>");
            eprintln!("ids:");
            for id in ALL_IDS {
                eprintln!("  {id}");
            }
        }
        "all" => {
            for id in ALL_IDS.iter().filter(|&&i| i != "all") {
                let text = run(id).expect("known id");
                println!("{text}");
                println!("{}", "=".repeat(78));
            }
        }
        other => match run(other) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown experiment '{other}'; try: experiments list");
                std::process::exit(2);
            }
        },
    }
}

//! Experiment runner: regenerates every table and figure of the paper
//! plus the quantitative studies E1–E9 (see DESIGN.md §4 and
//! EXPERIMENTS.md).
//!
//! ```text
//! experiments <id>|all|list [--out-dir DIR] [--resume] [--verbose]
//!             [--shard K/N | --spawn N | --merge]
//! ```
//!
//! Sweep-engine experiments (`e1-ipc`, `fault-sweep`,
//! `serve-saturation`) additionally honour
//! the sharding flags: `--shard K/N` runs one shard of the grid into a
//! keyed journal and exits (no merge — run the other shards, then
//! `--merge`); `--spawn N` forks one worker subprocess per shard and
//! merges when all succeed; `--merge` only replays the journals in
//! `--out-dir`, verifies the key set and the sweep's cross-point
//! assertions, and writes the `BENCH_*.json` artifact. `--resume` skips
//! points already journalled. The merged artifact is byte-identical
//! however the grid was split.

use std::path::PathBuf;
use std::process::exit;

use rsp_bench::experiments::{run, sweep_runner, ALL_IDS};
use rsp_bench::{Executor, Shard, SweepConfig, SweepError, SweepRunner};

struct Cli {
    id: String,
    cfg: SweepConfig,
    merge_only: bool,
    sweep_flags_used: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id> [--out-dir DIR] [--resume] [--verbose]\n\
         \x20                    [--shard K/N | --spawn N | --merge]"
    );
    eprintln!("ids:");
    for id in ALL_IDS {
        eprintln!("  {id}");
    }
    exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut id: Option<String> = None;
    let mut cfg = SweepConfig::default();
    let mut merge_only = false;
    let mut sweep_flags_used = false;
    let mut spawn: Option<u32> = None;
    let need = |what: &str, v: Option<String>| -> String {
        v.unwrap_or_else(|| {
            eprintln!("{what} needs a value");
            exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out-dir" => cfg.out_dir = PathBuf::from(need("--out-dir", args.next())),
            "--resume" => {
                cfg.resume = true;
                sweep_flags_used = true;
            }
            "--verbose" => cfg.verbose = true,
            "--shard" => {
                let s = need("--shard", args.next());
                match Shard::parse(&s) {
                    Ok(shard) => cfg.executor = Executor::Shard(shard),
                    Err(e) => {
                        eprintln!("{e}");
                        exit(2);
                    }
                }
                sweep_flags_used = true;
            }
            "--spawn" => {
                let n: u32 = need("--spawn", args.next()).parse().unwrap_or_else(|_| {
                    eprintln!("--spawn needs a shard count");
                    exit(2);
                });
                spawn = Some(n);
                sweep_flags_used = true;
            }
            "--merge" => {
                merge_only = true;
                sweep_flags_used = true;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
            other => {
                if id.replace(other.to_string()).is_some() {
                    eprintln!("more than one experiment id given");
                    usage();
                }
            }
        }
    }
    let id = id.unwrap_or_else(|| "list".into());
    if let Some(count) = spawn {
        let exe = std::env::current_exe().expect("own executable path");
        cfg.executor = Executor::Workers {
            exe,
            args: vec![id.clone()],
            count,
        };
    }
    Cli {
        id,
        cfg,
        merge_only,
        sweep_flags_used,
    }
}

fn fail(e: SweepError) -> ! {
    eprintln!("error: {e}");
    exit(1);
}

/// Drive one sweep per the CLI. Shard runs journal and stop; everything
/// else runs (unless `--merge`) and then merges, printing the report.
fn drive_sweep(sweep: &dyn SweepRunner, cli: &Cli) {
    let is_shard_run = matches!(cli.cfg.executor, Executor::Shard(_));
    if !cli.merge_only {
        let summary = sweep.run(&cli.cfg).unwrap_or_else(|e| fail(e));
        if is_shard_run {
            eprintln!(
                "{} shard {} {}: journal {}",
                sweep.name(),
                summary.shard,
                summary.progress,
                summary.journal.display()
            );
            return;
        }
    }
    let merged = sweep.merge(&cli.cfg).unwrap_or_else(|e| fail(e));
    println!("{}", merged.report);
    if let Some(path) = &merged.artifact {
        println!(
            "wrote {} ({} points from {} journal fragment(s))",
            path.display(),
            merged.points,
            merged.fragments
        );
    }
}

fn main() {
    let cli = parse_cli();
    match cli.id.as_str() {
        "list" => usage(),
        "all" => {
            if cli.sweep_flags_used {
                eprintln!("--shard/--spawn/--merge/--resume apply to a single sweep id, not 'all'");
                exit(2);
            }
            for id in ALL_IDS.iter().filter(|&&i| i != "all") {
                if let Some(sweep) = sweep_runner(id) {
                    drive_sweep(sweep.as_ref(), &cli);
                } else {
                    let text = run(id).expect("known id");
                    println!("{text}");
                }
                println!("{}", "=".repeat(78));
            }
        }
        id => {
            if let Some(sweep) = sweep_runner(id) {
                drive_sweep(sweep.as_ref(), &cli);
            } else if cli.sweep_flags_used {
                eprintln!("'{id}' is not a sweep experiment; --shard/--spawn/--merge/--resume need one of: e1-ipc, fault-sweep, serve-saturation");
                exit(2);
            } else {
                match run(id) {
                    Some(text) => println!("{text}"),
                    None => {
                        eprintln!("unknown experiment '{id}'; try: experiments list");
                        exit(2);
                    }
                }
            }
        }
    }
}

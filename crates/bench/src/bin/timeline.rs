//! `rsp-timeline` — replay a telemetry JSONL event log into a
//! human-readable timeline plus a JSON report for CI diffing.
//!
//! ```text
//! rsp-timeline <events.jsonl> [--json <out.json>]
//! rsp-timeline --flight <flight.jsonl> [--json <out.json>]
//! rsp-timeline --demo [--json <out.json>]
//! ```
//!
//! The default mode analyses a per-tenant machine telemetry log
//! (steering decisions, loads, faults, stalls). `--flight` instead
//! ingests a serve-engine flight-recorder dump (the
//! `flight-<seq>-<kind>.jsonl` files `rsp-serve` writes on anomaly
//! triggers) and reconstructs the fleet story around the anomaly:
//! tenant lifecycle arcs, shed counts by reason, and trigger stamps.
//!
//! `--demo` runs a phased workload under the fault-sweep environment
//! with a ring-buffer event sink installed, analyses its own log, and
//! cross-checks the reconstruction against the simulator's fault
//! counters — a self-contained smoke test of the whole telemetry path
//! (used by the experiments CI job).

use rsp_bench::sweep::write_artifact;
use rsp_bench::throughput::faulty_params;
use rsp_bench::timeline::{analyze, analyze_fleet, parse_jsonl, TimelineReport};
use rsp_sim::{Processor, SimConfig, Telemetry};
use rsp_workloads::PhasedSpec;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: rsp-timeline <events.jsonl> [--json <out.json>]");
    eprintln!("       rsp-timeline --flight <flight.jsonl> [--json <out.json>]");
    eprintln!("       rsp-timeline --demo [--json <out.json>]");
    exit(2);
}

fn read_input(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rsp-timeline: cannot read {path}: {e}");
            exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut demo = false;
    let mut flight = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => demo = true,
            "--flight" => flight = true,
            "--json" => {
                i += 1;
                json_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            a if a.starts_with('-') => usage(),
            a => {
                if input.replace(a.to_string()).is_some() {
                    usage();
                }
            }
        }
        i += 1;
    }
    if demo && (flight || input.is_some()) {
        usage();
    }

    // Both report types render and serialise; analyse the right one and
    // keep only those two behaviours.
    let (rendered, json) = if flight {
        let Some(path) = input else { usage() };
        let entries = match rsp_obs::parse_fleet_jsonl(&read_input(&path)) {
            Ok(en) => en,
            Err(e) => {
                eprintln!("rsp-timeline: {path}: {e}");
                exit(1);
            }
        };
        let report = analyze_fleet(&entries);
        (report.render(), report.to_json())
    } else if demo {
        let report = run_demo();
        (report.render(), report.to_json())
    } else {
        let Some(path) = input else { usage() };
        let events = match parse_jsonl(&read_input(&path)) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("rsp-timeline: {path}: {e}");
                exit(1);
            }
        };
        let report = analyze(&events);
        (report.render(), report.to_json())
    };

    print!("{rendered}");
    if let Some(path) = json_out {
        let p = std::path::Path::new(&path);
        let dir = p.parent().unwrap_or_else(|| std::path::Path::new(""));
        let name = p
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_else(|| usage());
        write_artifact(dir, name, &json).unwrap_or_else(|e| {
            eprintln!("rsp-timeline: cannot write {path}: {e}");
            exit(1);
        });
        println!("\nJSON report written to {path}");
    }
}

/// Run the demo workload with a ring sink and cross-check the
/// reconstruction against the simulator's own counters.
fn run_demo() -> TimelineReport {
    let mut cfg = SimConfig::default();
    cfg.fabric.faults = faulty_params();
    let program = PhasedSpec::int_fp_mem(300, 3, 3000).generate();
    let proc = Processor::new(cfg);
    let mut m = proc.start(&program).expect("valid program");
    // Large enough that nothing is overwritten: the cross-checks below
    // need the complete stream.
    m.set_telemetry(Telemetry::ring(1 << 20));
    while m.cycle() < 1_000_000 && m.step() {}
    let r = m.report();
    assert!(r.halted, "demo workload must halt");

    let sink = m.telemetry().ring_sink().expect("ring sink installed");
    assert_eq!(sink.dropped(), 0, "demo ring must capture the full run");
    let text = m.telemetry().to_jsonl().expect("ring sink has a log");
    let events = parse_jsonl(&text).expect("own log parses");
    let report = analyze(&events);

    // The reconstruction must agree with the simulator's counters: every
    // detected upset appears as a reconstructed episode, and selection
    // shares cover all decisions.
    assert_eq!(
        report.episodes_detected, r.faults.upsets_detected,
        "episode reconstruction diverged from FaultStats"
    );
    assert_eq!(
        report.episodes.len() as u64,
        r.faults.upsets_injected,
        "injected-episode count diverged from FaultStats"
    );
    assert_eq!(report.scrub_passes, r.faults.scrubs);
    let share_sum: f64 = report.selection_shares.iter().map(|s| s.share_pct).sum();
    assert!(
        report.decisions > 0 && (share_sum - 100.0).abs() < 1e-6,
        "selection shares must sum to 100% (got {share_sum})"
    );
    println!(
        "demo: {} cycles, {} events; episodes match FaultStats ({} detected), \
         selection shares sum to {share_sum:.1}%\n",
        r.cycles, report.events, report.episodes_detected
    );
    report
}

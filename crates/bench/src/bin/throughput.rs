//! CLI for the cycles/sec throughput harness: runs every workload class
//! through the batched driver on the sweep engine and writes
//! `BENCH_throughput.json` into `--out-dir`.
//!
//! ```text
//! throughput [--quick] [--out-dir DIR] [--seconds N] [--resume] [--lanes N]
//! ```
//!
//! `--quick` runs a single pass per class (CI smoke); the default runs
//! each class for ≥ 2 s of wall clock for stable numbers. Classes run
//! serially (each point is wall-clock timed), journalling each finished
//! class, so `--resume` restarts a killed run without re-measuring
//! completed classes. `--lanes N` sizes the bit-sliced lane-kernel
//! class (default 256; must be a positive multiple of 64).

use rsp_bench::throughput::{ThroughputSweep, DEFAULT_LANES};
use rsp_bench::{sweep, SweepConfig};
use rsp_sim::SimConfig;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str =
    "usage: throughput [--quick] [--out-dir DIR] [--seconds N] [--resume] [--lanes N]";

/// Report a usage error and exit 2 (the `experiments` bin's exit-code
/// convention: 1 = sweep error, 2 = usage).
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// The flag's value, or a usage error when the argument list ran out.
fn need(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
}

// `is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.82.
#[allow(unknown_lints, clippy::manual_is_multiple_of)]
fn main() {
    let mut quick = false;
    let mut seconds: f64 = 2.0;
    let mut lanes = DEFAULT_LANES;
    let mut cfg = SweepConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out-dir" => cfg.out_dir = PathBuf::from(need("--out-dir", args.next())),
            "--resume" => cfg.resume = true,
            "--seconds" => {
                seconds = need("--seconds", args.next())
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seconds needs a number"));
                if seconds.is_nan() || seconds <= 0.0 {
                    usage_error("--seconds needs a positive number");
                }
            }
            "--lanes" => {
                lanes = need("--lanes", args.next())
                    .parse()
                    .unwrap_or_else(|_| usage_error("--lanes needs a number"));
                if lanes == 0 || lanes % 64 != 0 {
                    usage_error(&format!(
                        "--lanes must be a positive multiple of 64, got {lanes}"
                    ));
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let min_wall = if quick {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(seconds)
    };

    let harness = ThroughputSweep::new(SimConfig::default(), min_wall, quick).with_lanes(lanes);
    match sweep::run_and_merge(&harness, &cfg) {
        Ok(merged) => {
            print!("{}", merged.report);
            if let Some(path) = merged.artifact {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

//! CLI for the cycles/sec throughput harness: runs every workload class
//! through the batched driver and writes `BENCH_throughput.json`.
//!
//! ```text
//! throughput [--quick] [--out PATH] [--seconds N]
//! ```
//!
//! `--quick` runs a single pass per class (CI smoke); the default runs
//! each class for ≥ 2 s of wall clock for stable numbers.

use rsp_bench::throughput::{measure_all, ThroughputReport};
use rsp_sim::SimConfig;
use std::time::Duration;

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_throughput.json");
    let mut seconds: f64 = 2.0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--seconds" => {
                seconds = args
                    .next()
                    .expect("--seconds needs a number")
                    .parse()
                    .expect("--seconds needs a number")
            }
            "--help" | "-h" => {
                eprintln!("usage: throughput [--quick] [--out PATH] [--seconds N]");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let min_wall = if quick {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(seconds)
    };

    let cfg = SimConfig::default();
    let report: ThroughputReport = measure_all(&cfg, min_wall, quick);

    println!(
        "{:<16} {:>9} {:>7} {:>14} {:>12} {:>15}",
        "class", "programs", "passes", "sim cycles", "wall (s)", "cycles/sec"
    );
    for c in &report.classes {
        println!(
            "{:<16} {:>9} {:>7} {:>14} {:>12.3} {:>15.0}",
            c.name, c.programs, c.passes, c.sim_cycles, c.wall_seconds, c.cycles_per_sec
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, json).expect("write throughput report");
    println!("wrote {out}");
}

//! Quantitative experiments E1–E9 (DESIGN.md §4): the studies the
//! paper's thesis implies, run on the cycle-accurate simulator.

use std::fmt::Write;

use rsp_core::cem::CemKind;
use rsp_core::select::TieBreak;
use rsp_fabric::fabric::FabricParams;
use rsp_isa::units::TypeCounts;
use rsp_isa::Program;
use rsp_sim::{PolicyKind, SimConfig};
use rsp_workloads::{kernels, mixes, PhasedSpec, SynthSpec, UnitMix};

use crate::harness::{paper_policy, pivot_rows, policies, run_one, PolicySpec, Row};
use crate::scaled::scaled_paper_set;
use crate::sweep::{run_grid, Sweep};

/// The standard workload battery: four synthetic mixes, one phased
/// stream, and the kernel suite.
fn workloads() -> Vec<Program> {
    let mut out: Vec<Program> = UnitMix::named()
        .into_iter()
        .map(|(name, mix)| {
            SynthSpec {
                body_len: 1500,
                ..SynthSpec::new(name, mix, 42)
            }
            .generate()
        })
        .collect();
    out.push(PhasedSpec::int_fp_mem(600, 1, 42).generate());
    out.extend(kernels::suite());
    out
}

/// One E1 grid point: a workload crossed with a policy variant, both
/// referenced by their stable labels (the key is built from nothing
/// else).
#[derive(Debug, Clone)]
pub struct E1Point {
    /// Workload label.
    pub workload: String,
    /// Policy label ([`PolicySpec::label`]).
    pub policy: String,
}

/// E1 — IPC of steering vs static configurations vs FFU floor vs oracle,
/// across the workload battery — as a [`Sweep`] (shardable, resumable,
/// artifact `BENCH_e1_ipc.json`).
pub struct E1Sweep {
    programs: Vec<Program>,
    specs: Vec<PolicySpec>,
}

impl E1Sweep {
    /// The full E1 grid: workload battery × standard policy set.
    pub fn new() -> E1Sweep {
        E1Sweep {
            programs: workloads(),
            specs: policies(),
        }
    }
}

impl Default for E1Sweep {
    fn default() -> E1Sweep {
        E1Sweep::new()
    }
}

impl Sweep for E1Sweep {
    type Point = E1Point;
    type Row = Row;

    fn name(&self) -> &'static str {
        "e1_ipc"
    }

    fn points(&self) -> Vec<E1Point> {
        self.programs
            .iter()
            .flat_map(|p| {
                self.specs.iter().map(|spec| E1Point {
                    workload: p.name.clone(),
                    policy: spec.label.clone(),
                })
            })
            .collect()
    }

    fn key(&self, point: &E1Point) -> String {
        format!("{}|{}", point.workload, point.policy)
    }

    fn spec(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            (
                "workloads".into(),
                Value::Array(
                    self.programs
                        .iter()
                        .map(|p| {
                            Value::Object(vec![
                                ("name".into(), Value::Str(p.name.clone())),
                                (
                                    "digest".into(),
                                    Value::Str(crate::sweep::canon::sha256_hex(
                                        format!("{:?}", p.instrs).as_bytes(),
                                    )),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "policies".into(),
                Value::Array(
                    self.specs
                        .iter()
                        .map(|s| Value::Str(s.label.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    fn point_params(&self, point: &E1Point) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("workload".into(), Value::Str(point.workload.clone())),
            ("policy".into(), Value::Str(point.policy.clone())),
        ])
    }

    fn run_point(&self, point: &E1Point) -> Row {
        let p = self
            .programs
            .iter()
            .find(|p| p.name == point.workload)
            .expect("point references a battery workload");
        let spec = self
            .specs
            .iter()
            .find(|s| s.label == point.policy)
            .expect("point references a standard policy");
        Row::labelled(&p.name, &spec.label, &run_one(spec.cfg.clone(), p))
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_e1_ipc.json")
    }

    fn report(&self, rows: &[Row]) -> String {
        let wl: Vec<String> = self.programs.iter().map(|p| p.name.clone()).collect();
        let cols: Vec<String> = self.specs.iter().map(|s| s.label.clone()).collect();
        let matches = |r: &Row, w: &str, c: &str| r.workload == w && r.policy == c;
        let mut s = String::from("# E1 — IPC by workload and policy\n\n");
        s.push_str(&pivot_rows(
            "IPC (higher is better)",
            rows,
            &wl,
            &cols,
            matches,
            |r| format!("{:.3}", r.ipc),
        ));
        s.push_str("\nreconfigurations started:\n");
        s.push_str(&pivot_rows("", rows, &wl, &cols, matches, |r| {
            r.reconfigs.to_string()
        }));

        // Headline: on each single-mix workload, steering must at least
        // match the best static within noise, and beat the *worst*
        // static clearly.
        let mut wins = 0;
        let mut total = 0;
        for w in &wl {
            let get = |c: &str| {
                rows.iter()
                    .find(|r| matches(r, w, c))
                    .map(|r| r.ipc)
                    .unwrap()
            };
            let steer = get("paper-steering");
            let worst = (0..3)
                .map(|i| get(&format!("static:Config {}", i + 1)))
                .fold(f64::INFINITY, f64::min);
            total += 1;
            if steer >= worst {
                wins += 1;
            }
        }
        let _ = writeln!(s, "\nsteering ≥ worst-static on {wins}/{total} workloads");
        s
    }
}

/// E2 — partial reconfiguration vs full reload: reconfiguration work and
/// IPC on phased workloads.
pub fn e2_partial() -> String {
    let programs: Vec<Program> = (0..4)
        .map(|seed| PhasedSpec::int_fp_mem(400, 2, seed).generate())
        .collect();
    let mut s = String::from("# E2 — partial reconfiguration vs full reload\n\n");
    let _ = writeln!(
        s,
        "{:<24} {:>14} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "workload(seed)",
        "partial:slots",
        "full:slots",
        "partial:IPC",
        "full:IPC",
        "p:loads",
        "f:loads"
    );
    let points: Vec<(usize, Program)> = programs.into_iter().enumerate().collect();
    let rows: Vec<String> = run_grid("e2_partial", &points, |(i, p)| {
        let partial = run_one(
            paper_policy(TieBreak::FavorCurrent, CemKind::BarrelShifter, true),
            p,
        );
        let full = run_one(
            paper_policy(TieBreak::FavorCurrent, CemKind::BarrelShifter, false),
            p,
        );
        format!(
            "{:<24} {:>14} {:>14} {:>12.3} {:>12.3} {:>10} {:>10}",
            format!("phased(seed={i})"),
            partial.fabric.slots_reloaded,
            full.fabric.slots_reloaded,
            partial.ipc(),
            full.ipc(),
            partial.fabric.loads_started,
            full.fabric.loads_started
        )
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    let _ = writeln!(
        s,
        "\n(partial reconfiguration must reload fewer slots at equal or better IPC)"
    );
    s
}

/// E3 — the favor-current stability rule: steering churn and IPC with
/// and without it.
pub fn e3_stability() -> String {
    let mut programs = vec![
        SynthSpec {
            body_len: 2000,
            ..SynthSpec::new("balanced", UnitMix::BALANCED, 47)
        }
        .generate(),
        PhasedSpec::int_fp_mem(500, 2, 47).generate(),
    ];
    programs.push(
        SynthSpec {
            body_len: 2000,
            ..SynthSpec::new("fp-heavy", UnitMix::FP_HEAVY, 48)
        }
        .generate(),
    );
    let mut s = String::from("# E3 — tie-break stability rule (favor-current) ablation\n\n");
    let _ = writeln!(
        s,
        "{:<24} {:<18} {:>10} {:>12} {:>12} {:>10}",
        "workload", "tie rule", "IPC", "sel-changes", "slots-reload", "settled%"
    );
    for p in &programs {
        for (label, tie) in [
            ("favor-current", TieBreak::FavorCurrent),
            ("prefer-predefined", TieBreak::PreferPredefined),
        ] {
            let r = run_one(paper_policy(tie, CemKind::BarrelShifter, true), p);
            let loader = &r.loader;
            let settled = 100.0 * loader.selections[0] as f64
                / loader.selections.iter().sum::<u64>().max(1) as f64;
            let _ = writeln!(
                s,
                "{:<24} {:<18} {:>10.3} {:>12} {:>12} {:>9.1}%",
                p.name,
                label,
                r.ipc(),
                loader.selection_changes,
                r.fabric.slots_reloaded,
                settled
            );
        }
    }
    let _ = writeln!(
        s,
        "\n(the paper's rule keeps the fabric settled: fewer reloads at equal IPC)"
    );
    s
}

/// E4 — IPC vs per-slot reconfiguration latency.
pub fn e4_latency() -> String {
    let p = PhasedSpec::int_fp_mem(500, 2, 59).generate();
    let latencies: Vec<u64> = vec![0, 1, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut s =
        String::from("# E4 — IPC vs per-slot reconfiguration latency (phased workload)\n\n");
    let _ = writeln!(
        s,
        "{:>8} {:>16} {:>16} {:>20}",
        "latency", "paper-steering", "demand-driven", "static:Config 1 (flat)"
    );
    let static_ref = run_one(SimConfig::static_on(0), &p).ipc();
    let rows: Vec<String> = run_grid("e4_latency", &latencies, |&lat| {
        let mk = |policy: PolicyKind| SimConfig {
            policy,
            fabric: FabricParams {
                per_slot_load_latency: lat,
                ..FabricParams::default()
            },
            ..SimConfig::default()
        };
        let paper = run_one(mk(PolicyKind::PAPER), &p);
        let demand = run_one(
            SimConfig {
                initial_config: None,
                ..mk(PolicyKind::DemandDriven)
            },
            &p,
        );
        format!(
            "{:>8} {:>16.3} {:>16.3} {:>20.3}",
            lat,
            paper.ipc(),
            demand.ipc(),
            static_ref
        )
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    let _ = writeln!(
        s,
        "\n(steering degrades gracefully with latency and crosses the static line\nwhen reconfiguration becomes too expensive to amortise)"
    );
    s
}

/// E5 — barrel-shifter vs exact-divider CEM: selection agreement (static
/// sweep) and end-to-end IPC.
pub fn e5_divider() -> String {
    let mut s = String::from("# E5 — CEM division: barrel shifter vs exact divider\n\n");
    // End-to-end IPC across the battery.
    let programs = workloads();
    let _ = writeln!(
        s,
        "{:<24} {:>14} {:>14}",
        "workload", "shifter:IPC", "exact:IPC"
    );
    let rows: Vec<(String, f64, f64)> = run_grid("e5_divider", &programs, |p| {
        let a = run_one(
            paper_policy(TieBreak::FavorCurrent, CemKind::BarrelShifter, true),
            p,
        );
        let b = run_one(
            paper_policy(TieBreak::FavorCurrent, CemKind::ExactDivider, true),
            p,
        );
        (p.name.clone(), a.ipc(), b.ipc())
    });
    let mut max_gap = 0.0f64;
    for (name, a, b) in &rows {
        let _ = writeln!(s, "{:<24} {:>14.3} {:>14.3}", name, a, b);
        max_gap = max_gap.max((a - b).abs() / b.max(1e-9));
    }
    let _ = writeln!(
        s,
        "\nmax relative IPC gap: {:.2}% — the paper's cheap shifter loses little\n(see `experiments fig3` for the static selection-agreement sweep)",
        max_gap * 100.0
    );
    s
}

/// E6 — steering-basis search (paper §5 future work).
pub fn e6_basis() -> String {
    use rsp_core::basis::{basis_score, exhaustive_basis, greedy_basis, maximal_shapes};
    use rsp_core::cem::CemUnit;
    let ffu = TypeCounts::new([1, 1, 1, 1, 1]);
    let candidates = maximal_shapes(8);
    let samples = mixes::mixed_population(800, 7);
    let paper = [
        TypeCounts::new([2, 1, 2, 0, 0]),
        TypeCounts::new([1, 1, 1, 1, 0]),
        TypeCounts::new([0, 0, 2, 1, 1]),
    ];
    let paper_score = basis_score(&paper, &ffu, &samples, CemUnit::PAPER);
    let (gb, gs) = greedy_basis(3, &candidates, &ffu, &samples, CemUnit::PAPER);
    let (eb, es) = exhaustive_basis(3, &candidates, &ffu, &samples, CemUnit::PAPER);
    let mut s = String::from("# E6 — optimal steering basis (paper §5 future work)\n\n");
    let _ = writeln!(
        s,
        "candidate space: {} maximal shapes; {} demand samples\n",
        candidates.len(),
        samples.len()
    );
    let show = |s: &mut String, label: &str, basis: &[TypeCounts], score: f64| {
        let _ = writeln!(s, "{label} (mean CEM error {score:.1}):");
        for b in basis {
            let _ = writeln!(s, "  {b}");
        }
    };
    show(&mut s, "paper basis (Table 1)", &paper, paper_score);
    show(&mut s, "greedy basis", &gb, gs);
    show(&mut s, "exhaustive-optimal basis", &eb, es);
    let _ = writeln!(
        s,
        "\nimprovement over the paper's hand-built basis: {:.1}%",
        (paper_score - es) / paper_score * 100.0
    );
    assert!(es <= gs && gs <= paper_score + 1e-9);
    s
}

/// E7 — steering without predefined configurations: paper steering vs
/// the demand-driven allocator at realistic reconfiguration latency.
pub fn e7_demand() -> String {
    let programs = workloads();
    let mut s = String::from(
        "# E7 — predefined-configuration steering vs demand-driven steering\n(same fabric, same 32-cycle/slot latency)\n\n",
    );
    let _ = writeln!(
        s,
        "{:<24} {:>12} {:>12} {:>12} {:>12}",
        "workload", "paper:IPC", "demand:IPC", "paper:loads", "demand:loads"
    );
    let rows: Vec<String> = run_grid("e7_demand", &programs, |p| {
        let paper = run_one(SimConfig::default(), p);
        let demand = run_one(
            SimConfig {
                policy: PolicyKind::DemandDriven,
                ..SimConfig::default()
            },
            p,
        );
        format!(
            "{:<24} {:>12.3} {:>12.3} {:>12} {:>12}",
            p.name,
            paper.ipc(),
            demand.ipc(),
            paper.fabric.loads_started,
            demand.fabric.loads_started
        )
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    s
}

/// E8 — the FFU guarantee: everything terminates with reconfiguration
/// effectively disabled; the FFU-only floor quantifies what the fabric
/// adds.
pub fn e8_ffu() -> String {
    let mut s = String::from("# E8 — FFU forward-progress guarantee\n\n");
    let _ = writeln!(
        s,
        "{:<24} {:>14} {:>14} {:>12}",
        "workload", "ffu-only:IPC", "steering:IPC", "speedup"
    );
    let mut cfg = SimConfig {
        initial_config: None,
        ..SimConfig::default()
    };
    cfg.fabric.per_slot_load_latency = 1_000_000_000; // never completes within budget
    let programs = workloads();
    let rows: Vec<String> = run_grid("e8_ffu", &programs, |p| {
        let floor = run_one(cfg.clone(), p);
        assert!(floor.halted, "{} must halt on FFUs alone", p.name);
        assert_eq!(floor.issued_rfu, 0);
        let steer = run_one(SimConfig::default(), p);
        format!(
            "{:<24} {:>14.3} {:>14.3} {:>11.2}x",
            p.name,
            floor.ipc(),
            steer.ipc(),
            steer.ipc() / floor.ipc().max(1e-9)
        )
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    let _ = writeln!(
        s,
        "\n(every workload halts even when no RFU can ever be loaded)"
    );
    s
}

/// E9 — scaling: IPC vs queue depth and vs RFU slot count.
pub fn e9_scaling() -> String {
    let p = PhasedSpec::int_fp_mem(500, 2, 61).generate();
    let mut s = String::from("# E9 — scaling the 7-entry queue and the 8-slot fabric\n\n");

    let queue_sizes = [3usize, 5, 7, 11, 15, 23, 31];
    let _ = writeln!(s, "queue-depth sweep (8-slot fabric, paper steering):");
    let _ = writeln!(s, "{:>8} {:>10}", "queue", "IPC");
    let rows: Vec<String> = run_grid("e9_queue", &queue_sizes, |&q| {
        let cfg = SimConfig {
            queue_size: q,
            rob_size: q.max(32),
            ..SimConfig::default()
        };
        format!("{:>8} {:>10.3}", q, run_one(cfg, &p).ipc())
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }

    let slot_counts = [4usize, 6, 8, 12, 16];
    let _ = writeln!(
        s,
        "\nfabric-size sweep (7-entry queue, scaled steering sets):"
    );
    let _ = writeln!(
        s,
        "{:>8} {:>10} {:>36}",
        "slots", "IPC", "scaled Config 3 counts"
    );
    let rows: Vec<String> = run_grid("e9_slots", &slot_counts, |&n| {
        let set = scaled_paper_set(n);
        let c3 = set.predefined[2].counts;
        let cfg = SimConfig {
            steering_set: set,
            fabric: FabricParams {
                rfu_slots: n,
                ..FabricParams::default()
            },
            ..SimConfig::default()
        };
        format!(
            "{:>8} {:>10.3} {:>36}",
            n,
            run_one(cfg, &p).ipc(),
            c3.to_string()
        )
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    let _ = writeln!(
        s,
        "\n(the 7-entry queue is the window: IPC saturates once the queue stops\nbeing the bottleneck; fabric growth helps while unit contention dominates)"
    );
    s
}

/// E10 — demand-signature ambiguity: the paper's §3.1 says the selection
/// unit inspects instructions "ready to be executed", §3.2 says
/// instructions "that have not been scheduled". Both readings are
/// implemented; this experiment measures whether the difference matters.
pub fn e10_demand_mode() -> String {
    use rsp_sim::DemandMode;
    let programs = workloads();
    let mut s =
        String::from("# E10 — demand signature: ready-only (§3.1) vs all-unscheduled (§3.2)\n\n");
    let _ = writeln!(
        s,
        "{:<24} {:>12} {:>12} {:>14} {:>14}",
        "workload", "ready:IPC", "unsched:IPC", "ready:loads", "unsched:loads"
    );
    let rows: Vec<String> = run_grid("e10_demand_mode", &programs, |p| {
        let mk = |mode: DemandMode| SimConfig {
            demand_mode: mode,
            ..SimConfig::default()
        };
        let ready = run_one(mk(DemandMode::Ready), p);
        let unsched = run_one(mk(DemandMode::Unscheduled), p);
        format!(
            "{:<24} {:>12.3} {:>12.3} {:>14} {:>14}",
            p.name,
            ready.ipc(),
            unsched.ipc(),
            ready.fabric.loads_started,
            unsched.fabric.loads_started
        )
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    let _ = writeln!(
        s,
        "\n(unscheduled-demand sees blocked dependents too, so its signature is\nlarger and smoother; ready-demand reacts only to issueable work)"
    );
    s
}

/// E11 — demand smoothing (our extension, motivated by the churn E1/E10
/// exposed): EWMA-filter the demand with α = 2^-k and sweep k.
pub fn e11_smoothing() -> String {
    let programs = workloads();
    let shifts = [0u32, 1, 2, 3, 4, 5];
    let mut s = String::from(
        "# E11 — shift-based EWMA demand smoothing in front of the selection unit\n\n",
    );
    let _ = writeln!(
        s,
        "IPC by smoothing shift k (alpha = 2^-k; k=0 is the paper's unfiltered unit):"
    );
    let _ = write!(s, "{:<24}", "workload");
    for k in shifts {
        let _ = write!(s, "{:>9}", format!("k={k}"));
    }
    let _ = writeln!(s, "{:>18}", "reloads k=0 / k=3");
    let rows: Vec<String> = run_grid("e11_smoothing", &programs, |p| {
        let mut line = format!("{:<24}", p.name);
        let mut reloads = (0u64, 0u64);
        for k in shifts {
            let cfg = SimConfig {
                policy: PolicyKind::PaperSmoothed { shift: k },
                ..SimConfig::default()
            };
            let r = run_one(cfg, p);
            if k == 0 {
                reloads.0 = r.fabric.slots_reloaded;
            }
            if k == 3 {
                reloads.1 = r.fabric.slots_reloaded;
            }
            line.push_str(&format!("{:>9.3}", r.ipc()));
        }
        line.push_str(&format!("{:>12} / {}", reloads.0, reloads.1));
        line
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    let _ = writeln!(
        s,
        "\n(moderate smoothing suppresses reconfiguration churn on oscillating\ndemand at no cost on stable demand; large k makes steering too sluggish\nfor short phases)"
    );
    s
}

/// E12 — select-free scheduling cost: the paper adopts the wake-up array
/// of Brown/Stark/Patt, whose point is removing the select logic from the
/// critical path at the price of occasional collisions. Measure that
/// price in this machine.
pub fn e12_selectfree() -> String {
    use rsp_sim::SelectMode;
    let programs = workloads();
    let penalties = [1u32, 2, 4];
    let mut s = String::from("# E12 — precise arbiter vs select-free collision recovery\n\n");
    let _ = write!(s, "{:<24} {:>12}", "workload", "arbiter:IPC");
    for p in penalties {
        let _ = write!(s, "{:>14}", format!("sf(p={p}):IPC"));
    }
    let _ = writeln!(s, "{:>16}", "collisions(p=2)");
    let rows: Vec<String> = run_grid("e12_selectfree", &programs, |p| {
        let base = run_one(SimConfig::default(), p);
        let mut line = format!("{:<24} {:>12.3}", p.name, base.ipc());
        let mut coll = 0;
        for pen in penalties {
            let cfg = SimConfig {
                select_mode: SelectMode::SelectFree { penalty: pen },
                ..SimConfig::default()
            };
            let r = run_one(cfg, p);
            if pen == 2 {
                coll = r.collisions;
            }
            line.push_str(&format!("{:>14.3}", r.ipc()));
        }
        line.push_str(&format!("{coll:>16}"));
        line
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    let _ = writeln!(
        s,
        "\n(collisions are rare enough that select-free loses only a few percent —\nconsistent with Brown/Stark/Patt's premise, which the paper builds on)"
    );
    s
}

/// E13 — hardware cost of the selection unit: the paper's
/// complexity/latency argument for the barrel shifter, as first-order
/// gate estimates (see `rsp_core::hwcost` for the model's conventions).
pub fn e13_hwcost() -> String {
    use rsp_core::hwcost::{report, selection_unit_cost};
    let mut s = String::from("# E13 — selection-unit hardware cost (first-order gate model)\n\n");
    let _ = writeln!(
        s,
        "paper machine (7-entry queue, 5 types, 3 predefined configs):\n"
    );
    s.push_str(&report(7));
    let _ = writeln!(s, "\nscaling with queue depth (shifter CEM):");
    let _ = writeln!(s, "{:>8} {:>12} {:>12}", "queue", "gates", "depth");
    for q in [7u32, 15, 31, 63] {
        let c = selection_unit_cost(q, 5, 3, 6, false);
        let _ = writeln!(s, "{:>8} {:>12} {:>12}", q, c.total.gates, c.total.depth);
    }
    let _ = writeln!(
        s,
        "\n(the shifter CEM keeps stage 3 at wiring + one small adder tree; the\nexact divider multiplies stage-3 area and more than doubles its depth —\nthe paper's \"increased complexity and latency\", quantified)"
    );
    s
}

/// E14 — front-end sensitivity: does steering's benefit survive a better
/// branch predictor? (A sharper front end feeds the queue faster, raising
/// both demand pressure and the value of a well-matched fabric.)
pub fn e14_predictor() -> String {
    use rsp_sim::BranchPrediction;
    let programs = workloads();
    let mut s = String::from("# E14 — not-taken vs bimodal branch prediction\n\n");
    let _ = writeln!(
        s,
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "workload", "nt:IPC", "bimodal:IPC", "nt:flush", "bi:flush", "steer-gain(bi)"
    );
    let rows: Vec<String> = run_grid("e14_predictor", &programs, |p| {
        let nt = run_one(SimConfig::default(), p);
        let bi_cfg = SimConfig {
            branch_prediction: BranchPrediction::Bimodal { entries: 512 },
            ..SimConfig::default()
        };
        let bi = run_one(bi_cfg.clone(), p);
        // Steering's edge over the worst static, under bimodal.
        let worst_static = (0..3)
            .map(|i| {
                run_one(
                    SimConfig {
                        branch_prediction: BranchPrediction::Bimodal { entries: 512 },
                        ..SimConfig::static_on(i)
                    },
                    p,
                )
                .ipc()
            })
            .fold(f64::INFINITY, f64::min);
        format!(
            "{:<24} {:>12.3} {:>12.3} {:>12} {:>12} {:>13.2}x",
            p.name,
            nt.ipc(),
            bi.ipc(),
            nt.flushes,
            bi.flushes,
            bi.ipc() / worst_static.max(1e-9)
        )
    });
    for r in rows {
        let _ = writeln!(s, "{r}");
    }
    let _ = writeln!(
        s,
        "\n(steering's advantage over a mismatched fabric persists — and grows on\nloop workloads — when the front end stops flushing every back edge)"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // The heavyweight sweeps are exercised end-to-end by the experiments
    // binary; here we smoke-test the cheap ones and the invariants they
    // assert internally.

    #[test]
    fn e6_basis_improves_or_matches_paper() {
        let t = e6_basis();
        assert!(t.contains("exhaustive-optimal"), "{t}");
    }

    #[test]
    fn e3_runs_and_reports_settled_fraction() {
        let t = e3_stability();
        assert!(t.contains("favor-current"), "{t}");
        assert!(t.contains('%'), "{t}");
    }

    #[test]
    fn e9_scaling_runs() {
        let t = e9_scaling();
        assert!(t.contains("queue"), "{t}");
        assert!(t.contains("slots"), "{t}");
    }
}

//! Table 1 and Figs. 1–7: regenerate each paper artifact's content from
//! the implementation.

use std::fmt::Write;

use rsp_core::cem::{CemUnit, ERROR_SCALE};
use rsp_core::{RequirementEncoder, SelectionUnit};
use rsp_fabric::availability::{available, available_circuit, AvailabilityInputs};
use rsp_fabric::config::SteeringSet;
use rsp_fabric::fabric::FabricParams;
use rsp_isa::regs::{FReg, IReg};
use rsp_isa::units::{TypeCounts, UnitType};
use rsp_isa::{Instruction, Opcode};
use rsp_sched::{DepGraph, EntryState, WakeupArray};
use rsp_sim::{Processor, SimConfig};
use rsp_workloads::paper_example;

/// T1 — Table 1: unit counts per configuration + type encodings, plus a
/// slot-capacity audit.
pub fn table1() -> String {
    let set = SteeringSet::paper_default();
    let mut s = String::new();
    let _ = writeln!(s, "# Table 1 — functional units per configuration\n");
    s.push_str(&set.table1());
    let _ = writeln!(s, "\nCapacity audit ({}-slot fabric):", set.rfu_slots);
    for c in &set.predefined {
        let _ = writeln!(
            s,
            "  {:<9} occupies {} slots: {}",
            c.name,
            c.slot_cost(),
            c.placement
        );
        assert_eq!(c.slot_cost(), set.rfu_slots);
    }
    s
}

/// F1 — Fig. 1: construct the full architecture and dump its components,
/// then smoke-run a program through it.
pub fn fig1() -> String {
    let cfg = SimConfig::default();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# Fig. 1 — the partially run-time reconfigurable architecture\n"
    );
    let _ = writeln!(s, "fixed modules:");
    let _ = writeln!(
        s,
        "  instruction memory + fetch unit   ({}-wide)",
        cfg.fetch_width
    );
    let _ = writeln!(
        s,
        "  trace cache                       ({} groups; hit latency {} vs miss {})",
        cfg.trace_cache_groups, cfg.front_latency_hit, cfg.front_latency_miss
    );
    let _ = writeln!(
        s,
        "  instruction decoder               (binary words -> decoded instructions)"
    );
    let _ = writeln!(
        s,
        "  instruction queue / wake-up array ({} entries)",
        cfg.queue_size
    );
    let _ = writeln!(
        s,
        "  register update unit              ({} entries; OoO issue, in-order completion, forwarding)",
        cfg.rob_size
    );
    let _ = writeln!(s, "  register files                    (32 int + 32 fp)");
    let _ = writeln!(
        s,
        "  data memory                       ({} words)",
        cfg.data_mem_words
    );
    let _ = writeln!(
        s,
        "  configuration manager             (selection unit + loader; policy {:?})",
        cfg.policy
    );
    let _ = writeln!(s, "fixed functional units (FFUs):");
    for t in &cfg.fabric.ffus {
        let _ = writeln!(s, "  1x {t}");
    }
    let _ = writeln!(
        s,
        "reconfigurable fabric: {} RFU slots, {} reconfig port(s), {} cycles/slot",
        cfg.fabric.rfu_slots, cfg.fabric.reconfig_ports, cfg.fabric.per_slot_load_latency
    );
    let _ = writeln!(s, "predefined steering configurations:");
    for c in &cfg.steering_set.predefined {
        let _ = writeln!(s, "  {:<9} {}", c.name, c.counts);
    }

    let program = rsp_workloads::kernels::dot_product(32);
    let r = Processor::new(cfg).run(&program, 1_000_000).unwrap();
    let _ = writeln!(
        s,
        "\nsmoke run ({}): {} instructions in {} cycles, IPC {:.3}, {} reconfigurations",
        program.name,
        r.retired,
        r.cycles,
        r.ipc(),
        r.fabric.loads_started
    );
    s
}

fn demo_queues() -> Vec<(&'static str, Vec<Instruction>)> {
    let r = IReg::new;
    let f = FReg::new;
    vec![
        (
            "integer-heavy",
            vec![
                Instruction::rrr(Opcode::Add, r(1), r(2), r(3)),
                Instruction::rrr(Opcode::Sub, r(4), r(5), r(6)),
                Instruction::rrr(Opcode::Xor, r(7), r(8), r(9)),
                Instruction::rrr(Opcode::Mul, r(10), r(11), r(12)),
                Instruction::lw(r(13), r(1), 0),
                Instruction::lw(r(14), r(1), 1),
                Instruction::rrr(Opcode::And, r(15), r(16), r(17)),
            ],
        ),
        (
            "fp-heavy",
            vec![
                Instruction::fff(Opcode::Fadd, f(1), f(2), f(3)),
                Instruction::fff(Opcode::Fsub, f(4), f(5), f(6)),
                Instruction::fff(Opcode::Fmul, f(7), f(8), f(9)),
                Instruction::fff(Opcode::Fdiv, f(10), f(11), f(12)),
                Instruction::flw(f(13), r(1), 0),
                Instruction::flw(f(14), r(1), 1),
            ],
        ),
        (
            "balanced",
            vec![
                Instruction::rrr(Opcode::Add, r(1), r(2), r(3)),
                Instruction::fff(Opcode::Fadd, f(1), f(2), f(3)),
                Instruction::lw(r(4), r(1), 0),
                Instruction::rrr(Opcode::Mul, r(5), r(6), r(7)),
                Instruction::fff(Opcode::Fmul, f(5), f(6), f(7)),
            ],
        ),
    ]
}

/// F2 — Fig. 2: stage-by-stage trace of the configuration selection unit
/// on representative queues.
pub fn fig2() -> String {
    let set = SteeringSet::paper_default();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# Fig. 2 — configuration selection unit, stage by stage\n"
    );
    for (name, queue) in demo_queues() {
        for current in [0usize, 2] {
            let cur = &set.predefined[current];
            let _ = writeln!(
                s,
                "queue '{name}' with current configuration = {}:",
                cur.name
            );
            for (i, instr) in queue.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "  decoder[{i}]: {:<24} -> {}",
                    instr.to_string(),
                    rsp_core::unit_decoder(instr.opcode)
                );
            }
            let required =
                RequirementEncoder::PAPER.encode(&rsp_core::decode::decode_queue(&queue));
            let _ = writeln!(s, "  requirement encoders: {required}");
            let current_counts = cur.counts.saturating_add(&set.ffu);
            let r = SelectionUnit::PAPER.select(&queue, current_counts, &cur.placement, &set);
            for (i, e) in r.errors.iter().enumerate() {
                let label = if i == 0 {
                    "current".into()
                } else {
                    set.predefined[i - 1].name.clone()
                };
                let _ = writeln!(
                    s,
                    "  CEM[{label:<9}] avail {}  error {:>5}  reload {:>2}",
                    r.candidate_counts[i], e, r.reconfig_cost[i]
                );
            }
            let _ = writeln!(
                s,
                "  selection: {} (two-bit {:02b})\n",
                r.choice,
                r.two_bit()
            );
        }
    }
    s
}

/// F3 — Fig. 3: CEM tables and the shifter-vs-exact-divider comparison
/// over the complete requirement-signature space.
pub fn fig3() -> String {
    let set = SteeringSet::paper_default();
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 3 — configuration error metric generation\n");
    let _ = writeln!(
        s,
        "shift control (Fig. 3c): avail 0-1 -> /1, 2-3 -> /2, 4-7 -> /4\n"
    );

    // Worked example rows for one demand signature on each config.
    let demand = TypeCounts::new([2, 1, 2, 1, 1]);
    let _ = writeln!(s, "worked example, demand {demand}:");
    for (i, c) in set.predefined.iter().enumerate() {
        let avail = set.total_counts(i);
        let _ = writeln!(s, "  {} (avail {avail}):", c.name);
        for row in CemUnit::PAPER.trace(&demand, &avail) {
            let _ = writeln!(
                s,
                "    {:<8} req {} / div {} -> term {}",
                row.unit.to_string(),
                row.required,
                row.divisor,
                row.term / ERROR_SCALE
            );
        }
        let _ = writeln!(
            s,
            "    total error: shifter {}  exact {:.3}",
            CemUnit::PAPER.error(&demand, &avail) / ERROR_SCALE,
            CemUnit::EXACT.error(&demand, &avail) as f64 / ERROR_SCALE as f64
        );
    }

    // Exhaustive agreement sweep: over every demand signature (total <= 7)
    // and every current-config candidate set, does the shifter pick the
    // same configuration as the exact divider?
    let mut same = 0u64;
    let mut diff = 0u64;
    let mut shifter_regret = 0.0f64;
    for demand in rsp_workloads::mixes::all_signatures(7) {
        for cur in 0..3usize {
            let placement = &set.predefined[cur].placement;
            let cur_counts = set.total_counts(cur);
            let paper = SelectionUnit::PAPER.choose(demand, cur_counts, placement, &set);
            let exact_unit = SelectionUnit {
                cem: CemUnit::EXACT,
                ..SelectionUnit::PAPER
            };
            let exact = exact_unit.choose(demand, cur_counts, placement, &set);
            if paper.0 == exact.0 {
                same += 1;
            } else {
                diff += 1;
                // Regret: exact error of the shifter's pick minus the
                // exact error of the exact pick.
                let pick_counts = |c: rsp_core::ConfigChoice| match c {
                    rsp_core::ConfigChoice::Current => cur_counts,
                    rsp_core::ConfigChoice::Predefined(i) => set.total_counts(i),
                };
                let e_paper = CemUnit::EXACT.error(&demand, &pick_counts(paper.0));
                let e_exact = CemUnit::EXACT.error(&demand, &pick_counts(exact.0));
                shifter_regret += (e_paper as f64 - e_exact as f64) / ERROR_SCALE as f64;
            }
        }
    }
    let total = same + diff;
    let _ = writeln!(
        s,
        "\nshifter vs exact divider over {} (demand, current) cases:",
        total
    );
    let _ = writeln!(
        s,
        "  same selection: {same} ({:.1}%)   different: {diff} ({:.1}%)",
        100.0 * same as f64 / total as f64,
        100.0 * diff as f64 / total as f64
    );
    let _ = writeln!(
        s,
        "  mean exact-error regret when different: {:.3} units",
        if diff == 0 {
            0.0
        } else {
            shifter_regret / diff as f64
        }
    );
    s
}

/// F4 — Fig. 4: the example dependency graph.
pub fn fig4() -> String {
    let entries = paper_example::entries();
    let g = DepGraph::build(&entries);
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 4 — example dependency graph\n");
    s.push_str(&g.render(&entries));
    let _ = writeln!(
        s,
        "\nroots: {:?}   critical path: {} instructions",
        g.roots().iter().map(|i| i + 1).collect::<Vec<_>>(),
        g.critical_path_len()
    );
    let _ = writeln!(
        s,
        "(paper-pinned facts hold: Load has no deps; Mul depends on Sub)"
    );
    s
}

/// F5 — Fig. 5: the wake-up array bit matrix for the Fig. 4 program.
pub fn fig5() -> String {
    let entries = paper_example::entries();
    let g = DepGraph::build(&entries);
    let mut w = WakeupArray::paper();
    for (i, instr) in entries.iter().enumerate() {
        w.insert(instr.unit_type(), g.preds(i), i as u64).unwrap();
    }
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 5 — wake-up array for the Fig. 4 example\n");
    s.push_str(&w.matrix());
    s
}

/// F6 — Fig. 6: cycle-by-cycle request/grant/timer trace of the example
/// on the full machine.
pub fn fig6() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# Fig. 6 — wake-up logic trace (request lines, scheduled bits, timers)\n"
    );
    let proc = Processor::new(SimConfig::default());
    let mut m = proc.start(&paper_example::program()).unwrap();
    let names = paper_example::ENTRY_NAMES;
    let _ = writeln!(
        s,
        "cycle | per-entry state (timer in the paper's N-1 convention)"
    );
    while m.cycle() < 60 && m.step() {
        let mut line = format!("{:>5} |", m.cycle());
        let mut any = false;
        for (slot, e) in m.wakeup().entries() {
            if (e.tag as usize) < names.len() {
                any = true;
                let state = match m.wakeup().state(slot).unwrap() {
                    EntryState::Waiting => "wait".into(),
                    EntryState::Executing => {
                        format!("exec(t={})", e.paper_timer().map_or(0, |t| t))
                    }
                    EntryState::Done => "done".into(),
                };
                line.push_str(&format!(" {}:{state}", names[e.tag as usize]));
            }
        }
        if any {
            let _ = writeln!(s, "{line}");
        }
    }
    let r = m.report();
    let _ = writeln!(
        s,
        "\nprogram retired {} instructions in {} cycles (in-order completion held)",
        r.retired, r.cycles
    );
    s
}

/// F7 — Fig. 7 / Eq. 1: the availability circuit, exercised over a
/// hybrid allocation with every busy-mask corner, plus the gate-level vs
/// behavioural cross-check.
pub fn fig7() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# Fig. 7 / Eq. 1 — resource availability computation\n");
    // A hybrid allocation: LSU | FP-ALU(3) | Int-MDU(2) | LSU | empty.
    let mut alloc = rsp_fabric::AllocationVector::empty(8);
    alloc.place(0, UnitType::Lsu);
    alloc.place(1, UnitType::FpAlu);
    alloc.place(4, UnitType::IntMdu);
    alloc.place(6, UnitType::Lsu);
    let _ = writeln!(s, "allocation vector: {alloc}\n");
    let ffus: Vec<(UnitType, bool)> = vec![(UnitType::IntAlu, true), (UnitType::FpMdu, false)];
    let cases: [(&str, Vec<bool>); 3] = [
        ("all RFUs idle", vec![true; 8]),
        ("all RFUs busy", vec![false; 8]),
        (
            "FP-ALU busy, LSU@6 idle only",
            vec![false, false, false, false, false, false, true, false],
        ),
    ];
    for (label, slot_avail) in &cases {
        let inputs = AvailabilityInputs {
            alloc: &alloc,
            slot_available: slot_avail,
            ffus: &ffus,
        };
        let _ = writeln!(s, "case: {label}  (FFUs: Int-ALU idle, FP-MDU busy)");
        for &t in &UnitType::ALL {
            let a = available(t, &inputs);
            let c = available_circuit(t, &inputs);
            assert_eq!(a, c, "gate-level and behavioural forms must agree");
            let _ = writeln!(s, "  available({t:<7}) = {a}");
        }
    }
    let _ = writeln!(
        s,
        "\ncontinuation slots never match a type encoding: {}",
        rsp_fabric::availability::continuation_never_matches()
    );
    // And on a live fabric: a busy unit's whole span deasserts.
    let set = SteeringSet::paper_default();
    let mut fab =
        rsp_fabric::Fabric::with_configuration(FabricParams::default(), &set.predefined[2]);
    let _ = writeln!(s, "\nlive fabric on Config 3: {}", fab.slot_map());
    let id = rsp_fabric::fabric::UnitId::Rfu { head: 2 };
    fab.set_busy(id);
    let _ = writeln!(
        s,
        "after marking the RFU FP-ALU busy: available(FP-ALU) = {} (FFU still idle)",
        fab.available(UnitType::FpAlu)
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_all_configs() {
        let t = table1();
        for needle in [
            "Config 1",
            "Config 2",
            "Config 3",
            "FFUs",
            "111",
            "occupies 8 slots",
        ] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fig2_selects_fp_config_for_fp_queue() {
        let t = fig2();
        assert!(t.contains("selection: Config 3"), "{t}");
        assert!(t.contains("selection: Config 0 (current)"), "{t}");
    }

    #[test]
    fn fig3_reports_high_agreement() {
        let t = fig3();
        assert!(t.contains("same selection"), "{t}");
        // Parse the agreement percentage and require a sane level.
        let pct: f64 = t
            .split("same selection: ")
            .nth(1)
            .and_then(|x| x.split('(').nth(1))
            .and_then(|x| x.split('%').next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(pct > 60.0, "shifter should mostly agree with exact: {pct}%");
    }

    #[test]
    fn fig5_matrix_has_expected_bits() {
        let t = fig5();
        assert!(t.contains("Entry 4"), "{t}");
    }

    #[test]
    fn fig6_shows_execution_states() {
        let t = fig6();
        assert!(t.contains("exec(t="), "{t}");
        assert!(t.contains("retired 8 instructions"), "{t}");
    }

    #[test]
    fn fig7_runs_cross_check() {
        let t = fig7();
        assert!(t.contains("available(Int-ALU) = true"), "{t}");
    }

    #[test]
    fn fig1_smoke_runs() {
        let t = fig1();
        assert!(t.contains("IPC"), "{t}");
    }
}

//! One module per reproduced artifact: [`figures`] covers Table 1 and
//! Figs. 1–7 (regenerating each artifact's content from the
//! implementation), [`evals`] covers the quantitative experiments E1–E9
//! (DESIGN.md §4), [`faults`] sweeps the fault model (DESIGN.md §9).
//! Every function returns the report text it prints, so tests can assert
//! on content.
//!
//! Experiments whose grid is worth sharding/resuming are [`crate::sweep::Sweep`]s and
//! dispatch through [`sweep_runner`] (the `experiments` bin routes them
//! onto the engine, honouring `--shard`/`--resume`/`--out-dir`/
//! `--cache-dir`); the rest dispatch through [`run`]. Multi-stage
//! [`studies`] compose the sweeps with pivot/report stages over the
//! artifact store and dispatch through the `study` subcommand.

use crate::sweep::SweepRunner;

pub mod evals;
pub mod faults;
pub mod figures;
pub mod studies;

/// All experiment ids, in DESIGN.md order.
pub const ALL_IDS: [&str; 26] = [
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "e1-ipc",
    "e2-partial",
    "e3-stability",
    "e4-latency",
    "e5-divider",
    "e6-basis",
    "e7-demand",
    "e8-ffu",
    "e9-scaling",
    "e10-demand-mode",
    "e11-smoothing",
    "e12-selectfree",
    "e13-hwcost",
    "e14-predictor",
    "fault-sweep",
    "serve-saturation",
    "serve-sched",
    "all",
];

/// The sweep-engine experiments: ids whose grids run sharded/resumable.
/// `run(id)` returns `None` for these; drive them through the engine.
pub fn sweep_runner(id: &str) -> Option<Box<dyn SweepRunner>> {
    match id {
        "e1-ipc" => Some(Box::new(evals::E1Sweep::new())),
        "fault-sweep" => Some(Box::new(faults::FaultSweep::full())),
        // Hidden id (deliberately not in ALL_IDS, so listings and the
        // `all` driver stay stable): the reduced fault grid, sized for
        // the CI cold→warm cache job and local smoke runs.
        "fault-sweep-reduced" => Some(Box::new(faults::FaultSweep::reduced())),
        "serve-saturation" => Some(Box::new(crate::serve_saturation::ServeSaturationSweep)),
        "serve-sched" => Some(Box::new(crate::serve_sched::ServeSchedSweep::full())),
        _ => None,
    }
}

/// Dispatch one non-sweep experiment by id; returns its report text.
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "table1" => figures::table1(),
        "fig1" => figures::fig1(),
        "fig2" => figures::fig2(),
        "fig3" => figures::fig3(),
        "fig4" => figures::fig4(),
        "fig5" => figures::fig5(),
        "fig6" => figures::fig6(),
        "fig7" => figures::fig7(),
        "e2-partial" => evals::e2_partial(),
        "e3-stability" => evals::e3_stability(),
        "e4-latency" => evals::e4_latency(),
        "e5-divider" => evals::e5_divider(),
        "e6-basis" => evals::e6_basis(),
        "e7-demand" => evals::e7_demand(),
        "e8-ffu" => evals::e8_ffu(),
        "e9-scaling" => evals::e9_scaling(),
        "e10-demand-mode" => evals::e10_demand_mode(),
        "e11-smoothing" => evals::e11_smoothing(),
        "e12-selectfree" => evals::e12_selectfree(),
        "e13-hwcost" => evals::e13_hwcost(),
        "e14-predictor" => evals::e14_predictor(),
        _ => return None,
    })
}

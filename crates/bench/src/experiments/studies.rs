//! Built-in multi-stage studies (DESIGN.md §17): sweep → pivot →
//! report DAGs over the content-addressed artifact store.
//!
//! A study reuses a registered sweep as its root node, so `study run`
//! shares point artifacts with plain `experiments <id> --cache-dir`
//! runs of the same grid — running one warms the other. The pivot and
//! report stages are pure transforms of upstream artifacts, keyed by
//! the upstream node hashes, so editing a stage's inputs (or the code
//! version) recomputes exactly the downstream slice of the DAG.

use serde_json::Value;

use crate::experiments::faults::FaultSweep;
use crate::sweep::study::{num_field, str_field};
use crate::sweep::{StudyDag, SweepRunner};

/// Every study id, for listings and the gc root set.
pub const STUDY_IDS: [&str; 2] = ["fault-study", "fault-study-reduced"];

/// Look up a study by id.
pub fn study(id: &str) -> Option<StudyDag> {
    match id {
        "fault-study" => Some(fault_study("fault-study", Box::new(FaultSweep::full()))),
        "fault-study-reduced" => Some(fault_study(
            "fault-study-reduced",
            Box::new(FaultSweep::reduced()),
        )),
        _ => None,
    }
}

/// The fault study: the fault sweep, pivoted per upset level into mean
/// baseline/fault-aware IPC and the steering recovery ratio, then
/// rendered as the terminal report.
fn fault_study(name: &'static str, sweep: Box<dyn SweepRunner>) -> StudyDag {
    StudyDag::new(name)
        .sweep("sweep", sweep)
        .stage("pivot", &["sweep"], |inputs| {
            let rows = inputs[0].as_array().ok_or("sweep output is not an array")?;
            // Group by upset level, in first-appearance (grid) order.
            let mut levels: Vec<(i128, Vec<&Value>)> = Vec::new();
            for row in rows {
                let ppm = num_field(row, "upset_ppm")? as i128;
                match levels.iter_mut().find(|(p, _)| *p == ppm) {
                    Some((_, group)) => group.push(row),
                    None => levels.push((ppm, vec![row])),
                }
            }
            let mut out = Vec::with_capacity(levels.len());
            for (ppm, group) in levels {
                let n = group.len() as f64;
                let mut ipc = 0.0;
                let mut aware = 0.0;
                let mut workloads: Vec<String> = Vec::new();
                for row in &group {
                    ipc += num_field(row, "ipc")?;
                    aware += num_field(row, "ipc_fault_aware")?;
                    let w = str_field(row, "workload")?;
                    if !workloads.contains(&w) {
                        workloads.push(w);
                    }
                }
                let (ipc, aware) = (ipc / n, aware / n);
                out.push(Value::Object(vec![
                    ("upset_ppm".into(), Value::Int(ppm)),
                    ("rows".into(), Value::Int(group.len() as i128)),
                    ("workloads".into(), Value::Int(workloads.len() as i128)),
                    ("mean_ipc".into(), Value::Float(ipc)),
                    ("mean_ipc_fault_aware".into(), Value::Float(aware)),
                    (
                        "recovery_ratio".into(),
                        Value::Float(if ipc > 0.0 { aware / ipc } else { 0.0 }),
                    ),
                ]));
            }
            Ok(Value::Object(vec![("levels".into(), Value::Array(out))]))
        })
        .stage("report", &["pivot"], |inputs| {
            let levels = inputs[0]
                .get("levels")
                .and_then(Value::as_array)
                .ok_or("pivot output has no levels array")?;
            let mut s = String::from(
                "fault study: mean IPC per upset level (fault-aware / degraded baseline)\n",
            );
            s.push_str(&format!(
                "{:>10} {:>5} {:>10} {:>12} {:>10}\n",
                "upset_ppm", "rows", "mean_ipc", "fault_aware", "recovery"
            ));
            let mut worst: Option<(i128, f64)> = None;
            for lvl in levels {
                let ppm = num_field(lvl, "upset_ppm")? as i128;
                let ratio = num_field(lvl, "recovery_ratio")?;
                s.push_str(&format!(
                    "{:>10} {:>5} {:>10.4} {:>12.4} {:>9.2}x\n",
                    ppm,
                    num_field(lvl, "rows")? as u64,
                    num_field(lvl, "mean_ipc")?,
                    num_field(lvl, "mean_ipc_fault_aware")?,
                    ratio,
                ));
                if worst.is_none_or(|(p, _)| ppm > p) {
                    worst = Some((ppm, ratio));
                }
            }
            if let Some((ppm, ratio)) = worst {
                s.push_str(&format!(
                    "at the harshest upset level ({ppm} ppm) fault-aware steering \
                     holds {ratio:.2}x the degraded baseline's IPC\n"
                ));
            }
            Ok(Value::Str(s))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{Executor, SweepConfig};

    fn cfg(name: &str) -> SweepConfig {
        let base = std::env::temp_dir()
            .join(format!("rsp-studies-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        SweepConfig {
            executor: Executor::InProcess,
            out_dir: base.join("out"),
            cache_dir: Some(base.join("cas")),
            ..SweepConfig::default()
        }
    }

    #[test]
    fn every_listed_study_resolves_and_plans() {
        let cfg = cfg("plans");
        let store = crate::sweep::CasStore::open(cfg.cache_dir.clone().unwrap()).unwrap();
        for id in STUDY_IDS {
            let s = study(id).expect(id);
            let plans = s.plan(&cfg, &store).unwrap();
            assert_eq!(
                plans.iter().map(|p| p.id).collect::<Vec<_>>(),
                ["sweep", "pivot", "report"],
                "{id}"
            );
        }
        assert!(study("no-such-study").is_none());
    }

    #[test]
    fn reduced_fault_study_runs_and_short_circuits() {
        let cfg = cfg("reduced");
        let first = study("fault-study-reduced").unwrap().run(&cfg).unwrap();
        assert_eq!(first.nodes_cached, 0);
        assert!(first.cache.misses > 0);
        assert!(first.report.contains("recovery"), "{}", first.report);
        assert!(
            first.report.contains("fault-aware steering holds"),
            "{}",
            first.report
        );
        let second = study("fault-study-reduced").unwrap().run(&cfg).unwrap();
        assert_eq!(second.nodes_cached, 3, "warm rerun must not recompute");
        assert_eq!(second.cache.misses, 0);
        assert_eq!(second.report, first.report);
    }
}

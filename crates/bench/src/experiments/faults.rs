//! Fault sweep: IPC degradation under configuration-memory upsets as a
//! function of upset rate × scrub interval (DESIGN.md §9).
//!
//! The paper assumes a perfect fabric; this experiment quantifies what
//! its steering mechanism loses when the fabric is not perfect. Upsets
//! knock configured RFUs out as zombies (present in the allocation
//! vector, ungrantable at issue) until a scrub pass detects them and the
//! loader reloads the span — so IPC should degrade gracefully toward the
//! FFU-only floor as the upset rate rises, and faster scrubbing should
//! claw IPC back. Every run is still differentially correct: only timing
//! moves.
//!
//! Results are printed as a pivot table and written to
//! `BENCH_fault_sweep.json`.

use std::fmt::Write;

use rayon::prelude::*;
use rsp_fabric::fault::FaultParams;
use rsp_isa::Program;
use rsp_sim::{SimConfig, SimReport};
use rsp_workloads::{kernels, PhasedSpec};
use serde::Serialize;

use crate::harness::{pivot_table, run_one};

/// Upset rates swept (per-cycle strike probability, ppm).
const UPSET_PPM: [u32; 4] = [0, 2_000, 20_000, 100_000];
/// Scrub intervals swept (cycles between readback passes; 0 = never).
const SCRUB_INTERVALS: [u64; 4] = [0, 256, 64, 16];
/// Load-failure rate applied across the whole sweep so retry/backoff is
/// exercised too (10% of reloads fail readback).
const LOAD_FAILURE_PPM: u32 = 100_000;

/// One sweep point, serialised into `BENCH_fault_sweep.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FaultRow {
    /// Workload label.
    pub workload: String,
    /// Per-cycle upset probability (ppm).
    pub upset_ppm: u32,
    /// Cycles between scrub passes (0 = never).
    pub scrub_interval: u64,
    /// Retired instructions per cycle.
    pub ipc: f64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Upsets that corrupted a span.
    pub upsets_injected: u64,
    /// Corrupted spans detected by scrub.
    pub upsets_detected: u64,
    /// Scrub passes performed.
    pub scrubs: u64,
    /// Loads that failed readback.
    pub load_failures: u64,
    /// Loads restarted after a failure.
    pub retries: u64,
}

impl FaultRow {
    fn new(workload: &str, faults: &FaultParams, r: &SimReport) -> FaultRow {
        FaultRow {
            workload: workload.into(),
            upset_ppm: faults.upset_ppm,
            scrub_interval: faults.scrub_interval,
            ipc: r.ipc(),
            cycles: r.cycles,
            upsets_injected: r.faults.upsets_injected,
            upsets_detected: r.faults.upsets_detected,
            scrubs: r.faults.scrubs,
            load_failures: r.faults.load_failures,
            retries: r.loader.retries,
        }
    }
}

fn sweep_workloads() -> Vec<Program> {
    vec![
        PhasedSpec::int_fp_mem(400, 2, 7).generate(),
        kernels::fir(48),
    ]
}

fn faulty_config(upset_ppm: u32, scrub_interval: u64) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.fabric.faults = FaultParams {
        seed: 0xF0A17,
        load_failure_ppm: LOAD_FAILURE_PPM,
        upset_ppm,
        scrub_interval,
        dead_slots: vec![],
    };
    cfg
}

/// The sweep: every (workload, upset rate, scrub interval) point under
/// paper steering. Returns the report text; writes
/// `BENCH_fault_sweep.json` as a side effect.
pub fn fault_sweep() -> String {
    let programs = sweep_workloads();
    let points: Vec<(u32, u64)> = UPSET_PPM
        .iter()
        .flat_map(|&u| SCRUB_INTERVALS.iter().map(move |&s| (u, s)))
        .collect();
    let rows: Vec<FaultRow> = programs
        .par_iter()
        .flat_map(|p| {
            points.par_iter().map(move |&(u, s)| {
                let cfg = faulty_config(u, s);
                let faults = cfg.fabric.faults.clone();
                let r = run_one(cfg, p);
                FaultRow::new(&p.name, &faults, &r)
            })
        })
        .collect();

    let mut s = String::from("# fault-sweep — IPC vs upset rate × scrub interval\n\n");
    let _ = writeln!(
        s,
        "load_failure_ppm={LOAD_FAILURE_PPM} everywhere; upsets strike idle configured RFUs;"
    );
    let _ = writeln!(
        s,
        "scrub interval 0 = never scrub (corrupted spans stay zombies).\n"
    );
    let col_labels: Vec<String> = points.iter().map(|(u, sc)| format!("u{u}/s{sc}")).collect();
    for p in &programs {
        let wl: Vec<String> = vec![p.name.clone()];
        s.push_str(&pivot_table(
            &format!("IPC — {}", p.name),
            &wl,
            &col_labels,
            |w, c| {
                rows.iter()
                    .find(|r| {
                        r.workload == w && format!("u{}/s{}", r.upset_ppm, r.scrub_interval) == c
                    })
                    .map(|r| format!("{:.3}", r.ipc))
                    .unwrap_or_default()
            },
        ));
        s.push('\n');
    }

    // Headline check: for each workload, the clean point is the fastest
    // and the worst faulty point is the slowest.
    for p in &programs {
        let of = |u: u32, sc: u64| {
            rows.iter()
                .find(|r| r.workload == p.name && r.upset_ppm == u && r.scrub_interval == sc)
                .unwrap()
                .ipc
        };
        let clean = of(0, 0);
        let worst = of(*UPSET_PPM.last().unwrap(), 0);
        let scrubbed = of(*UPSET_PPM.last().unwrap(), *SCRUB_INTERVALS.last().unwrap());
        let _ = writeln!(
            s,
            "{:<20} clean={clean:.3}  worst(no-scrub)={worst:.3}  worst(scrub@{})={scrubbed:.3}",
            p.name,
            SCRUB_INTERVALS.last().unwrap(),
        );
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialise");
    match std::fs::write("BENCH_fault_sweep.json", &json) {
        Ok(()) => {
            let _ = writeln!(s, "\nwrote BENCH_fault_sweep.json ({} points)", rows.len());
        }
        Err(e) => {
            let _ = writeln!(s, "\ncould not write BENCH_fault_sweep.json: {e}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_degrades_and_recovers() {
        // One workload, three points: clean, heavy-upsets-no-scrub,
        // heavy-upsets-fast-scrub. Checks the experiment's core claim
        // without running the full grid.
        let p = kernels::fir(24);
        let clean = run_one(faulty_config(0, 0), &p);
        let zombie = run_one(faulty_config(100_000, 0), &p);
        let scrubbed = run_one(faulty_config(100_000, 16), &p);
        assert!(clean.halted && zombie.halted && scrubbed.halted);
        assert_eq!(clean.retired, zombie.retired);
        assert_eq!(clean.retired, scrubbed.retired);
        assert!(zombie.faults.upsets_injected > 0);
        assert!(scrubbed.faults.upsets_detected > 0);
        assert!(
            zombie.cycles >= clean.cycles,
            "zombie fabric cannot be faster: {} < {}",
            zombie.cycles,
            clean.cycles
        );
    }

    #[test]
    fn fault_rows_serialise() {
        let p = kernels::memcpy(8);
        let cfg = faulty_config(20_000, 64);
        let faults = cfg.fabric.faults.clone();
        let r = run_one(cfg, &p);
        let row = FaultRow::new(&p.name, &faults, &r);
        let j = serde_json::to_string(&row).unwrap();
        assert!(j.contains("\"upset_ppm\":20000"));
    }
}

//! Fault sweep: IPC degradation under configuration-memory upsets as a
//! function of upset rate × scrub interval (DESIGN.md §9).
//!
//! The paper assumes a perfect fabric; this experiment quantifies what
//! its steering mechanism loses when the fabric is not perfect. Upsets
//! knock configured RFUs out as zombies (present in the allocation
//! vector, ungrantable at issue) until a scrub pass detects them and the
//! loader reloads the span — so IPC should degrade gracefully toward the
//! FFU-only floor as the upset rate rises, and faster scrubbing should
//! claw IPC back. Every run is still differentially correct: only timing
//! moves.
//!
//! Every point is run twice: under the baseline policy and with the
//! fault-aware selection unit (DESIGN.md §11), which force-reloads
//! zombie spans and re-ranks against effective capacity. The fault
//! schedule is open-loop (a pure function of seed × cycle × slot), so
//! the two runs of a point face identical strikes and the comparison is
//! paired. The sweep asserts that at every swept upset rate fault-aware
//! IPC is at least the degraded (never-scrubbed) baseline's, strictly
//! above it at the highest swept rate, and that zero-fault runs are
//! bit-identical.
//!
//! The grid runs on the sweep engine (DESIGN.md §12): each
//! `(workload, upset rate, scrub interval)` point is keyed by those
//! parameters alone, and — because the fault schedule is open-loop —
//! each row is a pure function of its key, so the sweep shards, resumes
//! and merges to a byte-identical `BENCH_fault_sweep.json`. The
//! cross-point assertions above re-run on every merged set.

use std::fmt::Write;

use rsp_fabric::fault::FaultParams;
use rsp_isa::Program;
use rsp_sim::{PolicyKind, SimConfig, SimReport};
use rsp_workloads::{kernels, PhasedSpec};
use serde::{Deserialize, Serialize};

use crate::harness::{pivot_rows, run_one};
use crate::sweep::Sweep;

/// Upset rates swept (per-cycle strike probability, ppm). The top rate
/// stays in the regime where reloading a zombie pays for its load
/// latency; far beyond it (~10% per cycle) a reloaded unit is struck
/// again before it earns its keep and *no* recovery policy helps.
const UPSET_PPM: [u32; 4] = [0, 500, 2_000, 20_000];
/// Scrub intervals swept (cycles between readback passes; 0 = never).
const SCRUB_INTERVALS: [u64; 4] = [0, 256, 64, 16];
/// Load-failure rate applied across the whole sweep so retry/backoff is
/// exercised too (10% of reloads fail readback).
const LOAD_FAILURE_PPM: u32 = 100_000;

/// One sweep point, serialised into `BENCH_fault_sweep.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRow {
    /// Workload label.
    pub workload: String,
    /// Per-cycle upset probability (ppm).
    pub upset_ppm: u32,
    /// Cycles between scrub passes (0 = never).
    pub scrub_interval: u64,
    /// Retired instructions per cycle (degraded baseline policy).
    pub ipc: f64,
    /// Retired instructions per cycle with fault-aware steering.
    pub ipc_fault_aware: f64,
    /// Total simulated cycles (baseline).
    pub cycles: u64,
    /// Total simulated cycles (fault-aware).
    pub cycles_fault_aware: u64,
    /// Upsets that corrupted a span (baseline run).
    pub upsets_injected: u64,
    /// Corrupted spans detected by scrub (baseline run).
    pub upsets_detected: u64,
    /// Scrub passes performed (baseline run).
    pub scrubs: u64,
    /// Loads that failed readback (baseline run).
    pub load_failures: u64,
    /// Loads restarted after a failure (baseline run).
    pub retries: u64,
    /// Zombie spans force-reloaded by the fault-aware loader.
    pub zombie_reloads: u64,
    /// Dead-span re-placements by the fault-aware loader.
    pub replacements: u64,
}

impl FaultRow {
    fn new(workload: &str, faults: &FaultParams, base: &SimReport, aware: &SimReport) -> FaultRow {
        FaultRow {
            workload: workload.into(),
            upset_ppm: faults.upset_ppm,
            scrub_interval: faults.scrub_interval,
            ipc: base.ipc(),
            ipc_fault_aware: aware.ipc(),
            cycles: base.cycles,
            cycles_fault_aware: aware.cycles,
            upsets_injected: base.faults.upsets_injected,
            upsets_detected: base.faults.upsets_detected,
            scrubs: base.faults.scrubs,
            load_failures: base.faults.load_failures,
            retries: base.loader.retries,
            zombie_reloads: aware.loader.zombie_reloads,
            replacements: aware.loader.replacements,
        }
    }
}

fn sweep_workloads() -> Vec<Program> {
    // Both are capacity-sensitive: the phased workload steers across
    // int/fp/mem phases, and memcpy is LSU-throughput-bound — losing a
    // configured LSU to a zombie costs cycles every iteration.
    vec![
        PhasedSpec::int_fp_mem(400, 2, 7).generate(),
        kernels::memcpy(96),
    ]
}

fn faulty_config(upset_ppm: u32, scrub_interval: u64) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.fabric.faults = FaultParams {
        seed: 0xF0A17,
        load_failure_ppm: LOAD_FAILURE_PPM,
        upset_ppm,
        scrub_interval,
        dead_slots: vec![],
    };
    cfg
}

/// The same sweep point with the fault-aware selection unit switched on.
fn fault_aware_config(upset_ppm: u32, scrub_interval: u64) -> SimConfig {
    let mut cfg = faulty_config(upset_ppm, scrub_interval);
    cfg.policy = PolicyKind::PAPER_FAULT_AWARE;
    cfg
}

/// One point of the fault sweep's grid, identified entirely by its
/// parameters (the point key is derived from nothing else).
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Workload name (programs are regenerated deterministically).
    pub workload: String,
    /// Per-cycle upset probability (ppm).
    pub upset_ppm: u32,
    /// Cycles between scrub passes (0 = never).
    pub scrub_interval: u64,
}

/// The paired baseline/fault-aware sweep over
/// workload × upset rate × scrub interval, as a [`Sweep`].
pub struct FaultSweep {
    programs: Vec<Program>,
    upset_ppm: Vec<u32>,
    scrub_intervals: Vec<u64>,
    /// Enforce the policy-dominance assertions (the full grid's
    /// workloads are sized so they hold; reduced test grids check only
    /// the unconditional zero-fault pairing).
    strict: bool,
}

impl FaultSweep {
    /// The full CI grid (DESIGN.md §9/§11 assertions enforced).
    pub fn full() -> FaultSweep {
        FaultSweep {
            programs: sweep_workloads(),
            upset_ppm: UPSET_PPM.to_vec(),
            scrub_intervals: SCRUB_INTERVALS.to_vec(),
            strict: true,
        }
    }

    /// A reduced grid for engine tests: tiny workloads, a 2×2 fault
    /// grid, dominance assertions off (they are a claim about the full
    /// grid's workload sizes, not about the engine).
    pub fn reduced() -> FaultSweep {
        FaultSweep {
            programs: vec![
                PhasedSpec::int_fp_mem(60, 1, 7).generate(),
                kernels::memcpy(16),
            ],
            upset_ppm: vec![0, 20_000],
            scrub_intervals: vec![0, 16],
            strict: false,
        }
    }

    fn program(&self, name: &str) -> &Program {
        self.programs
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("unknown sweep workload {name:?}"))
    }
}

impl Sweep for FaultSweep {
    type Point = FaultPoint;
    type Row = FaultRow;

    fn name(&self) -> &'static str {
        "fault_sweep"
    }

    fn points(&self) -> Vec<FaultPoint> {
        let mut out = Vec::new();
        for p in &self.programs {
            for &u in &self.upset_ppm {
                for &s in &self.scrub_intervals {
                    out.push(FaultPoint {
                        workload: p.name.clone(),
                        upset_ppm: u,
                        scrub_interval: s,
                    });
                }
            }
        }
        out
    }

    fn key(&self, point: &FaultPoint) -> String {
        format!(
            "{}/u{}/s{}",
            point.workload, point.upset_ppm, point.scrub_interval
        )
    }

    fn spec(&self) -> serde_json::Value {
        use serde_json::Value;
        // Workloads carry a content digest, not just a name: the full
        // and reduced grids both have a "memcpy", and their rows must
        // never share a cache entry.
        let workloads = Value::Array(
            self.programs
                .iter()
                .map(|p| {
                    Value::Object(vec![
                        ("name".into(), Value::Str(p.name.clone())),
                        ("instrs".into(), Value::Int(p.instrs.len() as i128)),
                        (
                            "digest".into(),
                            Value::Str(crate::sweep::canon::sha256_hex(
                                format!("{:?}", p.instrs).as_bytes(),
                            )),
                        ),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("workloads".into(), workloads),
            (
                "upset_ppm".into(),
                Value::Array(
                    self.upset_ppm
                        .iter()
                        .map(|&u| Value::Int(u as i128))
                        .collect(),
                ),
            ),
            (
                "scrub_intervals".into(),
                Value::Array(
                    self.scrub_intervals
                        .iter()
                        .map(|&s| Value::Int(s as i128))
                        .collect(),
                ),
            ),
            (
                "load_failure_ppm".into(),
                Value::Int(LOAD_FAILURE_PPM as i128),
            ),
            ("fault_seed".into(), Value::Int(0xF0A17)),
            ("strict".into(), Value::Bool(self.strict)),
        ])
    }

    fn point_params(&self, point: &FaultPoint) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("workload".into(), Value::Str(point.workload.clone())),
            ("upset_ppm".into(), Value::Int(point.upset_ppm as i128)),
            (
                "scrub_interval".into(),
                Value::Int(point.scrub_interval as i128),
            ),
        ])
    }

    fn run_point(&self, point: &FaultPoint) -> FaultRow {
        let p = self.program(&point.workload);
        let cfg = faulty_config(point.upset_ppm, point.scrub_interval);
        let faults = cfg.fabric.faults.clone();
        let base = run_one(cfg, p);
        let aware = run_one(fault_aware_config(point.upset_ppm, point.scrub_interval), p);
        FaultRow::new(&p.name, &faults, &base, &aware)
    }

    fn verify(&self, rows: &[FaultRow]) -> Result<(), String> {
        // Sweep-level guarantees (CI runs this experiment as an
        // assertion job, and the merge step re-runs it on every merged
        // set). The *degraded baseline* is the baseline policy with
        // scrub off: zombies accumulate with no mitigation at all —
        // exactly the loss the fault-aware selection unit exists to
        // recover. At every swept upset rate the fault-aware run must be
        // at least as fast as that baseline, strictly faster at the
        // highest rate, and with zero upsets every run must be
        // bit-identical to its baseline.
        let top_rate = *self.upset_ppm.last().unwrap();
        for r in rows {
            if r.upset_ppm == 0 && r.cycles != r.cycles_fault_aware {
                return Err(format!(
                    "zero-fault runs must be bit-identical at {} s{}: {} != {}",
                    r.workload, r.scrub_interval, r.cycles, r.cycles_fault_aware
                ));
            }
            if !self.strict || r.scrub_interval != 0 {
                continue;
            }
            if r.ipc_fault_aware < r.ipc {
                return Err(format!(
                    "fault-aware IPC below the degraded baseline at {} u{}: {} < {}",
                    r.workload, r.upset_ppm, r.ipc_fault_aware, r.ipc
                ));
            }
            if r.upset_ppm == top_rate && r.ipc_fault_aware <= r.ipc {
                return Err(format!(
                    "fault-aware IPC must strictly beat the degraded baseline at {} u{}: {} <= {}",
                    r.workload, r.upset_ppm, r.ipc_fault_aware, r.ipc
                ));
            }
        }
        Ok(())
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_fault_sweep.json")
    }

    fn report(&self, rows: &[FaultRow]) -> String {
        let mut s = String::from("# fault-sweep — IPC vs upset rate × scrub interval\n\n");
        let _ = writeln!(
            s,
            "load_failure_ppm={LOAD_FAILURE_PPM} everywhere; an upset strikes a uniform slot and"
        );
        let _ = writeln!(
            s,
            "corrupts the idle unit spanning it (open-loop schedule, paired across policies);"
        );
        let _ = writeln!(
            s,
            "scrub interval 0 = never scrub (corrupted spans stay zombies).\n"
        );
        // Per workload, two pivots over the same grid: rows = upset
        // rates, columns = scrub intervals, cells = IPC under each
        // policy.
        let rate_labels: Vec<String> = self.upset_ppm.iter().map(|u| format!("u{u}")).collect();
        let scrub_labels: Vec<String> = self
            .scrub_intervals
            .iter()
            .map(|sc| format!("s{sc}"))
            .collect();
        for p in &self.programs {
            let grid_match = |r: &FaultRow, rate: &str, scrub: &str| {
                r.workload == p.name
                    && format!("u{}", r.upset_ppm) == rate
                    && format!("s{}", r.scrub_interval) == scrub
            };
            s.push_str(&pivot_rows(
                &format!("IPC (baseline) — {}", p.name),
                rows,
                &rate_labels,
                &scrub_labels,
                grid_match,
                |r| format!("{:.3}", r.ipc),
            ));
            s.push('\n');
            s.push_str(&pivot_rows(
                &format!("IPC (fault-aware) — {}", p.name),
                rows,
                &rate_labels,
                &scrub_labels,
                grid_match,
                |r| format!("{:.3}", r.ipc_fault_aware),
            ));
            s.push('\n');
        }

        // Headline check: for each workload, the clean point is the
        // fastest, the worst faulty point is the slowest, and
        // fault-aware steering claws back capacity the unscrubbed
        // baseline has lost for good.
        let top_rate = *self.upset_ppm.last().unwrap();
        let fast_scrub = *self.scrub_intervals.last().unwrap();
        for p in &self.programs {
            let of = |u: u32, sc: u64| {
                rows.iter()
                    .find(|r| r.workload == p.name && r.upset_ppm == u && r.scrub_interval == sc)
                    .unwrap()
            };
            let clean = of(0, 0).ipc;
            let worst = of(top_rate, 0);
            let scrubbed = of(top_rate, fast_scrub).ipc;
            let _ = writeln!(
                s,
                "{:<20} clean={clean:.3}  worst(no-scrub)={:.3}  worst(scrub@{})={scrubbed:.3}  \
                 worst(fault-aware)={:.3} ({} zombie reloads)",
                p.name, worst.ipc, fast_scrub, worst.ipc_fault_aware, worst.zombie_reloads,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_and_merge, SweepConfig};

    #[test]
    fn sweep_point_degrades_and_recovers() {
        // One workload, three points: clean, heavy-upsets-no-scrub,
        // heavy-upsets-fast-scrub. Checks the experiment's core claim
        // without running the full grid. memcpy is LSU-throughput-bound,
        // so zombie LSUs genuinely cost cycles (on dependency-bound
        // kernels the capacity loss can vanish into the latency chain).
        let p = kernels::memcpy(96);
        let u = *UPSET_PPM.last().unwrap();
        let clean = run_one(faulty_config(0, 0), &p);
        let zombie = run_one(faulty_config(u, 0), &p);
        let scrubbed = run_one(faulty_config(u, 16), &p);
        assert!(clean.halted && zombie.halted && scrubbed.halted);
        assert_eq!(clean.retired, zombie.retired);
        assert_eq!(clean.retired, scrubbed.retired);
        assert!(zombie.faults.upsets_injected > 0);
        assert!(scrubbed.faults.upsets_detected > 0);
        assert!(
            zombie.cycles > clean.cycles,
            "unmitigated zombies must cost cycles: {} <= {}",
            zombie.cycles,
            clean.cycles
        );
        assert!(
            scrubbed.cycles < zombie.cycles,
            "fast scrubbing must claw some IPC back: {} >= {}",
            scrubbed.cycles,
            zombie.cycles
        );
    }

    #[test]
    fn fault_rows_serialise() {
        let p = kernels::memcpy(8);
        let cfg = faulty_config(20_000, 64);
        let faults = cfg.fabric.faults.clone();
        let r = run_one(cfg, &p);
        let aware = run_one(fault_aware_config(20_000, 64), &p);
        let row = FaultRow::new(&p.name, &faults, &r, &aware);
        let j = serde_json::to_string(&row).unwrap();
        assert!(j.contains("\"upset_ppm\":20000"));
        assert!(j.contains("\"ipc_fault_aware\":"));
        assert!(j.contains("\"zombie_reloads\":"));
        let back: FaultRow = serde_json::from_str(&j).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), j);
    }

    #[test]
    fn fault_aware_beats_unscrubbed_baseline_and_matches_clean() {
        // The acceptance claim on a single workload: at the highest swept
        // upset rate with scrubbing off, fault-aware steering strictly
        // beats the degraded baseline (zombies are reloaded instead of
        // rotting), and with zero faults the two runs are bit-identical.
        let p = kernels::memcpy(96);
        let u = *UPSET_PPM.last().unwrap();
        let base = run_one(faulty_config(u, 0), &p);
        let aware = run_one(fault_aware_config(u, 0), &p);
        assert!(base.halted && aware.halted);
        assert_eq!(base.retired, aware.retired);
        assert!(aware.loader.zombie_reloads > 0, "no zombies reloaded");
        assert!(
            aware.cycles < base.cycles,
            "fault-aware must strictly beat the unscrubbed baseline: {} >= {}",
            aware.cycles,
            base.cycles
        );
        let clean_base = run_one(faulty_config(0, 0), &p);
        let clean_aware = run_one(fault_aware_config(0, 0), &p);
        assert_eq!(clean_base.cycles, clean_aware.cycles);
        assert_eq!(clean_base.retired, clean_aware.retired);
        assert_eq!(clean_aware.loader.zombie_reloads, 0);
        assert_eq!(clean_aware.loader.replacements, 0);
    }

    #[test]
    fn point_keys_are_parameter_derived_and_order_free() {
        let sweep = FaultSweep::full();
        let points = sweep.points();
        assert_eq!(points.len(), 2 * 4 * 4);
        // Keys never mention position: permuting the grid leaves every
        // key unchanged.
        let keys: Vec<String> = points.iter().map(|p| sweep.key(p)).collect();
        let mut reversed: Vec<String> = points.iter().rev().map(|p| sweep.key(p)).collect();
        reversed.reverse();
        assert_eq!(keys, reversed);
        assert!(keys.contains(&"memcpy/u20000/s16".to_string()), "{keys:?}");
    }

    #[test]
    fn reduced_sweep_runs_and_verifies_on_the_engine() {
        let sweep = FaultSweep::reduced();
        let dir = std::env::temp_dir().join(format!("rsp-fault-reduced-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SweepConfig {
            out_dir: dir.clone(),
            ..SweepConfig::default()
        };
        let summary = run_and_merge(&sweep, &cfg).expect("reduced sweep runs");
        assert_eq!(summary.points, 2 * 2 * 2);
        let text = std::fs::read_to_string(summary.artifact.unwrap()).unwrap();
        let rows: Vec<FaultRow> = serde_json::from_str(&text).unwrap();
        assert!(sweep.verify(&rows).is_ok());
        assert!(summary.report.contains("fault-sweep"));
    }
}

//! Fault sweep: IPC degradation under configuration-memory upsets as a
//! function of upset rate × scrub interval (DESIGN.md §9).
//!
//! The paper assumes a perfect fabric; this experiment quantifies what
//! its steering mechanism loses when the fabric is not perfect. Upsets
//! knock configured RFUs out as zombies (present in the allocation
//! vector, ungrantable at issue) until a scrub pass detects them and the
//! loader reloads the span — so IPC should degrade gracefully toward the
//! FFU-only floor as the upset rate rises, and faster scrubbing should
//! claw IPC back. Every run is still differentially correct: only timing
//! moves.
//!
//! Every point is run twice: under the baseline policy and with the
//! fault-aware selection unit (DESIGN.md §11), which force-reloads
//! zombie spans and re-ranks against effective capacity. The fault
//! schedule is open-loop (a pure function of seed × cycle × slot), so
//! the two runs of a point face identical strikes and the comparison is
//! paired. The sweep asserts that at every swept upset rate fault-aware
//! IPC is at least the degraded (never-scrubbed) baseline's, strictly
//! above it at the highest swept rate, and that zero-fault runs are
//! bit-identical.
//!
//! Results are printed as a pivot table and written to
//! `BENCH_fault_sweep.json`.

use std::fmt::Write;

use rayon::prelude::*;
use rsp_fabric::fault::FaultParams;
use rsp_isa::Program;
use rsp_sim::{PolicyKind, SimConfig, SimReport};
use rsp_workloads::{kernels, PhasedSpec};
use serde::Serialize;

use crate::harness::{pivot_table, run_one};

/// Upset rates swept (per-cycle strike probability, ppm). The top rate
/// stays in the regime where reloading a zombie pays for its load
/// latency; far beyond it (~10% per cycle) a reloaded unit is struck
/// again before it earns its keep and *no* recovery policy helps.
const UPSET_PPM: [u32; 4] = [0, 500, 2_000, 20_000];
/// Scrub intervals swept (cycles between readback passes; 0 = never).
const SCRUB_INTERVALS: [u64; 4] = [0, 256, 64, 16];
/// Load-failure rate applied across the whole sweep so retry/backoff is
/// exercised too (10% of reloads fail readback).
const LOAD_FAILURE_PPM: u32 = 100_000;

/// One sweep point, serialised into `BENCH_fault_sweep.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FaultRow {
    /// Workload label.
    pub workload: String,
    /// Per-cycle upset probability (ppm).
    pub upset_ppm: u32,
    /// Cycles between scrub passes (0 = never).
    pub scrub_interval: u64,
    /// Retired instructions per cycle (degraded baseline policy).
    pub ipc: f64,
    /// Retired instructions per cycle with fault-aware steering.
    pub ipc_fault_aware: f64,
    /// Total simulated cycles (baseline).
    pub cycles: u64,
    /// Total simulated cycles (fault-aware).
    pub cycles_fault_aware: u64,
    /// Upsets that corrupted a span (baseline run).
    pub upsets_injected: u64,
    /// Corrupted spans detected by scrub (baseline run).
    pub upsets_detected: u64,
    /// Scrub passes performed (baseline run).
    pub scrubs: u64,
    /// Loads that failed readback (baseline run).
    pub load_failures: u64,
    /// Loads restarted after a failure (baseline run).
    pub retries: u64,
    /// Zombie spans force-reloaded by the fault-aware loader.
    pub zombie_reloads: u64,
    /// Dead-span re-placements by the fault-aware loader.
    pub replacements: u64,
}

impl FaultRow {
    fn new(workload: &str, faults: &FaultParams, base: &SimReport, aware: &SimReport) -> FaultRow {
        FaultRow {
            workload: workload.into(),
            upset_ppm: faults.upset_ppm,
            scrub_interval: faults.scrub_interval,
            ipc: base.ipc(),
            ipc_fault_aware: aware.ipc(),
            cycles: base.cycles,
            cycles_fault_aware: aware.cycles,
            upsets_injected: base.faults.upsets_injected,
            upsets_detected: base.faults.upsets_detected,
            scrubs: base.faults.scrubs,
            load_failures: base.faults.load_failures,
            retries: base.loader.retries,
            zombie_reloads: aware.loader.zombie_reloads,
            replacements: aware.loader.replacements,
        }
    }
}

fn sweep_workloads() -> Vec<Program> {
    // Both are capacity-sensitive: the phased workload steers across
    // int/fp/mem phases, and memcpy is LSU-throughput-bound — losing a
    // configured LSU to a zombie costs cycles every iteration.
    vec![
        PhasedSpec::int_fp_mem(400, 2, 7).generate(),
        kernels::memcpy(96),
    ]
}

fn faulty_config(upset_ppm: u32, scrub_interval: u64) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.fabric.faults = FaultParams {
        seed: 0xF0A17,
        load_failure_ppm: LOAD_FAILURE_PPM,
        upset_ppm,
        scrub_interval,
        dead_slots: vec![],
    };
    cfg
}

/// The same sweep point with the fault-aware selection unit switched on.
fn fault_aware_config(upset_ppm: u32, scrub_interval: u64) -> SimConfig {
    let mut cfg = faulty_config(upset_ppm, scrub_interval);
    cfg.policy = PolicyKind::PAPER_FAULT_AWARE;
    cfg
}

/// The sweep: every (workload, upset rate, scrub interval) point under
/// paper steering. Returns the report text; writes
/// `BENCH_fault_sweep.json` as a side effect.
pub fn fault_sweep() -> String {
    let programs = sweep_workloads();
    let points: Vec<(u32, u64)> = UPSET_PPM
        .iter()
        .flat_map(|&u| SCRUB_INTERVALS.iter().map(move |&s| (u, s)))
        .collect();
    let rows: Vec<FaultRow> = programs
        .par_iter()
        .flat_map(|p| {
            points.par_iter().map(move |&(u, s)| {
                let cfg = faulty_config(u, s);
                let faults = cfg.fabric.faults.clone();
                let base = run_one(cfg, p);
                let aware = run_one(fault_aware_config(u, s), p);
                FaultRow::new(&p.name, &faults, &base, &aware)
            })
        })
        .collect();

    // Sweep-level guarantees (CI runs this experiment as an assertion
    // job). The *degraded baseline* is the baseline policy with scrub
    // off: zombies accumulate with no mitigation at all — exactly the
    // loss the fault-aware selection unit exists to recover. At every
    // swept upset rate the fault-aware run must be at least as fast as
    // that baseline, strictly faster at the highest rate, and with zero
    // upsets every run must be bit-identical to its baseline.
    for r in &rows {
        if r.upset_ppm == 0 {
            assert_eq!(
                r.cycles, r.cycles_fault_aware,
                "zero-fault runs must be bit-identical at {} s{}",
                r.workload, r.scrub_interval
            );
        }
        if r.scrub_interval != 0 {
            continue;
        }
        assert!(
            r.ipc_fault_aware >= r.ipc,
            "fault-aware IPC below the degraded baseline at {} u{}: {} < {}",
            r.workload,
            r.upset_ppm,
            r.ipc_fault_aware,
            r.ipc
        );
        if r.upset_ppm == *UPSET_PPM.last().unwrap() {
            assert!(
                r.ipc_fault_aware > r.ipc,
                "fault-aware IPC must strictly beat the degraded baseline at {} u{}: {} <= {}",
                r.workload,
                r.upset_ppm,
                r.ipc_fault_aware,
                r.ipc
            );
        }
    }

    let mut s = String::from("# fault-sweep — IPC vs upset rate × scrub interval\n\n");
    let _ = writeln!(
        s,
        "load_failure_ppm={LOAD_FAILURE_PPM} everywhere; an upset strikes a uniform slot and"
    );
    let _ = writeln!(
        s,
        "corrupts the idle unit spanning it (open-loop schedule, paired across policies);"
    );
    let _ = writeln!(
        s,
        "scrub interval 0 = never scrub (corrupted spans stay zombies).\n"
    );
    let col_labels: Vec<String> = points.iter().map(|(u, sc)| format!("u{u}/s{sc}")).collect();
    for p in &programs {
        let lenses: Vec<String> = vec!["baseline".into(), "fault-aware".into()];
        s.push_str(&pivot_table(
            &format!("IPC — {}", p.name),
            &lenses,
            &col_labels,
            |lens, c| {
                rows.iter()
                    .find(|r| {
                        r.workload == p.name
                            && format!("u{}/s{}", r.upset_ppm, r.scrub_interval) == c
                    })
                    .map(|r| {
                        let v = if lens == "baseline" {
                            r.ipc
                        } else {
                            r.ipc_fault_aware
                        };
                        format!("{v:.3}")
                    })
                    .unwrap_or_default()
            },
        ));
        s.push('\n');
    }

    // Headline check: for each workload, the clean point is the fastest,
    // the worst faulty point is the slowest, and fault-aware steering
    // claws back capacity the unscrubbed baseline has lost for good.
    for p in &programs {
        let of = |u: u32, sc: u64| {
            rows.iter()
                .find(|r| r.workload == p.name && r.upset_ppm == u && r.scrub_interval == sc)
                .unwrap()
        };
        let clean = of(0, 0).ipc;
        let worst = of(*UPSET_PPM.last().unwrap(), 0);
        let scrubbed = of(*UPSET_PPM.last().unwrap(), *SCRUB_INTERVALS.last().unwrap()).ipc;
        let _ = writeln!(
            s,
            "{:<20} clean={clean:.3}  worst(no-scrub)={:.3}  worst(scrub@{})={scrubbed:.3}  \
             worst(fault-aware)={:.3} ({} zombie reloads)",
            p.name,
            worst.ipc,
            SCRUB_INTERVALS.last().unwrap(),
            worst.ipc_fault_aware,
            worst.zombie_reloads,
        );
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialise");
    match std::fs::write("BENCH_fault_sweep.json", &json) {
        Ok(()) => {
            let _ = writeln!(s, "\nwrote BENCH_fault_sweep.json ({} points)", rows.len());
        }
        Err(e) => {
            let _ = writeln!(s, "\ncould not write BENCH_fault_sweep.json: {e}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_degrades_and_recovers() {
        // One workload, three points: clean, heavy-upsets-no-scrub,
        // heavy-upsets-fast-scrub. Checks the experiment's core claim
        // without running the full grid. memcpy is LSU-throughput-bound,
        // so zombie LSUs genuinely cost cycles (on dependency-bound
        // kernels the capacity loss can vanish into the latency chain).
        let p = kernels::memcpy(96);
        let u = *UPSET_PPM.last().unwrap();
        let clean = run_one(faulty_config(0, 0), &p);
        let zombie = run_one(faulty_config(u, 0), &p);
        let scrubbed = run_one(faulty_config(u, 16), &p);
        assert!(clean.halted && zombie.halted && scrubbed.halted);
        assert_eq!(clean.retired, zombie.retired);
        assert_eq!(clean.retired, scrubbed.retired);
        assert!(zombie.faults.upsets_injected > 0);
        assert!(scrubbed.faults.upsets_detected > 0);
        assert!(
            zombie.cycles > clean.cycles,
            "unmitigated zombies must cost cycles: {} <= {}",
            zombie.cycles,
            clean.cycles
        );
        assert!(
            scrubbed.cycles < zombie.cycles,
            "fast scrubbing must claw some IPC back: {} >= {}",
            scrubbed.cycles,
            zombie.cycles
        );
    }

    #[test]
    fn fault_rows_serialise() {
        let p = kernels::memcpy(8);
        let cfg = faulty_config(20_000, 64);
        let faults = cfg.fabric.faults.clone();
        let r = run_one(cfg, &p);
        let aware = run_one(fault_aware_config(20_000, 64), &p);
        let row = FaultRow::new(&p.name, &faults, &r, &aware);
        let j = serde_json::to_string(&row).unwrap();
        assert!(j.contains("\"upset_ppm\":20000"));
        assert!(j.contains("\"ipc_fault_aware\":"));
        assert!(j.contains("\"zombie_reloads\":"));
    }

    #[test]
    fn fault_aware_beats_unscrubbed_baseline_and_matches_clean() {
        // The acceptance claim on a single workload: at the highest swept
        // upset rate with scrubbing off, fault-aware steering strictly
        // beats the degraded baseline (zombies are reloaded instead of
        // rotting), and with zero faults the two runs are bit-identical.
        let p = kernels::memcpy(96);
        let u = *UPSET_PPM.last().unwrap();
        let base = run_one(faulty_config(u, 0), &p);
        let aware = run_one(fault_aware_config(u, 0), &p);
        assert!(base.halted && aware.halted);
        assert_eq!(base.retired, aware.retired);
        assert!(aware.loader.zombie_reloads > 0, "no zombies reloaded");
        assert!(
            aware.cycles < base.cycles,
            "fault-aware must strictly beat the unscrubbed baseline: {} >= {}",
            aware.cycles,
            base.cycles
        );
        let clean_base = run_one(faulty_config(0, 0), &p);
        let clean_aware = run_one(fault_aware_config(0, 0), &p);
        assert_eq!(clean_base.cycles, clean_aware.cycles);
        assert_eq!(clean_base.retired, clean_aware.retired);
        assert_eq!(clean_aware.loader.zombie_reloads, 0);
        assert_eq!(clean_aware.loader.replacements, 0);
    }
}

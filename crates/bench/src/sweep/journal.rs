//! Keyed JSONL result journals — the sweep engine's checkpoint format.
//!
//! Every completed grid point is appended to the shard's journal as one
//! line, `{"key":"<PointKey>","row":{...}}`, flushed immediately so a
//! killed run loses at most a partial trailing line. Loading tolerates
//! exactly that: a non-parsing *final* line is treated as truncation and
//! dropped; a non-parsing line anywhere else is corruption and an error.
//! Resume rewrites the journal from its valid entries before appending,
//! so a resumed file is always clean.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use super::SweepError;

/// One journal line: a point key and its result row, kept as raw JSON so
/// loading can defer typed decoding (and so rewriting preserves bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The point's stable key.
    pub key: String,
    /// The row, as its serialised JSON value.
    pub row: serde_json::Value,
}

impl JournalEntry {
    /// Encode a typed row into an entry.
    pub fn encode<R: Serialize>(key: &str, row: &R) -> Result<JournalEntry, SweepError> {
        let row = serde_json::to_value(row).map_err(|e| SweepError::Encode {
            key: key.to_string(),
            msg: e.to_string(),
        })?;
        Ok(JournalEntry {
            key: key.to_string(),
            row,
        })
    }

    /// Decode the row into its concrete type.
    pub fn decode<R: Deserialize>(&self) -> Result<R, SweepError> {
        serde_json::from_value(self.row.clone()).map_err(|e| SweepError::Decode {
            key: self.key.clone(),
            msg: e.to_string(),
        })
    }

    /// The single JSONL line for this entry (no trailing newline).
    pub fn to_line(&self) -> String {
        // Field order is fixed by hand so journal bytes are stable.
        format!(
            "{{\"key\":{},\"row\":{}}}",
            serde_json::to_string(&self.key).expect("strings serialise"),
            serde_json::to_string(&self.row).expect("values serialise"),
        )
    }

    fn parse(line: &str) -> Option<JournalEntry> {
        let v: serde_json::Value = serde_json::from_str(line).ok()?;
        let key = v.get("key")?.as_str()?.to_string();
        let row = v.get("row")?.clone();
        Some(JournalEntry { key, row })
    }
}

/// An append-only journal writer; every [`Journal::append`] flushes, so
/// the on-disk file is a valid checkpoint after every completed point.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<fs::File>,
}

impl Journal {
    /// Open `path` for appending, creating it (and its directory) if
    /// missing.
    pub fn append_to(path: &Path) -> Result<Journal, SweepError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| SweepError::io(dir, e))?;
            }
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| SweepError::io(path, e))?;
        Ok(Journal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
        })
    }

    /// Append one entry and flush it to disk.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), SweepError> {
        let line = entry.to_line();
        (|| {
            self.writer.write_all(line.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.writer.flush()
        })()
        .map_err(|e| SweepError::io(&self.path, e))
    }
}

/// Load every valid entry of a journal file. A final line that does not
/// parse is truncation (a killed run) and is silently dropped; an
/// earlier one is corruption and an error. Missing file = empty journal.
pub fn load(path: &Path) -> Result<Vec<JournalEntry>, SweepError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(SweepError::io(path, e)),
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut entries = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match JournalEntry::parse(line) {
            Some(e) => entries.push(e),
            None if i == lines.len() - 1 => break, // truncated tail from a kill
            None => {
                return Err(SweepError::Journal {
                    path: path.to_path_buf(),
                    line: i + 1,
                    msg: "unparseable entry before end of file".into(),
                })
            }
        }
    }
    Ok(entries)
}

/// Rewrite `path` to contain exactly `entries` (dropping any truncated
/// tail), via a temp file + rename so the journal is never half-written.
pub fn rewrite(path: &Path, entries: &[JournalEntry]) -> Result<(), SweepError> {
    let mut text = String::new();
    for e in entries {
        text.push_str(&e.to_line());
        text.push('\n');
    }
    let tmp = path.with_extension("jsonl.tmp");
    fs::write(&tmp, &text).map_err(|e| SweepError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| SweepError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct R {
        x: u32,
        y: f64,
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rsp-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_load_roundtrip() {
        let p = tmp("roundtrip.jsonl");
        let _ = fs::remove_file(&p);
        let mut j = Journal::append_to(&p).unwrap();
        let a = JournalEntry::encode("a", &R { x: 1, y: 0.5 }).unwrap();
        let b = JournalEntry::encode("b", &R { x: 2, y: 1.0 / 3.0 }).unwrap();
        j.append(&a).unwrap();
        j.append(&b).unwrap();
        drop(j);
        let got = load(&p).unwrap();
        assert_eq!(got, vec![a.clone(), b.clone()]);
        assert_eq!(got[1].decode::<R>().unwrap(), R { x: 2, y: 1.0 / 3.0 });
    }

    #[test]
    fn truncated_tail_is_dropped_midfile_corruption_errors() {
        let p = tmp("trunc.jsonl");
        let a = JournalEntry::encode("a", &R { x: 1, y: 2.0 }).unwrap();
        fs::write(&p, format!("{}\n{{\"key\":\"b\",\"ro", a.to_line())).unwrap();
        let got = load(&p).unwrap();
        assert_eq!(got, vec![a.clone()]);

        let p2 = tmp("corrupt.jsonl");
        fs::write(&p2, format!("garbage\n{}\n", a.to_line())).unwrap();
        assert!(matches!(
            load(&p2),
            Err(SweepError::Journal { line: 1, .. })
        ));
    }

    #[test]
    fn missing_file_is_empty_and_rewrite_cleans() {
        let p = tmp("missing.jsonl");
        let _ = fs::remove_file(&p);
        assert!(load(&p).unwrap().is_empty());
        let a = JournalEntry::encode("a", &R { x: 7, y: 0.0 }).unwrap();
        rewrite(&p, std::slice::from_ref(&a)).unwrap();
        assert_eq!(load(&p).unwrap(), vec![a]);
    }

    #[test]
    fn f64_rows_roundtrip_byte_identically() {
        // serde_json prints the shortest representation that parses back
        // to the same f64, so journal round-trips re-serialise to the
        // same bytes — the property the merge step's byte-identity
        // guarantee rests on.
        for y in [1.0 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 12345.6789e-7] {
            let row = R { x: 0, y };
            let e = JournalEntry::encode("k", &row).unwrap();
            let back: R = JournalEntry::parse(&e.to_line()).unwrap().decode().unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(&row).unwrap()
            );
        }
    }
}

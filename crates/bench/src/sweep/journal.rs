//! Keyed JSONL result journals — the sweep engine's checkpoint format.
//!
//! Every completed grid point is appended to the shard's journal as one
//! line, `{"key":"<PointKey>","row":{...}}`, flushed immediately so a
//! killed run loses at most a partial trailing line. Loading tolerates
//! exactly that and nothing more: a *torn tail* — a final line that is
//! not valid JSON **and** is missing its terminating newline (the only
//! shape a killed write can leave) — is silently dropped. Every other
//! defect is corruption and an error: a line that is valid JSON but not
//! a `{"key": <string>, "row": ...}` object is malformed wherever it
//! sits (truncation cannot produce complete JSON of the wrong shape),
//! and a newline-terminated line that fails to parse was written whole
//! and then damaged. Resume rewrites the journal from its valid entries
//! before appending, so a resumed file is always clean.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use super::SweepError;

/// One journal line: a point key and its result row, kept as raw JSON so
/// loading can defer typed decoding (and so rewriting preserves bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The point's stable key.
    pub key: String,
    /// The row, as its serialised JSON value.
    pub row: serde_json::Value,
}

impl JournalEntry {
    /// Encode a typed row into an entry.
    pub fn encode<R: Serialize>(key: &str, row: &R) -> Result<JournalEntry, SweepError> {
        let row = serde_json::to_value(row).map_err(|e| SweepError::Encode {
            key: key.to_string(),
            msg: e.to_string(),
        })?;
        Ok(JournalEntry {
            key: key.to_string(),
            row,
        })
    }

    /// Decode the row into its concrete type.
    pub fn decode<R: Deserialize>(&self) -> Result<R, SweepError> {
        serde_json::from_value(self.row.clone()).map_err(|e| SweepError::Decode {
            key: self.key.clone(),
            msg: e.to_string(),
        })
    }

    /// The single JSONL line for this entry (no trailing newline).
    /// Fallible end to end: a row (or key) the serialiser rejects
    /// surfaces as [`SweepError::Encode`] instead of killing the shard.
    pub fn to_line(&self) -> Result<String, SweepError> {
        let enc = |msg: serde_json::Error| SweepError::Encode {
            key: self.key.clone(),
            msg: msg.to_string(),
        };
        // Field order is fixed by hand so journal bytes are stable.
        Ok(format!(
            "{{\"key\":{},\"row\":{}}}",
            serde_json::to_string(&self.key).map_err(enc)?,
            serde_json::to_string(&self.row).map_err(enc)?,
        ))
    }
}

/// What one journal line turned out to be.
enum Line {
    /// A well-formed entry.
    Entry(JournalEntry),
    /// Not valid JSON — the shape a partial (killed) write leaves, and
    /// tolerable only as a newline-less final line.
    Torn,
    /// Complete, valid JSON of the wrong shape — corruption wherever it
    /// appears, because truncation cannot produce it.
    Malformed(&'static str),
}

/// Classify one journal line. Distinguishes a torn write (not JSON)
/// from a malformed-but-complete line (JSON, wrong shape) so the loader
/// can treat only the former as benign truncation.
fn classify(line: &str) -> Line {
    let v: serde_json::Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(_) => return Line::Torn,
    };
    let Some(key) = v.get("key") else {
        return Line::Malformed("entry has no `key` field");
    };
    let Some(key) = key.as_str() else {
        return Line::Malformed("entry `key` is not a string");
    };
    let Some(row) = v.get("row") else {
        return Line::Malformed("entry has no `row` field");
    };
    Line::Entry(JournalEntry {
        key: key.to_string(),
        row: row.clone(),
    })
}

/// An append-only journal writer; every [`Journal::append`] flushes, so
/// the on-disk file is a valid checkpoint after every completed point.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<fs::File>,
}

impl Journal {
    /// Open `path` for appending, creating it (and its directory) if
    /// missing.
    pub fn append_to(path: &Path) -> Result<Journal, SweepError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| SweepError::io(dir, e))?;
            }
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| SweepError::io(path, e))?;
        Ok(Journal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
        })
    }

    /// Append one entry and flush it to disk. An entry that fails to
    /// encode is reported (and writes nothing) rather than panicking.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), SweepError> {
        let line = entry.to_line()?;
        (|| {
            self.writer.write_all(line.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.writer.flush()
        })()
        .map_err(|e| SweepError::io(&self.path, e))
    }
}

/// Load every valid entry of a journal file. The only defect forgiven
/// is a torn tail — a final line that is not valid JSON *and* has no
/// terminating newline, which is what a killed mid-line write leaves;
/// it is silently dropped. Anything else that fails to classify —
/// valid JSON of the wrong shape anywhere (including the final line),
/// or a non-parsing line that was newline-terminated — is corruption
/// and an error. Missing file = empty journal.
pub fn load(path: &Path) -> Result<Vec<JournalEntry>, SweepError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(SweepError::io(path, e)),
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut entries = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let corrupt = |msg: String| {
            Err(SweepError::Journal {
                path: path.to_path_buf(),
                line: i + 1,
                msg,
            })
        };
        match classify(line) {
            Line::Entry(e) => entries.push(e),
            Line::Torn if i == lines.len() - 1 && !text.ends_with('\n') => break,
            Line::Torn => return corrupt("unparseable complete entry".into()),
            Line::Malformed(msg) => return corrupt(format!("malformed entry: {msg}")),
        }
    }
    Ok(entries)
}

/// Rewrite `path` to contain exactly `entries` (dropping any truncated
/// tail), via a temp file + rename so the journal is never half-written.
pub fn rewrite(path: &Path, entries: &[JournalEntry]) -> Result<(), SweepError> {
    let mut text = String::new();
    for e in entries {
        text.push_str(&e.to_line()?);
        text.push('\n');
    }
    let tmp = path.with_extension("jsonl.tmp");
    fs::write(&tmp, &text).map_err(|e| SweepError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| SweepError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct R {
        x: u32,
        y: f64,
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rsp-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_load_roundtrip() {
        let p = tmp("roundtrip.jsonl");
        let _ = fs::remove_file(&p);
        let mut j = Journal::append_to(&p).unwrap();
        let a = JournalEntry::encode("a", &R { x: 1, y: 0.5 }).unwrap();
        let b = JournalEntry::encode("b", &R { x: 2, y: 1.0 / 3.0 }).unwrap();
        j.append(&a).unwrap();
        j.append(&b).unwrap();
        drop(j);
        let got = load(&p).unwrap();
        assert_eq!(got, vec![a.clone(), b.clone()]);
        assert_eq!(got[1].decode::<R>().unwrap(), R { x: 2, y: 1.0 / 3.0 });
    }

    #[test]
    fn truncated_tail_is_dropped_midfile_corruption_errors() {
        let p = tmp("trunc.jsonl");
        let a = JournalEntry::encode("a", &R { x: 1, y: 2.0 }).unwrap();
        let line = a.to_line().unwrap();
        fs::write(&p, format!("{line}\n{{\"key\":\"b\",\"ro")).unwrap();
        let got = load(&p).unwrap();
        assert_eq!(got, vec![a.clone()]);

        let p2 = tmp("corrupt.jsonl");
        fs::write(&p2, format!("garbage\n{line}\n")).unwrap();
        assert!(matches!(
            load(&p2),
            Err(SweepError::Journal { line: 1, .. })
        ));
    }

    /// A final line that is valid JSON but not a `{"key","row"}` object
    /// is corruption, not truncation: a torn write cannot leave complete
    /// JSON of the wrong shape. Likewise a newline-terminated line that
    /// fails to parse was written whole, so it too is corruption even in
    /// final position.
    #[test]
    fn malformed_but_complete_final_lines_are_corruption() {
        let a = JournalEntry::encode("a", &R { x: 1, y: 2.0 }).unwrap();
        let line = a.to_line().unwrap();
        for (name, tail) in [
            ("wrong-shape", "{\"kee\":\"b\",\"row\":{}}"), // no `key`
            ("key-not-string", "{\"key\":3,\"row\":{}}"),
            ("no-row", "{\"key\":\"b\"}"),
            ("not-an-object", "42"),
        ] {
            // Complete (valid JSON) but malformed: error with or without
            // the trailing newline.
            for nl in ["", "\n"] {
                let p = tmp(&format!("malformed-{name}{}.jsonl", nl.len()));
                fs::write(&p, format!("{line}\n{tail}{nl}")).unwrap();
                assert!(
                    matches!(load(&p), Err(SweepError::Journal { line: 2, .. })),
                    "{name} (newline: {}) must be corruption",
                    !nl.is_empty()
                );
            }
        }
        // A newline-terminated non-JSON final line was written whole —
        // corruption, not a torn tail.
        let p = tmp("terminated-garbage.jsonl");
        fs::write(&p, format!("{line}\ngarbage\n")).unwrap();
        assert!(matches!(load(&p), Err(SweepError::Journal { line: 2, .. })));
    }

    /// A row whose `Serialize` impl fails surfaces as
    /// [`SweepError::Encode`] from the encode path (here via
    /// `JournalEntry::encode`; the sweep engine propagates the same
    /// error out of `Journal::append` instead of killing the shard).
    #[test]
    fn failing_serialize_row_is_a_sweep_error() {
        struct Poison;
        impl serde::Serialize for Poison {
            fn to_value(&self) -> serde_json::Value {
                serde_json::Value::Null
            }
            fn try_to_value(&self) -> Result<serde_json::Value, serde_json::Error> {
                Err(serde_json::Error::msg("poisoned row"))
            }
        }
        match JournalEntry::encode("p", &Poison) {
            Err(SweepError::Encode { key, msg }) => {
                assert_eq!(key, "p");
                assert!(msg.contains("poisoned row"), "{msg}");
            }
            other => panic!("expected Encode error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_empty_and_rewrite_cleans() {
        let p = tmp("missing.jsonl");
        let _ = fs::remove_file(&p);
        assert!(load(&p).unwrap().is_empty());
        let a = JournalEntry::encode("a", &R { x: 7, y: 0.0 }).unwrap();
        rewrite(&p, std::slice::from_ref(&a)).unwrap();
        assert_eq!(load(&p).unwrap(), vec![a]);
    }

    #[test]
    fn f64_rows_roundtrip_byte_identically() {
        // serde_json prints the shortest representation that parses back
        // to the same f64, so journal round-trips re-serialise to the
        // same bytes — the property the merge step's byte-identity
        // guarantee rests on.
        for y in [1.0 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 12345.6789e-7] {
            let row = R { x: 0, y };
            let e = JournalEntry::encode("k", &row).unwrap();
            let Line::Entry(reparsed) = classify(&e.to_line().unwrap()) else {
                panic!("round-trip line must classify as an entry");
            };
            let back: R = reparsed.decode().unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(&row).unwrap()
            );
        }
    }
}

//! Shard arithmetic and worker-process fan-out.
//!
//! A shard is `k/N`: the subset of grid points whose stable key hashes
//! to `k` modulo `N`. The hash is [`rsp_obs::stable_key_hash`] — the
//! workspace's one shared FNV-1a, never the standard library's
//! `DefaultHasher` (`std::hash::DefaultHasher`), whose algorithm is
//! unspecified across releases — so the same key lands in the same
//! shard on every machine, toolchain and run. Assignment depends only
//! on the key, never on enumeration order, which is what makes shard
//! fragments mergeable.

use std::path::Path;
use std::process::Command;

use super::{SweepConfig, SweepError};

pub use rsp_obs::stable_key_hash;

/// One shard of a sweep: `index` of `count`, with `0/1` meaning the
/// whole grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Which shard this is (0-based).
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl Shard {
    /// The whole grid as a single shard.
    pub const WHOLE: Shard = Shard { index: 0, count: 1 };

    /// Build a shard, validating `index < count` and `count > 0`.
    pub fn new(index: u32, count: u32) -> Result<Shard, SweepError> {
        if count == 0 || index >= count {
            return Err(SweepError::BadShard(format!("{index}/{count}")));
        }
        Ok(Shard { index, count })
    }

    /// Parse a `K/N` CLI argument.
    pub fn parse(s: &str) -> Result<Shard, SweepError> {
        let bad = || SweepError::BadShard(s.to_string());
        let (k, n) = s.split_once('/').ok_or_else(bad)?;
        let index: u32 = k.trim().parse().map_err(|_| bad())?;
        let count: u32 = n.trim().parse().map_err(|_| bad())?;
        Shard::new(index, count)
    }

    /// True iff this shard owns `key`.
    pub fn owns(&self, key: &str) -> bool {
        stable_key_hash(key) % self.count as u64 == self.index as u64
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Spawn one worker subprocess per shard — `exe args... --shard k/N
/// --out-dir <out_dir> [--resume] [--cache-dir <dir> --code-version
/// <v>]` — and wait for all of them. Workers stream their results into
/// per-shard journals in `cfg.out_dir` (deduping any shared points
/// through the artifact store when `cfg.cache_dir` is set); callers run
/// the merge step afterwards. Any worker exiting non-zero fails the
/// whole fan-out (the journals it did write remain valid for `--resume`).
pub fn spawn_shard_workers(
    exe: &Path,
    args: &[String],
    count: u32,
    cfg: &SweepConfig,
) -> Result<(), SweepError> {
    let mut children = Vec::new();
    for index in 0..count {
        let mut cmd = Command::new(exe);
        cmd.args(args)
            .arg("--shard")
            .arg(format!("{index}/{count}"))
            .arg("--out-dir")
            .arg(&cfg.out_dir);
        if cfg.resume {
            cmd.arg("--resume");
        }
        if let Some(cache_dir) = &cfg.cache_dir {
            cmd.arg("--cache-dir")
                .arg(cache_dir)
                .arg("--code-version")
                .arg(&cfg.code_version);
        }
        let child = cmd.spawn().map_err(|e| SweepError::Worker {
            shard: Shard { index, count },
            msg: format!("spawn failed: {e}"),
        })?;
        children.push((index, child));
    }
    let mut first_err = None;
    for (index, mut child) in children {
        let shard = Shard { index, count };
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                first_err.get_or_insert(SweepError::Worker {
                    shard,
                    msg: format!("exited with {status}"),
                });
            }
            Err(e) => {
                first_err.get_or_insert(SweepError::Worker {
                    shard,
                    msg: format!("wait failed: {e}"),
                });
            }
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_rejects_invalid() {
        assert_eq!(Shard::parse("0/2").unwrap(), Shard { index: 0, count: 2 });
        assert_eq!(Shard::parse("3/4").unwrap(), Shard { index: 3, count: 4 });
        for bad in ["", "1", "2/2", "1/0", "a/b", "-1/2", "1/2/3"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn shards_partition_every_key_exactly_once() {
        let keys: Vec<String> = (0..100)
            .map(|i| format!("w{i}/u{}/s{}", i * 7, i % 3))
            .collect();
        for count in 1..=6u32 {
            for key in &keys {
                let owners: Vec<u32> = (0..count)
                    .filter(|&index| Shard { index, count }.owns(key))
                    .collect();
                assert_eq!(owners.len(), 1, "key {key} owned by {owners:?} of {count}");
            }
        }
    }

    #[test]
    fn hash_is_pinned() {
        // The on-disk contract: these values must never change.
        assert_eq!(stable_key_hash(""), 0xcbf29ce484222325);
        assert_eq!(stable_key_hash("a"), 0xaf63dc4c8601ec8c);
    }
}

//! Canonical JSON and content hashing for the artifact store (DESIGN.md §17).
//!
//! A cache key must be the same however the inputs were assembled: the
//! same parameters serialised from a struct, rebuilt from a journal, or
//! parsed back out of an artifact must hash identically, and any single
//! changed parameter must hash differently. Two rules buy that:
//!
//! * **Sorted keys** — object fields are emitted in bytewise-sorted key
//!   order, recursively, so field declaration order (which `Serialize`
//!   derives preserve) never leaks into the hash.
//! * **Fixed number formatting** — integers print as decimal `i128`;
//!   floats print with Rust's `{:?}` shortest-round-trip formatting,
//!   the exact formatting the JSON writer and parser already round-trip
//!   byte-identically (the same property the merge layer's byte-identity
//!   guarantee rests on). Non-finite floats canonicalise to `null`,
//!   matching the writer.
//!
//! On top sits a small, dependency-free SHA-256 (FIPS 180-4) — the store
//! needs a collision-resistant digest and the build environment has no
//! registry access, so it is vendored here and pinned by known-answer
//! tests.

use serde_json::Value;

/// Render `v` in canonical form: object keys bytewise-sorted at every
/// nesting level, compact separators, fixed number formatting.
///
/// Canonicalisation is *hash input*, not wire output: artifacts and
/// journals keep their field order; only key derivation routes through
/// here.
pub fn canonical_json(v: &Value) -> String {
    let mut out = String::new();
    write_canonical(&mut out, v);
    out
}

fn write_canonical(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is shortest-round-trip: parse(print(f)) == f
                // bit-for-bit, and integral floats keep their ".0" so
                // 1.0 and 1 stay distinct values.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            let mut order: Vec<usize> = (0..fields.len()).collect();
            order.sort_by(|&a, &b| fields[a].0.cmp(&fields[b].0));
            out.push('{');
            for (i, &idx) in order.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let (k, val) = &fields[idx];
                write_string(out, k);
                out.push(':');
                write_canonical(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Hex SHA-256 of `v`'s canonical form — the store's object address.
pub fn content_hash(v: &Value) -> String {
    sha256_hex(canonical_json(v).as_bytes())
}

/// The cache key of one sweep point: the hash of an envelope binding the
/// sweep's name, its full spec (so a grid change invalidates every
/// point), the point's own parameters, and the code version. Field names
/// exist only inside the envelope; canonicalisation sorts them, so the
/// construction order here is immaterial.
pub fn point_cache_key(sweep: &str, spec: &Value, point: &Value, code_version: &str) -> String {
    content_hash(&Value::Object(vec![
        ("sweep".to_string(), Value::Str(sweep.to_string())),
        ("spec".to_string(), spec.clone()),
        ("point".to_string(), point.clone()),
        (
            "code_version".to_string(),
            Value::Str(code_version.to_string()),
        ),
    ]))
}

/// The cache key of one study-DAG node: the hash of an envelope binding
/// the study name, the node id, the node kind, the (ordered) hashes of
/// its inputs — point hashes for a sweep node, upstream node keys for a
/// transform — and the code version.
pub fn stage_cache_key(
    study: &str,
    node: &str,
    kind: &str,
    inputs: &[String],
    code_version: &str,
) -> String {
    content_hash(&Value::Object(vec![
        ("study".to_string(), Value::Str(study.to_string())),
        ("node".to_string(), Value::Str(node.to_string())),
        ("kind".to_string(), Value::Str(kind.to_string())),
        (
            "inputs".to_string(),
            Value::Array(inputs.iter().map(|h| Value::Str(h.clone())).collect()),
        ),
        (
            "code_version".to_string(),
            Value::Str(code_version.to_string()),
        ),
    ]))
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), dependency-free
// ---------------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Hex-encoded SHA-256 digest of `data`.
pub fn sha256_hex(data: &[u8]) -> String {
    let digest = sha256(data);
    let mut out = String::with_capacity(64);
    for byte in digest {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Padded message: data || 0x80 || zeros || 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 known-answer vectors: a wrong digest here means every
    /// cache key in every store is wrong.
    #[test]
    fn sha256_known_answers() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-block: padding must spill into a second 64-byte block.
        assert_eq!(
            sha256_hex(&[b'a'; 64]),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn canonical_sorts_keys_recursively() {
        let v =
            serde_json::from_str::<Value>(r#"{"b":{"z":1,"a":2},"a":[{"y":1,"x":2}]}"#).unwrap();
        assert_eq!(
            canonical_json(&v),
            r#"{"a":[{"x":2,"y":1}],"b":{"a":2,"z":1}}"#
        );
    }

    #[test]
    fn canonical_number_formatting_is_fixed() {
        let v = serde_json::from_str::<Value>(r#"[1, 1.0, 0.1, -0.0, 1e3]"#).unwrap();
        // Ints stay ints, integral floats keep ".0", floats print
        // shortest-round-trip — the writer's own formatting.
        assert_eq!(canonical_json(&v), "[1,1.0,0.1,-0.0,1000.0]");
        let nonfinite = Value::Array(vec![Value::Float(f64::NAN), Value::Float(f64::INFINITY)]);
        assert_eq!(canonical_json(&nonfinite), "[null,null]");
    }

    #[test]
    fn canonical_escapes_strings() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(canonical_json(&v), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    /// The canonical form is invariant under a JSON round-trip: what the
    /// writer prints, the parser reads back to the same canonical bytes.
    #[test]
    fn canonical_survives_round_trip() {
        let v =
            serde_json::from_str::<Value>(r#"{"f":0.30000000000000004,"g":[1.5,-2.25,3],"s":"x"}"#)
                .unwrap();
        let reparsed = serde_json::from_str::<Value>(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(canonical_json(&v), canonical_json(&reparsed));
        assert_eq!(content_hash(&v), content_hash(&reparsed));
    }

    /// Pinned cache-key hash: if this moves, every existing store on
    /// disk silently invalidates — bump deliberately, never by accident.
    #[test]
    fn point_cache_key_is_pinned() {
        let spec = serde_json::from_str::<Value>(r#"{"grid":[1,2]}"#).unwrap();
        let point = serde_json::from_str::<Value>(r#"{"x":1}"#).unwrap();
        let key = point_cache_key("demo", &spec, &point, "0.10.0");
        assert_eq!(
            key,
            sha256_hex(
                br#"{"code_version":"0.10.0","point":{"x":1},"spec":{"grid":[1,2]},"sweep":"demo"}"#
            )
        );
    }

    #[test]
    fn stage_key_depends_on_all_fields() {
        let base = stage_cache_key("s", "n", "stage", &["h1".into()], "1");
        assert_ne!(
            base,
            stage_cache_key("s2", "n", "stage", &["h1".into()], "1")
        );
        assert_ne!(
            base,
            stage_cache_key("s", "n2", "stage", &["h1".into()], "1")
        );
        assert_ne!(
            base,
            stage_cache_key("s", "n", "sweep", &["h1".into()], "1")
        );
        assert_ne!(
            base,
            stage_cache_key("s", "n", "stage", &["h2".into()], "1")
        );
        assert_ne!(
            base,
            stage_cache_key("s", "n", "stage", &["h1".into()], "2")
        );
        assert_eq!(
            base,
            stage_cache_key("s", "n", "stage", &["h1".into()], "1")
        );
    }
}

//! Multi-stage studies as a DAG over cached artifacts (DESIGN.md §17).
//!
//! A [`StudyDag`] composes sweeps with downstream transforms — sweep →
//! pivot/analysis → report — into a dependency graph whose nodes are
//! all content-addressed artifacts in the same [`CasStore`] the sweep
//! points live in:
//!
//! * a **sweep node**'s key hashes the study name, node id, and *every
//!   point's cache key* ([`canon::stage_cache_key`] over
//!   [`SweepRunner::point_hashes`]) — so it is computable before any
//!   point has run, and any changed parameter, grid shape, or code
//!   version changes the node key too;
//! * a **stage node**'s key hashes its upstream node keys, so
//!   invalidation propagates down the DAG by construction.
//!
//! Execution is topological with per-node up-to-date short-circuiting:
//! a node whose key is already in the store is not recomputed (a cached
//! sweep node still re-verifies its rows and re-renders its
//! `BENCH_*.json`, so artifacts reappear byte-identical without running
//! a single point). `study status` answers entirely from key
//! derivation + store lookups, cold.

use std::collections::BTreeMap;

use serde_json::Value;

use super::cas::{CasStore, ObjectMeta};
use super::{canon, CacheSnapshot, SweepConfig, SweepError, SweepRunner};

/// A stage node's transform: dep artifacts in (dep order = declaration
/// order), one artifact out.
pub type StageFn = dyn Fn(&[Value]) -> Result<Value, String> + Send + Sync;

/// What one DAG node does.
pub enum StageOp {
    /// Run a sweep (points individually cached) and publish its ordered
    /// row array as the node artifact.
    Sweep(Box<dyn SweepRunner>),
    /// A pure transform of the dep nodes' artifacts (dep order =
    /// declaration order).
    Stage(Box<StageFn>),
}

/// One node of a study.
pub struct StudyNode {
    /// Node id, unique within the study.
    pub id: &'static str,
    /// Upstream node ids (empty for sweep nodes).
    pub deps: Vec<&'static str>,
    /// The node's operation.
    pub op: StageOp,
}

/// A named DAG of sweeps and transforms over the artifact store.
pub struct StudyDag {
    name: &'static str,
    nodes: Vec<StudyNode>,
}

/// One node's derived execution plan: its key and cache state.
#[derive(Debug, Clone)]
pub struct NodePlan {
    /// Node id.
    pub id: &'static str,
    /// `"sweep"` or `"stage"`.
    pub kind: &'static str,
    /// The node's content-addressed key.
    pub key: String,
    /// Whether the store already holds the node's artifact.
    pub cached: bool,
}

/// What one executed node did.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Node id.
    pub id: &'static str,
    /// `"sweep"` or `"stage"`.
    pub kind: &'static str,
    /// The node's content-addressed key.
    pub key: String,
    /// True if the node artifact was already in the store.
    pub cached: bool,
    /// Points merged, for sweep nodes.
    pub points: Option<usize>,
}

/// What a whole `study run` did.
#[derive(Debug)]
pub struct StudyReport {
    /// The study's name.
    pub name: &'static str,
    /// Per-node outcomes, in execution order.
    pub nodes: Vec<NodeOutcome>,
    /// Point-level cache counters aggregated across the sweep nodes
    /// that actually ran.
    pub cache: CacheSnapshot,
    /// How many nodes short-circuited as already cached.
    pub nodes_cached: usize,
    /// The terminal report text (concatenated string outputs of leaf
    /// nodes), also written to `STUDY_<name>.txt`.
    pub report: String,
}

impl StudyDag {
    /// An empty study.
    pub fn new(name: &'static str) -> StudyDag {
        StudyDag {
            name,
            nodes: Vec::new(),
        }
    }

    /// The study's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The nodes, in declaration order.
    pub fn nodes(&self) -> &[StudyNode] {
        &self.nodes
    }

    /// Add a sweep node (no deps: a sweep's inputs are its own points).
    pub fn sweep(mut self, id: &'static str, runner: Box<dyn SweepRunner>) -> StudyDag {
        self.nodes.push(StudyNode {
            id,
            deps: Vec::new(),
            op: StageOp::Sweep(runner),
        });
        self
    }

    /// Add a transform node over `deps`' artifacts.
    pub fn stage(
        mut self,
        id: &'static str,
        deps: &[&'static str],
        apply: impl Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static,
    ) -> StudyDag {
        self.nodes.push(StudyNode {
            id,
            deps: deps.to_vec(),
            op: StageOp::Stage(Box::new(apply)),
        });
        self
    }

    /// Topological order (Kahn), rejecting duplicate ids, unknown deps,
    /// and cycles.
    fn topo_order(&self) -> Result<Vec<usize>, SweepError> {
        let mut index_of: BTreeMap<&'static str, usize> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if index_of.insert(n.id, i).is_some() {
                return Err(SweepError::Study(format!(
                    "{}: duplicate node id {:?}",
                    self.name, n.id
                )));
            }
        }
        let mut indegree = vec![0usize; self.nodes.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for dep in &n.deps {
                let Some(&d) = index_of.get(dep) else {
                    return Err(SweepError::Study(format!(
                        "{}: node {:?} depends on unknown node {:?}",
                        self.name, n.id, dep
                    )));
                };
                indegree[i] += 1;
                dependents[d].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = ready.pop() {
            order.push(i);
            for &j in &dependents[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
        if order.len() != self.nodes.len() {
            let stuck: Vec<&str> = indegree
                .iter()
                .enumerate()
                .filter(|(_, &d)| d > 0)
                .map(|(i, _)| self.nodes[i].id)
                .collect();
            return Err(SweepError::Study(format!(
                "{}: dependency cycle through {stuck:?}",
                self.name
            )));
        }
        // Kahn with a stack visits in reverse-ready order; re-sort by
        // (topo level preserved) declaration index for deterministic,
        // declaration-friendly execution order.
        stable_topo(&self.nodes, order)
    }

    /// Every node's key + cache state, computed without running
    /// anything — the `study status` answer and the gc roots.
    pub fn plan(&self, cfg: &SweepConfig, store: &CasStore) -> Result<Vec<NodePlan>, SweepError> {
        let order = self.topo_order()?;
        let mut keys: BTreeMap<&'static str, String> = BTreeMap::new();
        let mut plans = Vec::with_capacity(order.len());
        for i in order {
            let node = &self.nodes[i];
            let (kind, key) = self.node_key(node, cfg, &keys)?;
            keys.insert(node.id, key.clone());
            plans.push(NodePlan {
                id: node.id,
                kind,
                key: key.clone(),
                cached: store.contains(&key),
            });
        }
        Ok(plans)
    }

    fn node_key(
        &self,
        node: &StudyNode,
        cfg: &SweepConfig,
        keys: &BTreeMap<&'static str, String>,
    ) -> Result<(&'static str, String), SweepError> {
        match &node.op {
            StageOp::Sweep(runner) => {
                if !runner.cacheable() {
                    return Err(SweepError::Study(format!(
                        "{}: sweep node {:?} ({}) is not cacheable — wall-clock \
                         sweeps cannot be study nodes",
                        self.name,
                        node.id,
                        runner.name()
                    )));
                }
                let inputs = runner.point_hashes(cfg)?;
                Ok((
                    "sweep",
                    canon::stage_cache_key(self.name, node.id, "sweep", &inputs, &cfg.code_version),
                ))
            }
            StageOp::Stage(_) => {
                let inputs: Vec<String> = node
                    .deps
                    .iter()
                    .map(|d| keys[d].clone()) // topo order guarantees presence
                    .collect();
                Ok((
                    "stage",
                    canon::stage_cache_key(self.name, node.id, "stage", &inputs, &cfg.code_version),
                ))
            }
        }
    }

    /// Execute the study: topological order, each node short-circuiting
    /// if its key is already in the store. Requires `cfg.cache_dir`.
    pub fn run(&self, cfg: &SweepConfig) -> Result<StudyReport, SweepError> {
        let store = self.open_store(cfg)?;
        let order = self.topo_order()?;
        let mut keys: BTreeMap<&'static str, String> = BTreeMap::new();
        let mut outputs: BTreeMap<&'static str, Value> = BTreeMap::new();
        let mut outcomes = Vec::with_capacity(order.len());
        let mut cache = CacheSnapshot::default();
        let mut nodes_cached = 0usize;

        for i in order {
            let node = &self.nodes[i];
            let (kind, key) = self.node_key(node, cfg, &keys)?;
            keys.insert(node.id, key.clone());
            let logical = format!("{}/{}", self.name, node.id);

            let (output, cached, points) = match store.load(&key, Some(&logical))? {
                Some(obj) => {
                    // Up-to-date: the artifact exists under the exact
                    // hash of this node's inputs. Sweep nodes still
                    // re-verify and re-render BENCH_*.json so on-disk
                    // artifacts reappear byte-identically.
                    let points = match &node.op {
                        StageOp::Sweep(runner) => {
                            let summary = runner.render_from_rows(&obj.row, cfg)?;
                            Some(summary.points)
                        }
                        StageOp::Stage(_) => None,
                    };
                    nodes_cached += 1;
                    (obj.row, true, points)
                }
                None => {
                    let (output, points, inputs) = match &node.op {
                        StageOp::Sweep(runner) => {
                            let run = runner.run(cfg)?;
                            if let Some(c) = run.cache {
                                cache.hits += c.hits;
                                cache.misses += c.misses;
                                cache.claim_waits += c.claim_waits;
                                cache.quarantined += c.quarantined;
                            }
                            let (summary, rows) = runner.merge_with_rows(cfg)?;
                            (rows, Some(summary.points), runner.point_hashes(cfg)?)
                        }
                        StageOp::Stage(apply) => {
                            let dep_values: Vec<Value> =
                                node.deps.iter().map(|d| outputs[d].clone()).collect();
                            let out = apply(&dep_values)
                                .map_err(|msg| SweepError::Study(format!("{logical}: {msg}")))?;
                            let inputs: Vec<String> =
                                node.deps.iter().map(|d| keys[d].clone()).collect();
                            (out, None, inputs)
                        }
                    };
                    store.store(
                        &ObjectMeta {
                            hash: key.clone(),
                            kind: "stage",
                            name: logical.clone(),
                            key: logical.clone(),
                            code_version: cfg.code_version.clone(),
                            inputs,
                        },
                        &output,
                    )?;
                    (output, false, points)
                }
            };

            outputs.insert(node.id, output);
            outcomes.push(NodeOutcome {
                id: node.id,
                kind,
                key,
                cached,
                points,
            });
        }

        // The report: every leaf (depended-on-by-nobody) node whose
        // artifact is a string, in declaration order.
        let mut report = String::new();
        for node in &self.nodes {
            let is_dep = self.nodes.iter().any(|n| n.deps.contains(&node.id));
            if is_dep {
                continue;
            }
            if let Some(Value::Str(text)) = outputs.get(node.id) {
                if !report.is_empty() {
                    report.push('\n');
                }
                report.push_str(text);
            }
        }
        if !report.is_empty() {
            super::write_artifact(&cfg.out_dir, &format!("STUDY_{}.txt", self.name), &report)?;
        }

        Ok(StudyReport {
            name: self.name,
            nodes: outcomes,
            cache,
            nodes_cached,
            report,
        })
    }

    /// Render the `study status` listing without running anything.
    pub fn status(&self, cfg: &SweepConfig) -> Result<String, SweepError> {
        let store = self.open_store(cfg)?;
        let plans = self.plan(cfg, &store)?;
        let done = plans.iter().filter(|p| p.cached).count();
        let mut out = format!(
            "study {} ({}/{} node(s) cached)\n",
            self.name,
            done,
            plans.len()
        );
        for p in &plans {
            out.push_str(&format!(
                "  [{}] {:<6} {:<12} {}\n",
                if p.cached { "cached " } else { "pending" },
                p.kind,
                p.id,
                &p.key[..16.min(p.key.len())],
            ));
        }
        Ok(out)
    }

    fn open_store(&self, cfg: &SweepConfig) -> Result<CasStore, SweepError> {
        let Some(dir) = &cfg.cache_dir else {
            return Err(SweepError::Study(format!(
                "{}: study mode needs --cache-dir (nodes live in the artifact store)",
                self.name
            )));
        };
        CasStore::open(dir)
    }
}

/// Re-order a valid topological order so ties break by declaration
/// index (deterministic output, nodes listed roughly as written).
fn stable_topo(nodes: &[StudyNode], mut order: Vec<usize>) -> Result<Vec<usize>, SweepError> {
    // `order` is already topologically valid; a stable sort by
    // (depth, declaration index) preserves validity because a dep
    // always has strictly smaller depth than its dependents.
    let index_of: BTreeMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
    let mut depth = vec![0usize; nodes.len()];
    for &i in order.iter() {
        // Process in the valid order, so dep depths are final.
        depth[i] = nodes[i]
            .deps
            .iter()
            .map(|d| depth[index_of[*d]] + 1)
            .max()
            .unwrap_or(0);
    }
    order.sort_by_key(|&i| (depth[i], i));
    Ok(order)
}

// ---------------------------------------------------------------------------
// Value helpers for stage transforms
// ---------------------------------------------------------------------------

/// Fetch an object field, with a readable error for stage code.
pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, String> {
    v.get(name).ok_or_else(|| format!("missing field {name:?}"))
}

/// Coerce a JSON number (int or float) to `f64`.
pub fn as_f64(v: &Value) -> Result<f64, String> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        other => Err(format!("expected number, got {other:?}")),
    }
}

/// Fetch a string field.
pub fn str_field(v: &Value, name: &str) -> Result<String, String> {
    field(v, name)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field {name:?} is not a string"))
}

/// Fetch a numeric field as `f64`.
pub fn num_field(v: &Value, name: &str) -> Result<f64, String> {
    as_f64(field(v, name)?)
}

#[cfg(test)]
mod tests {
    use super::super::{Executor, Sweep};
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct MiniSweep {
        computes: Arc<AtomicU64>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct MiniRow {
        key: String,
        value: f64,
    }

    impl Sweep for MiniSweep {
        type Point = u32;
        type Row = MiniRow;

        fn name(&self) -> &'static str {
            "mini_sweep"
        }
        fn points(&self) -> Vec<u32> {
            (0..4).collect()
        }
        fn key(&self, p: &u32) -> String {
            format!("m{p}")
        }
        fn spec(&self) -> Value {
            Value::Object(vec![("n".into(), Value::Int(4))])
        }
        fn point_params(&self, p: &u32) -> Value {
            Value::Object(vec![("p".into(), Value::Int(*p as i128))])
        }
        fn run_point(&self, p: &u32) -> MiniRow {
            self.computes.fetch_add(1, Ordering::Relaxed);
            MiniRow {
                key: format!("m{p}"),
                value: *p as f64 * 1.5,
            }
        }
        fn artifact(&self) -> Option<&'static str> {
            Some("BENCH_mini_sweep.json")
        }
        fn report(&self, rows: &[MiniRow]) -> String {
            format!("{} mini rows", rows.len())
        }
    }

    fn study_with(computes: Arc<AtomicU64>) -> StudyDag {
        StudyDag::new("mini-study")
            .sweep("sweep", Box::new(MiniSweep { computes }))
            .stage("pivot", &["sweep"], |inputs| {
                let rows = inputs[0].as_array().ok_or("rows not an array")?;
                let total: f64 = rows
                    .iter()
                    .map(|r| num_field(r, "value"))
                    .sum::<Result<f64, String>>()?;
                Ok(Value::Object(vec![("total".into(), Value::Float(total))]))
            })
            .stage("report", &["pivot"], |inputs| {
                Ok(Value::Str(format!(
                    "total = {}",
                    num_field(&inputs[0], "total")?
                )))
            })
    }

    fn cfg(name: &str) -> SweepConfig {
        let base = std::env::temp_dir()
            .join(format!("rsp-study-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        SweepConfig {
            executor: Executor::InProcess,
            out_dir: base.join("out"),
            cache_dir: Some(base.join("cas")),
            code_version: "test-v1".into(),
            ..SweepConfig::default()
        }
    }

    #[test]
    fn run_then_rerun_short_circuits_every_node() {
        let cfg = cfg("rerun");
        let computes = Arc::new(AtomicU64::new(0));
        let first = study_with(computes.clone()).run(&cfg).unwrap();
        assert_eq!(first.nodes_cached, 0);
        assert_eq!(first.cache.misses, 4);
        assert_eq!(first.report, "total = 9");
        assert_eq!(computes.load(Ordering::Relaxed), 4);
        let artifact = cfg.out_dir.join("BENCH_mini_sweep.json");
        let bytes = std::fs::read(&artifact).unwrap();
        std::fs::remove_file(&artifact).unwrap();

        // Warm: no point runs, every node cached, artifact re-rendered
        // byte-identically from the store.
        let second = study_with(computes.clone()).run(&cfg).unwrap();
        assert_eq!(second.nodes_cached, 3);
        assert_eq!(second.cache.misses, 0);
        assert_eq!(second.report, "total = 9");
        assert_eq!(computes.load(Ordering::Relaxed), 4, "no recompute");
        assert_eq!(std::fs::read(&artifact).unwrap(), bytes);
        assert_eq!(
            std::fs::read_to_string(cfg.out_dir.join("STUDY_mini-study.txt")).unwrap(),
            "total = 9"
        );
    }

    #[test]
    fn code_version_change_invalidates_the_whole_dag() {
        let mut cfg = cfg("invalidate");
        let computes = Arc::new(AtomicU64::new(0));
        let first = study_with(computes.clone()).run(&cfg).unwrap();
        assert_eq!(first.nodes_cached, 0);
        cfg.code_version = "test-v2".into();
        let second = study_with(computes.clone()).run(&cfg).unwrap();
        assert_eq!(second.nodes_cached, 0, "new code version must recompute");
        assert_eq!(second.cache.misses, 4);
        assert_eq!(computes.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn status_answers_cold_and_warm() {
        let cfg = cfg("status");
        let s = study_with(Arc::new(AtomicU64::new(0)));
        let cold = s.status(&cfg).unwrap();
        assert!(cold.contains("0/3 node(s) cached"), "{cold}");
        assert!(cold.contains("pending"), "{cold}");
        s.run(&cfg).unwrap();
        let warm = s.status(&cfg).unwrap();
        assert!(warm.contains("3/3 node(s) cached"), "{warm}");
        assert!(!warm.contains("pending"), "{warm}");
    }

    #[test]
    fn malformed_dags_are_rejected() {
        let cfg = cfg("malformed");
        let unknown = StudyDag::new("bad").stage("s", &["nope"], |_| Ok(Value::Null));
        assert!(
            matches!(unknown.run(&cfg), Err(SweepError::Study(msg)) if msg.contains("unknown"))
        );
        let cyclic = StudyDag::new("bad")
            .stage("a", &["b"], |_| Ok(Value::Null))
            .stage("b", &["a"], |_| Ok(Value::Null));
        assert!(matches!(cyclic.run(&cfg), Err(SweepError::Study(msg)) if msg.contains("cycle")));
        let no_store = SweepConfig {
            cache_dir: None,
            ..cfg.clone()
        };
        assert!(matches!(
            study_with(Arc::new(AtomicU64::new(0))).run(&no_store),
            Err(SweepError::Study(msg)) if msg.contains("--cache-dir")
        ));
    }

    #[test]
    fn stage_failure_names_the_node() {
        let cfg = cfg("stage-fail");
        let s = StudyDag::new("failing")
            .sweep(
                "sweep",
                Box::new(MiniSweep {
                    computes: Arc::new(AtomicU64::new(0)),
                }),
            )
            .stage("boom", &["sweep"], |_| Err("kapow".into()));
        let err = s.run(&cfg).unwrap_err();
        assert!(
            matches!(err, SweepError::Study(ref msg) if msg.contains("failing/boom") && msg.contains("kapow")),
            "{err}"
        );
    }

    #[test]
    fn plan_keys_chain_through_deps() {
        let cfg = cfg("plan");
        let store = CasStore::open(cfg.cache_dir.clone().unwrap()).unwrap();
        let s = study_with(Arc::new(AtomicU64::new(0)));
        let plans = s.plan(&cfg, &store).unwrap();
        assert_eq!(
            plans.iter().map(|p| p.id).collect::<Vec<_>>(),
            ["sweep", "pivot", "report"]
        );
        // A different code version must move every key.
        let mut cfg2 = cfg.clone();
        cfg2.code_version = "other".into();
        let plans2 = s.plan(&cfg2, &store).unwrap();
        for (a, b) in plans.iter().zip(&plans2) {
            assert_ne!(a.key, b.key, "node {}", a.id);
        }
    }
}

//! The sweep engine: sharded, resumable experiment grids (DESIGN.md §12).
//!
//! Every experiment harness in this crate used to hand-roll the same
//! machinery — enumerate a parameter grid, fan it out, serialise rows,
//! assert cross-point claims. This module is that machinery, once:
//!
//! * **[`Sweep`]** — the declarative spec: a deterministic, *ordered*
//!   enumeration of grid points, each with a stable string **point key**
//!   derived only from its parameters (never from enumeration order),
//!   plus the per-point runner, the cross-point verifier, and the
//!   artifact renderer.
//! * **Executors** — [`Executor::InProcess`] runs the whole grid in one
//!   process (rayon fan-out, or serial for wall-clock-timed sweeps);
//!   [`Executor::Shard`] runs only the points whose key hashes to
//!   `k mod N` ([`shard::stable_key_hash`]); [`Executor::Workers`]
//!   spawns one `--shard k/N` subprocess per shard. Either way, every
//!   completed point streams into a keyed JSONL journal.
//! * **Checkpoint/resume** — with [`SweepConfig::resume`], keys already
//!   present in the journal are skipped, so a killed 10k-point sweep
//!   picks up where it died (a truncated trailing line is dropped).
//! * **[`merge`]** — replays every shard journal in the output
//!   directory, verifies the key set exactly matches the spec (no
//!   duplicates, no gaps, no strays), orders rows by the spec's
//!   enumeration order, re-runs the sweep's cross-point assertions, and
//!   writes the artifact. Because every row is a pure function of its
//!   key and f64s round-trip through JSON exactly, the merged artifact
//!   is byte-for-byte identical whether the grid ran as one process,
//!   N shards, or a killed-and-resumed run.
//! * **Result cache** — with [`SweepConfig::cache_dir`], every point's
//!   row is a content-addressed artifact in a shared [`cas::CasStore`],
//!   keyed by [`canon::point_cache_key`] over (sweep name, spec, point
//!   params, code version). `run_point` becomes a cache lookup: re-runs
//!   are hits, concurrent shards/hosts dedupe work through claim files,
//!   and a changed parameter or code version misses by construction.
//!   Cached rows re-enter the journal as their stored JSON values, so
//!   merged artifacts stay byte-identical to a cold run (DESIGN.md §17).
//! * **Studies** — [`study::StudyDag`] composes sweeps with downstream
//!   pivot/report stages as a DAG of cached artifacts, each node keyed
//!   by the hashes of its inputs, with per-node up-to-date
//!   short-circuiting.

pub mod canon;
pub mod cas;
pub mod journal;
pub mod shard;
pub mod study;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rayon::prelude::*;
use rsp_obs::{ProgressSnapshot, SweepProgress};
use serde::{Deserialize, Serialize};

use cas::ObjectMeta;
pub use cas::{CacheSnapshot, CasStore};
use journal::{Journal, JournalEntry};
pub use shard::Shard;
pub use study::{StageOp, StudyDag};

/// Everything that can go wrong running or merging a sweep. Rendered by
/// the CLI bins, which exit non-zero — artifact-write failures included.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem failure on `path`.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// A journal line failed to parse before the end of the file.
    Journal {
        /// The journal file.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A row failed to serialise.
    Encode {
        /// The point key.
        key: String,
        /// Serialiser error.
        msg: String,
    },
    /// A journalled row failed to deserialise.
    Decode {
        /// The point key.
        key: String,
        /// Deserialiser error.
        msg: String,
    },
    /// A `K/N` shard argument was malformed.
    BadShard(String),
    /// A journal holds a key the spec does not enumerate (stale journal
    /// or wrong sweep).
    UnknownKey {
        /// The stray key.
        key: String,
    },
    /// The same key appears in more than one journal entry.
    DuplicateKey {
        /// The duplicated key.
        key: String,
    },
    /// Keys the spec enumerates but no journal supplied.
    MissingKeys {
        /// The absent keys, in spec order (first few).
        sample: Vec<String>,
        /// How many are missing in total.
        count: usize,
    },
    /// The sweep's cross-point assertions failed on the merged rows.
    Verify(String),
    /// A spawned shard worker failed.
    Worker {
        /// Which shard.
        shard: Shard,
        /// What happened.
        msg: String,
    },
    /// A study DAG is malformed or a stage computation failed.
    Study(String),
}

impl SweepError {
    fn io(path: &Path, err: std::io::Error) -> SweepError {
        SweepError::Io {
            path: path.to_path_buf(),
            err,
        }
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            SweepError::Journal { path, line, msg } => {
                write!(f, "{}:{line}: corrupt journal: {msg}", path.display())
            }
            SweepError::Encode { key, msg } => write!(f, "point {key}: cannot encode row: {msg}"),
            SweepError::Decode { key, msg } => write!(f, "point {key}: cannot decode row: {msg}"),
            SweepError::BadShard(s) => {
                write!(f, "bad shard {s:?} (expected K/N with K < N, N > 0)")
            }
            SweepError::UnknownKey { key } => {
                write!(
                    f,
                    "journal holds key {key:?} the sweep spec does not enumerate"
                )
            }
            SweepError::DuplicateKey { key } => {
                write!(f, "key {key:?} appears more than once across the journals")
            }
            SweepError::MissingKeys { sample, count } => {
                write!(
                    f,
                    "{count} point(s) missing from the journals, e.g. {sample:?}"
                )
            }
            SweepError::Verify(msg) => write!(f, "cross-point verification failed: {msg}"),
            SweepError::Worker { shard, msg } => write!(f, "shard worker {shard}: {msg}"),
            SweepError::Study(msg) => write!(f, "study: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// A declarative sweep: the ordered grid, the stable per-point key, the
/// per-point runner, and the cross-point contract.
pub trait Sweep: Sync {
    /// One grid point's parameters.
    type Point: Clone + Send + Sync;
    /// One grid point's result row.
    type Row: Serialize + Deserialize + Send;

    /// The sweep's name — journal files are `<name>.shard-KofN.jsonl`.
    fn name(&self) -> &'static str;

    /// The full grid, in canonical (artifact) order. Must be
    /// deterministic: merging relies on every process enumerating the
    /// same points in the same order.
    fn points(&self) -> Vec<Self::Point>;

    /// The point's stable key. **Derive it only from the point's
    /// parameters** — never from enumeration order or ambient state —
    /// so shard assignment and resume survive grid re-orderings, and a
    /// journal row can be matched back to its point across processes.
    fn key(&self, point: &Self::Point) -> String;

    /// Run one point. Must be a pure function of the point (plus the
    /// spec's own immutable configuration): the merge step assumes a
    /// row is the same whichever process computed it.
    fn run_point(&self, point: &Self::Point) -> Self::Row;

    /// False for sweeps that time wall-clock per point (run them
    /// serially so points don't contend for the host CPU).
    fn parallel(&self) -> bool {
        true
    }

    /// The sweep's immutable configuration as a structured JSON value —
    /// everything (besides the point's own parameters and the code
    /// version) that `run_point` depends on. Baked into every point's
    /// cache key, so a grid or knob change invalidates the whole sweep.
    /// The default (`null`) is acceptable only for sweeps whose rows
    /// depend on nothing but the point and the code version.
    fn spec(&self) -> serde_json::Value {
        serde_json::Value::Null
    }

    /// One point's parameters as a structured JSON value — the
    /// cache-key analogue of [`Sweep::key`]. The default reuses the
    /// stable string key, which is correct exactly because keys are
    /// already required to be pure functions of the parameters;
    /// structured impls make `study explain` output self-describing.
    fn point_params(&self, point: &Self::Point) -> serde_json::Value {
        serde_json::Value::Str(self.key(point))
    }

    /// False for sweeps whose rows are *not* pure functions of their
    /// keys — wall-clock timing sweeps — so measurements are never
    /// served stale from the artifact store. Such sweeps run every
    /// point even under `--cache-dir` (journaling still buys
    /// checkpoint/resume; see `ThroughputSweep` for the exemplar).
    fn cacheable(&self) -> bool {
        true
    }

    /// Cross-point assertions, re-run on every merged set.
    fn verify(&self, _rows: &[Self::Row]) -> Result<(), String> {
        Ok(())
    }

    /// File name of the merged artifact (e.g. `BENCH_fault_sweep.json`),
    /// if the sweep writes one.
    fn artifact(&self) -> Option<&'static str> {
        None
    }

    /// Render the merged rows into the artifact's contents. The default
    /// is the pretty-printed row array every `BENCH_*.json` used before.
    fn render_artifact(&self, rows: &[Self::Row]) -> Result<String, SweepError> {
        serde_json::to_string_pretty(rows).map_err(|e| SweepError::Encode {
            key: "<artifact>".into(),
            msg: e.to_string(),
        })
    }

    /// Render the human-readable report printed after a merge.
    fn report(&self, rows: &[Self::Row]) -> String;
}

/// How to execute a sweep run.
#[derive(Debug, Clone)]
pub enum Executor {
    /// The whole grid in this process (rayon fan-out unless the sweep
    /// asks for serial execution).
    InProcess,
    /// Only the points of one shard, in this process.
    Shard(Shard),
    /// Spawn `count` worker subprocesses (`exe args... --shard k/N
    /// --out-dir ... [--resume]`), one per shard.
    Workers {
        /// Worker executable (usually `std::env::current_exe()`).
        exe: PathBuf,
        /// Arguments before the engine-appended `--shard`/`--out-dir`.
        args: Vec<String>,
        /// Number of shards.
        count: u32,
    },
}

impl Executor {
    fn shard(&self) -> Shard {
        match self {
            Executor::InProcess | Executor::Workers { .. } => Shard::WHOLE,
            Executor::Shard(s) => *s,
        }
    }
}

/// Where and how a sweep runs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// How to execute.
    pub executor: Executor,
    /// Directory for journals and the merged artifact.
    pub out_dir: PathBuf,
    /// Replay the journal and skip completed points instead of starting
    /// over.
    pub resume: bool,
    /// Echo per-point progress lines to stderr.
    pub verbose: bool,
    /// Root of the shared content-addressed result store. `None`
    /// disables caching: every point runs.
    pub cache_dir: Option<PathBuf>,
    /// Code version baked into every cache key. Defaults to the crate
    /// version, so a release bump invalidates the whole store;
    /// `--code-version` overrides it (CI uses this to pin invalidation
    /// behavior).
    pub code_version: String,
}

/// The default cache-key code version: this crate's version.
pub fn default_code_version() -> String {
    env!("CARGO_PKG_VERSION").to_string()
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            executor: Executor::InProcess,
            out_dir: PathBuf::from("."),
            resume: false,
            verbose: false,
            cache_dir: None,
            code_version: default_code_version(),
        }
    }
}

impl SweepConfig {
    /// The journal path for `sweep`'s shard under this config.
    pub fn journal_path(&self, sweep_name: &str, shard: Shard) -> PathBuf {
        self.out_dir.join(format!(
            "{sweep_name}.shard-{}of{}.jsonl",
            shard.index, shard.count
        ))
    }
}

/// What a run executed (one shard's view).
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Which shard ran.
    pub shard: Shard,
    /// Final progress counters (total = points in this shard).
    pub progress: ProgressSnapshot,
    /// The journal the run streamed into.
    pub journal: PathBuf,
    /// Cache counters, when the run consulted a store (`--cache-dir`
    /// set and the sweep is cacheable).
    pub cache: Option<CacheSnapshot>,
}

/// What a merge produced.
#[derive(Debug, Clone)]
pub struct MergeSummary {
    /// Points merged (always the full grid).
    pub points: usize,
    /// Journal fragments consumed.
    pub fragments: usize,
    /// Path of the written artifact, if the sweep defines one.
    pub artifact: Option<PathBuf>,
    /// The sweep's rendered report.
    pub report: String,
}

/// Object-safe driver facade over [`Sweep`] (the `experiments` bin holds
/// sweeps as `Box<dyn SweepRunner>`). Blanket-implemented for every
/// `Sweep`.
pub trait SweepRunner: Sync {
    /// The sweep's name.
    fn name(&self) -> &'static str;
    /// Total points in the grid.
    fn total_points(&self) -> usize;
    /// Whether rows are pure functions of their keys (cache-eligible).
    fn cacheable(&self) -> bool;
    /// Execute per the config, streaming results into the journal.
    fn run(&self, cfg: &SweepConfig) -> Result<RunSummary, SweepError>;
    /// Merge the journals in `cfg.out_dir`: validate, verify, write the
    /// artifact, render the report.
    fn merge(&self, cfg: &SweepConfig) -> Result<MergeSummary, SweepError>;
    /// Merge, also returning the ordered row values (the study layer
    /// stores them as the sweep node's artifact).
    fn merge_with_rows(
        &self,
        cfg: &SweepConfig,
    ) -> Result<(MergeSummary, serde_json::Value), SweepError>;
    /// Every point's cache key, in grid order — computable without
    /// running anything, which is what lets `study status` answer cold.
    fn point_hashes(&self, cfg: &SweepConfig) -> Result<Vec<String>, SweepError>;
    /// Re-verify and re-render the artifact from cached row values (the
    /// up-to-date short-circuit: no journals, no `run_point`).
    fn render_from_rows(
        &self,
        rows: &serde_json::Value,
        cfg: &SweepConfig,
    ) -> Result<MergeSummary, SweepError>;
}

impl<S: Sweep> SweepRunner for S {
    fn name(&self) -> &'static str {
        Sweep::name(self)
    }

    fn total_points(&self) -> usize {
        self.points().len()
    }

    fn cacheable(&self) -> bool {
        Sweep::cacheable(self)
    }

    fn run(&self, cfg: &SweepConfig) -> Result<RunSummary, SweepError> {
        if let Executor::Workers { exe, args, count } = &cfg.executor {
            shard::spawn_shard_workers(exe, args, *count, cfg)?;
            return Ok(RunSummary {
                shard: Shard::WHOLE,
                progress: ProgressSnapshot {
                    total: self.total_points() as u64,
                    ..ProgressSnapshot::default()
                },
                journal: cfg.out_dir.clone(),
                cache: None,
            });
        }
        run_shard(self, cfg)
    }

    fn merge(&self, cfg: &SweepConfig) -> Result<MergeSummary, SweepError> {
        merge(self, cfg)
    }

    fn merge_with_rows(
        &self,
        cfg: &SweepConfig,
    ) -> Result<(MergeSummary, serde_json::Value), SweepError> {
        let (entries, fragments) = merged_entries(self, cfg)?;
        let rows_value = serde_json::Value::Array(entries.iter().map(|e| e.row.clone()).collect());
        let rows = decode_rows::<S>(&entries)?;
        let summary = finish_merge(self, cfg, &rows, fragments)?;
        Ok((summary, rows_value))
    }

    fn point_hashes(&self, cfg: &SweepConfig) -> Result<Vec<String>, SweepError> {
        let points = self.points();
        spec_keys(self, &points)?; // reject duplicate keys up front
        let spec = self.spec();
        Ok(points
            .iter()
            .map(|p| {
                canon::point_cache_key(
                    Sweep::name(self),
                    &spec,
                    &self.point_params(p),
                    &cfg.code_version,
                )
            })
            .collect())
    }

    fn render_from_rows(
        &self,
        rows: &serde_json::Value,
        cfg: &SweepConfig,
    ) -> Result<MergeSummary, SweepError> {
        let values = rows.as_array().ok_or_else(|| SweepError::Decode {
            key: "<stage>".into(),
            msg: "cached sweep artifact is not a row array".into(),
        })?;
        let rows: Vec<S::Row> = values
            .iter()
            .map(|v| {
                serde_json::from_value(v.clone()).map_err(|e| SweepError::Decode {
                    key: "<stage>".into(),
                    msg: e.to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        finish_merge(self, cfg, &rows, 0)
    }
}

/// Keys of the full grid, in canonical order plus as a set, validated
/// unique.
fn spec_keys<S: Sweep>(
    sweep: &S,
    points: &[S::Point],
) -> Result<(Vec<String>, BTreeSet<String>), SweepError> {
    let keys: Vec<String> = points.iter().map(|p| sweep.key(p)).collect();
    let mut seen = BTreeSet::new();
    for k in &keys {
        if !seen.insert(k.clone()) {
            return Err(SweepError::DuplicateKey { key: k.clone() });
        }
    }
    Ok((keys, seen))
}

/// Run one shard of the sweep in-process, streaming each completed point
/// into the shard's journal.
fn run_shard<S: Sweep>(sweep: &S, cfg: &SweepConfig) -> Result<RunSummary, SweepError> {
    let shard = cfg.executor.shard();
    let points = sweep.points();
    let (keys, key_set) = spec_keys(sweep, &points)?;
    let journal_path = cfg.journal_path(Sweep::name(sweep), shard);

    // Resume: replay the journal, keep only entries this shard owns and
    // the spec still enumerates, and rewrite the file clean (dropping
    // any truncated tail) before appending to it.
    let mut done: BTreeSet<String> = BTreeSet::new();
    if cfg.resume {
        let existing = journal::load(&journal_path)?;
        for e in &existing {
            if !key_set.contains(&e.key) {
                return Err(SweepError::UnknownKey { key: e.key.clone() });
            }
            if !shard.owns(&e.key) {
                return Err(SweepError::Journal {
                    path: journal_path.clone(),
                    line: 0,
                    msg: format!("entry {:?} does not belong to shard {shard}", e.key),
                });
            }
            if !done.insert(e.key.clone()) {
                return Err(SweepError::DuplicateKey { key: e.key.clone() });
            }
        }
        journal::rewrite(&journal_path, &existing)?;
    } else if journal_path.exists() {
        fs::remove_file(&journal_path).map_err(|e| SweepError::io(&journal_path, e))?;
    }

    let todo: Vec<(usize, &S::Point)> = points
        .iter()
        .enumerate()
        .filter(|(i, _)| shard.owns(&keys[*i]) && !done.contains(&keys[*i]))
        .collect();
    let in_shard = keys.iter().filter(|k| shard.owns(k)).count();

    let progress = SweepProgress::with_total(in_shard as u64);
    progress.points_skipped(done.len() as u64);
    if cfg.verbose && !done.is_empty() {
        eprintln!(
            "{} {shard}: resumed {} completed point(s) from journal",
            Sweep::name(sweep),
            done.len()
        );
    }

    // The result cache: only pure sweeps consult it. Rows land in the
    // journal as the *stored* JSON values, which round-trip
    // byte-identically, so a warm run merges to the same artifact bytes
    // as a cold one.
    let store = match (&cfg.cache_dir, Sweep::cacheable(sweep)) {
        (Some(dir), true) => Some(CasStore::open(dir)?),
        _ => None,
    };
    let spec_value = sweep.spec();

    let writer = Mutex::new(Journal::append_to(&journal_path)?);
    let complete_one = |(i, point): &(usize, &S::Point)| -> Result<(), SweepError> {
        let key = &keys[*i];
        let entry = match &store {
            Some(store) => {
                let meta = ObjectMeta {
                    hash: canon::point_cache_key(
                        Sweep::name(sweep),
                        &spec_value,
                        &sweep.point_params(point),
                        &cfg.code_version,
                    ),
                    kind: "point",
                    name: Sweep::name(sweep).to_string(),
                    key: key.clone(),
                    code_version: cfg.code_version.clone(),
                    inputs: Vec::new(),
                };
                let (row, _outcome) = store.fetch_or_compute(&meta, || {
                    serde_json::to_value(&sweep.run_point(point)).map_err(|e| SweepError::Encode {
                        key: key.clone(),
                        msg: e.to_string(),
                    })
                })?;
                JournalEntry {
                    key: key.clone(),
                    row,
                }
            }
            None => JournalEntry::encode(key, &sweep.run_point(point))?,
        };
        writer
            .lock()
            .expect("journal writer poisoned")
            .append(&entry)?;
        let snap = progress.point_completed();
        if cfg.verbose {
            eprintln!("{} {shard} {snap} {key}", Sweep::name(sweep));
        }
        Ok(())
    };
    let result: Result<Vec<()>, SweepError> = if sweep.parallel() {
        todo.par_iter().map(complete_one).collect()
    } else {
        todo.iter().map(complete_one).collect()
    };
    if result.is_err() {
        progress.point_failed();
    }
    result?;

    Ok(RunSummary {
        shard,
        progress: progress.snapshot(),
        journal: journal_path,
        cache: store.map(|s| s.stats()),
    })
}

/// Replay every `<name>.shard-*.jsonl` fragment in `cfg.out_dir`,
/// validate the key set against the spec (no duplicates, no gaps, no
/// strays), order rows canonically, re-run the sweep's cross-point
/// assertions, and write the artifact.
pub fn merge<S: Sweep>(sweep: &S, cfg: &SweepConfig) -> Result<MergeSummary, SweepError> {
    let (entries, fragments) = merged_entries(sweep, cfg)?;
    let rows = decode_rows::<S>(&entries)?;
    finish_merge(sweep, cfg, &rows, fragments)
}

/// The journal-replay half of a merge: every fragment's entries,
/// deduplicated, validated against the spec's key set, and ordered by
/// the spec's enumeration order — this ordering is what makes the
/// merged artifact byte-identical to a single-process run's. Returns
/// the entries plus the fragment count.
fn merged_entries<S: Sweep>(
    sweep: &S,
    cfg: &SweepConfig,
) -> Result<(Vec<JournalEntry>, usize), SweepError> {
    let points = sweep.points();
    let (keys, key_set) = spec_keys(sweep, &points)?;

    let prefix = format!("{}.shard-", Sweep::name(sweep));
    let mut fragments: Vec<PathBuf> = fs::read_dir(&cfg.out_dir)
        .map_err(|e| SweepError::io(&cfg.out_dir, e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".jsonl"))
        })
        .collect();
    fragments.sort();

    let mut by_key: BTreeMap<String, JournalEntry> = BTreeMap::new();
    for path in &fragments {
        for entry in journal::load(path)? {
            if !key_set.contains(&entry.key) {
                return Err(SweepError::UnknownKey { key: entry.key });
            }
            let key = entry.key.clone();
            if by_key.insert(key.clone(), entry).is_some() {
                return Err(SweepError::DuplicateKey { key });
            }
        }
    }

    let missing: Vec<String> = keys
        .iter()
        .filter(|k| !by_key.contains_key(*k))
        .cloned()
        .collect();
    if !missing.is_empty() {
        return Err(SweepError::MissingKeys {
            sample: missing.iter().take(4).cloned().collect(),
            count: missing.len(),
        });
    }

    let entries: Vec<JournalEntry> = keys.iter().map(|k| by_key.remove(k).unwrap()).collect();
    Ok((entries, fragments.len()))
}

fn decode_rows<S: Sweep>(entries: &[JournalEntry]) -> Result<Vec<S::Row>, SweepError> {
    entries.iter().map(|e| e.decode::<S::Row>()).collect()
}

/// The verify-and-render half of a merge, shared by journal replay and
/// the study layer's cached-rows short-circuit.
fn finish_merge<S: Sweep>(
    sweep: &S,
    cfg: &SweepConfig,
    rows: &[S::Row],
    fragments: usize,
) -> Result<MergeSummary, SweepError> {
    sweep.verify(rows).map_err(SweepError::Verify)?;

    let artifact = match sweep.artifact() {
        Some(name) => {
            let contents = sweep.render_artifact(rows)?;
            Some(write_artifact(&cfg.out_dir, name, &contents)?)
        }
        None => None,
    };

    Ok(MergeSummary {
        points: rows.len(),
        fragments,
        artifact,
        report: sweep.report(rows),
    })
}

/// The one `--out-dir`-aware artifact writer every bench output goes
/// through. Creates the directory, writes the file, and *returns* the
/// error — callers (the CLI bins) exit non-zero instead of printing and
/// carrying on.
pub fn write_artifact(out_dir: &Path, name: &str, contents: &str) -> Result<PathBuf, SweepError> {
    if !out_dir.as_os_str().is_empty() {
        fs::create_dir_all(out_dir).map_err(|e| SweepError::io(out_dir, e))?;
    }
    let path = out_dir.join(name);
    fs::write(&path, contents).map_err(|e| SweepError::io(&path, e))?;
    Ok(path)
}

/// Convenience driver: run the whole grid in-process (with optional
/// resume) and merge, returning the merge summary. This is what a plain
/// `experiments <sweep-id>` invocation does.
pub fn run_and_merge<S: Sweep>(sweep: &S, cfg: &SweepConfig) -> Result<MergeSummary, SweepError> {
    SweepRunner::run(sweep, cfg)?;
    merge(sweep, cfg)
}

/// The light in-process path for experiments that want the fan-out and
/// progress accounting but no journal/artifact plumbing: run every
/// point (rayon), preserving point order in the returned rows.
pub fn run_grid<P, R>(name: &str, points: &[P], run: impl Fn(&P) -> R + Sync) -> Vec<R>
where
    P: Sync,
    R: Send,
{
    let progress = SweepProgress::with_total(points.len() as u64);
    let rows: Vec<R> = points
        .par_iter()
        .map(|p| {
            let row = run(p);
            progress.point_completed();
            row
        })
        .collect();
    debug_assert!(progress.snapshot().is_complete(), "{name}: grid incomplete");
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap synthetic sweep: rows are pure functions of the key.
    struct TestSweep {
        n: u32,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct TestRow {
        key: String,
        value: f64,
    }

    impl Sweep for TestSweep {
        type Point = u32;
        type Row = TestRow;

        fn name(&self) -> &'static str {
            "test_sweep"
        }

        fn points(&self) -> Vec<u32> {
            (0..self.n).collect()
        }

        fn key(&self, p: &u32) -> String {
            format!("p{p:03}")
        }

        fn run_point(&self, p: &u32) -> TestRow {
            TestRow {
                key: format!("p{p:03}"),
                value: *p as f64 / 3.0,
            }
        }

        fn verify(&self, rows: &[TestRow]) -> Result<(), String> {
            if rows.len() == self.n as usize {
                Ok(())
            } else {
                Err(format!("expected {} rows, got {}", self.n, rows.len()))
            }
        }

        fn artifact(&self) -> Option<&'static str> {
            Some("BENCH_test_sweep.json")
        }

        fn report(&self, rows: &[TestRow]) -> String {
            format!("{} rows", rows.len())
        }
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rsp-sweep-{}", std::process::id()))
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg_in(dir: &Path) -> SweepConfig {
        SweepConfig {
            out_dir: dir.to_path_buf(),
            ..SweepConfig::default()
        }
    }

    #[test]
    fn single_process_run_and_merge_produces_ordered_artifact() {
        let sweep = TestSweep { n: 7 };
        let dir = fresh_dir("single");
        let summary = run_and_merge(&sweep, &cfg_in(&dir)).unwrap();
        assert_eq!(summary.points, 7);
        assert_eq!(summary.fragments, 1);
        let artifact = fs::read_to_string(summary.artifact.unwrap()).unwrap();
        let rows: Vec<TestRow> = serde_json::from_str(&artifact).unwrap();
        assert_eq!(
            rows,
            sweep
                .points()
                .iter()
                .map(|p| sweep.run_point(p))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sharded_runs_merge_byte_identically_to_single() {
        let sweep = TestSweep { n: 11 };
        let single = fresh_dir("shard-single");
        let s1 = run_and_merge(&sweep, &cfg_in(&single)).unwrap();
        let want = fs::read(s1.artifact.unwrap()).unwrap();

        let dir = fresh_dir("shard-split");
        for index in 0..3 {
            let cfg = SweepConfig {
                executor: Executor::Shard(Shard::new(index, 3).unwrap()),
                ..cfg_in(&dir)
            };
            let run = SweepRunner::run(&sweep, &cfg).unwrap();
            assert_eq!(run.progress.completed, run.progress.total);
        }
        let merged = merge(&sweep, &cfg_in(&dir)).unwrap();
        assert_eq!(merged.fragments, 3);
        let got = fs::read(merged.artifact.unwrap()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn merge_rejects_gaps_duplicates_and_strays() {
        let sweep = TestSweep { n: 5 };
        let dir = fresh_dir("gaps");
        let cfg = SweepConfig {
            executor: Executor::Shard(Shard::new(0, 2).unwrap()),
            ..cfg_in(&dir)
        };
        SweepRunner::run(&sweep, &cfg).unwrap();
        // Shard 1 never ran → gaps.
        assert!(matches!(
            merge(&sweep, &cfg_in(&dir)),
            Err(SweepError::MissingKeys { .. })
        ));
        // Same shard journalled twice under a different shard label → duplicates.
        let src = cfg.journal_path("test_sweep", Shard::new(0, 2).unwrap());
        fs::copy(&src, dir.join("test_sweep.shard-0of9.jsonl")).unwrap();
        assert!(matches!(
            merge(&sweep, &cfg_in(&dir)),
            Err(SweepError::DuplicateKey { .. })
        ));
        // A key outside the spec → stray: a journal produced by a wider
        // grid (n = 6 has p005) replayed against the n = 5 spec.
        let wider = TestSweep { n: 6 };
        let dir2 = fresh_dir("stray");
        run_and_merge(&wider, &cfg_in(&dir2)).unwrap();
        fs::remove_file(dir2.join("BENCH_test_sweep.json")).unwrap();
        let err = merge(&sweep, &cfg_in(&dir2)).unwrap_err();
        assert!(
            matches!(err, SweepError::UnknownKey { ref key } if key == "p005"),
            "{err}"
        );
    }

    #[test]
    fn resume_skips_journalled_points_and_completes() {
        let sweep = TestSweep { n: 9 };
        let ref_dir = fresh_dir("resume-ref");
        let want = fs::read(
            run_and_merge(&sweep, &cfg_in(&ref_dir))
                .unwrap()
                .artifact
                .unwrap(),
        )
        .unwrap();

        // Simulate a kill: keep only the first 4 journal lines plus a
        // truncated tail.
        let dir = fresh_dir("resume");
        run_and_merge(&sweep, &cfg_in(&dir)).unwrap();
        let jpath = dir.join("test_sweep.shard-0of1.jsonl");
        let text = fs::read_to_string(&jpath).unwrap();
        let keep: Vec<&str> = text.lines().take(4).collect();
        fs::write(&jpath, format!("{}\n{{\"key\":\"p0", keep.join("\n"))).unwrap();
        fs::remove_file(dir.join("BENCH_test_sweep.json")).unwrap();

        let cfg = SweepConfig {
            resume: true,
            ..cfg_in(&dir)
        };
        let run = SweepRunner::run(&sweep, &cfg).unwrap();
        assert_eq!(run.progress.skipped, 4);
        assert_eq!(run.progress.completed, 5);
        let merged = merge(&sweep, &cfg_in(&dir)).unwrap();
        assert_eq!(fs::read(merged.artifact.unwrap()).unwrap(), want);
    }

    /// A row whose `Serialize` impl fails mid-grid surfaces from the
    /// full sweep run as [`SweepError::Encode`] naming the point —
    /// propagated through `JournalEntry::encode` and `Journal::append`
    /// rather than panicking the shard. Rows journalled before the
    /// failure survive on disk, so a fixed serialiser can resume.
    #[test]
    fn failing_serialize_row_fails_the_run_with_encode_error() {
        struct PoisonRow {
            id: u32,
        }
        impl Serialize for PoisonRow {
            fn to_value(&self) -> serde_json::Value {
                serde_json::Value::Int(self.id as i128)
            }
            fn try_to_value(&self) -> Result<serde_json::Value, serde_json::Error> {
                if self.id == 3 {
                    Err(serde_json::Error::msg("row 3 refuses to serialise"))
                } else {
                    Ok(self.to_value())
                }
            }
        }
        impl Deserialize for PoisonRow {
            fn from_value(v: &serde_json::Value) -> Result<PoisonRow, serde_json::Error> {
                u32::from_value(v).map(|id| PoisonRow { id })
            }
        }
        struct PoisonSweep;
        impl Sweep for PoisonSweep {
            type Point = u32;
            type Row = PoisonRow;
            fn name(&self) -> &'static str {
                "poison_sweep"
            }
            fn points(&self) -> Vec<u32> {
                (0..6).collect()
            }
            fn key(&self, p: &u32) -> String {
                format!("p{p}")
            }
            fn run_point(&self, p: &u32) -> PoisonRow {
                PoisonRow { id: *p }
            }
            fn parallel(&self) -> bool {
                false // deterministic journal contents up to the failure
            }
            fn report(&self, rows: &[PoisonRow]) -> String {
                format!("{} rows", rows.len())
            }
        }

        let dir = fresh_dir("poison");
        let err = run_and_merge(&PoisonSweep, &cfg_in(&dir)).unwrap_err();
        match err {
            SweepError::Encode { key, msg } => {
                assert_eq!(key, "p3");
                assert!(msg.contains("refuses to serialise"), "{msg}");
            }
            other => panic!("expected Encode error, got {other}"),
        }
        // The three rows completed before the poisoned one are on disk.
        let journal = journal::load(&dir.join("poison_sweep.shard-0of1.jsonl")).unwrap();
        assert_eq!(
            journal.iter().map(|e| e.key.as_str()).collect::<Vec<_>>(),
            ["p0", "p1", "p2"]
        );
    }

    #[test]
    fn run_grid_preserves_point_order() {
        let points: Vec<u32> = (0..20).collect();
        let rows = run_grid("order", &points, |p| p * 2);
        assert_eq!(rows, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn write_artifact_reports_failure() {
        let dir = fresh_dir("write-fail");
        // A directory where the file should be → write fails, surfaced
        // as an error rather than printed-and-ignored.
        fs::create_dir_all(dir.join("BENCH_x.json")).unwrap();
        assert!(matches!(
            write_artifact(&dir, "BENCH_x.json", "{}"),
            Err(SweepError::Io { .. })
        ));
        assert!(write_artifact(&dir, "ok.json", "{}").is_ok());
    }
}

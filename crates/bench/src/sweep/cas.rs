//! The content-addressed artifact store (DESIGN.md §17).
//!
//! Every cached result — one sweep point's row, one study stage's
//! output — lives as one JSON object file addressed by the hash of its
//! *inputs* ([`super::canon::point_cache_key`] /
//! [`super::canon::stage_cache_key`]):
//! `objects/ab/cdef....json` under the store root, where `abcdef...` is
//! the 64-hex-digit key. Input addressing (not output addressing) is
//! what makes the store a cache: the key is computable before the work
//! runs, so a lookup can short-circuit the computation.
//!
//! Concurrency is file-system-native so shards on different hosts can
//! share a store over a network mount:
//!
//! * **Atomic publish** — objects are written to a tmp file and
//!   `rename`d into place; readers never observe a half-written object.
//! * **Claims** — before computing a missing object, a worker creates
//!   `claims/<hash>.claim` with `O_EXCL` (`create_new`). Exactly one
//!   worker wins; the others poll for the object instead of duplicating
//!   the work. Claims are released on drop (including unwind), and a
//!   claim whose file is older than [`CasStore::STALE_CLAIM`] is
//!   presumed dead and stolen. If the object still hasn't appeared by
//!   [`CasStore::CLAIM_WAIT`], the waiter computes anyway — duplicated
//!   work, never a deadlock, and the rename-over publish keeps the
//!   store consistent.
//! * **Quarantine** — an object that fails to parse, or whose recorded
//!   logical key disagrees with the caller's, is moved to `quarantine/`
//!   (never deleted, never trusted) and treated as a miss.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};
use std::{fs, io};

use serde::{Deserialize, Serialize};
use serde_json::Value;

use super::SweepError;

/// One stored object: the cached output plus enough metadata to answer
/// `study explain <key>` without re-deriving anything.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CasObject {
    /// Store schema tag, [`CasStore::SCHEMA`].
    pub schema: String,
    /// `"point"` for a sweep row, `"stage"` for a study-node output.
    pub kind: String,
    /// The sweep name or `study/node` path that produced this object.
    pub name: String,
    /// The logical key — the sweep's point key, or the node id. Sanity
    /// metadata: the content hash is the address; this is for humans
    /// and for detecting a corrupted store.
    pub key: String,
    /// Code version baked into the hash.
    pub code_version: String,
    /// Input hashes (stage objects only; empty for points).
    pub inputs: Vec<String>,
    /// The cached output: a row value or a stage result.
    pub row: Value,
}

/// Everything needed to address + describe an object, short of its row.
#[derive(Debug, Clone)]
pub struct ObjectMeta {
    /// The content hash (object address).
    pub hash: String,
    /// `"point"` or `"stage"`.
    pub kind: &'static str,
    /// Producing sweep or `study/node`.
    pub name: String,
    /// Logical key.
    pub key: String,
    /// Code version.
    pub code_version: String,
    /// Input hashes.
    pub inputs: Vec<String>,
}

/// Monotone cache counters, shared across rayon workers.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    claim_waits: AtomicU64,
    quarantined: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`], cheap to pass around and
/// render.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that computed (and published) the object.
    pub misses: u64,
    /// Lookups that waited out another worker's claim, then read its
    /// published object.
    pub claim_waits: u64,
    /// Corrupt objects moved to quarantine.
    pub quarantined: u64,
}

impl CacheSnapshot {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.claim_waits
    }

    /// `hits + claim_waits` — lookups that did not compute.
    pub fn served(&self) -> u64 {
        self.hits + self.claim_waits
    }

    /// The one-line summary the experiments bin prints.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "cache: {} hit(s), {} miss(es), {} claim-wait(s)",
            self.hits, self.misses, self.claim_waits
        );
        if self.quarantined > 0 {
            line.push_str(&format!(", {} quarantined", self.quarantined));
        }
        line
    }
}

impl CacheStats {
    fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            claim_waits: self.claim_waits.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// How a single `fetch_or_compute` resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Object already present.
    Hit,
    /// This worker computed and published it.
    Computed,
    /// Another worker's claim was live; we waited and read its object.
    WaitHit,
}

/// What a [`CasStore::gc`] pass did.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcSummary {
    /// Objects kept (reachable).
    pub kept: usize,
    /// Unreachable objects removed.
    pub removed: usize,
    /// Leftover claim files removed.
    pub claims_removed: usize,
    /// Quarantined files removed.
    pub quarantine_removed: usize,
}

/// A content-addressed object store rooted at `--cache-dir`.
#[derive(Debug)]
pub struct CasStore {
    root: PathBuf,
    claim_wait: Duration,
    claim_poll: Duration,
    stale_claim: Duration,
    stats: CacheStats,
}

/// Removes the claim file when the winning worker finishes (or unwinds).
struct ClaimGuard {
    path: PathBuf,
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

impl CasStore {
    /// Schema tag written into every object; bump on incompatible layout
    /// changes.
    pub const SCHEMA: &'static str = "rsp-cas-v1";
    /// Give a live claim this long to publish before computing anyway.
    pub const CLAIM_WAIT: Duration = Duration::from_secs(600);
    /// A claim file untouched for this long is presumed dead and stolen.
    pub const STALE_CLAIM: Duration = Duration::from_secs(300);

    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<CasStore, SweepError> {
        let root = root.into();
        for sub in ["objects", "claims", "quarantine"] {
            let dir = root.join(sub);
            fs::create_dir_all(&dir).map_err(|e| SweepError::io(&dir, e))?;
        }
        Ok(CasStore {
            root,
            claim_wait: Self::CLAIM_WAIT,
            claim_poll: Duration::from_millis(20),
            stale_claim: Self::STALE_CLAIM,
            stats: CacheStats::default(),
        })
    }

    /// Shrink the claim timings (tests exercise the stale-steal and
    /// wait-out paths without waiting minutes).
    #[doc(hidden)]
    pub fn with_claim_timing(mut self, wait: Duration, poll: Duration, stale: Duration) -> Self {
        self.claim_wait = wait;
        self.claim_poll = poll;
        self.stale_claim = stale;
        self
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheSnapshot {
        self.stats.snapshot()
    }

    fn object_path(&self, hash: &str) -> PathBuf {
        let (shard, rest) = hash.split_at(2.min(hash.len()));
        self.root
            .join("objects")
            .join(shard)
            .join(format!("{rest}.json"))
    }

    fn claim_path(&self, hash: &str) -> PathBuf {
        self.root.join("claims").join(format!("{hash}.claim"))
    }

    /// Is an object with this hash present (without loading it)?
    pub fn contains(&self, hash: &str) -> bool {
        self.object_path(hash).exists()
    }

    /// Load the object at `hash`. A missing object is `Ok(None)`. A
    /// present-but-corrupt object — unparseable, wrong schema, or a
    /// recorded key that disagrees with `expected_key` — is moved to
    /// quarantine and also reported `Ok(None)`: the caller recomputes
    /// and republishes over it.
    pub fn load(
        &self,
        hash: &str,
        expected_key: Option<&str>,
    ) -> Result<Option<CasObject>, SweepError> {
        let path = self.object_path(hash);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(SweepError::io(&path, e)),
        };
        let parsed: Result<CasObject, _> = serde_json::from_str(&text);
        let reason = match parsed {
            Err(e) => Some(format!("unparseable: {e}")),
            Ok(obj) if obj.schema != Self::SCHEMA => {
                Some(format!("schema {:?}, want {:?}", obj.schema, Self::SCHEMA))
            }
            Ok(obj) => match expected_key {
                Some(want) if obj.key != want => {
                    Some(format!("recorded key {:?}, expected {:?}", obj.key, want))
                }
                _ => return Ok(Some(obj)),
            },
        };
        self.quarantine(hash, &path, reason.as_deref().unwrap_or("corrupt"))?;
        Ok(None)
    }

    fn quarantine(&self, hash: &str, path: &Path, reason: &str) -> Result<(), SweepError> {
        let dst = self.root.join("quarantine").join(format!("{hash}.json"));
        fs::rename(path, &dst).map_err(|e| SweepError::io(path, e))?;
        let note = self.root.join("quarantine").join(format!("{hash}.reason"));
        let _ = fs::write(&note, reason);
        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Publish an object: tmp write + atomic rename. Last writer wins;
    /// since objects are input-addressed and computations are pure,
    /// concurrent publishers wrote equivalent contents.
    pub fn store(&self, meta: &ObjectMeta, row: &Value) -> Result<(), SweepError> {
        let obj = CasObject {
            schema: Self::SCHEMA.to_string(),
            kind: meta.kind.to_string(),
            name: meta.name.clone(),
            key: meta.key.clone(),
            code_version: meta.code_version.clone(),
            inputs: meta.inputs.clone(),
            row: row.clone(),
        };
        let text = serde_json::to_string(&obj).map_err(|e| SweepError::Encode {
            key: meta.key.clone(),
            msg: e.to_string(),
        })?;
        let path = self.object_path(&meta.hash);
        let dir = path.parent().expect("object path has a parent");
        fs::create_dir_all(dir).map_err(|e| SweepError::io(dir, e))?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            path.file_name().and_then(|n| n.to_str()).unwrap_or("obj")
        ));
        fs::write(&tmp, &text).map_err(|e| SweepError::io(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| SweepError::io(&path, e))?;
        Ok(())
    }

    fn try_claim(&self, hash: &str) -> Result<Option<ClaimGuard>, SweepError> {
        let path = self.claim_path(hash);
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                use std::io::Write as _;
                let _ = writeln!(f, "pid {}", std::process::id());
                Ok(Some(ClaimGuard { path }))
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(SweepError::io(&path, e)),
        }
    }

    fn claim_is_stale(&self, hash: &str) -> bool {
        let age = fs::metadata(self.claim_path(hash))
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| SystemTime::now().duration_since(t).ok());
        match age {
            Some(age) => age > self.stale_claim,
            // Claim vanished (or mtime unreadable): not stale, just retry.
            None => false,
        }
    }

    /// The cache front door: return `meta.hash`'s row, computing and
    /// publishing it only if no other worker already has (or is about
    /// to). `compute` runs at most once per call, and across all
    /// workers sharing a healthy store, at most once per hash.
    pub fn fetch_or_compute(
        &self,
        meta: &ObjectMeta,
        compute: impl FnOnce() -> Result<Value, SweepError>,
    ) -> Result<(Value, CacheOutcome), SweepError> {
        if let Some(obj) = self.load(&meta.hash, Some(&meta.key))? {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((obj.row, CacheOutcome::Hit));
        }

        let deadline = Instant::now() + self.claim_wait;
        let mut compute = Some(compute);
        loop {
            match self.try_claim(&meta.hash)? {
                Some(guard) => {
                    // Double-check under the claim: the previous holder
                    // may have published between our load and our claim.
                    if let Some(obj) = self.load(&meta.hash, Some(&meta.key))? {
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        drop(guard);
                        return Ok((obj.row, CacheOutcome::Hit));
                    }
                    let row = (compute.take().expect("compute consumed twice"))()?;
                    self.store(meta, &row)?;
                    drop(guard);
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return Ok((row, CacheOutcome::Computed));
                }
                None => {
                    // Someone else is computing. Wait for their publish,
                    // steal their claim if it goes stale, and as a last
                    // resort compute anyway rather than hang forever.
                    loop {
                        if let Some(obj) = self.load(&meta.hash, Some(&meta.key))? {
                            self.stats.claim_waits.fetch_add(1, Ordering::Relaxed);
                            return Ok((obj.row, CacheOutcome::WaitHit));
                        }
                        if !self.claim_path(&meta.hash).exists() {
                            break; // holder released without publishing: contend again
                        }
                        if self.claim_is_stale(&meta.hash) {
                            let _ = fs::remove_file(self.claim_path(&meta.hash));
                            break;
                        }
                        if Instant::now() >= deadline {
                            let row = (compute.take().expect("compute consumed twice"))()?;
                            self.store(meta, &row)?;
                            self.stats.misses.fetch_add(1, Ordering::Relaxed);
                            return Ok((row, CacheOutcome::Computed));
                        }
                        std::thread::sleep(self.claim_poll);
                    }
                }
            }
        }
    }

    /// Every object hash currently in the store.
    pub fn list(&self) -> Result<Vec<String>, SweepError> {
        let objects = self.root.join("objects");
        let mut hashes = Vec::new();
        let shards = fs::read_dir(&objects).map_err(|e| SweepError::io(&objects, e))?;
        for shard in shards {
            let shard = shard.map_err(|e| SweepError::io(&objects, e))?.path();
            if !shard.is_dir() {
                continue;
            }
            let prefix = shard
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("")
                .to_string();
            for entry in fs::read_dir(&shard).map_err(|e| SweepError::io(&shard, e))? {
                let path = entry.map_err(|e| SweepError::io(&shard, e))?.path();
                if let Some(stem) = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_suffix(".json"))
                {
                    if !stem.starts_with(".tmp-") {
                        hashes.push(format!("{prefix}{stem}"));
                    }
                }
            }
        }
        hashes.sort();
        Ok(hashes)
    }

    /// Load every object whose hash starts with `prefix` (the
    /// `study explain <key>` lookup; pass a full hash for an exact hit).
    pub fn find(&self, prefix: &str) -> Result<Vec<CasObject>, SweepError> {
        let mut found = Vec::new();
        for hash in self.list()? {
            if hash.starts_with(prefix) {
                if let Some(obj) = self.load(&hash, None)? {
                    found.push(obj);
                }
            }
        }
        Ok(found)
    }

    /// Remove every object not in `live`, plus all leftover claims and
    /// everything in quarantine.
    pub fn gc(&self, live: &std::collections::BTreeSet<String>) -> Result<GcSummary, SweepError> {
        let mut summary = GcSummary::default();
        for hash in self.list()? {
            if live.contains(&hash) {
                summary.kept += 1;
            } else {
                let path = self.object_path(&hash);
                fs::remove_file(&path).map_err(|e| SweepError::io(&path, e))?;
                summary.removed += 1;
            }
        }
        for sub in ["claims", "quarantine"] {
            let dir = self.root.join(sub);
            for entry in fs::read_dir(&dir).map_err(|e| SweepError::io(&dir, e))? {
                let path = entry.map_err(|e| SweepError::io(&dir, e))?.path();
                if path.is_file() {
                    fs::remove_file(&path).map_err(|e| SweepError::io(&path, e))?;
                    if sub == "claims" {
                        summary.claims_removed += 1;
                    } else {
                        summary.quarantine_removed += 1;
                    }
                }
            }
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_store(name: &str) -> CasStore {
        let dir = std::env::temp_dir()
            .join(format!("rsp-cas-{}", std::process::id()))
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        CasStore::open(dir).unwrap()
    }

    fn meta(hash: &str, key: &str) -> ObjectMeta {
        ObjectMeta {
            hash: hash.to_string(),
            kind: "point",
            name: "demo".to_string(),
            key: key.to_string(),
            code_version: "0".to_string(),
            inputs: Vec::new(),
        }
    }

    #[test]
    fn miss_then_hit_round_trips_the_row() {
        let store = fresh_store("roundtrip");
        let m = meta(&crate::sweep::canon::sha256_hex(b"k1"), "k1");
        let row = Value::Object(vec![("x".into(), Value::Float(1.5))]);
        let (got, outcome) = store.fetch_or_compute(&m, || Ok(row.clone())).unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
        assert_eq!(got, row);
        let (again, outcome) = store
            .fetch_or_compute(&m, || panic!("must not recompute"))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(again, row);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn corrupt_object_is_quarantined_and_recomputed() {
        let store = fresh_store("quarantine");
        let hash = crate::sweep::canon::sha256_hex(b"bad");
        let m = meta(&hash, "bad");
        // Plant garbage at the object's address.
        let path = store.object_path(&hash);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "not json").unwrap();

        let (row, outcome) = store.fetch_or_compute(&m, || Ok(Value::Int(7))).unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
        assert_eq!(row, Value::Int(7));
        assert_eq!(store.stats().quarantined, 1);
        assert!(store
            .root()
            .join("quarantine")
            .join(format!("{hash}.json"))
            .exists());
        // The republished object now hits.
        let (_, outcome) = store.fetch_or_compute(&m, || unreachable!()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
    }

    #[test]
    fn key_mismatch_is_treated_as_corruption() {
        let store = fresh_store("key-mismatch");
        let hash = crate::sweep::canon::sha256_hex(b"km");
        store
            .store(&meta(&hash, "actual-key"), &Value::Int(1))
            .unwrap();
        // Loading under a different expected key quarantines it.
        assert!(store.load(&hash, Some("other-key")).unwrap().is_none());
        assert_eq!(store.stats().quarantined, 1);
    }

    #[test]
    fn claim_wait_reads_the_other_workers_publish() {
        let store = std::sync::Arc::new(fresh_store("claim-wait").with_claim_timing(
            Duration::from_secs(10),
            Duration::from_millis(5),
            Duration::from_secs(10),
        ));
        let hash = crate::sweep::canon::sha256_hex(b"cw");
        let m = meta(&hash, "cw");

        // Worker A holds the claim and publishes after a delay; worker B
        // must wait it out and read A's row without computing.
        let a = {
            let store = store.clone();
            let m = m.clone();
            std::thread::spawn(move || {
                store
                    .fetch_or_compute(&m, || {
                        std::thread::sleep(Duration::from_millis(120));
                        Ok(Value::Int(42))
                    })
                    .unwrap()
            })
        };
        // Give A time to take the claim before B looks.
        std::thread::sleep(Duration::from_millis(40));
        let (row_b, outcome_b) = store
            .fetch_or_compute(&m, || panic!("B must not compute"))
            .unwrap();
        let (row_a, outcome_a) = a.join().unwrap();
        assert_eq!(outcome_a, CacheOutcome::Computed);
        assert_eq!(outcome_b, CacheOutcome::WaitHit);
        assert_eq!(row_a, Value::Int(42));
        assert_eq!(row_b, Value::Int(42));
        assert_eq!(store.stats().claim_waits, 1);
    }

    #[test]
    fn stale_claim_is_stolen() {
        let store = fresh_store("stale").with_claim_timing(
            Duration::from_secs(10),
            Duration::from_millis(5),
            Duration::from_millis(0), // every claim is instantly stale
        );
        let hash = crate::sweep::canon::sha256_hex(b"stale");
        let m = meta(&hash, "stale");
        // A dead worker's abandoned claim.
        fs::write(store.claim_path(&hash), "pid 0").unwrap();
        let (row, outcome) = store.fetch_or_compute(&m, || Ok(Value::Int(9))).unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
        assert_eq!(row, Value::Int(9));
    }

    #[test]
    fn gc_keeps_live_objects_and_clears_the_rest() {
        let store = fresh_store("gc");
        let live_hash = crate::sweep::canon::sha256_hex(b"live");
        let dead_hash = crate::sweep::canon::sha256_hex(b"dead");
        store
            .store(&meta(&live_hash, "live"), &Value::Int(1))
            .unwrap();
        store
            .store(&meta(&dead_hash, "dead"), &Value::Int(2))
            .unwrap();
        fs::write(store.claim_path("leftover"), "pid 0").unwrap();

        let live: std::collections::BTreeSet<String> = [live_hash.clone()].into();
        let summary = store.gc(&live).unwrap();
        assert_eq!(
            (summary.kept, summary.removed, summary.claims_removed),
            (1, 1, 1)
        );
        assert!(store.contains(&live_hash));
        assert!(!store.contains(&dead_hash));
    }

    #[test]
    fn list_and_find_enumerate_by_prefix() {
        let store = fresh_store("list");
        let h1 = crate::sweep::canon::sha256_hex(b"one");
        let h2 = crate::sweep::canon::sha256_hex(b"two");
        store.store(&meta(&h1, "one"), &Value::Int(1)).unwrap();
        store.store(&meta(&h2, "two"), &Value::Int(2)).unwrap();
        let mut want = vec![h1.clone(), h2.clone()];
        want.sort();
        assert_eq!(store.list().unwrap(), want);
        let found = store.find(&h1[..12]).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, "one");
    }
}

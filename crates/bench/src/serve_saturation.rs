//! Serve-saturation sweep: aggregate tenant throughput and shed rate vs
//! offered load (`BENCH_serve_saturation.json`).
//!
//! Each grid point runs an open-loop arrival experiment against an
//! in-process [`ServeEngine`]: `rate` tenants are submitted per engine
//! tick for a fixed arrival window, then the engine drains. The
//! scheduler's watermarks are held constant across the grid, so the
//! sweep traces out the service curve — below the knee every tenant is
//! admitted; past it the admission queue fills and the engine sheds
//! with explicit reasons instead of letting the backlog grow without
//! bound.
//!
//! The load-shedding contract this artifact pins (and [`Sweep::verify`]
//! re-checks on every merge): shedding absorbs the *excess* — tenants
//! the engine does admit under overload keep stepping at the same
//! per-tick rate as at the knee. The verified throughput metric is
//! **cycles per engine tick**, which is a pure function of the grid
//! point (no wall clock), so the contract holds deterministically on
//! any host. Wall-clock cycles/sec is also recorded, per the other
//! bench artifacts, as an informative host-speed number.

use rsp_serve::{EngineConfig, ServeEngine, TenantRequest, WatermarkScheduler};
use rsp_workloads::{LaneTraceSpec, StreamSpec, SynthSpec, UnitMix};
use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::sweep::Sweep;

/// Offered load per grid point: tenants submitted per engine tick.
pub const RATES: [u32; 8] = [1, 2, 3, 4, 6, 8, 12, 16];

/// Ticks during which tenants arrive (the drain phase follows).
pub const ARRIVAL_TICKS: u32 = 48;

/// Per-tenant cycle budget. Tenant programs are generated long enough
/// that every tenant runs exactly this many cycles, so service demand
/// is uniform and the capacity knee is sharp.
pub const TENANT_CYCLES: u64 = 1024;

/// Drain bound: far above the worst case (all admitted tenants still
/// queued when arrivals stop), so hitting it means a stuck engine, not
/// a slow one.
const MAX_DRAIN_TICKS: u64 = 100_000;

/// The fixed admission policy every point runs under.
pub fn saturation_scheduler() -> WatermarkScheduler {
    WatermarkScheduler {
        queue_depth: 16,
        max_active: 8,
        step_lag_watermark: 64,
        quantum: 256,
    }
}

/// The `n`-th arriving tenant's request. Deterministic in `n`; every
/// eighth tenant is a lane tenant (packed onto the bit-sliced kernel),
/// the rest rotate the named synthetic mixes on scalar machines. All
/// tenants demand exactly [`TENANT_CYCLES`] cycles.
pub fn arrival(n: u64) -> TenantRequest {
    if n % 8 == 7 {
        return TenantRequest::new(StreamSpec::lane(
            format!("sat-lane-{n}"),
            LaneTraceSpec::synthetic_mix(TENANT_CYCLES as u32, 9_000 + n),
            TENANT_CYCLES,
        ));
    }
    let mixes = UnitMix::named();
    let (mix_name, mix) = mixes[(n as usize) % mixes.len()];
    let mut spec = SynthSpec::new(format!("sat-{mix_name}-{n}"), mix, 5_000 + n);
    // Long enough that the budget cap, not the halt, ends every tenant.
    spec.iterations = 8;
    TenantRequest::new(StreamSpec::synth(format!("sat-{n}"), spec, TENANT_CYCLES))
}

/// One offered-load level's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaturationRow {
    /// Tenants offered per tick.
    pub rate: u32,
    /// Tenants offered over the arrival window.
    pub offered: u64,
    /// Tenants admitted (all of which completed).
    pub admitted: u64,
    /// Tenants that ran to completion.
    pub completed: u64,
    /// Sheds at the queue-depth watermark.
    pub shed_queue_full: u64,
    /// Sheds at the step-lag watermark.
    pub shed_step_lag: u64,
    /// Shed fraction of offered load.
    pub shed_rate: f64,
    /// Engine ticks run (arrival window + drain).
    pub ticks: u64,
    /// Aggregate tenant-cycles stepped.
    pub stepped_cycles: u64,
    /// The verified throughput metric: tenant-cycles per engine tick
    /// (deterministic — no wall clock).
    pub cycles_per_tick: f64,
    /// The engine drained to idle within the bound.
    pub drained: bool,
    /// SLO column: median queue residency (admission → activation) in
    /// engine ticks, from the engine's aggregate SLO histogram.
    /// Tick-derived, so deterministic per grid point.
    #[serde(default)]
    pub queue_residency_p50: u64,
    /// SLO column: p99 queue residency in engine ticks.
    #[serde(default)]
    pub queue_residency_p99: u64,
    /// SLO column: p99 admission-to-first-quantum latency in engine
    /// ticks.
    #[serde(default)]
    pub admit_to_first_step_p99: u64,
    /// Wall-clock seconds for the whole point.
    pub wall_seconds: f64,
    /// Aggregate tenant-cycles per wall-second (informative; host-
    /// dependent, not verified beyond being finite and positive).
    pub cycles_per_sec: f64,
}

/// Run one offered-load level to completion and measure it.
pub fn measure_rate(rate: u32) -> SaturationRow {
    let mut engine = ServeEngine::new(EngineConfig::default(), saturation_scheduler());
    let started = Instant::now();
    let mut n = 0u64;
    for _ in 0..ARRIVAL_TICKS {
        for _ in 0..rate {
            // Sheds are the point of the experiment; the engine counts
            // them per reason in its stats.
            let _ = engine.submit(arrival(n));
            n += 1;
        }
        engine.tick();
    }
    let drained = engine.run_until_idle(MAX_DRAIN_TICKS);
    let wall = started.elapsed().as_secs_f64();
    let stats = engine.stats();
    let slo = engine.metrics().aggregate;
    let quantiles = |name: &str| -> (u64, u64) {
        slo.histogram(name)
            .map_or((0, 0), |h| (h.quantile(0.5), h.quantile(0.99)))
    };
    let (res_p50, res_p99) = quantiles("queue_residency");
    let (_, admit_p99) = quantiles("admit_to_first_step");
    SaturationRow {
        rate,
        offered: stats.submitted,
        admitted: stats.admitted,
        completed: stats.completed,
        shed_queue_full: stats.shed_queue_full,
        shed_step_lag: stats.shed_step_lag,
        shed_rate: stats.shed_total() as f64 / stats.submitted as f64,
        ticks: stats.ticks,
        stepped_cycles: stats.stepped_cycles,
        cycles_per_tick: stats.stepped_cycles as f64 / stats.ticks as f64,
        drained,
        queue_residency_p50: res_p50,
        queue_residency_p99: res_p99,
        admit_to_first_step_p99: admit_p99,
        wall_seconds: wall,
        cycles_per_sec: stats.stepped_cycles as f64 / wall,
    }
}

/// The saturation experiment as a [`Sweep`]: one point per offered-load
/// level, keyed by rate, run serially (points time wall clock for the
/// informative cycles/sec column). Every *verified* field is a pure
/// function of the key.
pub struct ServeSaturationSweep;

impl Sweep for ServeSaturationSweep {
    type Point = u32;
    type Row = SaturationRow;

    fn name(&self) -> &'static str {
        "serve_saturation"
    }

    fn points(&self) -> Vec<u32> {
        RATES.to_vec()
    }

    fn key(&self, rate: &u32) -> String {
        format!("rate{rate:03}")
    }

    // Wall-clock fields (`wall_seconds`, `cycles_per_sec`) are
    // informative-only and already replayed verbatim by `--resume`, so
    // caching them is no worse than the existing journal contract.
    fn spec(&self) -> serde_json::Value {
        use serde_json::Value;
        let sched = saturation_scheduler();
        Value::Object(vec![
            (
                "rates".into(),
                Value::Array(RATES.iter().map(|&r| Value::Int(r as i128)).collect()),
            ),
            ("arrival_ticks".into(), Value::Int(ARRIVAL_TICKS as i128)),
            ("tenant_cycles".into(), Value::Int(TENANT_CYCLES as i128)),
            (
                "scheduler".into(),
                Value::Object(vec![
                    ("queue_depth".into(), Value::Int(sched.queue_depth as i128)),
                    ("max_active".into(), Value::Int(sched.max_active as i128)),
                    (
                        "step_lag_watermark".into(),
                        Value::Int(sched.step_lag_watermark as i128),
                    ),
                    ("quantum".into(), Value::Int(sched.quantum as i128)),
                ]),
            ),
        ])
    }

    fn point_params(&self, rate: &u32) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![("rate".into(), Value::Int(*rate as i128))])
    }

    fn run_point(&self, rate: &u32) -> SaturationRow {
        measure_rate(*rate)
    }

    fn parallel(&self) -> bool {
        false
    }

    fn verify(&self, rows: &[SaturationRow]) -> Result<(), String> {
        for r in rows {
            if !r.drained {
                return Err(format!("rate {}: engine failed to drain", r.rate));
            }
            if r.admitted + r.shed_queue_full + r.shed_step_lag != r.offered {
                return Err(format!("rate {}: admissions + sheds != offered", r.rate));
            }
            if r.completed != r.admitted {
                return Err(format!(
                    "rate {}: {} admitted but {} completed",
                    r.rate, r.admitted, r.completed
                ));
            }
            if !(r.cycles_per_sec > 0.0 && r.cycles_per_sec.is_finite()) {
                return Err(format!("rate {}: bogus wall-clock rate", r.rate));
            }
            if r.queue_residency_p50 > r.queue_residency_p99 {
                return Err(format!(
                    "rate {}: residency p50 {} exceeds p99 {}",
                    r.rate, r.queue_residency_p50, r.queue_residency_p99
                ));
            }
        }
        let unsaturated: Vec<&SaturationRow> = rows.iter().filter(|r| r.shed_rate == 0.0).collect();
        let saturated: Vec<&SaturationRow> = rows.iter().filter(|r| r.shed_rate > 0.0).collect();
        if unsaturated.is_empty() || saturated.is_empty() {
            return Err(format!(
                "grid must straddle the knee: {} unsaturated, {} saturated row(s)",
                unsaturated.len(),
                saturated.len()
            ));
        }
        // Graceful degradation: past the shed watermark, the tenants the
        // engine does admit keep stepping at (within 10% of) the best
        // pre-saturation per-tick rate — overload is absorbed by
        // shedding, not by slowing everyone down.
        let knee = unsaturated
            .iter()
            .map(|r| r.cycles_per_tick)
            .fold(0.0f64, f64::max);
        for r in &saturated {
            if r.cycles_per_tick < 0.9 * knee {
                return Err(format!(
                    "rate {}: admitted-tenant throughput collapsed under overload \
                     ({:.0} cycles/tick vs {:.0} at the knee)",
                    r.rate, r.cycles_per_tick, knee
                ));
            }
        }
        // Shedding absorbs the excess: the shed fraction grows with
        // offered load (monotone across the saturated tail) …
        for pair in saturated.windows(2) {
            if pair[1].shed_rate < pair[0].shed_rate {
                return Err(format!(
                    "shed rate fell from {:.3} (rate {}) to {:.3} (rate {})",
                    pair[0].shed_rate, pair[0].rate, pair[1].shed_rate, pair[1].rate
                ));
            }
        }
        // … while admissions stop growing with offered load: past the
        // knee every row admits the same service capacity (within 10%),
        // however much extra load is offered.
        let cap_min = saturated.iter().map(|r| r.admitted).min().unwrap_or(0);
        for r in &saturated {
            if r.admitted as f64 > 1.1 * cap_min as f64 {
                return Err(format!(
                    "rate {}: admitted {} tenants but another saturated row admitted \
                     only {} — admissions must not scale with offered load",
                    r.rate, r.admitted, cap_min
                ));
            }
        }
        Ok(())
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_serve_saturation.json")
    }

    fn report(&self, rows: &[SaturationRow]) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>5} {:>8} {:>9} {:>6} {:>10} {:>7} {:>13} {:>15} {:>9} {:>9}",
            "rate",
            "offered",
            "admitted",
            "shed",
            "shed-rate",
            "ticks",
            "cycles/tick",
            "cycles/sec",
            "res-p50",
            "res-p99"
        );
        for r in rows {
            let _ = writeln!(
                s,
                "{:>5} {:>8} {:>9} {:>6} {:>10.3} {:>7} {:>13.0} {:>15.0} {:>9} {:>9}",
                r.rate,
                r.offered,
                r.admitted,
                r.shed_queue_full + r.shed_step_lag,
                r.shed_rate,
                r.ticks,
                r.cycles_per_tick,
                r.cycles_per_sec,
                r.queue_residency_p50,
                r.queue_residency_p99
            );
        }
        if let Some(first_shed) = rows.iter().find(|r| r.shed_rate > 0.0) {
            let _ = writeln!(
                s,
                "knee between rate {} and rate {}: beyond it admissions hold near \
                 capacity and the shed rate absorbs the excess",
                rows.iter()
                    .filter(|r| r.shed_rate == 0.0)
                    .map(|r| r.rate)
                    .max()
                    .unwrap_or(0),
                first_shed.rate
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_mixed() {
        for n in [0u64, 3, 7, 15] {
            let a = arrival(n);
            let b = arrival(n);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
        }
        assert!(arrival(7).spec.is_lane());
        assert!(!arrival(6).spec.is_lane());
    }

    #[test]
    fn low_rate_point_admits_everything() {
        let r = measure_rate(1);
        assert!(r.drained);
        assert_eq!(r.admitted, r.offered);
        assert_eq!(r.completed, r.admitted);
        assert_eq!(r.shed_rate, 0.0);
        // Uniform service demand: every tenant runs its full budget.
        assert_eq!(r.stepped_cycles, r.admitted * TENANT_CYCLES);
    }

    #[test]
    fn high_rate_point_sheds_but_serves_admitted_tenants_fully() {
        let r = measure_rate(16);
        assert!(r.drained);
        assert!(r.shed_rate > 0.0, "rate 16 must saturate the scheduler");
        assert_eq!(r.completed, r.admitted);
        assert_eq!(r.stepped_cycles, r.admitted * TENANT_CYCLES);
    }
}

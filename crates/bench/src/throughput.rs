//! Simulated-cycles-per-wall-second throughput harness.
//!
//! Measures how fast the simulator itself runs (host perf, not modelled
//! perf): each *workload class* is a fixed set of generated programs, run
//! back to back on one reused machine via [`rsp_sim::BatchRunner`], and
//! timed with repeated passes until a minimum wall-clock window fills.
//! The result — simulated cycles per wall-second per class — is written
//! as `BENCH_throughput.json` so optimisation work on the hot loop has a
//! stable before/after yardstick. The `throughput` binary is the CLI;
//! the steady-state Criterion benchmark in `benches/end_to_end.rs`
//! reuses [`workload_classes`].

use rsp_isa::units::UnitType;
use rsp_isa::Program;
use rsp_sim::lanes::{LaneRunner, LaneStimulus};
use rsp_sim::{BatchRunner, FaultParams, SimConfig, SimReport};
use rsp_workloads::{kernels, LaneTraceSpec, PhasedSpec, SynthSpec, UnitMix};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

use crate::sweep::{Sweep, SweepError};

/// Per-program cycle budget. Generous: every class program halts well
/// under this, so hitting it indicates a simulator bug.
pub const CYCLE_BUDGET: u64 = 10_000_000;

/// A named set of programs measured as one unit.
pub struct WorkloadClass {
    /// Class name (the JSON key).
    pub name: &'static str,
    /// Programs run back to back each pass.
    pub programs: Vec<Program>,
    /// Fault-model parameters for this class (default: fault model off,
    /// which keeps `Fabric::tick` on its inert fast path).
    pub faults: FaultParams,
}

/// The harness's workload classes. Deterministic (fixed seeds): the
/// same programs are generated on every invocation, so cycles/sec
/// numbers are comparable across builds.
///
/// * one class per named synthetic mix (int/fp/mem-heavy, balanced);
/// * `synthetic-mix` — all four mixes interleaved across seeds (the
///   acceptance-gate class);
/// * `phased` — mix changes mid-program, exercising steering churn;
/// * `kernels` — the real-kernel suite;
/// * `faulty` — the phased programs under an active fault model
///   (failing loads, upsets, scrub), timing the fault tick + recovery
///   paths that every other class skips.
pub fn workload_classes() -> Vec<WorkloadClass> {
    let mut classes = Vec::new();
    for (name, mix) in UnitMix::named() {
        let programs = (0..4)
            .map(|seed| {
                let mut spec = SynthSpec::new(format!("{name}-{seed}"), mix, 1000 + seed);
                spec.iterations = 4;
                spec.generate()
            })
            .collect();
        classes.push(WorkloadClass {
            name,
            programs,
            faults: FaultParams::default(),
        });
    }
    let mut mixed = Vec::new();
    for (name, mix) in UnitMix::named() {
        for seed in 0..3 {
            let mut spec = SynthSpec::new(format!("mix-{name}-{seed}"), mix, 2000 + seed);
            spec.iterations = 4;
            mixed.push(spec.generate());
        }
    }
    classes.push(WorkloadClass {
        name: "synthetic-mix",
        programs: mixed,
        faults: FaultParams::default(),
    });
    classes.push(WorkloadClass {
        name: "phased",
        programs: (0..3)
            .map(|seed| PhasedSpec::int_fp_mem(300, 3, 3000 + seed).generate())
            .collect(),
        faults: FaultParams::default(),
    });
    classes.push(WorkloadClass {
        name: "kernels",
        programs: kernels::suite(),
        faults: FaultParams::default(),
    });
    classes.push(WorkloadClass {
        name: "faulty",
        programs: (0..3)
            .map(|seed| PhasedSpec::int_fp_mem(300, 3, 3000 + seed).generate())
            .collect(),
        faults: faulty_params(),
    });
    classes
}

/// Name of the bit-sliced lane-kernel throughput class.
pub const LANES_CLASS: &str = "lanes-synthetic-mix";

/// Lanes the lane-kernel class steps by default (a multiple of 64).
pub const DEFAULT_LANES: usize = 256;

/// Stimulus trace length for the lanes class (replayed cyclically).
const LANE_TRACE_CYCLES: u32 = 512;

/// Kernel steps per timed pass of the lanes class.
const LANE_PASS_CYCLES: u64 = 4_096;

/// The lanes class's demand stimulus: the four named synthetic mixes
/// phased per lane with per-lane offsets ([`LaneTraceSpec`]'s
/// `synthetic_mix`), pre-transposed into bit planes. Deterministic, so
/// numbers are comparable across builds.
pub fn lanes_stimulus(cfg: &SimConfig, lanes: usize) -> LaneStimulus {
    let mut spec = LaneTraceSpec::synthetic_mix(LANE_TRACE_CYCLES, 0xA5E5);
    spec.queue_len = spec.queue_len.min(cfg.queue_size as u8);
    let mut stim = LaneStimulus::new(
        lanes,
        LANE_TRACE_CYCLES as usize,
        cfg.queue_size,
        cfg.fabric.rfu_slots,
    );
    let mut row = [UnitType::IntAlu; 7];
    for lane in 0..lanes {
        for (cycle, r) in spec.generate_lane(lane).iter().enumerate() {
            let n = r.len as usize;
            for (e, slot) in row[..n].iter_mut().enumerate() {
                *slot = UnitType::from_index(r.types[e] as usize).expect("valid type index");
            }
            stim.set_row(lane, cycle, &row[..n]);
        }
    }
    stim
}

/// Measure the bit-sliced lane kernel: `lanes` synthetic-mix machines
/// stepped in lockstep until `min_wall` fills (at least one pass). The
/// headline `cycles_per_sec` is **aggregate lane-cycles** per
/// wall-second — comparable against the scalar `synthetic-mix` class's
/// per-machine rate to read off the kernel's speedup. Lanes retire no
/// instructions (they run the steering loop, not the pipeline), so
/// `retired` is 0 and `programs` counts lanes.
pub fn measure_lanes(cfg: &SimConfig, lanes: usize, min_wall: Duration) -> ClassResult {
    let stim = lanes_stimulus(cfg, lanes);
    let mut runner = LaneRunner::new(cfg, stim).expect("lane-capable config");
    let mut passes = 0u64;
    let started = Instant::now();
    loop {
        runner.run(LANE_PASS_CYCLES);
        passes += 1;
        if started.elapsed() >= min_wall {
            break;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let sum = runner.summary();
    assert!(
        sum.loads_started > 0 && sum.selection_changes > 0,
        "lanes class must exercise steering, not just idle lanes"
    );
    ClassResult {
        name: LANES_CLASS.to_string(),
        programs: lanes,
        passes,
        sim_cycles: sum.lane_cycles,
        retired: 0,
        wall_seconds: wall,
        cycles_per_sec: sum.lane_cycles as f64 / wall,
        instrs_per_sec: 0.0,
    }
}

/// The fault environment of the `faulty` throughput class (and the
/// `rsp-timeline --demo` run): every tenth load fails, an upset strikes
/// every ~50 cycles, scrub sweeps every 64.
pub fn faulty_params() -> FaultParams {
    FaultParams {
        seed: 0xF0A17,
        load_failure_ppm: 100_000,
        upset_ppm: 20_000,
        scrub_interval: 64,
        dead_slots: Vec::new(),
    }
}

/// Measured throughput of one class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassResult {
    /// Class name.
    pub name: String,
    /// Programs per pass.
    pub programs: usize,
    /// Full passes over the program set.
    pub passes: u64,
    /// Simulated cycles accumulated over all passes.
    pub sim_cycles: u64,
    /// Instructions retired over all passes.
    pub retired: u64,
    /// Wall-clock seconds spent stepping (includes per-program machine
    /// resets — that is part of the batched driver's cost).
    pub wall_seconds: f64,
    /// The headline number: simulated cycles per wall-second.
    pub cycles_per_sec: f64,
    /// Retired instructions per wall-second.
    pub instrs_per_sec: f64,
}

/// The whole report, serialised to `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// True when produced with `--quick` (single pass; CI smoke only —
    /// numbers are noisy).
    pub quick: bool,
    /// Steering policy of the measured configuration.
    pub policy: String,
    /// Per-class results.
    pub classes: Vec<ClassResult>,
}

impl ThroughputReport {
    /// The result for a class, by name.
    pub fn class(&self, name: &str) -> Option<&ClassResult> {
        self.classes.iter().find(|c| c.name == name)
    }
}

/// Run one class until at least `min_wall` of measured stepping has
/// accumulated (always at least one full pass).
pub fn measure_class(cfg: &SimConfig, class: &WorkloadClass, min_wall: Duration) -> ClassResult {
    let mut cfg = cfg.clone();
    cfg.fabric.faults = class.faults.clone();
    let mut runner = BatchRunner::new(cfg).expect("valid config");
    let mut sim_cycles = 0u64;
    let mut retired = 0u64;
    let mut passes = 0u64;
    let started = Instant::now();
    loop {
        for p in &class.programs {
            let report: SimReport = runner.run(p, CYCLE_BUDGET).expect("valid program");
            assert!(
                report.halted,
                "{} hit the cycle budget in class {}",
                p.name, class.name
            );
            sim_cycles += report.cycles;
            retired += report.retired;
        }
        passes += 1;
        if started.elapsed() >= min_wall {
            break;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    ClassResult {
        name: class.name.to_string(),
        programs: class.programs.len(),
        passes,
        sim_cycles,
        retired,
        wall_seconds: wall,
        cycles_per_sec: sim_cycles as f64 / wall,
        instrs_per_sec: retired as f64 / wall,
    }
}

/// Measure every class under `cfg`. `min_wall` is per class.
pub fn measure_all(cfg: &SimConfig, min_wall: Duration, quick: bool) -> ThroughputReport {
    let classes = workload_classes()
        .iter()
        .map(|c| measure_class(cfg, c, min_wall))
        .collect();
    ThroughputReport {
        quick,
        policy: format!("{:?}", cfg.policy),
        classes,
    }
}

/// The throughput harness as a [`Sweep`]: one point per workload class,
/// keyed by class name, run **serially** (each point times wall clock —
/// concurrent points would contend for the host CPU and corrupt the
/// measurement). Rows here are *not* pure functions of their keys (they
/// carry timing), so unlike the simulation sweeps the merged artifact is
/// not byte-stable across reruns — but journaling still buys
/// checkpoint/resume: a killed run resumes without re-measuring finished
/// classes. For the same reason this sweep is **not cacheable**
/// ([`Sweep::cacheable`] returns `false`): a wall-clock measurement
/// taken on one host, at one load, has no business being served from a
/// content-addressed store to a different run — resume within a run is
/// the right tool, cross-run reuse is not.
pub struct ThroughputSweep {
    classes: Vec<WorkloadClass>,
    cfg: SimConfig,
    min_wall: Duration,
    quick: bool,
    lanes: usize,
}

impl ThroughputSweep {
    /// All standard classes under `cfg`, `min_wall` per class. The
    /// lane-kernel class runs with [`DEFAULT_LANES`] lanes; see
    /// [`ThroughputSweep::with_lanes`].
    pub fn new(cfg: SimConfig, min_wall: Duration, quick: bool) -> ThroughputSweep {
        ThroughputSweep {
            classes: workload_classes(),
            cfg,
            min_wall,
            quick,
            lanes: DEFAULT_LANES,
        }
    }

    /// Set the lane count of the lane-kernel class (must be a positive
    /// multiple of 64 — [`rsp_sim::lanes::LaneBatch`] enforces it).
    pub fn with_lanes(mut self, lanes: usize) -> ThroughputSweep {
        self.lanes = lanes;
        self
    }
}

impl Sweep for ThroughputSweep {
    type Point = String;
    type Row = ClassResult;

    fn name(&self) -> &'static str {
        "throughput"
    }

    fn points(&self) -> Vec<String> {
        let mut pts: Vec<String> = self.classes.iter().map(|c| c.name.to_string()).collect();
        pts.push(LANES_CLASS.to_string());
        pts
    }

    fn key(&self, point: &String) -> String {
        point.clone()
    }

    fn run_point(&self, point: &String) -> ClassResult {
        if point == LANES_CLASS {
            return measure_lanes(&self.cfg, self.lanes, self.min_wall);
        }
        let class = self
            .classes
            .iter()
            .find(|c| c.name == point)
            .expect("point references a standard class");
        measure_class(&self.cfg, class, self.min_wall)
    }

    fn parallel(&self) -> bool {
        false
    }

    // Rows are wall-clock measurements, not pure functions of the
    // point — see the struct doc for why reusing them across runs via
    // the artifact store would be wrong.
    fn cacheable(&self) -> bool {
        false
    }

    fn verify(&self, rows: &[ClassResult]) -> Result<(), String> {
        for r in rows {
            if r.cycles_per_sec <= 0.0 || !r.cycles_per_sec.is_finite() || r.sim_cycles == 0 {
                return Err(format!("class {} measured no progress", r.name));
            }
        }
        Ok(())
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_throughput.json")
    }

    fn render_artifact(&self, rows: &[ClassResult]) -> Result<String, SweepError> {
        let report = ThroughputReport {
            quick: self.quick,
            policy: format!("{:?}", self.cfg.policy),
            classes: rows.to_vec(),
        };
        serde_json::to_string_pretty(&report).map_err(|e| SweepError::Encode {
            key: "<artifact>".into(),
            msg: e.to_string(),
        })
    }

    fn report(&self, rows: &[ClassResult]) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<16} {:>9} {:>7} {:>14} {:>12} {:>15}",
            "class", "programs", "passes", "sim cycles", "wall (s)", "cycles/sec"
        );
        for c in rows {
            let _ = writeln!(
                s,
                "{:<16} {:>9} {:>7} {:>14} {:>12.3} {:>15.0}",
                c.name, c.programs, c.passes, c.sim_cycles, c.wall_seconds, c.cycles_per_sec
            );
        }
        // Lane-kernel headline: aggregate lane-cycles/sec over the
        // scalar per-machine rate on the same synthetic-mix demand.
        let scalar = rows.iter().find(|c| c.name == "synthetic-mix");
        let lanes = rows.iter().find(|c| c.name == LANES_CLASS);
        if let (Some(scalar), Some(lanes)) = (scalar, lanes) {
            let _ = writeln!(
                s,
                "lanes speedup: {:.1}x aggregate over scalar synthetic-mix ({} lanes)",
                lanes.cycles_per_sec / scalar.cycles_per_sec,
                lanes.programs
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_deterministic_and_halt() {
        let a = workload_classes();
        let b = workload_classes();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.programs, y.programs, "class {} not deterministic", x.name);
            assert!(!x.programs.is_empty());
        }
    }

    #[test]
    fn quick_measurement_produces_sane_numbers() {
        // One pass over the smallest class; just shape-checks the plumbing.
        let cfg = SimConfig::default();
        let class = WorkloadClass {
            name: "smoke",
            programs: vec![kernels::dot_product(16)],
            faults: FaultParams::default(),
        };
        let r = measure_class(&cfg, &class, Duration::ZERO);
        assert_eq!(r.passes, 1);
        assert!(r.sim_cycles > 0);
        assert!(r.cycles_per_sec > 0.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("cycles_per_sec"));
    }
}

//! Offline timeline analysis of a telemetry event log.
//!
//! Replays a JSONL event stream (one [`Stamped`] event per line, as
//! written by [`rsp_obs::RingSink::to_jsonl`]) into:
//!
//! * a **fault-episode reconstruction** — each upset's
//!   inject → detect → recover arc, with latency distributions;
//! * a **per-configuration selection-share table** — what fraction of
//!   steering decisions chose each candidate;
//! * **stall-episode counts** per attributed cause;
//! * a machine-readable [`TimelineReport`] (serialised to JSON for CI
//!   diffing) and a human-readable rendering (`rsp-timeline` binary).
//!
//! The analyzer is deliberately decoupled from the simulator: it sees
//! only the event log, so it also works on logs captured from earlier
//! runs or other tools, and it doubles as an end-to-end check that the
//! event stream alone carries enough information to reconstruct what
//! the machine did (the telemetry integration tests diff its episode
//! count against [`rsp_sim::FaultStats::upsets_detected`]).

use rsp_obs::{Event, FleetEntry, FleetEvent, StallCause, Stamped, MAX_CANDIDATES};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One reconstructed upset episode: inject → detect (scrub) → recover
/// (reload placed on the same span head).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FaultEpisode {
    /// Span head slot the upset struck.
    pub head: u32,
    /// Cycle the upset was injected.
    pub injected_at: u64,
    /// Cycle scrub detected (and cleared) the corruption, if it did
    /// before the log ended.
    pub detected_at: Option<u64>,
    /// Cycle a replacement load was placed on the span, if any.
    pub recovered_at: Option<u64>,
}

impl FaultEpisode {
    /// Inject-to-detect latency in cycles, when detected.
    pub fn detect_latency(&self) -> Option<u64> {
        self.detected_at.map(|d| d - self.injected_at)
    }

    /// Inject-to-recover latency in cycles, when recovered.
    pub fn recover_latency(&self) -> Option<u64> {
        self.recovered_at.map(|r| r - self.injected_at)
    }
}

/// Min/mean/max summary of a latency sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
}

impl LatencySummary {
    fn of(samples: impl Iterator<Item = u64>) -> LatencySummary {
        let mut s = LatencySummary {
            min: u64::MAX,
            ..LatencySummary::default()
        };
        let mut sum = 0u64;
        for v in samples {
            s.count += 1;
            s.min = s.min.min(v);
            s.max = s.max.max(v);
            sum += v;
        }
        if s.count == 0 {
            s.min = 0;
        } else {
            s.mean = sum as f64 / s.count as f64;
        }
        s
    }
}

/// Selection share of one steering candidate.
#[derive(Debug, Clone, Serialize)]
pub struct SelectionShare {
    /// Candidate label (`current` or `configN`).
    pub candidate: String,
    /// Decisions that chose this candidate.
    pub decisions: u64,
    /// Share of all decisions, in percent.
    pub share_pct: f64,
}

/// Stall-episode count for one attributed cause.
#[derive(Debug, Clone, Serialize)]
pub struct StallShare {
    /// The attributed cause.
    pub cause: String,
    /// Episodes (cause *changes*, not cycles) attributed to it.
    pub episodes: u64,
}

/// The analyzer's output: everything the `rsp-timeline` binary prints,
/// in machine-readable form.
#[derive(Debug, Clone, Serialize)]
pub struct TimelineReport {
    /// Events analysed.
    pub events: u64,
    /// First event's cycle (0 for an empty log).
    pub first_cycle: u64,
    /// Last event's cycle (0 for an empty log).
    pub last_cycle: u64,
    /// Steering decisions seen.
    pub decisions: u64,
    /// Decisions that changed the selection.
    pub selection_changes: u64,
    /// Per-candidate selection shares (percentages sum to 100 whenever
    /// any decision was logged).
    pub selection_shares: Vec<SelectionShare>,
    /// Reconfiguration traffic: loads started / placed / failed /
    /// retried / deferred by backoff, and dead-slot skips.
    pub loads_started: u64,
    /// Loads that completed and passed readback.
    pub loads_placed: u64,
    /// Loads that consumed their latency but failed readback.
    pub loads_failed: u64,
    /// Load retries after a failure.
    pub load_retries: u64,
    /// Load attempts deferred by failure backoff.
    pub backoff_deferrals: u64,
    /// Load attempts skipped because the span is permanently dead.
    pub dead_slot_skips: u64,
    /// Units re-placed into an alternative healthy span around dead slots.
    pub load_replacements: u64,
    /// Fault-aware capacity re-rank transitions (nominal ↔ effective view).
    pub capacity_reranks: u64,
    /// Largest capacity loss (units below nominal) any re-rank reported.
    pub max_capacity_lost: u64,
    /// Cycles spent in the degraded (effective-capacity) view, summed
    /// over degraded→recovered re-rank arcs that closed within the log.
    pub degraded_cycles: u64,
    /// Scrub passes seen.
    pub scrub_passes: u64,
    /// Reconstructed upset episodes, in injection order.
    pub episodes: Vec<FaultEpisode>,
    /// Episodes whose corruption was detected by scrub.
    pub episodes_detected: u64,
    /// Episodes recovered (replacement load placed) within the log.
    pub episodes_recovered: u64,
    /// Inject-to-detect latency distribution.
    pub detect_latency: LatencySummary,
    /// Inject-to-recover latency distribution.
    pub recover_latency: LatencySummary,
    /// Stall episodes per attributed cause.
    pub stalls: Vec<StallShare>,
}

/// A malformed event log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// The underlying JSON error, rendered.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSONL event log (blank lines are skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<Stamped>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev: Stamped = serde_json::from_str(line).map_err(|e| ParseError {
            line: i + 1,
            message: e.to_string(),
        })?;
        events.push(ev);
    }
    Ok(events)
}

/// Replay `events` (cycle order expected, as logged) into a report.
pub fn analyze(events: &[Stamped]) -> TimelineReport {
    let mut decisions = 0u64;
    let mut selection_changes = 0u64;
    let mut chosen_counts = [0u64; MAX_CANDIDATES];
    let mut loads_started = 0u64;
    let mut loads_placed = 0u64;
    let mut loads_failed = 0u64;
    let mut load_retries = 0u64;
    let mut backoff_deferrals = 0u64;
    let mut dead_slot_skips = 0u64;
    let mut load_replacements = 0u64;
    let mut capacity_reranks = 0u64;
    let mut max_capacity_lost = 0u64;
    let mut degraded_cycles = 0u64;
    let mut degraded_since: Option<u64> = None;
    let mut scrub_passes = 0u64;
    let mut stall_counts = [0u64; StallCause::ALL.len()];
    let mut episodes: Vec<FaultEpisode> = Vec::new();

    for ev in events {
        match ev.event {
            Event::SteeringDecision {
                chosen, changed, ..
            } => {
                decisions += 1;
                selection_changes += changed as u64;
                if let Some(c) = chosen_counts.get_mut(chosen as usize) {
                    *c += 1;
                }
            }
            Event::LoadStarted { .. } => loads_started += 1,
            Event::LoadRetry { .. } => load_retries += 1,
            Event::LoadBackoffDeferred { .. } => backoff_deferrals += 1,
            Event::DeadSlotSkip { .. } => dead_slot_skips += 1,
            Event::LoadFailed { .. } => loads_failed += 1,
            Event::LoadPlaced { head, .. } => {
                loads_placed += 1;
                // A placed load on a detected-but-unrecovered episode's
                // span closes its recovery arc.
                if let Some(e) = episodes
                    .iter_mut()
                    .find(|e| e.head == head && e.detected_at.is_some() && e.recovered_at.is_none())
                {
                    e.recovered_at = Some(ev.cycle);
                }
            }
            Event::UpsetInjected { head, .. } => episodes.push(FaultEpisode {
                head,
                injected_at: ev.cycle,
                detected_at: None,
                recovered_at: None,
            }),
            Event::UpsetDetected { head, .. } => {
                // Oldest-first: the fabric never double-corrupts a span,
                // so at most one episode per head is open at a time.
                if let Some(e) = episodes
                    .iter_mut()
                    .find(|e| e.head == head && e.detected_at.is_none())
                {
                    e.detected_at = Some(ev.cycle);
                }
            }
            Event::LoadReplaced { .. } => load_replacements += 1,
            Event::CapacityRerank { degraded, lost } => {
                capacity_reranks += 1;
                max_capacity_lost = max_capacity_lost.max(lost as u64);
                if degraded {
                    degraded_since.get_or_insert(ev.cycle);
                } else if let Some(since) = degraded_since.take() {
                    degraded_cycles += ev.cycle - since;
                }
            }
            Event::ScrubPass { .. } => scrub_passes += 1,
            Event::Stall { cause } => stall_counts[cause as usize] += 1,
        }
    }

    let selection_shares = chosen_counts
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(i, &n)| SelectionShare {
            candidate: if i == 0 {
                "current".to_string()
            } else {
                format!("config{i}")
            },
            decisions: n,
            share_pct: 100.0 * n as f64 / decisions.max(1) as f64,
        })
        .collect();
    let stalls = StallCause::ALL
        .iter()
        .zip(stall_counts)
        .filter(|&(_, n)| n > 0)
        .map(|(c, n)| StallShare {
            cause: c.name().to_string(),
            episodes: n,
        })
        .collect();
    TimelineReport {
        events: events.len() as u64,
        first_cycle: events.first().map_or(0, |e| e.cycle),
        last_cycle: events.last().map_or(0, |e| e.cycle),
        decisions,
        selection_changes,
        selection_shares,
        loads_started,
        loads_placed,
        loads_failed,
        load_retries,
        backoff_deferrals,
        dead_slot_skips,
        load_replacements,
        capacity_reranks,
        max_capacity_lost,
        degraded_cycles,
        scrub_passes,
        episodes_detected: episodes.iter().filter(|e| e.detected_at.is_some()).count() as u64,
        episodes_recovered: episodes.iter().filter(|e| e.recovered_at.is_some()).count() as u64,
        detect_latency: LatencySummary::of(episodes.iter().filter_map(|e| e.detect_latency())),
        recover_latency: LatencySummary::of(episodes.iter().filter_map(|e| e.recover_latency())),
        episodes,
        stalls,
    }
}

impl TimelineReport {
    /// Serialise for CI diffing.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Human-readable rendering: summary, selection-share table, stall
    /// table, and the fault-episode timeline.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} events over cycles {}..{}",
            self.events, self.first_cycle, self.last_cycle
        );
        let _ = writeln!(
            s,
            "steering: {} decisions, {} selection changes",
            self.decisions, self.selection_changes
        );
        if !self.selection_shares.is_empty() {
            let _ = writeln!(s, "\nselection shares:");
            let _ = writeln!(
                s,
                "  {:<10} {:>10} {:>8}",
                "candidate", "decisions", "share"
            );
            for sh in &self.selection_shares {
                let _ = writeln!(
                    s,
                    "  {:<10} {:>10} {:>7.2}%",
                    sh.candidate, sh.decisions, sh.share_pct
                );
            }
        }
        let _ = writeln!(
            s,
            "\nreconfiguration: {} started, {} placed, {} failed, {} retries, \
             {} backoff deferrals, {} dead-slot skips",
            self.loads_started,
            self.loads_placed,
            self.loads_failed,
            self.load_retries,
            self.backoff_deferrals,
            self.dead_slot_skips
        );
        if self.load_replacements > 0 || self.capacity_reranks > 0 {
            let _ = writeln!(
                s,
                "capacity: {} dead-span re-placements, {} re-rank transitions \
                 (max {} units lost, {} degraded cycles)",
                self.load_replacements,
                self.capacity_reranks,
                self.max_capacity_lost,
                self.degraded_cycles
            );
        }
        if !self.stalls.is_empty() {
            let _ = writeln!(s, "\nstall episodes:");
            for st in &self.stalls {
                let _ = writeln!(s, "  {:<20} {:>8}", st.cause, st.episodes);
            }
        }
        let _ = writeln!(
            s,
            "\nfault episodes: {} injected, {} detected, {} recovered ({} scrub passes)",
            self.episodes.len(),
            self.episodes_detected,
            self.episodes_recovered,
            self.scrub_passes
        );
        if self.detect_latency.count > 0 {
            let _ = writeln!(
                s,
                "  inject→detect  latency: min {} mean {:.1} max {} cycles",
                self.detect_latency.min, self.detect_latency.mean, self.detect_latency.max
            );
        }
        if self.recover_latency.count > 0 {
            let _ = writeln!(
                s,
                "  inject→recover latency: min {} mean {:.1} max {} cycles",
                self.recover_latency.min, self.recover_latency.mean, self.recover_latency.max
            );
        }
        const MAX_LISTED: usize = 100;
        for e in self.episodes.iter().take(MAX_LISTED) {
            let detect = match e.detected_at {
                Some(d) => format!("detected @{d} (+{})", d - e.injected_at),
                None => "undetected".to_string(),
            };
            let recover = match e.recovered_at {
                Some(r) => format!("recovered @{r} (+{})", r - e.injected_at),
                None => "unrecovered".to_string(),
            };
            let _ = writeln!(
                s,
                "  upset @{:<8} head {:<2} {detect:<24} {recover}",
                e.injected_at, e.head
            );
        }
        if self.episodes.len() > MAX_LISTED {
            let _ = writeln!(
                s,
                "  … {} more (full list in the JSON report)",
                self.episodes.len() - MAX_LISTED
            );
        }
        s
    }
}

/// One tenant's reconstructed lifecycle arc from a flight-recorder
/// dump: admitted → activated → quanta → completed (or failed). Fields
/// are `Option` because a bounded ring may have evicted the arc's
/// early entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FleetTenantArc {
    /// Server-assigned tenant id.
    pub tenant: u64,
    /// Tick the tenant was admitted, when still in the ring.
    pub admitted_at: Option<u64>,
    /// Tick the tenant activated, when still in the ring.
    pub activated_at: Option<u64>,
    /// Ticks spent queued, as stamped by the activation entry.
    pub queued_ticks: Option<u64>,
    /// Quanta recorded for this tenant.
    pub quanta: u64,
    /// Cycles stepped across those quanta.
    pub cycles: u64,
    /// Tick the tenant completed, when it did within the ring.
    pub completed_at: Option<u64>,
    /// Whether the tenant halted (vs. exhausting its budget).
    pub halted: Option<bool>,
    /// True iff activation failed server-side.
    pub failed: bool,
}

/// Count per shed reason or trigger kind in a flight dump.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FleetShare {
    /// The reason/kind label (`queue_full`, `shed_storm`, …).
    pub label: String,
    /// Entries with this label.
    pub count: u64,
}

/// The fleet analyzer's output: what a flight-recorder dump says
/// happened around the anomaly that triggered it.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Entries analysed.
    pub entries: u64,
    /// First entry's engine tick (0 for an empty dump).
    pub first_tick: u64,
    /// Last entry's engine tick (0 for an empty dump).
    pub last_tick: u64,
    /// Admissions in the ring.
    pub admitted: u64,
    /// Activations in the ring.
    pub activated: u64,
    /// Completions in the ring.
    pub completed: u64,
    /// Server-side activation failures.
    pub failed: u64,
    /// Sheds by reason (only reasons that occurred).
    pub sheds: Vec<FleetShare>,
    /// Anomaly triggers by kind, in ring order.
    pub triggers: Vec<FleetShare>,
    /// Queue-residency distribution over activation entries.
    pub queued_ticks: LatencySummary,
    /// Cycles-per-quantum distribution over quantum entries.
    pub quantum_cycles: LatencySummary,
    /// Per-tenant lifecycle arcs, in id order.
    pub tenants: Vec<FleetTenantArc>,
}

/// Replay a flight-recorder dump (tick order expected, as recorded)
/// into a [`FleetReport`].
pub fn analyze_fleet(entries: &[FleetEntry]) -> FleetReport {
    let mut admitted = 0u64;
    let mut activated = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut sheds: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut triggers: Vec<FleetShare> = Vec::new();
    let mut queued = Vec::new();
    let mut quanta = Vec::new();
    let mut tenants: BTreeMap<u64, FleetTenantArc> = BTreeMap::new();
    fn arc(tenants: &mut BTreeMap<u64, FleetTenantArc>, id: u64) -> &mut FleetTenantArc {
        tenants.entry(id).or_insert(FleetTenantArc {
            tenant: id,
            ..FleetTenantArc::default()
        })
    }

    for e in entries {
        match e.event {
            FleetEvent::Admitted => {
                admitted += 1;
                if let Some(id) = e.tenant {
                    arc(&mut tenants, id).admitted_at = Some(e.tick);
                }
            }
            FleetEvent::Shed { reason } => {
                *sheds.entry(reason.name()).or_insert(0) += 1;
            }
            FleetEvent::Activated { queued_ticks } => {
                activated += 1;
                queued.push(queued_ticks);
                if let Some(id) = e.tenant {
                    let t = arc(&mut tenants, id);
                    t.activated_at = Some(e.tick);
                    t.queued_ticks = Some(queued_ticks);
                }
            }
            FleetEvent::ActivationFailed => {
                failed += 1;
                if let Some(id) = e.tenant {
                    arc(&mut tenants, id).failed = true;
                }
            }
            FleetEvent::Quantum { cycles } => {
                quanta.push(cycles);
                if let Some(id) = e.tenant {
                    let t = arc(&mut tenants, id);
                    t.quanta += 1;
                    t.cycles += cycles;
                }
            }
            FleetEvent::Completed { cycles, halted } => {
                completed += 1;
                if let Some(id) = e.tenant {
                    let t = arc(&mut tenants, id);
                    t.completed_at = Some(e.tick);
                    t.halted = Some(halted);
                    t.cycles = t.cycles.max(cycles);
                }
            }
            FleetEvent::Trigger { kind } => {
                if let Some(t) = triggers.iter_mut().find(|t| t.label == kind.name()) {
                    t.count += 1;
                } else {
                    triggers.push(FleetShare {
                        label: kind.name().to_string(),
                        count: 1,
                    });
                }
            }
        }
    }

    FleetReport {
        entries: entries.len() as u64,
        first_tick: entries.first().map_or(0, |e| e.tick),
        last_tick: entries.last().map_or(0, |e| e.tick),
        admitted,
        activated,
        completed,
        failed,
        sheds: sheds
            .into_iter()
            .map(|(label, count)| FleetShare {
                label: label.to_string(),
                count,
            })
            .collect(),
        triggers,
        queued_ticks: LatencySummary::of(queued.into_iter()),
        quantum_cycles: LatencySummary::of(quanta.into_iter()),
        tenants: tenants.into_values().collect(),
    }
}

impl FleetReport {
    /// Serialise for CI diffing.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Human-readable rendering: summary, shed/trigger tables, and the
    /// per-tenant lifecycle arcs.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} flight entries over ticks {}..{}",
            self.entries, self.first_tick, self.last_tick
        );
        let _ = writeln!(
            s,
            "fleet: {} admitted, {} activated, {} completed, {} failed",
            self.admitted, self.activated, self.completed, self.failed
        );
        if !self.sheds.is_empty() {
            let _ = writeln!(s, "\nsheds:");
            for sh in &self.sheds {
                let _ = writeln!(s, "  {:<12} {:>8}", sh.label, sh.count);
            }
        }
        if !self.triggers.is_empty() {
            let _ = writeln!(s, "\nanomaly triggers:");
            for t in &self.triggers {
                let _ = writeln!(s, "  {:<16} {:>8}", t.label, t.count);
            }
        }
        if self.queued_ticks.count > 0 {
            let _ = writeln!(
                s,
                "\nqueue residency: min {} mean {:.1} max {} ticks over {} activations",
                self.queued_ticks.min,
                self.queued_ticks.mean,
                self.queued_ticks.max,
                self.queued_ticks.count
            );
        }
        if self.quantum_cycles.count > 0 {
            let _ = writeln!(
                s,
                "quanta: min {} mean {:.1} max {} cycles over {} quanta",
                self.quantum_cycles.min,
                self.quantum_cycles.mean,
                self.quantum_cycles.max,
                self.quantum_cycles.count
            );
        }
        const MAX_LISTED: usize = 100;
        if !self.tenants.is_empty() {
            let _ = writeln!(s, "\ntenant arcs:");
        }
        for t in self.tenants.iter().take(MAX_LISTED) {
            let admitted = t
                .admitted_at
                .map_or("admit ?".to_string(), |a| format!("admit @{a}"));
            let activated = match (t.activated_at, t.queued_ticks) {
                (Some(a), Some(q)) => format!("active @{a} (queued {q})"),
                (Some(a), None) => format!("active @{a}"),
                _ => "never active".to_string(),
            };
            let end = if t.failed {
                "FAILED".to_string()
            } else {
                match (t.completed_at, t.halted) {
                    (Some(c), Some(true)) => format!("done @{c} (halted)"),
                    (Some(c), _) => format!("done @{c} (budget)"),
                    _ => "unfinished".to_string(),
                }
            };
            let _ = writeln!(
                s,
                "  t{:<5} {admitted:<12} {activated:<26} {:>6} quanta {:>10} cycles  {end}",
                t.tenant, t.quanta, t.cycles
            );
        }
        if self.tenants.len() > MAX_LISTED {
            let _ = writeln!(
                s,
                "  … {} more (full list in the JSON report)",
                self.tenants.len() - MAX_LISTED
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_isa::units::UnitType;

    fn ev(cycle: u64, event: Event) -> Stamped {
        Stamped { cycle, event }
    }

    #[test]
    fn empty_log_analyzes_to_zeroes() {
        let r = analyze(&[]);
        assert_eq!(r.events, 0);
        assert!(r.episodes.is_empty());
        assert!(r.selection_shares.is_empty());
        assert_eq!(r.detect_latency.count, 0);
        assert!(r.render().contains("0 events"));
    }

    #[test]
    fn reconstructs_episode_arc() {
        let u = UnitType::IntAlu;
        let log = [
            ev(10, Event::UpsetInjected { head: 3, unit: u }),
            ev(64, Event::ScrubPass { detected: 1 }),
            ev(64, Event::UpsetDetected { head: 3, unit: u }),
            ev(70, Event::LoadStarted { head: 3, unit: u }),
            ev(102, Event::LoadPlaced { head: 3, unit: u }),
        ];
        let r = analyze(&log);
        assert_eq!(r.episodes.len(), 1);
        assert_eq!(r.episodes_detected, 1);
        assert_eq!(r.episodes_recovered, 1);
        let e = r.episodes[0];
        assert_eq!(e.detect_latency(), Some(54));
        assert_eq!(e.recover_latency(), Some(92));
        assert_eq!(r.detect_latency.mean, 54.0);
        assert_eq!(r.scrub_passes, 1);
        assert!(r.render().contains("detected @64 (+54)"));
    }

    #[test]
    fn placed_load_without_detection_is_not_recovery() {
        let u = UnitType::Lsu;
        let log = [
            ev(5, Event::UpsetInjected { head: 0, unit: u }),
            // A load placed on the same head before scrub detected the
            // corruption belongs to ordinary steering, not recovery.
            ev(9, Event::LoadPlaced { head: 0, unit: u }),
        ];
        let r = analyze(&log);
        assert_eq!(r.episodes_detected, 0);
        assert_eq!(r.episodes_recovered, 0);
        assert_eq!(r.loads_placed, 1);
    }

    #[test]
    fn selection_shares_sum_to_100() {
        let mut log = Vec::new();
        for i in 0..10u64 {
            log.push(ev(
                i,
                Event::SteeringDecision {
                    scores: [0; MAX_CANDIDATES],
                    candidates: 4,
                    chosen: (i % 3) as u8,
                    changed: i % 3 != 0,
                },
            ));
        }
        let r = analyze(&log);
        assert_eq!(r.decisions, 10);
        let total: f64 = r.selection_shares.iter().map(|s| s.share_pct).sum();
        assert!((total - 100.0).abs() < 1e-9, "shares sum to {total}");
        assert_eq!(r.selection_shares.len(), 3);
    }

    #[test]
    fn jsonl_round_trip_through_parser() {
        let u = UnitType::FpMdu;
        let log = [
            ev(
                1,
                Event::Stall {
                    cause: StallCause::QueueEmpty,
                },
            ),
            ev(2, Event::UpsetInjected { head: 7, unit: u }),
        ];
        let text: String = log
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, log);
        assert!(parse_jsonl("{not json}\n").is_err());
        assert!(parse_jsonl("\n\n").unwrap().is_empty());
    }

    #[test]
    fn capacity_events_feed_the_report() {
        let u = UnitType::Lsu;
        let log = [
            ev(
                8,
                Event::CapacityRerank {
                    degraded: true,
                    lost: 3,
                },
            ),
            ev(
                10,
                Event::LoadReplaced {
                    from_head: 0,
                    to_head: 6,
                    unit: u,
                },
            ),
            ev(10, Event::LoadStarted { head: 6, unit: u }),
            ev(
                40,
                Event::CapacityRerank {
                    degraded: false,
                    lost: 0,
                },
            ),
        ];
        let r = analyze(&log);
        assert_eq!(r.load_replacements, 1);
        assert_eq!(r.capacity_reranks, 2);
        assert_eq!(r.max_capacity_lost, 3);
        assert_eq!(r.degraded_cycles, 32);
        let text = r.render();
        assert!(text.contains("1 dead-span re-placements"), "{text}");
        assert!(text.contains("max 3 units lost"), "{text}");
    }

    #[test]
    fn report_serialises() {
        let r = analyze(&[ev(
            3,
            Event::LoadStarted {
                head: 1,
                unit: UnitType::IntMdu,
            },
        )]);
        let json = r.to_json();
        assert!(json.contains("loads_started"));
        assert!(json.contains("\"events\": 1"));
    }

    fn fe(tick: u64, tenant: Option<u64>, event: FleetEvent) -> FleetEntry {
        FleetEntry {
            tick,
            tenant,
            event,
        }
    }

    #[test]
    fn fleet_analyzer_reconstructs_tenant_arcs() {
        use rsp_obs::{ShedKind, TriggerKind};
        let log = [
            fe(1, Some(0), FleetEvent::Admitted),
            fe(1, Some(1), FleetEvent::Admitted),
            fe(
                2,
                None,
                FleetEvent::Shed {
                    reason: ShedKind::QueueFull,
                },
            ),
            fe(
                2,
                None,
                FleetEvent::Shed {
                    reason: ShedKind::QueueFull,
                },
            ),
            fe(
                2,
                None,
                FleetEvent::Shed {
                    reason: ShedKind::StepLag,
                },
            ),
            fe(3, Some(0), FleetEvent::Activated { queued_ticks: 2 }),
            fe(3, Some(1), FleetEvent::Activated { queued_ticks: 2 }),
            fe(3, Some(0), FleetEvent::Quantum { cycles: 256 }),
            fe(3, Some(1), FleetEvent::Quantum { cycles: 256 }),
            fe(4, Some(0), FleetEvent::Quantum { cycles: 100 }),
            fe(
                4,
                Some(0),
                FleetEvent::Completed {
                    cycles: 356,
                    halted: true,
                },
            ),
            fe(
                4,
                None,
                FleetEvent::Trigger {
                    kind: TriggerKind::ShedStorm,
                },
            ),
        ];
        let r = analyze_fleet(&log);
        assert_eq!(r.entries, 12);
        assert_eq!((r.first_tick, r.last_tick), (1, 4));
        assert_eq!(r.admitted, 2);
        assert_eq!(r.activated, 2);
        assert_eq!(r.completed, 1);
        assert_eq!(r.failed, 0);
        assert_eq!(r.sheds.len(), 2);
        let qf = r.sheds.iter().find(|s| s.label == "queue_full").unwrap();
        assert_eq!(qf.count, 2);
        assert_eq!(r.triggers.len(), 1);
        assert_eq!(r.triggers[0].label, "shed_storm");
        assert_eq!(r.queued_ticks.count, 2);
        assert_eq!(r.queued_ticks.mean, 2.0);
        assert_eq!(r.quantum_cycles.count, 3);

        assert_eq!(r.tenants.len(), 2);
        let t0 = &r.tenants[0];
        assert_eq!(t0.tenant, 0);
        assert_eq!(t0.admitted_at, Some(1));
        assert_eq!(t0.queued_ticks, Some(2));
        assert_eq!((t0.quanta, t0.cycles), (2, 356));
        assert_eq!(t0.completed_at, Some(4));
        assert_eq!(t0.halted, Some(true));
        let t1 = &r.tenants[1];
        assert_eq!(t1.completed_at, None, "tenant 1 still running");

        let text = r.render();
        assert!(text.contains("2 admitted"), "{text}");
        assert!(text.contains("queue_full"), "{text}");
        assert!(text.contains("shed_storm"), "{text}");
        assert!(text.contains("done @4 (halted)"), "{text}");
        assert!(text.contains("unfinished"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"queued_ticks\""));
    }

    #[test]
    fn empty_flight_dump_analyzes_to_zeroes() {
        let r = analyze_fleet(&[]);
        assert_eq!(r.entries, 0);
        assert!(r.tenants.is_empty());
        assert!(r.sheds.is_empty());
        assert!(r.render().contains("0 flight entries"));
    }
}

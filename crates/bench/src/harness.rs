//! Run helpers and table formatting for the experiments.

use rsp_core::cem::CemKind;
use rsp_core::select::TieBreak;
use rsp_isa::Program;
use rsp_sim::{PolicyKind, Processor, SimConfig, SimReport};
use serde::{Deserialize, Serialize};

/// Cycle budget for every experiment run: generously above any workload
/// used here; a run hitting it is a bug surfaced by `halted == false`.
pub const CYCLE_BUDGET: u64 = 50_000_000;

/// A named policy/configuration variant for comparison tables.
#[derive(Debug, Clone)]
pub struct PolicySpec {
    /// Row label.
    pub label: String,
    /// The simulator configuration factory (applied to a base config).
    pub cfg: SimConfig,
}

/// The standard comparison set of experiment E1: paper steering, the
/// three static configurations, the FFU-only floor, and the
/// zero-latency demand-driven oracle.
pub fn policies() -> Vec<PolicySpec> {
    let mut out = vec![PolicySpec {
        label: "paper-steering".into(),
        cfg: SimConfig::default(),
    }];
    for i in 0..3 {
        out.push(PolicySpec {
            label: format!("static:Config {}", i + 1),
            cfg: SimConfig::static_on(i),
        });
    }
    out.push(PolicySpec {
        label: "ffu-only (floor)".into(),
        cfg: SimConfig {
            policy: PolicyKind::Static,
            initial_config: None,
            ..SimConfig::default()
        },
    });
    out.push(PolicySpec {
        label: "oracle (demand, 0-lat)".into(),
        cfg: SimConfig::oracle(),
    });
    out
}

/// The paper policy with explicit knob settings (ablation helper).
pub fn paper_policy(tie: TieBreak, cem: CemKind, partial: bool) -> SimConfig {
    SimConfig {
        policy: PolicyKind::Paper {
            tie,
            cem,
            partial,
            fault_aware: false,
        },
        ..SimConfig::default()
    }
}

/// Run one program under one configuration; panics if the cycle budget
/// is hit (experiments must run to completion).
pub fn run_one(cfg: SimConfig, program: &Program) -> SimReport {
    let r = Processor::new(cfg)
        .run(program, CYCLE_BUDGET)
        .expect("valid program");
    assert!(r.halted, "{} exhausted the cycle budget", program.name);
    r
}

/// One result row for serialisation into `results/*.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Workload label.
    pub workload: String,
    /// Policy / variant label.
    pub policy: String,
    /// Retired instructions per cycle.
    pub ipc: f64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Reconfigurations started.
    pub reconfigs: u64,
    /// RFU slots reloaded.
    pub slots_reloaded: u64,
}

impl Row {
    /// Build from a report.
    pub fn from_report(workload: &str, r: &SimReport) -> Row {
        let policy = r.policy.clone();
        Row::labelled(workload, &policy, r)
    }

    /// Build from a report under an explicit policy label (comparison
    /// tables key columns by [`PolicySpec::label`], not by the
    /// simulator's own policy name).
    pub fn labelled(workload: &str, policy: &str, r: &SimReport) -> Row {
        Row {
            workload: workload.into(),
            policy: policy.into(),
            ipc: r.ipc(),
            cycles: r.cycles,
            reconfigs: r.fabric.loads_started,
            slots_reloaded: r.fabric.slots_reloaded,
        }
    }
}

/// Render a pivot table: rows = workloads, columns = policy labels,
/// cells = `select(report)`.
pub fn pivot_table<T: std::fmt::Display>(
    title: &str,
    workloads: &[String],
    columns: &[String],
    cell: impl Fn(&str, &str) -> T,
) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = write!(s, "{:<24}", "workload");
    for c in columns {
        let _ = write!(s, "{c:>24}");
    }
    let _ = writeln!(s);
    for w in workloads {
        let _ = write!(s, "{w:<24}");
        for c in columns {
            let _ = write!(s, "{:>24}", cell(w, c).to_string());
        }
        let _ = writeln!(s);
    }
    s
}

/// Render a pivot table directly from a row set: rows = workloads,
/// columns = `col_labels`, each cell the first row matching
/// `(workload, column)` rendered by `cell` (blank when absent). This is
/// the find-the-matching-row plumbing `evals` and `faults` each used to
/// hand-roll around [`pivot_table`].
pub fn pivot_rows<R, T: std::fmt::Display>(
    title: &str,
    rows: &[R],
    workloads: &[String],
    col_labels: &[String],
    matches: impl Fn(&R, &str, &str) -> bool,
    cell: impl Fn(&R) -> T,
) -> String {
    pivot_table(title, workloads, col_labels, |w, c| {
        rows.iter()
            .find(|r| matches(r, w, c))
            .map(|r| cell(r).to_string())
            .unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_workloads::kernels;

    #[test]
    fn standard_policy_set_runs() {
        let p = kernels::memcpy(16);
        for spec in policies() {
            let r = run_one(spec.cfg, &p);
            assert!(r.halted);
            assert!(r.retired > 0);
        }
    }

    #[test]
    fn pivot_rows_finds_cells_and_blanks_gaps() {
        let rows = vec![("a", "x", 1.5), ("b", "x", 2.0)];
        let t = pivot_rows(
            "t",
            &rows,
            &["a".into(), "b".into(), "c".into()],
            &["x".into()],
            |r, w, c| r.0 == w && r.1 == c,
            |r| format!("{:.1}", r.2),
        );
        assert!(t.contains("1.5"));
        assert!(t.contains("2.0"));
    }

    #[test]
    fn pivot_table_formats() {
        let t = pivot_table("t", &["a".into(), "b".into()], &["x".into()], |w, c| {
            format!("{w}{c}")
        });
        assert!(t.contains("ax"));
        assert!(t.contains("bx"));
    }
}

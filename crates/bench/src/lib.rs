//! # rsp-bench — experiment harness
//!
//! Shared plumbing for the `experiments` binary (one subcommand per
//! table/figure/experiment of DESIGN.md §4) and the Criterion
//! micro-benchmarks. Parameter sweeps fan out across simulator instances
//! with rayon — each simulation is single-threaded and deterministic, so
//! parallelism is free of ordering effects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod scaled;
pub mod throughput;
pub mod timeline;

pub use harness::{policies, run_one, PolicySpec, Row};
pub use scaled::scaled_paper_set;

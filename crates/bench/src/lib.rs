//! # rsp-bench — experiment harness
//!
//! Shared plumbing for the `experiments` binary (one subcommand per
//! table/figure/experiment of DESIGN.md §4) and the Criterion
//! micro-benchmarks. Parameter grids run on the [`sweep`] engine
//! (DESIGN.md §12): a declarative ordered grid with stable per-point
//! keys, executed in-process (rayon fan-out — each simulation is
//! single-threaded and deterministic, so parallelism is free of
//! ordering effects), as `hash(key) % N` shards across worker
//! processes, or resumed from a keyed JSONL journal; a deterministic
//! merge re-runs each sweep's cross-point assertions and emits the
//! `BENCH_*.json` artifact byte-identically however the grid was split.
//! With `--cache-dir`, every point result is a content-addressed
//! artifact in a shared [`sweep::CasStore`] (DESIGN.md §17), and
//! multi-stage studies run as [`sweep::StudyDag`]s over that store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod scaled;
pub mod serve_saturation;
pub mod serve_sched;
pub mod sweep;
pub mod throughput;
pub mod timeline;

pub use harness::{policies, run_one, PolicySpec, Row};
pub use scaled::scaled_paper_set;
pub use sweep::{
    write_artifact, CacheSnapshot, CasStore, Executor, Shard, StudyDag, Sweep, SweepConfig,
    SweepError, SweepRunner,
};

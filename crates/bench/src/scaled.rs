//! Steering sets for fabric sizes other than the paper's 8 slots
//! (experiment E9's slot-count axis).
//!
//! Each paper configuration defines a *direction* (its unit-type ratio);
//! for a fabric of `slots` we scale counts by `slots / 8` and then
//! greedily top up along the direction until no further unit fits. For
//! small fabrics (< 8 slots) the scaled counts shrink; a configuration
//! that still does not fit falls back to LSU fill.

use rsp_fabric::config::{Configuration, SteeringSet};
use rsp_isa::units::{TypeCounts, UnitType};

/// Direction vectors of the paper's three steering configurations.
const DIRECTIONS: [[u8; 5]; 3] = [
    [2, 1, 2, 0, 0], // Config 1: integer
    [1, 1, 1, 1, 0], // Config 2: mixed
    [0, 0, 2, 1, 1], // Config 3: floating point
];

fn scale_direction(dir: &[u8; 5], slots: usize) -> TypeCounts {
    let mut counts = TypeCounts::ZERO;
    // Base: floor-scale the direction.
    for &t in &UnitType::ALL {
        let scaled = (dir[t.index()] as usize * slots) / 8;
        counts.set(t, scaled as u8);
    }
    while counts.slot_cost() > slots {
        // Shrink: drop the most expensive populated type.
        let t = *UnitType::ALL
            .iter()
            .filter(|t| counts.get(**t) > 0)
            .max_by_key(|t| t.slot_cost())
            .expect("non-empty");
        counts.set(t, counts.get(t) - 1);
    }
    // Top up along the direction's populated types, widest units first
    // (so an FP direction spends remaining slots on FP units before
    // falling back to cheap fillers), then LSU-fill any remainder.
    let mut order: Vec<UnitType> = UnitType::ALL
        .iter()
        .copied()
        .filter(|t| dir[t.index()] > 0)
        .collect();
    order.sort_by_key(|t| std::cmp::Reverse(t.slot_cost()));
    loop {
        let mut grown = false;
        for &t in &order {
            if t.slot_cost() <= slots - counts.slot_cost() {
                counts.add(t, 1);
                grown = true;
            }
        }
        if !grown {
            let free = slots - counts.slot_cost();
            counts.add(UnitType::Lsu, free as u8);
            break;
        }
    }
    counts
}

/// A steering set analogous to Table 1 for a fabric of `slots` RFU
/// slots (`slots == 8` reproduces the paper's set exactly).
pub fn scaled_paper_set(slots: usize) -> SteeringSet {
    if slots == 8 {
        return SteeringSet::paper_default();
    }
    let predefined = DIRECTIONS
        .iter()
        .enumerate()
        .map(|(i, dir)| {
            let counts = scale_direction(dir, slots);
            Configuration::place(format!("Config {}", i + 1), counts, slots)
                .expect("scaled counts fit by construction")
        })
        .collect();
    SteeringSet::new(predefined, TypeCounts::new([1, 1, 1, 1, 1]), slots).expect("configs fit")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_slots_is_the_paper_set() {
        assert_eq!(scaled_paper_set(8), SteeringSet::paper_default());
    }

    #[test]
    fn scaled_sets_fit_and_fill() {
        for slots in [4, 6, 8, 12, 16, 24] {
            let set = scaled_paper_set(slots);
            assert_eq!(set.rfu_slots, slots);
            for c in &set.predefined {
                assert!(c.slot_cost() <= slots, "{} at {slots}", c.name);
                // At least 75% of the fabric used (no pathological waste).
                assert!(
                    c.slot_cost() * 4 >= slots * 3,
                    "{} wastes fabric at {slots}: {} slots",
                    c.name,
                    c.slot_cost()
                );
                c.placement.check().unwrap();
            }
        }
    }

    #[test]
    fn directions_preserved_at_16_slots() {
        let set = scaled_paper_set(16);
        // Config 1 stays integer-dominated; Config 3 stays FP-dominated.
        let c1 = &set.predefined[0].counts;
        let c3 = &set.predefined[2].counts;
        assert!(c1.get(UnitType::IntAlu) >= 4);
        assert_eq!(c1.get(UnitType::FpAlu) + c1.get(UnitType::FpMdu), 0);
        assert!(c3.get(UnitType::FpAlu) >= 2);
        assert!(c3.get(UnitType::FpMdu) >= 2);
    }
}

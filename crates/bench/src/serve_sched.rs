//! Serve-scheduling sweep: weighted-fair shares, shard scaling, and
//! lane pack-hold latency at a fixed offered load
//! (`BENCH_serve_sched.json`).
//!
//! Where the saturation sweep varies offered load against one FIFO
//! engine, this sweep holds the load fixed at the service knee — a
//! 16-scalar cohort that outlives the measurement window plus a lane
//! trickle — and varies the *serving structure*: the weight skew
//! between the two tenant classes, the number of engine shards, and
//! the lane pack-hold. Every point runs the same cohort through an
//! in-process [`ShardedEngine`] mounted on the [`WfqScheduler`].
//!
//! Three contracts are verified on every merge:
//!
//! 1. **Weighted fairness** — while both classes saturate their
//!    grants, mean completed cycles per heavy tenant over mean cycles
//!    per light tenant tracks the configured weight skew within 10%.
//!    A violation reports the full per-tenant shares table.
//! 2. **Shard scaling** — for a fixed (skew, hold), serving the same
//!    cohort on 2 or 4 shards never drops aggregate cycles/tick below
//!    0.9× the single-engine row (each shard serves a subset of the
//!    load with the whole scheduler's capacity, so lockstep ticks to
//!    drain can only shrink).
//! 3. **Pack-hold latency** — for a fixed (skew, shards), p99
//!    admission-to-first-quantum latency is monotone non-decreasing in
//!    the pack-hold: holding lane tenants to pack fuller groups may
//!    only ever delay first service, never buy it back.

use rsp_serve::{EngineConfig, ShardedEngine, TenantRequest, WatermarkScheduler, WfqScheduler};
use rsp_workloads::{LaneTraceSpec, StreamSpec, SynthSpec, UnitMix};
use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::sweep::Sweep;

/// Scalar tenants per point (alternating heavy/light class).
pub const SCALARS: u64 = 16;

/// Lane tenants trickled in during the window (one every other tick).
pub const LANES: u64 = 8;

/// Per-scalar cycle budget. Far above what the fairness window can
/// serve, so the window measures grants, not completions.
pub const SCALAR_CYCLES: u64 = 32_768;

/// Fairness measurement window, in engine ticks.
pub const WINDOW: u64 = 32;

/// Drain bound: hitting it means a stuck fleet, not a slow one.
const MAX_DRAIN_TICKS: u64 = 200_000;

/// The fixed admission policy every point runs under: 8 active
/// tenants per shard, queue deep enough that this grid never sheds.
pub fn sched_watermarks() -> WatermarkScheduler {
    WatermarkScheduler {
        queue_depth: 32,
        max_active: 8,
        step_lag_watermark: 64,
        quantum: 256,
    }
}

/// One grid point: weight skew between the heavy and light scalar
/// classes × engine shard count × lane pack-hold ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedPoint {
    /// Heavy-class weight (light class is always weight 1).
    pub skew: u32,
    /// Engine shards serving the fleet.
    pub shards: usize,
    /// Lane pack-hold, in ticks.
    pub hold: u64,
}

/// The `i`-th scalar of the cohort: even indices are heavy (weight
/// `skew`), odd are light (weight 1). The program is long enough that
/// the budget, never the halt, ends the tenant.
fn scalar(i: u64, skew: u32) -> TenantRequest {
    #[allow(unknown_lints, clippy::manual_is_multiple_of)]
    let weight = if i % 2 == 0 { skew } else { 1 };
    let spec = SynthSpec {
        body_len: 200,
        iterations: 1_000,
        ..SynthSpec::new("sched", UnitMix::BALANCED, 40 + i)
    };
    TenantRequest {
        telemetry_capacity: 0,
        ..TenantRequest::new(
            StreamSpec::synth(format!("sched-{i}"), spec, SCALAR_CYCLES).with_weight(weight),
        )
    }
}

/// The `n`-th trickled lane tenant. All share one trace envelope and
/// weight, so they are group-compatible and the pack-hold is the only
/// thing deciding how fully their groups pack.
fn lane(n: u64) -> TenantRequest {
    TenantRequest::new(StreamSpec::lane(
        format!("sched-lane-{n}"),
        LaneTraceSpec::synthetic_mix(2_048, 70),
        2_048,
    ))
}

/// One scalar tenant's share of the fairness window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantShare {
    /// Fleet-global tenant id.
    pub id: u64,
    /// Configured weight.
    pub weight: u32,
    /// Cycles served by the end of the window (0 = still queued).
    pub cycles: u64,
}

/// One grid point's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedRow {
    /// Heavy-class weight.
    pub skew: u32,
    /// Engine shards.
    pub shards: usize,
    /// Lane pack-hold ticks.
    pub hold: u64,
    /// Tenants offered (scalars + lanes).
    pub offered: u64,
    /// Tenants admitted (this grid never sheds).
    pub admitted: u64,
    /// Tenants that ran to completion.
    pub completed: u64,
    /// Lockstep engine ticks to drain the whole fleet.
    pub ticks: u64,
    /// Aggregate tenant-cycles stepped.
    pub stepped_cycles: u64,
    /// The shard-scaling metric: aggregate cycles per lockstep tick.
    pub cycles_per_tick: f64,
    /// Mean window cycles per active heavy tenant.
    pub heavy_mean: f64,
    /// Mean window cycles per active light tenant.
    pub light_mean: f64,
    /// `heavy_mean / light_mean` — the measured service skew.
    pub share_ratio: f64,
    /// Per-tenant shares at the window snapshot (the fairness
    /// verifier's evidence; printed in full on violation).
    pub shares: Vec<TenantShare>,
    /// p99 admission-to-first-quantum latency (ticks), merged
    /// aggregate over all shards at drain.
    pub admit_to_first_step_p99: u64,
    /// Lane groups formed over the run (fewer = fuller packing).
    pub lane_groups_formed: u64,
    /// The fleet drained to idle within the bound.
    pub drained: bool,
    /// Wall-clock seconds for the whole point (informative).
    pub wall_seconds: f64,
}

/// Run one grid point to completion and measure it.
pub fn measure_point(p: &SchedPoint) -> SchedRow {
    let cfg = EngineConfig {
        pack_hold_ticks: p.hold,
        ..EngineConfig::default()
    };
    let scheduler = WfqScheduler {
        watermarks: sched_watermarks(),
        max_weight: 8,
    };
    let started = Instant::now();
    let mut fleet = ShardedEngine::new(cfg, scheduler, p.shards);

    let mut scalars = Vec::new();
    for i in 0..SCALARS {
        #[allow(unknown_lints, clippy::manual_is_multiple_of)]
        let weight = if i % 2 == 0 { p.skew } else { 1 };
        if let Ok(id) = fleet.submit(scalar(i, p.skew)) {
            scalars.push((id, weight));
        }
    }
    let mut lanes = 0u64;
    for tick in 1..=WINDOW {
        #[allow(unknown_lints, clippy::manual_is_multiple_of)]
        if tick % 2 == 0 && lanes < LANES {
            let _ = fleet.submit(lane(lanes));
            lanes += 1;
        }
        fleet.tick();
    }

    // Window snapshot: per-tenant served cycles while every scalar is
    // still mid-budget, so shares reflect grants alone.
    let frame = fleet.metrics();
    let shares: Vec<TenantShare> = scalars
        .iter()
        .map(|&(id, weight)| TenantShare {
            id,
            weight,
            cycles: frame
                .tenants
                .iter()
                .find(|t| t.id == id)
                .and_then(|t| t.snapshot.counter("cycles"))
                .unwrap_or(0),
        })
        .collect();
    // Shares are in submission order, so even indices are the heavy
    // class (this also tells the classes apart when skew = 1). Queued
    // tenants (0 cycles) have no grants to compare and are excluded.
    let class_mean = |heavy: bool| -> f64 {
        let active: Vec<u64> = shares
            .iter()
            .enumerate()
            .filter(|&(i, s)| {
                #[allow(unknown_lints, clippy::manual_is_multiple_of)]
                let h = i % 2 == 0;
                h == heavy && s.cycles > 0
            })
            .map(|(_, s)| s.cycles)
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().sum::<u64>() as f64 / active.len() as f64
    };
    let heavy_mean = class_mean(true);
    let light_mean = class_mean(false);

    let drained = fleet.run_until_idle(MAX_DRAIN_TICKS);
    let wall = started.elapsed().as_secs_f64();
    let stats = fleet.stats();
    let final_frame = fleet.metrics();
    let admit_p99 = final_frame
        .aggregate
        .histogram("admit_to_first_step")
        .map_or(0, |h| h.quantile(0.99));

    SchedRow {
        skew: p.skew,
        shards: p.shards,
        hold: p.hold,
        offered: stats.submitted,
        admitted: stats.admitted,
        completed: stats.completed,
        ticks: stats.ticks,
        stepped_cycles: stats.stepped_cycles,
        cycles_per_tick: stats.stepped_cycles as f64 / stats.ticks.max(1) as f64,
        heavy_mean,
        light_mean,
        share_ratio: if light_mean > 0.0 {
            heavy_mean / light_mean
        } else {
            0.0
        },
        shares,
        admit_to_first_step_p99: admit_p99,
        lane_groups_formed: stats.lane_groups_formed,
        drained,
        wall_seconds: wall,
    }
}

fn shares_table(row: &SchedRow) -> String {
    use std::fmt::Write;
    let mut s = String::from("      id  weight    cycles\n");
    for t in &row.shares {
        let _ = writeln!(s, "{:>8} {:>7} {:>9}", t.id, t.weight, t.cycles);
    }
    s
}

/// The serving-structure experiment as a [`Sweep`]: one point per
/// (skew, shards, pack-hold) triple, run serially (points time wall
/// clock and each point is itself a whole fleet).
pub struct ServeSchedSweep {
    skews: Vec<u32>,
    shards: Vec<usize>,
    holds: Vec<u64>,
}

impl ServeSchedSweep {
    /// The full grid: 3 skews × 3 shard counts × 3 holds = 27 points.
    pub fn full() -> ServeSchedSweep {
        ServeSchedSweep {
            skews: vec![1, 2, 3],
            shards: vec![1, 2, 4],
            holds: vec![0, 4, 16],
        }
    }

    /// A reduced grid for engine tests and quick CI: one skew, two
    /// shard counts, two holds. The verifiers are grid-shape-agnostic,
    /// so the same contracts are enforced on the smaller grid.
    pub fn reduced() -> ServeSchedSweep {
        ServeSchedSweep {
            skews: vec![3],
            shards: vec![1, 2],
            holds: vec![0, 8],
        }
    }
}

impl Sweep for ServeSchedSweep {
    type Point = SchedPoint;
    type Row = SchedRow;

    fn name(&self) -> &'static str {
        "serve_sched"
    }

    fn points(&self) -> Vec<SchedPoint> {
        let mut pts = Vec::new();
        for &skew in &self.skews {
            for &shards in &self.shards {
                for &hold in &self.holds {
                    pts.push(SchedPoint { skew, shards, hold });
                }
            }
        }
        pts
    }

    fn key(&self, p: &SchedPoint) -> String {
        format!("w{}s{}h{:02}", p.skew, p.shards, p.hold)
    }

    // Like the saturation sweep, the wall-clock columns are
    // informative-only, so cached rows honour the same contract as
    // `--resume` replay.
    fn spec(&self) -> serde_json::Value {
        use serde_json::Value;
        let wm = sched_watermarks();
        let ints = |xs: &[i128]| Value::Array(xs.iter().map(|&x| Value::Int(x)).collect());
        Value::Object(vec![
            (
                "skews".into(),
                ints(&self.skews.iter().map(|&x| x as i128).collect::<Vec<_>>()),
            ),
            (
                "shards".into(),
                ints(&self.shards.iter().map(|&x| x as i128).collect::<Vec<_>>()),
            ),
            (
                "holds".into(),
                ints(&self.holds.iter().map(|&x| x as i128).collect::<Vec<_>>()),
            ),
            ("scalars".into(), Value::Int(SCALARS as i128)),
            ("lanes".into(), Value::Int(LANES as i128)),
            ("scalar_cycles".into(), Value::Int(SCALAR_CYCLES as i128)),
            ("window".into(), Value::Int(WINDOW as i128)),
            (
                "scheduler".into(),
                Value::Object(vec![
                    ("queue_depth".into(), Value::Int(wm.queue_depth as i128)),
                    ("max_active".into(), Value::Int(wm.max_active as i128)),
                    (
                        "step_lag_watermark".into(),
                        Value::Int(wm.step_lag_watermark as i128),
                    ),
                    ("quantum".into(), Value::Int(wm.quantum as i128)),
                ]),
            ),
        ])
    }

    fn point_params(&self, p: &SchedPoint) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("skew".into(), Value::Int(p.skew as i128)),
            ("shards".into(), Value::Int(p.shards as i128)),
            ("hold".into(), Value::Int(p.hold as i128)),
        ])
    }

    fn run_point(&self, p: &SchedPoint) -> SchedRow {
        measure_point(p)
    }

    fn parallel(&self) -> bool {
        false
    }

    fn verify(&self, rows: &[SchedRow]) -> Result<(), String> {
        for r in rows {
            if !r.drained {
                return Err(format!(
                    "w{}s{}h{}: fleet failed to drain",
                    r.skew, r.shards, r.hold
                ));
            }
            if r.admitted != r.offered {
                return Err(format!(
                    "w{}s{}h{}: {} of {} offered tenants shed — this grid is \
                     sized to never shed",
                    r.skew,
                    r.shards,
                    r.hold,
                    r.offered - r.admitted,
                    r.offered
                ));
            }
            if r.completed != r.admitted {
                return Err(format!(
                    "w{}s{}h{}: {} admitted but only {} completed",
                    r.skew, r.shards, r.hold, r.admitted, r.completed
                ));
            }
            // Weighted fairness: the measured service skew tracks the
            // configured weight skew within 10%.
            let want = r.skew as f64;
            if (r.share_ratio - want).abs() > 0.1 * want {
                return Err(format!(
                    "w{}s{}h{}: heavy/light share ratio {:.3} drifted more than \
                     10% from the {}:1 weight split; window shares:\n{}",
                    r.skew,
                    r.shards,
                    r.hold,
                    r.share_ratio,
                    r.skew,
                    shares_table(r)
                ));
            }
        }
        // Shard scaling: sharding never regresses aggregate throughput
        // below 0.9× the single-engine row for the same (skew, hold).
        for base in rows.iter().filter(|r| r.shards == 1) {
            for r in rows
                .iter()
                .filter(|r| r.shards > 1 && r.skew == base.skew && r.hold == base.hold)
            {
                if r.cycles_per_tick < 0.9 * base.cycles_per_tick {
                    return Err(format!(
                        "w{}h{}: {} shards served {:.0} cycles/tick vs {:.0} on one \
                         engine — sharding must not cost throughput",
                        r.skew, r.hold, r.shards, r.cycles_per_tick, base.cycles_per_tick
                    ));
                }
            }
        }
        // Pack-hold latency: p99 admit→first-quantum is monotone
        // non-decreasing in the hold for a fixed (skew, shards).
        for a in rows {
            for b in rows {
                if a.skew == b.skew
                    && a.shards == b.shards
                    && a.hold < b.hold
                    && a.admit_to_first_step_p99 > b.admit_to_first_step_p99
                {
                    return Err(format!(
                        "w{}s{}: p99 admit latency fell from {} (hold {}) to {} \
                         (hold {}) — holding lanes can only delay first service",
                        a.skew,
                        a.shards,
                        a.admit_to_first_step_p99,
                        a.hold,
                        b.admit_to_first_step_p99,
                        b.hold
                    ));
                }
            }
        }
        Ok(())
    }

    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_serve_sched.json")
    }

    fn report(&self, rows: &[SchedRow]) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>4} {:>6} {:>4} {:>9} {:>7} {:>13} {:>11} {:>10} {:>7}",
            "skew",
            "shards",
            "hold",
            "admitted",
            "ticks",
            "cycles/tick",
            "share",
            "admit-p99",
            "groups"
        );
        for r in rows {
            let _ = writeln!(
                s,
                "{:>4} {:>6} {:>4} {:>9} {:>7} {:>13.0} {:>11.3} {:>10} {:>7}",
                r.skew,
                r.shards,
                r.hold,
                r.admitted,
                r.ticks,
                r.cycles_per_tick,
                r.share_ratio,
                r.admit_to_first_step_p99,
                r.lane_groups_formed
            );
        }
        let _ = writeln!(
            s,
            "share tracks the weight skew within 10%; sharding holds ≥0.9× \
             single-engine cycles/tick; admit p99 is monotone in the pack-hold"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_is_deterministic_and_classed() {
        assert_eq!(
            serde_json::to_string(&scalar(4, 3)).unwrap(),
            serde_json::to_string(&scalar(4, 3)).unwrap()
        );
        assert_eq!(scalar(0, 3).spec.effective_weight(), 3);
        assert_eq!(scalar(1, 3).spec.effective_weight(), 1);
        assert!(lane(0).spec.is_lane());
    }

    #[test]
    fn skewed_point_tracks_weights_and_drains() {
        let r = measure_point(&SchedPoint {
            skew: 3,
            shards: 2,
            hold: 4,
        });
        assert!(r.drained);
        assert_eq!(r.admitted, r.offered);
        assert_eq!(r.completed, r.admitted);
        assert!(
            (r.share_ratio - 3.0).abs() <= 0.3,
            "share ratio {:.3} off 3:1\n{}",
            r.share_ratio,
            shares_table(&r)
        );
    }

    #[test]
    fn reduced_grid_verifies() {
        let sweep = ServeSchedSweep::reduced();
        let rows: Vec<SchedRow> = sweep.points().iter().map(measure_point).collect();
        sweep.verify(&rows).expect("reduced grid contracts hold");
    }
}

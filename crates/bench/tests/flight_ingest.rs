//! End-to-end flight-recorder ingestion: drive an in-process serve
//! engine into a shed storm, take its flight-recorder JSONL (the same
//! bytes a `flight-<seq>-shed_storm.jsonl` dump contains), and check
//! that the timeline fleet analyzer reconstructs the story — the same
//! path `rsp-timeline --flight` runs on a dump file.

use rsp_bench::timeline::analyze_fleet;
use rsp_obs::parse_fleet_jsonl;
use rsp_serve::{EngineConfig, ServeEngine, TenantRequest, WatermarkScheduler};
use rsp_workloads::{StreamSpec, SynthSpec, UnitMix};

fn req(n: u64) -> TenantRequest {
    TenantRequest::new(StreamSpec::synth(
        format!("flight-{n}"),
        SynthSpec {
            body_len: 80,
            ..SynthSpec::new("flight", UnitMix::BALANCED, 7_000 + n)
        },
        4_096,
    ))
}

#[test]
fn fleet_analyzer_ingests_an_engine_flight_dump() {
    let cfg = EngineConfig {
        shed_storm_threshold: 4,
        ..EngineConfig::default()
    };
    // Two tenants fit; the rest shed at the queue watermark, all at the
    // same engine tick, so any detection window catches the storm.
    let scheduler = WatermarkScheduler {
        queue_depth: 2,
        max_active: 2,
        step_lag_watermark: 1_000_000,
        quantum: 256,
    };
    let mut engine = ServeEngine::new(cfg, scheduler);
    let mut shed = 0u64;
    for n in 0..8u64 {
        if engine.submit(req(n)).is_err() {
            shed += 1;
        }
    }
    assert_eq!(shed, 6, "queue depth 2 admits exactly two tenants");
    assert!(engine.run_until_idle(1_000_000), "engine must drain");
    assert_eq!(engine.flight_triggers(), 1, "the storm trips exactly once");

    // The in-memory ring serialises to the same JSONL a dump file holds.
    let entries = parse_fleet_jsonl(&engine.flight_jsonl()).expect("ring JSONL parses");
    let report = analyze_fleet(&entries);

    assert_eq!(report.admitted, 2);
    assert_eq!(report.completed, 2);
    assert_eq!(report.failed, 0);
    let queue_full: u64 = report
        .sheds
        .iter()
        .filter(|s| s.label == "queue_full")
        .map(|s| s.count)
        .sum();
    assert_eq!(queue_full, shed);
    let storms: u64 = report
        .triggers
        .iter()
        .filter(|t| t.label == "shed_storm")
        .map(|t| t.count)
        .sum();
    assert_eq!(storms, 1);
    // Both admitted tenants finished; their arcs carry the quanta and
    // cycle totals the engine stepped (bounded by the cycle budget).
    assert_eq!(report.tenants.len(), 2);
    for arc in &report.tenants {
        assert!(arc.quanta > 0, "tenant {} never stepped", arc.tenant);
        assert!(
            arc.cycles > 0 && arc.cycles <= 4_096,
            "tenant {} cycle total {}",
            arc.tenant,
            arc.cycles
        );
        assert!(
            arc.completed_at.is_some(),
            "tenant {} unfinished",
            arc.tenant
        );
    }
    // The rendered report names the anomaly — what an operator reading
    // `rsp-timeline --flight` output greps for.
    let rendered = report.render();
    assert!(rendered.contains("shed_storm"), "render:\n{rendered}");
    assert!(rendered.contains("queue_full"), "render:\n{rendered}");
}

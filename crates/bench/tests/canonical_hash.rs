//! Property tests for the canonical-JSON hasher behind the artifact
//! store (DESIGN.md §17):
//!
//! * the content hash is invariant under object key order, at every
//!   nesting level — canonicalization sorts, so presentation order
//!   can't change an address;
//! * canonical text is a fixed point: parsing it back and
//!   re-canonicalizing reproduces it byte-for-byte (floats round-trip
//!   through the shortest-repr writer);
//! * a point cache key moves whenever any single ingredient moves —
//!   sweep name, spec, one parameter, or the code version — and only
//!   then.

use proptest::prelude::*;
use rsp_bench::sweep::canon::{canonical_json, content_hash, point_cache_key};
use serde_json::Value;

/// Deterministic Fisher–Yates driven by a splitmix64 stream, so a
/// permutation is reproducible from its seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// A nested object built from `(index, scalar)` pairs: scalars at the
/// top level, plus an inner object and an array holding the same
/// fields, so permutation is exercised below the top level too.
fn build_object(fields: &[(String, Value)]) -> Value {
    let mut top: Vec<(String, Value)> = fields.to_vec();
    top.push(("nested".into(), Value::Object(fields.to_vec())));
    top.push((
        "list".into(),
        Value::Array(vec![Value::Object(fields.to_vec()), Value::Int(7)]),
    ));
    Value::Object(top)
}

/// The generated field set: unique keys, mixed scalar types.
fn fields_from(raw: &[(u8, i64, f64)]) -> Vec<(String, Value)> {
    raw.iter()
        .enumerate()
        .map(|(i, (tag, n, f))| {
            let key = format!("k{i:02}_{tag}");
            let value = match tag % 4 {
                0 => Value::Int(*n as i128),
                1 => Value::Float(*f),
                2 => Value::Str(format!("s{n}")),
                _ => Value::Bool(n % 2 == 0),
            };
            (key, value)
        })
        .collect()
}

/// Recursively permute every object's field order using `seed`.
fn permute_deep(v: &Value, seed: u64) -> Value {
    match v {
        Value::Object(fields) => {
            let mut out: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, val)| (k.clone(), permute_deep(val, seed.wrapping_add(1))))
                .collect();
            shuffle(&mut out, seed);
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(
            items
                .iter()
                .map(|i| permute_deep(i, seed.wrapping_add(2)))
                .collect(),
        ),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Key order never changes the canonical text or the hash.
    #[test]
    fn hash_is_invariant_under_key_order(
        raw in proptest::collection::vec((any::<u8>(), any::<i64>(), proptest::num::f64::NORMAL), 1..8),
        seed in any::<u64>(),
    ) {
        let obj = build_object(&fields_from(&raw));
        let permuted = permute_deep(&obj, seed);
        prop_assert_eq!(canonical_json(&obj), canonical_json(&permuted));
        prop_assert_eq!(content_hash(&obj), content_hash(&permuted));
    }

    /// Canonical text is a fixed point of parse → canonicalize, so a
    /// value that has been through the store hashes the same as the
    /// value that was written to it.
    #[test]
    fn canonical_text_is_a_fixed_point(
        raw in proptest::collection::vec((any::<u8>(), any::<i64>(), proptest::num::f64::NORMAL), 1..8),
    ) {
        let obj = build_object(&fields_from(&raw));
        let text = canonical_json(&obj);
        let reparsed: Value = serde_json::from_str(&text).expect("canonical text parses");
        prop_assert_eq!(canonical_json(&reparsed), text.clone());
        prop_assert_eq!(content_hash(&reparsed), content_hash(&obj));
    }

    /// A point key is a pure function of its four ingredients, and a
    /// change to any single one of them — including one parameter
    /// value out of several — moves the key.
    #[test]
    fn point_key_moves_with_every_ingredient(
        alpha in proptest::num::f64::NORMAL,
        beta in any::<i64>(),
        gamma in any::<u32>(),
        version in any::<u32>(),
    ) {
        let spec = Value::Object(vec![("grid".into(), Value::Int(3))]);
        let params = |a: f64, b: i64, g: u32| {
            Value::Object(vec![
                ("alpha".into(), Value::Float(a)),
                ("beta".into(), Value::Int(b as i128)),
                ("gamma".into(), Value::Str(format!("g{g}"))),
            ])
        };
        let cv = format!("v{version}");
        let base = point_cache_key("sweep_a", &spec, &params(alpha, beta, gamma), &cv);
        // Deterministic: same ingredients, same key; 64 lowercase hex.
        prop_assert_eq!(
            base.clone(),
            point_cache_key("sweep_a", &spec, &params(alpha, beta, gamma), &cv)
        );
        prop_assert_eq!(base.len(), 64);
        prop_assert!(base.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
        // Any single changed ingredient changes the key.
        let next_alpha = if alpha == 0.0 { 1.0 } else { alpha * 2.0 };
        prop_assert_ne!(
            base.clone(),
            point_cache_key("sweep_a", &spec, &params(next_alpha, beta, gamma), &cv)
        );
        prop_assert_ne!(
            base.clone(),
            point_cache_key("sweep_a", &spec, &params(alpha, beta.wrapping_add(1), gamma), &cv)
        );
        prop_assert_ne!(
            base.clone(),
            point_cache_key("sweep_a", &spec, &params(alpha, beta, gamma.wrapping_add(1)), &cv)
        );
        prop_assert_ne!(
            base.clone(),
            point_cache_key("sweep_b", &spec, &params(alpha, beta, gamma), &cv)
        );
        let other_spec = Value::Object(vec![("grid".into(), Value::Int(4))]);
        prop_assert_ne!(
            base.clone(),
            point_cache_key("sweep_a", &other_spec, &params(alpha, beta, gamma), &cv)
        );
        prop_assert_ne!(
            base,
            point_cache_key("sweep_a", &spec, &params(alpha, beta, gamma), &format!("{cv}x"))
        );
    }
}

/// Pinned across releases: if this key ever moves, every store in the
/// field is silently invalidated — move it only with a schema bump.
#[test]
fn point_key_is_pinned_across_runs() {
    let spec = Value::Object(vec![
        ("grid".into(), Value::Int(2)),
        ("label".into(), Value::Str("pin".into())),
    ]);
    let params = Value::Object(vec![
        ("x".into(), Value::Float(0.5)),
        ("y".into(), Value::Int(-3)),
    ]);
    assert_eq!(
        point_cache_key("pinned_sweep", &spec, &params, "1.2.3"),
        "936c825fc75e2643ee10a9791aebd607e6ce90bd739428745e78a73263500339"
    );
}

//! Property tests for the sweep engine's merge invariants, on the real
//! (reduced) fault sweep:
//!
//! * splitting a run's journal lines into an arbitrary number of shard
//!   fragments, in any interleaving, merges into a `BENCH_*.json`
//!   byte-identical to the single-process run's;
//! * a journal truncated at an arbitrary point (a killed run, possibly
//!   mid-line) resumes to completion and merges byte-identically;
//! * actually re-running the grid as `--shard k/N` style shard runs
//!   reproduces the artifact bytes too (rows are pure functions of their
//!   keys — the fault schedule is open-loop).
//!
//! The canonical single-process run happens once (`OnceLock`); the
//! properties then mostly shuffle journal *lines*, so the per-case cost
//! is parsing and merging, not re-simulation.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;
use rsp_bench::experiments::faults::FaultSweep;
use rsp_bench::sweep::{self, Executor, Shard, SweepConfig, SweepRunner};

/// The canonical single-process run of the reduced fault sweep: its
/// journal lines and its artifact bytes.
struct Canonical {
    lines: Vec<String>,
    artifact: Vec<u8>,
}

fn canonical() -> &'static Canonical {
    static CANON: OnceLock<Canonical> = OnceLock::new();
    CANON.get_or_init(|| {
        let dir = fresh_dir("canonical");
        let sweep = FaultSweep::reduced();
        let summary = sweep::run_and_merge(&sweep, &cfg_in(&dir)).expect("canonical run");
        let artifact = fs::read(summary.artifact.expect("fault sweep writes an artifact"))
            .expect("read canonical artifact");
        let journal = fs::read_to_string(dir.join("fault_sweep.shard-0of1.jsonl"))
            .expect("read canonical journal");
        let lines: Vec<String> = journal.lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 8, "reduced grid is 2 workloads x 2 x 2");
        Canonical { lines, artifact }
    })
}

fn fresh_dir(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir()
        .join(format!("rsp-sweep-props-{}", std::process::id()))
        .join(format!("{name}-{}", SEQ.fetch_add(1, Ordering::Relaxed)));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cfg_in(dir: &Path) -> SweepConfig {
    SweepConfig {
        out_dir: dir.to_path_buf(),
        ..SweepConfig::default()
    }
}

fn merged_bytes(dir: &Path) -> Vec<u8> {
    let sweep = FaultSweep::reduced();
    let summary = sweep::merge(&sweep, &cfg_in(dir)).expect("merge succeeds");
    fs::read(summary.artifact.expect("artifact written")).expect("read artifact")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any assignment of journal lines to any number of shard fragments,
    /// written in any order, merges byte-identically to the
    /// single-process artifact.
    #[test]
    fn any_fragmenting_and_interleaving_merges_identically(
        n in 1usize..=5,
        assign in proptest::collection::vec(0usize..5, 8),
        prio in proptest::collection::vec(0u64..1_000_000, 8),
    ) {
        let canon = canonical();
        let dir = fresh_dir("fragment");
        // Order lines by an arbitrary priority, then deal each to an
        // arbitrary fragment (mod n) — neither respects hash-based shard
        // ownership, which merge must not require.
        let mut order: Vec<usize> = (0..canon.lines.len()).collect();
        order.sort_by_key(|&i| (prio[i], i));
        let mut fragments: Vec<Vec<&str>> = vec![Vec::new(); n];
        for &i in &order {
            fragments[assign[i] % n].push(&canon.lines[i]);
        }
        for (k, lines) in fragments.iter().enumerate() {
            // Empty fragments are written too: merge must tolerate them.
            let mut text = lines.join("\n");
            if !text.is_empty() {
                text.push('\n');
            }
            fs::write(dir.join(format!("fault_sweep.shard-{k}of{n}.jsonl")), text).unwrap();
        }
        prop_assert_eq!(&merged_bytes(&dir), &canon.artifact);
    }

    /// A journal truncated at an arbitrary point — k complete lines,
    /// optionally plus a partial line (the kill arrived mid-write) —
    /// resumes to completion and merges byte-identically.
    #[test]
    fn resume_after_arbitrary_truncation_completes_identically(
        keep in 0usize..8,
        cut in 1usize..40,
        partial in proptest::bool::ANY,
    ) {
        let canon = canonical();
        let dir = fresh_dir("resume");
        let mut text = String::new();
        for line in canon.lines.iter().take(keep) {
            text.push_str(line);
            text.push('\n');
        }
        if partial {
            let tail = &canon.lines[keep];
            text.push_str(&tail[..cut.min(tail.len() - 1)]);
        }
        fs::write(dir.join("fault_sweep.shard-0of1.jsonl"), text).unwrap();

        let sweep = FaultSweep::reduced();
        let cfg = SweepConfig { resume: true, ..cfg_in(&dir) };
        let run = SweepRunner::run(&sweep, &cfg).expect("resume run");
        prop_assert_eq!(run.progress.skipped, keep as u64);
        prop_assert_eq!(run.progress.completed, (8 - keep) as u64);
        prop_assert_eq!(&merged_bytes(&dir), &canon.artifact);
    }
}

/// Genuinely re-run the grid as 2 shard processes' worth of work (same
/// code path as `experiments fault-sweep --shard k/2`) and check the
/// merged artifact bytes — this one re-simulates, proving rows are pure
/// functions of their keys across runs, not just that merge shuffles
/// lines correctly.
#[test]
fn two_shard_rerun_reproduces_artifact_bytes() {
    let canon = canonical();
    let dir = fresh_dir("shard-rerun");
    let sweep = FaultSweep::reduced();
    for index in 0..2 {
        let cfg = SweepConfig {
            executor: Executor::Shard(Shard::new(index, 2).unwrap()),
            ..cfg_in(&dir)
        };
        SweepRunner::run(&sweep, &cfg).expect("shard run");
    }
    assert_eq!(merged_bytes(&dir), canon.artifact);
}

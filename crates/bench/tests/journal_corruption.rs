//! Property tests for the journal loader's corruption taxonomy: a line
//! that is *valid JSON of the wrong shape* is corruption wherever it
//! sits — including the final line — because a torn (killed) write can
//! never leave complete JSON behind. Only a non-JSON, newline-less tail
//! is forgiven. Pins the fix for the old loader, which treated any
//! unparseable-as-entry line as a benign truncated tail and silently
//! dropped completed work.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use rsp_bench::sweep::journal::{self, JournalEntry};
use rsp_bench::sweep::SweepError;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Row {
    x: u32,
    y: f64,
}

fn tmp_journal() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("rsp-journal-props-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir.join(format!("j{}.jsonl", SEQ.fetch_add(1, Ordering::Relaxed)))
}

/// Valid journal lines for `n` synthetic rows.
fn valid_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let row = Row {
                x: i as u32,
                y: i as f64 / 3.0,
            };
            JournalEntry::encode(&format!("k{i:02}"), &row)
                .unwrap()
                .to_line()
                .unwrap()
        })
        .collect()
}

/// Complete JSON documents that are not `{"key": <string>, "row": ...}`
/// entries — every shape the classifier must reject as corruption.
fn wrong_shape_line(variant: u8, filler: u32) -> String {
    match variant % 5 {
        0 => format!("{{\"kee\":\"x{filler}\",\"row\":{{}}}}"), // no `key`
        1 => format!("{{\"key\":{filler},\"row\":{{}}}}"),      // key not a string
        2 => format!("{{\"key\":\"x{filler}\"}}"),              // no `row`
        3 => format!("{filler}"),                               // not an object
        _ => format!("[{filler},{filler}]"),                    // not an object
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A wrong-shape (but valid-JSON) line injected at *any* position —
    /// first, middle, or last, newline-terminated or not — makes `load`
    /// report corruption at exactly that line, never silently drop it.
    #[test]
    fn injected_wrong_shape_line_is_corruption_at_its_line(
        n in 1usize..8,
        pos_pick in 0usize..8,
        variant in 0u8..5,
        filler in 0u32..1_000_000,
        terminated in proptest::bool::ANY,
    ) {
        let lines = valid_lines(n);
        let pos = pos_pick % (n + 1); // 0..=n: before each line or at the end
        let mut text = String::new();
        for line in &lines[..pos] {
            text.push_str(line);
            text.push('\n');
        }
        text.push_str(&wrong_shape_line(variant, filler));
        if pos < n || terminated {
            text.push('\n');
        }
        for line in &lines[pos..] {
            text.push_str(line);
            text.push('\n');
        }
        let path = tmp_journal();
        fs::write(&path, &text).unwrap();

        match journal::load(&path) {
            Err(SweepError::Journal { line, msg, .. }) => {
                prop_assert_eq!(line, pos + 1, "error must point at the bad line");
                prop_assert!(msg.contains("malformed"), "{}", msg);
            }
            other => prop_assert!(false, "expected corruption error, got {:?}", other.map(|v| v.len())),
        }
    }

    /// The complement: with no injection, every journal written this way
    /// loads in full, and a *non-JSON* newline-less tail (the one shape
    /// a killed write leaves) drops only that tail.
    #[test]
    fn clean_and_torn_tail_journals_load(
        n in 1usize..8,
        cut in 1usize..20,
        torn in proptest::bool::ANY,
    ) {
        let lines = valid_lines(n);
        let mut text = lines.join("\n");
        text.push('\n');
        if torn {
            let tail = &lines[0][..cut.min(lines[0].len() - 1)];
            // A strict prefix of a JSON object is never valid JSON, so
            // this is a credible torn write.
            prop_assert!(serde_json::from_str::<serde_json::Value>(tail).is_err());
            text.push_str(tail);
        }
        let path = tmp_journal();
        fs::write(&path, &text).unwrap();
        let entries = journal::load(&path).unwrap();
        prop_assert_eq!(entries.len(), n);
        for (i, e) in entries.iter().enumerate() {
            prop_assert_eq!(e.decode::<Row>().unwrap().x, i as u32);
        }
    }
}

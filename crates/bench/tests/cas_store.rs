//! Integration tests for the content-addressed artifact store under
//! the sweep engine (DESIGN.md §17):
//!
//! * a warm rerun of a real sweep is 100% cache hits and reproduces
//!   the `BENCH_*.json` artifact byte-identically;
//! * two concurrent whole-grid runs sharing one store never compute
//!   the same point twice — the claim protocol turns the loser of each
//!   race into a waiter, so total computes equal the grid size;
//! * flipping the code version invalidates every entry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use rsp_bench::experiments::faults::FaultSweep;
use rsp_bench::sweep::{Executor, Sweep, SweepConfig, SweepRunner};
use serde_json::Value;

fn fresh_base(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("rsp-cas-it-{}", std::process::id()))
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cfg(base: &std::path::Path, out: &str) -> SweepConfig {
    SweepConfig {
        executor: Executor::InProcess,
        out_dir: base.join(out),
        cache_dir: Some(base.join("cas")),
        code_version: "it-v1".into(),
        ..SweepConfig::default()
    }
}

#[test]
fn warm_rerun_of_fault_sweep_is_all_hits_and_byte_identical() {
    let base = fresh_base("warm");
    let sweep = FaultSweep::reduced();
    let runner: &dyn SweepRunner = &sweep;

    let cold_cfg = cfg(&base, "out1");
    let cold = runner.run(&cold_cfg).unwrap();
    let cold_cache = cold.cache.expect("cache-dir set, sweep cacheable");
    assert_eq!(cold_cache.hits, 0);
    assert_eq!(cold_cache.misses, 8, "reduced grid is 2 x 2 x 2");
    let merged = runner.merge(&cold_cfg).unwrap();
    let artifact = std::fs::read(merged.artifact.unwrap()).unwrap();

    let warm_cfg = cfg(&base, "out2");
    let warm = runner.run(&warm_cfg).unwrap();
    let warm_cache = warm.cache.unwrap();
    assert_eq!(warm_cache.hits, 8, "warm rerun must be 100% cache hits");
    assert_eq!(warm_cache.misses, 0);
    let remerged = runner.merge(&warm_cfg).unwrap();
    assert_eq!(
        std::fs::read(remerged.artifact.unwrap()).unwrap(),
        artifact,
        "cached rows must merge into byte-identical BENCH artifact"
    );
}

/// A sweep whose compute count is observable, slow enough that two
/// concurrent runs genuinely overlap on every point.
struct CountingSweep {
    computes: Arc<AtomicU64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct CountingRow {
    key: String,
    value: f64,
}

impl Sweep for CountingSweep {
    type Point = u32;
    type Row = CountingRow;

    fn name(&self) -> &'static str {
        "counting_sweep"
    }
    fn points(&self) -> Vec<u32> {
        (0..6).collect()
    }
    fn key(&self, p: &u32) -> String {
        format!("c{p}")
    }
    fn spec(&self) -> Value {
        Value::Object(vec![("n".into(), Value::Int(6))])
    }
    fn point_params(&self, p: &u32) -> Value {
        Value::Object(vec![("p".into(), Value::Int(*p as i128))])
    }
    fn run_point(&self, p: &u32) -> CountingRow {
        self.computes.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(30));
        CountingRow {
            key: format!("c{p}"),
            value: *p as f64 * 0.25,
        }
    }
    fn artifact(&self) -> Option<&'static str> {
        Some("BENCH_counting_sweep.json")
    }
    fn report(&self, rows: &[CountingRow]) -> String {
        format!("{} counting rows", rows.len())
    }
}

#[test]
fn concurrent_runs_sharing_a_store_never_compute_a_point_twice() {
    let base = fresh_base("race");
    let computes = Arc::new(AtomicU64::new(0));

    let worker = |out: String| {
        let base = base.clone();
        let computes = computes.clone();
        std::thread::spawn(move || {
            let sweep = CountingSweep { computes };
            let runner: &dyn SweepRunner = &sweep;
            let cfg = cfg(&base, &out);
            let summary = runner.run(&cfg).unwrap();
            let merged = runner.merge(&cfg).unwrap();
            (
                summary.cache.unwrap(),
                std::fs::read(merged.artifact.unwrap()).unwrap(),
            )
        })
    };
    let a = worker("out-a".into());
    let b = worker("out-b".into());
    let (cache_a, artifact_a) = a.join().unwrap();
    let (cache_b, artifact_b) = b.join().unwrap();

    assert_eq!(
        computes.load(Ordering::Relaxed),
        6,
        "every point must be computed exactly once across both runs \
         (a: {cache_a:?}, b: {cache_b:?})"
    );
    // Each run accounts for all 6 points, one way or another.
    for c in [&cache_a, &cache_b] {
        assert_eq!(c.hits + c.misses + c.claim_waits, 6, "{c:?}");
    }
    assert_eq!(cache_a.misses + cache_b.misses, 6);
    assert_eq!(artifact_a, artifact_b, "both merges render the same rows");
}

#[test]
fn code_version_flip_invalidates_every_entry() {
    let base = fresh_base("version");
    let computes = Arc::new(AtomicU64::new(0));
    let sweep = CountingSweep {
        computes: computes.clone(),
    };
    let runner: &dyn SweepRunner = &sweep;

    let v1 = cfg(&base, "out1");
    runner.run(&v1).unwrap();
    assert_eq!(computes.load(Ordering::Relaxed), 6);

    let mut v2 = cfg(&base, "out2");
    v2.code_version = "it-v2".into();
    let summary = runner.run(&v2).unwrap();
    let cache = summary.cache.unwrap();
    assert_eq!(cache.hits, 0, "new code version must miss everything");
    assert_eq!(cache.misses, 6);
    assert_eq!(computes.load(Ordering::Relaxed), 12);

    // And back on v1 the original entries still serve.
    let v1_again = cfg(&base, "out3");
    let again = runner.run(&v1_again).unwrap();
    assert_eq!(again.cache.unwrap().hits, 6);
    assert_eq!(computes.load(Ordering::Relaxed), 12);
}

//! Exit-code contract of the CLI bins: usage errors exit 2 with the
//! usage string on stderr (never a panic), sweep failures exit 1. Pins
//! the fix for the old `--lanes`/`--seconds` panic path: a missing or
//! non-numeric flag value used to die in `.expect` with a backtrace.

use std::process::{Command, Output};

fn throughput(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_throughput"))
        .args(args)
        .output()
        .expect("spawn throughput")
}

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments")
}

fn assert_usage(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "usage errors exit 2; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains(needle),
        "stderr must explain the problem ({needle:?}):\n{stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "usage errors print the usage string:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "usage errors must not panic:\n{stderr}"
    );
}

#[test]
fn throughput_missing_flag_values_exit_2() {
    assert_usage(&throughput(&["--lanes"]), "--lanes needs a value");
    assert_usage(&throughput(&["--seconds"]), "--seconds needs a value");
    assert_usage(&throughput(&["--out-dir"]), "--out-dir needs a value");
}

#[test]
fn throughput_bad_flag_values_exit_2() {
    assert_usage(&throughput(&["--lanes", "abc"]), "--lanes needs a number");
    assert_usage(&throughput(&["--lanes", "100"]), "multiple of 64");
    assert_usage(&throughput(&["--lanes", "0"]), "multiple of 64");
    assert_usage(
        &throughput(&["--seconds", "zero"]),
        "--seconds needs a number",
    );
    assert_usage(&throughput(&["--seconds", "0"]), "positive");
    assert_usage(&throughput(&["--seconds", "-3"]), "positive");
}

#[test]
fn throughput_unknown_argument_exits_2() {
    assert_usage(&throughput(&["--bogus"]), "unknown argument");
    assert_usage(&throughput(&["extra"]), "unknown argument");
}

#[test]
fn throughput_help_exits_0() {
    let out = throughput(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn experiments_usage_errors_exit_2() {
    let out = experiments(&["definitely-not-an-id"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));

    let out = experiments(&["fault-sweep", "--shard", "nonsense"]);
    assert_eq!(out.status.code(), Some(2));

    // Sharding flags demand a sweep experiment.
    let out = experiments(&["table1", "--shard", "0/2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a sweep experiment"));

    // No id → the id list, as a usage error.
    let out = experiments(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("serve-saturation") && stderr.contains("fault-sweep"));
}

#[test]
fn experiments_sweep_failure_exits_1_not_2() {
    // Merging an empty directory is a *sweep* error (missing points),
    // distinct from the usage exit code.
    let dir = std::env::temp_dir().join(format!("rsp-cli-usage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = experiments(&[
        "serve-saturation",
        "--merge",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing"));
}

//! Stage 3 — configuration error metric generators (Fig. 3).
//!
//! Each CEM generator scores one candidate configuration: how poorly do
//! its available units match the required units? The paper's equation
//! (Fig. 3a) is, per unit type, `required(t) / available(t)`, summed over
//! the five types — fewer available copies of a demanded type mean a
//! larger error contribution.
//!
//! The hardware approximates the division with a **barrel shifter**
//! (Fig. 3b): divide by 4, 2, or 1. For the three predefined
//! configurations the shift amounts are hard-wired (their unit counts are
//! static); for the current configuration the shift control inputs are
//! **the upper two bits of the 3-bit quantity** of currently configured
//! units (Fig. 3c):
//!
//! | quantity (3-bit) | upper bits | shift | divides by |
//! |------------------|-----------|-------|------------|
//! | 0–1              | 00        | 0     | 1          |
//! | 2–3              | 01        | 1     | 2          |
//! | 4–7              | 1x        | 2     | 4          |
//!
//! "A more accurate divider circuit could be implemented, if desired, at
//! the expense of increased complexity and latency" — that alternative is
//! [`CemKind::ExactDivider`], compared against the shifter in experiment
//! E5.
//!
//! Because the queue holds at most seven instructions, the five shifted
//! terms sum to at most 7, so the paper's 3-bit adder tree suffices;
//! [`CemUnit::raw_error`] reproduces that 3-bit arithmetic exactly, and a
//! test asserts the width claim.

use rsp_isa::units::{TypeCounts, UnitType};
use serde::{Deserialize, Serialize};

/// Fixed-point scale for comparable shifter/exact errors:
/// `lcm(1..=8) = 840`, so `required × SCALE / available` is always an
/// integer for the unit counts this architecture can configure.
pub const ERROR_SCALE: u32 = 840;

/// Fig. 3(c): shift amount for a 3-bit available-unit quantity — its
/// upper two bits, interpreted as "divide by 4, 2, or 1".
#[inline]
pub fn shift_for_quantity(avail: u8) -> u32 {
    let q = avail.min(7); // 3-bit hardware quantity
    if q & 0b100 != 0 {
        2
    } else if q & 0b010 != 0 {
        1
    } else {
        0
    }
}

/// The divisor the shifter realises for a given availability.
#[inline]
pub fn shifter_divisor(avail: u8) -> u32 {
    1 << shift_for_quantity(avail)
}

/// Which division the CEM generator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CemKind {
    /// The paper's barrel-shifter approximation (divide by 1, 2, or 4).
    #[default]
    BarrelShifter,
    /// The "more accurate divider" alternative: exact integer division by
    /// the true available count (≥ 1 — the FFUs guarantee one unit of
    /// every type).
    ExactDivider,
}

/// One configuration error metric generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CemUnit {
    /// Division implementation.
    pub kind: CemKind,
}

impl CemUnit {
    /// The paper's shifter-based CEM.
    pub const PAPER: CemUnit = CemUnit {
        kind: CemKind::BarrelShifter,
    };

    /// The exact-divider CEM (E5 ablation).
    pub const EXACT: CemUnit = CemUnit {
        kind: CemKind::ExactDivider,
    };

    /// Scaled error metric (`ERROR_SCALE` fixed-point): lower is better.
    ///
    /// `required` is the stage-2 encoder output; `available` is the
    /// candidate configuration's per-type unit count **including FFUs**.
    pub fn error(&self, required: &TypeCounts, available: &TypeCounts) -> u32 {
        UnitType::ALL
            .iter()
            .map(|&t| self.term(required.get(t), available.get(t)))
            .sum()
    }

    /// One type's scaled error term.
    #[inline]
    pub fn term(&self, required: u8, available: u8) -> u32 {
        let r = required.min(7) as u32; // 3-bit hardware quantity
        let t = match self.kind {
            CemKind::BarrelShifter => (r >> shift_for_quantity(available)) * ERROR_SCALE,
            CemKind::ExactDivider => r * ERROR_SCALE / (available.max(1) as u32),
        };
        #[cfg(debug_assertions)]
        if self.kind == CemKind::BarrelShifter {
            debug_assert_eq!(
                t,
                cem_term_spec(required, available),
                "CemUnit::term diverged from its specification"
            );
        }
        t
    }

    /// The raw (unscaled) 3-bit-adder-tree error of the shifter hardware:
    /// the five shifted terms summed in 3-bit arithmetic. Only meaningful
    /// for [`CemKind::BarrelShifter`].
    ///
    /// # Panics
    /// Panics in debug builds if a term or the sum exceeds 7 while total
    /// demand is within the 7-entry queue bound — that would falsify the
    /// paper's "three-bit adders are sufficient" claim.
    pub fn raw_error(&self, required: &TypeCounts, available: &TypeCounts) -> u8 {
        let mut sum: u8 = 0;
        for &t in &UnitType::ALL {
            let r = required.get(t).min(7);
            let term = r >> shift_for_quantity(available.get(t));
            debug_assert!(term <= 7, "term exceeds 3-bit width");
            sum += term;
        }
        if required.total() <= 7 {
            debug_assert!(sum <= 7, "3-bit sum overflow within paper queue bound");
        }
        sum
    }

    /// Per-type trace of `(required, available, shift-or-divisor, term)`
    /// used by the Fig. 3 experiment printout.
    pub fn trace(&self, required: &TypeCounts, available: &TypeCounts) -> Vec<CemTerm> {
        UnitType::ALL
            .iter()
            .map(|&t| CemTerm {
                unit: t,
                required: required.get(t).min(7),
                available: available.get(t),
                divisor: match self.kind {
                    CemKind::BarrelShifter => shifter_divisor(available.get(t)),
                    CemKind::ExactDivider => available.get(t).max(1) as u32,
                },
                term: self.term(required.get(t), available.get(t)),
            })
            .collect()
    }
}

/// One barrel-shifter CEM term as a pure gate-level specification
/// (mirroring the `*_scan` idiom of `rsp-fabric`): clamp both operands
/// to their 3-bit hardware quantities, derive the shift from the upper
/// two availability bits exactly as Fig. 3(c) wires them, shift, scale.
/// [`CemUnit::term`] cross-checks against this in debug builds; the
/// bit-sliced lane kernel's differential tests compare against it
/// directly, not against CEM internals.
pub fn cem_term_spec(required: u8, available: u8) -> u32 {
    // 3-bit hardware quantities; Fig. 3(c) wires the shift select from
    // the upper two availability bits.
    let r = required.min(7);
    let q = available.min(7);
    let s2 = q & 0b100 != 0;
    let s1 = !s2 && (q & 0b010 != 0);
    let shifted = if s2 {
        r >> 2
    } else if s1 {
        r >> 1
    } else {
        r
    };
    (shifted as u32) * ERROR_SCALE
}

/// The full five-type barrel-shifter CEM as a specification: the sum of
/// the per-type [`cem_term_spec`] terms. Equal to
/// `CemUnit::PAPER.error(..)` for every input (a proptest pins this),
/// and to `ERROR_SCALE ×` [`CemUnit::raw_error`] whenever total demand
/// fits the paper's 7-entry queue.
pub fn cem_error_spec(required: &TypeCounts, available: &TypeCounts) -> u32 {
    UnitType::ALL
        .iter()
        .map(|&t| cem_term_spec(required.get(t), available.get(t)))
        .sum()
}

/// One row of a CEM trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CemTerm {
    /// Unit type.
    pub unit: UnitType,
    /// Required count (3-bit clamped).
    pub required: u8,
    /// Available count in the candidate configuration (incl. FFUs).
    pub available: u8,
    /// Effective divisor used.
    pub divisor: u32,
    /// Scaled error contribution.
    pub term: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shift_control_follows_fig_3c() {
        assert_eq!(shift_for_quantity(0), 0);
        assert_eq!(shift_for_quantity(1), 0);
        assert_eq!(shift_for_quantity(2), 1);
        assert_eq!(shift_for_quantity(3), 1);
        assert_eq!(shift_for_quantity(4), 2);
        assert_eq!(shift_for_quantity(5), 2);
        assert_eq!(shift_for_quantity(6), 2);
        assert_eq!(shift_for_quantity(7), 2);
        // Beyond the 3-bit quantity the hardware clamps.
        assert_eq!(shift_for_quantity(200), 2);
        assert_eq!(shifter_divisor(3), 2);
    }

    #[test]
    fn zero_demand_zero_error() {
        let avail = TypeCounts::new([3, 1, 2, 1, 1]);
        assert_eq!(CemUnit::PAPER.error(&TypeCounts::ZERO, &avail), 0);
        assert_eq!(CemUnit::EXACT.error(&TypeCounts::ZERO, &avail), 0);
    }

    #[test]
    fn shifter_error_examples() {
        // 4 ALUs required, 3 available → shift 1 → 4>>1 = 2 (scaled).
        assert_eq!(CemUnit::PAPER.term(4, 3), 2 * ERROR_SCALE);
        // 4 required, 4 available → shift 2 → 1.
        assert_eq!(CemUnit::PAPER.term(4, 4), ERROR_SCALE);
        // 3 required, 1 available → shift 0 → 3.
        assert_eq!(CemUnit::PAPER.term(3, 1), 3 * ERROR_SCALE);
        // 1 required, 2 available → 1>>1 = 0: the shifter *underestimates*.
        assert_eq!(CemUnit::PAPER.term(1, 2), 0);
        // The exact divider keeps the fraction.
        assert_eq!(CemUnit::EXACT.term(1, 2), ERROR_SCALE / 2);
    }

    #[test]
    fn exact_divider_is_scaled_rational() {
        assert_eq!(CemUnit::EXACT.term(4, 3), 4 * ERROR_SCALE / 3);
        assert_eq!(CemUnit::EXACT.term(7, 8), 7 * ERROR_SCALE / 8);
        // avail 0 guarded to 1 (cannot happen with FFUs present).
        assert_eq!(CemUnit::EXACT.term(5, 0), 5 * ERROR_SCALE);
    }

    #[test]
    fn full_error_sums_types() {
        let req = TypeCounts::new([2, 1, 2, 0, 0]);
        let avail = TypeCounts::new([3, 2, 3, 1, 1]); // Config 1 + FFUs
                                                      // ALU: 2>>1=1, MDU: 1>>1=0, LSU: 2>>1=1 → 2 total.
        assert_eq!(CemUnit::PAPER.error(&req, &avail), 2 * ERROR_SCALE);
        // Exact: 2*840/3 + 1*840/2 + 2*840/3 = 560+420+560 = 1540.
        assert_eq!(CemUnit::EXACT.error(&req, &avail), 1540);
    }

    #[test]
    fn trace_rows_are_consistent() {
        let req = TypeCounts::new([4, 0, 1, 0, 2]);
        let avail = TypeCounts::new([1, 1, 3, 1, 2]);
        for kind in [CemUnit::PAPER, CemUnit::EXACT] {
            let rows = kind.trace(&req, &avail);
            assert_eq!(rows.len(), 5);
            let total: u32 = rows.iter().map(|r| r.term).sum();
            assert_eq!(total, kind.error(&req, &avail));
        }
    }

    fn arb_counts(max_total: u32) -> impl Strategy<Value = TypeCounts> {
        proptest::collection::vec(0u8..8, 5).prop_map(move |v| {
            let mut c = TypeCounts::new([v[0], v[1], v[2], v[3], v[4]]);
            // Trim lanes until the total respects the queue bound.
            while c.total() > max_total {
                for &t in &UnitType::ALL {
                    if c.total() > max_total && c.get(t) > 0 {
                        c.set(t, c.get(t) - 1);
                    }
                }
            }
            c
        })
    }

    proptest! {
        /// DESIGN.md invariant 3 (width claim): with ≤ 7 total demand the
        /// raw shifter error fits 3 bits.
        #[test]
        fn prop_three_bit_adders_sufficient(
            req in arb_counts(7),
            avail in proptest::collection::vec(0u8..9, 5)
        ) {
            let avail = TypeCounts::new([avail[0], avail[1], avail[2], avail[3], avail[4]]);
            let raw = CemUnit::PAPER.raw_error(&req, &avail);
            prop_assert!(raw <= 7, "raw error {raw} needs more than 3 bits");
            prop_assert_eq!(raw as u32 * ERROR_SCALE, CemUnit::PAPER.error(&req, &avail));
        }

        /// The shifter never *overestimates* the exact division by more
        /// than the divisor quantisation allows: shifter divisor ≤ true
        /// available count when available ∈ {1,2,4}, and the shifter error
        /// is within a factor-2 band of the exact error.
        #[test]
        fn prop_shifter_brackets_exact(
            req in 0u8..8,
            avail in 1u8..8
        ) {
            let exact = CemUnit::EXACT.term(req, avail) as f64;
            let approx = CemUnit::PAPER.term(req, avail) as f64;
            // divisor ∈ {1,2,4} vs true avail ∈ [1,7]: the approximation's
            // divisor is within [avail/2, 2*avail] … except floor() may
            // zero small terms. Check the band only when approx > 0.
            if approx > 0.0 {
                prop_assert!(approx <= exact * 2.0 + f64::EPSILON);
                prop_assert!(approx + (ERROR_SCALE as f64) > exact / 2.0);
            }
        }

        /// Error is monotone in demand: more required units of any type
        /// never decreases the error.
        #[test]
        fn prop_monotone_in_demand(
            req in arb_counts(6),
            avail in arb_counts(31),
            bump in 0usize..5
        ) {
            for kind in [CemUnit::PAPER, CemUnit::EXACT] {
                let base = kind.error(&req, &avail);
                let mut more = req;
                more.add(UnitType::from_index(bump).unwrap(), 1);
                prop_assert!(kind.error(&more, &avail) >= base);
            }
        }

        /// The pure specification matches the shifter implementation on
        /// every input, term-wise and summed.
        #[test]
        fn prop_spec_matches_shifter(req in arb_counts(31), avail in arb_counts(31)) {
            prop_assert_eq!(CemUnit::PAPER.error(&req, &avail), cem_error_spec(&req, &avail));
            for &t in &UnitType::ALL {
                prop_assert_eq!(
                    CemUnit::PAPER.term(req.get(t), avail.get(t)),
                    cem_term_spec(req.get(t), avail.get(t))
                );
            }
        }

        /// Within the paper's queue bound the spec is the scaled 3-bit
        /// raw error — the width claim, restated against the spec.
        #[test]
        fn prop_spec_is_scaled_raw_error(req in arb_counts(2), avail in arb_counts(7)) {
            // The vendored proptest has no prop_assume!; skip over-bound draws.
            if req.total() > 7 {
                return;
            }
            prop_assert_eq!(
                cem_error_spec(&req, &avail),
                ERROR_SCALE * CemUnit::PAPER.raw_error(&req, &avail) as u32
            );
        }

        /// Error is antitone in supply: more available units of any type
        /// never increases the error.
        #[test]
        fn prop_antitone_in_supply(
            req in arb_counts(7),
            avail in arb_counts(31),
            bump in 0usize..5
        ) {
            for kind in [CemUnit::PAPER, CemUnit::EXACT] {
                let base = kind.error(&req, &avail);
                let mut more = avail;
                more.add(UnitType::from_index(bump).unwrap(), 1);
                prop_assert!(kind.error(&req, &more) <= base);
            }
        }
    }
}

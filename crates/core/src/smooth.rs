//! Demand smoothing: an EWMA filter in front of the selection unit.
//!
//! Experiments E1/E10 show the paper's purely reactive selector can
//! *churn* on workloads whose ready-window composition oscillates from
//! cycle to cycle (each flip starts partial reconfigurations that are
//! stale before they finish). This module adds the obvious
//! hardware-cheap fix the paper leaves on the table: low-pass filter the
//! per-type demand before it reaches the CEM generators.
//!
//! The filter is shift-based, exactly as the paper's barrel-shifter
//! aesthetic suggests: fixed-point accumulators with
//! `acc ← acc − (acc ≫ k) + (sample ≪ (F − k))`, i.e. an EWMA with
//! `α = 2^-k`, needing one subtractor and one adder per type and no
//! multipliers. `k = 0` degenerates to the paper's unfiltered behaviour.

use crate::policy::{PaperSteering, PolicyOutcome, SteeringPolicy};
use rsp_fabric::fabric::Fabric;
use rsp_isa::units::{TypeCounts, UnitType};
use serde::{Deserialize, Serialize};

/// Fixed-point fraction bits of the filter accumulators.
const FRAC_BITS: u32 = 8;

/// A per-type shift-based EWMA filter over demand signatures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandFilter {
    /// Smoothing shift `k` (α = 2^-k). 0 = pass-through.
    pub shift: u32,
    acc: [u32; 5],
}

impl DemandFilter {
    /// A filter with smoothing shift `k` (clamped to 0..=7; larger
    /// shifts make the accumulator movement sub-LSB for 3-bit demands).
    pub fn new(shift: u32) -> DemandFilter {
        DemandFilter {
            shift: shift.min(7),
            acc: [0; 5],
        }
    }

    /// Feed one demand sample; returns the rounded filtered demand.
    pub fn update(&mut self, sample: &TypeCounts) -> TypeCounts {
        if self.shift == 0 {
            return *sample;
        }
        let mut out = TypeCounts::ZERO;
        for &t in &UnitType::ALL {
            let i = t.index();
            let target = (sample.get(t) as u32) << FRAC_BITS;
            // acc += (target - acc) >> k, in signed arithmetic.
            let delta = (target as i64 - self.acc[i] as i64) >> self.shift;
            self.acc[i] = (self.acc[i] as i64 + delta) as u32;
            // Round to nearest integer demand.
            out.set(
                t,
                ((self.acc[i] + (1 << (FRAC_BITS - 1))) >> FRAC_BITS) as u8,
            );
        }
        out
    }

    /// Current filtered demand without feeding a sample.
    pub fn current(&self) -> TypeCounts {
        let mut out = TypeCounts::ZERO;
        for &t in &UnitType::ALL {
            out.set(
                t,
                ((self.acc[t.index()] + (1 << (FRAC_BITS - 1))) >> FRAC_BITS) as u8,
            );
        }
        out
    }

    /// Reset the accumulators.
    pub fn reset(&mut self) {
        self.acc = [0; 5];
    }
}

/// The paper's steering mechanism with a [`DemandFilter`] in front of the
/// selection unit (the rest of the pipeline is untouched).
#[derive(Debug, Clone)]
pub struct SmoothedSteering {
    /// The underlying paper policy.
    pub inner: PaperSteering,
    /// The demand filter.
    pub filter: DemandFilter,
}

impl SmoothedSteering {
    /// Paper defaults with smoothing shift `k`.
    pub fn paper_default(shift: u32) -> SmoothedSteering {
        SmoothedSteering {
            inner: PaperSteering::paper_default(),
            filter: DemandFilter::new(shift),
        }
    }
}

impl SteeringPolicy for SmoothedSteering {
    fn name(&self) -> String {
        format!("{}+ewma{}", self.inner.name(), self.filter.shift)
    }

    fn tick(&mut self, demand: &TypeCounts, fabric: &mut Fabric) -> PolicyOutcome {
        let filtered = self.filter.update(demand);
        self.inner.tick(&filtered, fabric)
    }

    fn tick_observed(
        &mut self,
        demand: &TypeCounts,
        fabric: &mut Fabric,
        obs: &mut rsp_obs::Telemetry,
    ) -> PolicyOutcome {
        let filtered = self.filter.update(demand);
        self.inner.tick_observed(&filtered, fabric, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_zero_is_identity() {
        let mut f = DemandFilter::new(0);
        let d = TypeCounts::new([3, 0, 2, 1, 0]);
        assert_eq!(f.update(&d), d);
        assert_eq!(f.update(&TypeCounts::ZERO), TypeCounts::ZERO);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut f = DemandFilter::new(3);
        let d = TypeCounts::new([4, 0, 2, 0, 1]);
        let mut last = TypeCounts::ZERO;
        for _ in 0..200 {
            last = f.update(&d);
        }
        assert_eq!(last, d, "filter must converge to a constant input");
        assert_eq!(f.current(), d);
    }

    #[test]
    fn suppresses_alternation() {
        // Demand flips between all-int and all-fp every cycle; the
        // filtered output must settle near the average instead of
        // flapping.
        let a = TypeCounts::new([6, 0, 0, 0, 0]);
        let b = TypeCounts::new([0, 0, 0, 6, 0]);
        let mut f = DemandFilter::new(4);
        let mut outputs = Vec::new();
        for i in 0..400 {
            let d = if i % 2 == 0 { a } else { b };
            outputs.push(f.update(&d));
        }
        let tail = &outputs[300..];
        // After warm-up the output no longer changes between cycles.
        assert!(
            tail.windows(2).all(|w| {
                let d0 = w[0];
                let d1 = w[1];
                UnitType::ALL
                    .iter()
                    .all(|&t| d0.get(t).abs_diff(d1.get(t)) <= 1)
            }),
            "filtered output still flapping: {:?}",
            &tail[..4]
        );
        // And it sits near the mean (3 each).
        let last = *outputs.last().unwrap();
        assert!(last.get(UnitType::IntAlu) >= 2 && last.get(UnitType::IntAlu) <= 4);
        assert!(last.get(UnitType::FpAlu) >= 2 && last.get(UnitType::FpAlu) <= 4);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = DemandFilter::new(2);
        f.update(&TypeCounts::new([7, 7, 7, 7, 7]));
        f.reset();
        assert_eq!(f.current(), TypeCounts::ZERO);
    }

    #[test]
    fn shift_clamped() {
        assert_eq!(DemandFilter::new(99).shift, 7);
    }

    #[test]
    fn policy_name_and_delegation() {
        use rsp_fabric::fabric::FabricParams;
        let mut p = SmoothedSteering::paper_default(3);
        assert_eq!(p.name(), "paper-steering+ewma3");
        let mut fab = Fabric::new(FabricParams::default());
        // Constant FP demand steers like the unfiltered policy, just
        // slower to start.
        let demand = TypeCounts::new([0, 0, 2, 2, 2]);
        // One reconfig port at 32 cycles/slot: loading the whole 8-slot
        // config takes ~256 cycles, plus filter warm-up.
        for _ in 0..450 {
            p.tick(&demand, &mut fab);
            fab.tick();
        }
        assert_eq!(
            fab.rfu_counts(),
            p.inner.loader.set().predefined[2].counts,
            "fabric: {}",
            fab.slot_map()
        );
    }
}

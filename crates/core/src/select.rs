//! Stage 4 — minimal error selection, and the assembled four-stage
//! configuration selection unit (Fig. 2).
//!
//! The selector receives the four error metrics (current configuration
//! first, then the three predefined steering configurations) and outputs
//! a **two-bit** selection. Tie rules (paper §3.1):
//!
//! * minimal error wins;
//! * "in cases where the configuration errors are equal, the minimal
//!   error selection circuit … identif\[ies\] the configuration that
//!   requires the least amount of reconfiguration";
//! * "the current configuration is always favored over any predefined
//!   steering configuration that has the same error metric value" — the
//!   current configuration needs zero reconfiguration, so the first rule
//!   implies this one, and the selector additionally enforces it even if
//!   a predefined configuration also needed zero slots.

use crate::cem::CemUnit;
use crate::encoder::RequirementEncoder;
use rsp_fabric::alloc::AllocationVector;
use rsp_fabric::config::SteeringSet;
use rsp_isa::units::TypeCounts;
use rsp_isa::Instruction;
use serde::{Deserialize, Serialize};

/// The configuration the selection unit chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfigChoice {
    /// Keep steering toward the current configuration (Config 0).
    Current,
    /// Steer toward predefined configuration `i` (0-based; Table 1's
    /// "Config i+1").
    Predefined(usize),
}

impl ConfigChoice {
    /// The unit's two-bit output encoding: 0 = current, 1–3 = predefined.
    #[inline]
    pub fn two_bit(self) -> u8 {
        match self {
            ConfigChoice::Current => 0,
            ConfigChoice::Predefined(i) => (i + 1) as u8,
        }
    }

    /// Decode the two-bit value.
    #[inline]
    pub fn from_two_bit(v: u8) -> ConfigChoice {
        match v & 0b11 {
            0 => ConfigChoice::Current,
            i => ConfigChoice::Predefined((i - 1) as usize),
        }
    }
}

impl std::fmt::Display for ConfigChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigChoice::Current => write!(f, "Config 0 (current)"),
            ConfigChoice::Predefined(i) => write!(f, "Config {}", i + 1),
        }
    }
}

/// Tie-breaking behaviour at equal minimal error (experiment E3 ablates
/// the paper's rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TieBreak {
    /// The paper's rule: least reconfiguration wins and the current
    /// configuration always beats a predefined one at equal error.
    #[default]
    FavorCurrent,
    /// Ablation: a predefined configuration at equal error displaces the
    /// current one (no stability bias); among predefined, least
    /// reconfiguration then lowest index.
    PreferPredefined,
}

/// The minimal-error selection circuit.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimalErrorSelector;

impl MinimalErrorSelector {
    /// Choose among candidates with the paper's tie rules.
    /// `errors[0]`/`reconfig_cost[0]` belong to the current
    /// configuration; the rest to the predefined ones.
    ///
    /// Returns the candidate index (0 = current).
    pub fn select(&self, errors: &[u32], reconfig_cost: &[usize]) -> usize {
        self.select_with(errors, reconfig_cost, TieBreak::FavorCurrent)
    }

    /// Choose among candidates with an explicit tie-break rule.
    pub fn select_with(&self, errors: &[u32], reconfig_cost: &[usize], tie: TieBreak) -> usize {
        assert_eq!(errors.len(), reconfig_cost.len());
        assert!(!errors.is_empty());
        let mut best = 0usize;
        for i in 1..errors.len() {
            let better = errors[i] < errors[best]
                || (errors[i] == errors[best]
                    && match tie {
                        // Never displace the current configuration (index
                        // 0) at equal error, whatever the costs say.
                        TieBreak::FavorCurrent => {
                            best != 0 && reconfig_cost[i] < reconfig_cost[best]
                        }
                        // Always displace the current configuration at
                        // equal error; break predefined ties by cost.
                        TieBreak::PreferPredefined => {
                            best == 0 || reconfig_cost[i] < reconfig_cost[best]
                        }
                    });
            if better {
                best = i;
            }
        }
        best
    }
}

/// Full output of one selection-unit evaluation, including the stage
/// traces the Fig. 2/3 experiments print.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionResult {
    /// The chosen configuration.
    pub choice: ConfigChoice,
    /// Stage-2 output: required units of each type.
    pub required: TypeCounts,
    /// Stage-3 outputs: scaled error of `[current, config1, config2,
    /// config3, …]`.
    pub errors: Vec<u32>,
    /// Slots each candidate would need reloaded (0 for current).
    pub reconfig_cost: Vec<usize>,
    /// Per-candidate total available counts (incl. FFUs) fed to the CEMs.
    pub candidate_counts: Vec<TypeCounts>,
}

impl SelectionResult {
    /// The unit's two-bit output.
    #[inline]
    pub fn two_bit(&self) -> u8 {
        self.choice.two_bit()
    }
}

/// The assembled configuration selection unit: unit decoders →
/// requirement encoders → CEM generators → minimal error selection.
///
/// ```
/// use rsp_core::{ConfigChoice, SelectionUnit};
/// use rsp_fabric::config::SteeringSet;
/// use rsp_isa::units::TypeCounts;
///
/// let set = SteeringSet::paper_default();
/// // Running on Config 1 (integer) with pure FP demand in the queue:
/// let current = &set.predefined[0];
/// let demand = TypeCounts::new([0, 0, 2, 2, 2]);
/// let (choice, _err) = SelectionUnit::PAPER.choose(
///     demand,
///     set.total_counts(0),
///     &current.placement,
///     &set,
/// );
/// assert_eq!(choice, ConfigChoice::Predefined(2), "steer to the FP config");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectionUnit {
    /// Stage-2 encoder bank.
    pub encoder: RequirementEncoder,
    /// Stage-3 error metric implementation.
    pub cem: CemUnit,
    /// Stage-4 tie-break rule.
    pub tie: TieBreak,
}

impl SelectionUnit {
    /// The paper's configuration: 3-bit encoders, barrel-shifter CEMs,
    /// favor-current tie-breaking.
    pub const PAPER: SelectionUnit = SelectionUnit {
        encoder: RequirementEncoder::PAPER,
        cem: CemUnit::PAPER,
        tie: TieBreak::FavorCurrent,
    };

    /// Evaluate the unit on a queue snapshot.
    ///
    /// * `queue` — the instructions in the instruction queue that are
    ///   ready to be executed (not yet scheduled);
    /// * `current_counts` — units of each type currently configured
    ///   (RFUs + FFUs), as reported by the configuration loader;
    /// * `current_alloc` — the live resource allocation vector (for the
    ///   least-reconfiguration tie-break);
    /// * `set` — the predefined steering configurations.
    pub fn select(
        &self,
        queue: &[Instruction],
        current_counts: TypeCounts,
        current_alloc: &AllocationVector,
        set: &SteeringSet,
    ) -> SelectionResult {
        let required = self.encoder.encode_instructions(queue);
        self.select_from_counts(required, current_counts, current_alloc, set)
    }

    /// Stages 3–4 only, for callers that already hold the stage-2 counts.
    pub fn select_from_counts(
        &self,
        required: TypeCounts,
        current_counts: TypeCounts,
        current_alloc: &AllocationVector,
        set: &SteeringSet,
    ) -> SelectionResult {
        let n = 1 + set.predefined.len();
        let mut errors = Vec::with_capacity(n);
        let mut cost = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);

        // Candidate 0: the current configuration.
        errors.push(self.cem.error(&required, &current_counts));
        cost.push(0);
        counts.push(current_counts);

        // Candidates 1..: the predefined steering configurations.
        for (i, c) in set.predefined.iter().enumerate() {
            let total = set.total_counts(i);
            errors.push(self.cem.error(&required, &total));
            cost.push(c.placement.diff_count(current_alloc));
            counts.push(total);
        }

        let best = MinimalErrorSelector.select_with(&errors, &cost, self.tie);
        let choice = if best == 0 {
            ConfigChoice::Current
        } else {
            ConfigChoice::Predefined(best - 1)
        };
        SelectionResult {
            choice,
            required,
            errors,
            reconfig_cost: cost,
            candidate_counts: counts,
        }
    }

    /// Allocation-free fast path for per-cycle use: stages 3–4 only,
    /// returning the choice and its error. Semantically identical to
    /// [`SelectionUnit::select_from_counts`] (a test pins this).
    pub fn choose(
        &self,
        required: TypeCounts,
        current_counts: TypeCounts,
        current_alloc: &AllocationVector,
        set: &SteeringSet,
    ) -> (ConfigChoice, u32) {
        let mut scores = [0u32; rsp_obs::MAX_CANDIDATES];
        let (choice, err, _) =
            self.choose_with_scores(required, current_counts, current_alloc, set, &mut scores);
        (choice, err)
    }

    /// [`SelectionUnit::choose`], additionally writing each candidate's
    /// CEM error into `scores` (candidate 0 = current configuration) for
    /// telemetry. Returns the choice, its error, and the number of
    /// scored candidates (capped at `scores.len()`; selection itself
    /// always considers every candidate).
    pub fn choose_with_scores(
        &self,
        required: TypeCounts,
        current_counts: TypeCounts,
        current_alloc: &AllocationVector,
        set: &SteeringSet,
        scores: &mut [u32; rsp_obs::MAX_CANDIDATES],
    ) -> (ConfigChoice, u32, usize) {
        self.choose_with_scores_overriding(
            required,
            current_counts,
            &[],
            current_alloc,
            set,
            scores,
        )
    }

    /// [`SelectionUnit::choose_with_scores`] with per-candidate count
    /// overrides: predefined candidate `i` is scored against
    /// `candidate_counts[i]` instead of the nominal
    /// [`SteeringSet::total_counts`] (missing entries fall back to the
    /// nominal counts). The fault-aware steering path passes the
    /// *effective* (zombie- and dead-slot-discounted) capacities here so
    /// the CEMs never score phantom units; an empty slice makes this
    /// bit-identical to the nominal path.
    pub fn choose_with_scores_overriding(
        &self,
        required: TypeCounts,
        current_counts: TypeCounts,
        candidate_counts: &[TypeCounts],
        current_alloc: &AllocationVector,
        set: &SteeringSet,
        scores: &mut [u32; rsp_obs::MAX_CANDIDATES],
    ) -> (ConfigChoice, u32, usize) {
        scores.fill(0);
        let mut best = 0usize;
        let mut best_err = self.cem.error(&required, &current_counts);
        let mut best_cost = 0usize;
        scores[0] = best_err;
        for (i, c) in set.predefined.iter().enumerate() {
            let total = candidate_counts
                .get(i)
                .copied()
                .unwrap_or_else(|| set.total_counts(i));
            let err = self.cem.error(&required, &total);
            let cost = c.placement.diff_count(current_alloc);
            if i + 1 < scores.len() {
                scores[i + 1] = err;
            }
            let better = err < best_err
                || (err == best_err
                    && match self.tie {
                        TieBreak::FavorCurrent => best != 0 && cost < best_cost,
                        TieBreak::PreferPredefined => best == 0 || cost < best_cost,
                    });
            if better {
                best = i + 1;
                best_err = err;
                best_cost = cost;
            }
        }
        let choice = if best == 0 {
            ConfigChoice::Current
        } else {
            ConfigChoice::Predefined(best - 1)
        };
        let scored = (1 + set.predefined.len()).min(scores.len());
        (choice, best_err, scored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsp_fabric::config::Configuration;
    use rsp_isa::regs::{FReg, IReg};
    use rsp_isa::Opcode;

    fn set() -> SteeringSet {
        SteeringSet::paper_default()
    }

    fn fp_heavy_queue() -> Vec<Instruction> {
        vec![
            Instruction::fff(Opcode::Fadd, FReg::new(1), FReg::new(2), FReg::new(3)),
            Instruction::fff(Opcode::Fsub, FReg::new(4), FReg::new(5), FReg::new(6)),
            Instruction::fff(Opcode::Fmul, FReg::new(7), FReg::new(8), FReg::new(9)),
            Instruction::fff(Opcode::Fdiv, FReg::new(10), FReg::new(11), FReg::new(12)),
            Instruction::flw(FReg::new(13), IReg::new(1), 0),
            Instruction::flw(FReg::new(14), IReg::new(1), 1),
        ]
    }

    fn int_heavy_queue() -> Vec<Instruction> {
        vec![
            Instruction::rrr(Opcode::Add, IReg::new(1), IReg::new(2), IReg::new(3)),
            Instruction::rrr(Opcode::Sub, IReg::new(4), IReg::new(5), IReg::new(6)),
            Instruction::rrr(Opcode::Xor, IReg::new(7), IReg::new(8), IReg::new(9)),
            Instruction::rrr(Opcode::Mul, IReg::new(10), IReg::new(11), IReg::new(12)),
            Instruction::lw(IReg::new(13), IReg::new(1), 0),
            Instruction::lw(IReg::new(14), IReg::new(1), 1),
        ]
    }

    #[test]
    fn two_bit_roundtrip() {
        for v in 0..4u8 {
            assert_eq!(ConfigChoice::from_two_bit(v).two_bit(), v);
        }
        assert_eq!(ConfigChoice::Predefined(2).two_bit(), 3);
        assert_eq!(ConfigChoice::Current.to_string(), "Config 0 (current)");
        assert_eq!(ConfigChoice::Predefined(0).to_string(), "Config 1");
    }

    #[test]
    fn fp_queue_steers_to_fp_config() {
        // Current fabric: Config 1 (integer) loaded.
        let s = set();
        let current = Configuration::place("cur", s.predefined[0].counts, 8).unwrap();
        let current_counts = s.predefined[0].counts.saturating_add(&s.ffu);
        let r =
            SelectionUnit::PAPER.select(&fp_heavy_queue(), current_counts, &current.placement, &s);
        assert_eq!(
            r.choice,
            ConfigChoice::Predefined(2),
            "errors={:?}",
            r.errors
        );
        assert_eq!(r.two_bit(), 3);
    }

    #[test]
    fn int_queue_on_int_config_stays_current() {
        let s = set();
        let current = &s.predefined[0]; // Config 1 loaded
        let current_counts = s.total_counts(0);
        let r =
            SelectionUnit::PAPER.select(&int_heavy_queue(), current_counts, &current.placement, &s);
        // Current has the same counts as Config 1 → same error; current
        // must win the tie.
        assert_eq!(r.errors[0], r.errors[1]);
        assert_eq!(r.choice, ConfigChoice::Current);
    }

    #[test]
    fn empty_queue_keeps_current() {
        let s = set();
        let current = AllocationVector::empty(8);
        let r = SelectionUnit::PAPER.select(&[], s.ffu, &current, &s);
        assert!(r.required.is_zero());
        // All errors zero → current wins every tie.
        assert!(r.errors.iter().all(|&e| e == 0));
        assert_eq!(r.choice, ConfigChoice::Current);
    }

    #[test]
    fn tie_between_predefined_goes_to_least_reconfiguration() {
        let sel = MinimalErrorSelector;
        // current has error 5; two predefined tie at 3; costs 6 vs 2.
        assert_eq!(sel.select(&[5, 3, 3], &[0, 6, 2]), 2);
        // Equal costs → lowest index.
        assert_eq!(sel.select(&[5, 3, 3], &[0, 4, 4]), 1);
    }

    #[test]
    fn current_beats_predefined_even_at_zero_cost() {
        let sel = MinimalErrorSelector;
        // Predefined config identical to current: same error, cost 0.
        assert_eq!(sel.select(&[3, 3], &[0, 0]), 0);
    }

    #[test]
    fn strictly_better_predefined_wins() {
        let sel = MinimalErrorSelector;
        assert_eq!(sel.select(&[4, 3, 5, 9], &[0, 8, 1, 0]), 1);
    }

    #[test]
    fn hybrid_current_configuration_can_win() {
        // A hybrid (overlap of configs) that matches demand better than
        // any predefined configuration must be kept.
        let s = set();
        // Hybrid: 1 Int-ALU, 1 FP-ALU, 3 LSU (2+3+3 = 8 slots).
        let mut hybrid = AllocationVector::empty(8);
        hybrid.place(0, rsp_isa::UnitType::IntAlu);
        hybrid.place(2, rsp_isa::UnitType::FpAlu);
        hybrid.place(5, rsp_isa::UnitType::Lsu);
        hybrid.place(6, rsp_isa::UnitType::Lsu);
        hybrid.place(7, rsp_isa::UnitType::Lsu);
        let current_counts = hybrid.counts().saturating_add(&s.ffu);
        // Demand: 2 ALU, 4 LSU, 1 FP-ALU.
        let queue = vec![
            Instruction::rrr(Opcode::Add, IReg::new(1), IReg::new(2), IReg::new(3)),
            Instruction::rrr(Opcode::Or, IReg::new(4), IReg::new(5), IReg::new(6)),
            Instruction::lw(IReg::new(7), IReg::new(1), 0),
            Instruction::lw(IReg::new(8), IReg::new(1), 1),
            Instruction::lw(IReg::new(9), IReg::new(1), 2),
            Instruction::lw(IReg::new(10), IReg::new(1), 3),
            Instruction::fff(Opcode::Fadd, FReg::new(1), FReg::new(2), FReg::new(3)),
        ];
        let r = SelectionUnit::PAPER.select(&queue, current_counts, &hybrid, &s);
        assert_eq!(r.choice, ConfigChoice::Current, "errors={:?}", r.errors);
        assert!(r.errors[0] < r.errors[1].min(r.errors[2]).min(r.errors[3]));
    }

    #[test]
    fn prefer_predefined_displaces_current_on_tie() {
        let sel = MinimalErrorSelector;
        assert_eq!(
            sel.select_with(&[3, 3, 5], &[0, 4, 0], TieBreak::PreferPredefined),
            1
        );
        // Among predefined, least cost still wins.
        assert_eq!(
            sel.select_with(&[3, 3, 3], &[0, 4, 2], TieBreak::PreferPredefined),
            2
        );
        // Strictly better current still wins.
        assert_eq!(
            sel.select_with(&[2, 3, 3], &[0, 4, 2], TieBreak::PreferPredefined),
            0
        );
    }

    proptest! {
        /// The allocation-free fast path agrees with the full result
        /// structure for arbitrary demand/fabric states.
        #[test]
        fn prop_choose_matches_select_from_counts(
            req in proptest::collection::vec(0u8..8, 5),
            cur in proptest::collection::vec(0u8..4, 5),
            tie_pred in proptest::bool::ANY
        ) {
            let s = set();
            let required = TypeCounts::new([req[0], req[1], req[2], req[3], req[4]]).saturating_3bit();
            // Build a plausible "current" allocation: one of the
            // predefined placements, so diff costs vary.
            let current_alloc = &s.predefined[(req[0] as usize) % 3].placement;
            let current_counts = TypeCounts::new([cur[0], cur[1], cur[2], cur[3], cur[4]]);
            let unit = SelectionUnit {
                tie: if tie_pred { TieBreak::PreferPredefined } else { TieBreak::FavorCurrent },
                ..SelectionUnit::PAPER
            };
            let full = unit.select_from_counts(required, current_counts, current_alloc, &s);
            let (choice, err) = unit.choose(required, current_counts, current_alloc, &s);
            prop_assert_eq!(choice, full.choice);
            let idx = full.choice.two_bit() as usize;
            prop_assert_eq!(err, full.errors[idx]);
            // The telemetry variant records exactly the stage-3 errors.
            let mut scores = [0u32; rsp_obs::MAX_CANDIDATES];
            let (c2, e2, scored) =
                unit.choose_with_scores(required, current_counts, current_alloc, &s, &mut scores);
            prop_assert_eq!(c2, full.choice);
            prop_assert_eq!(e2, err);
            prop_assert_eq!(scored, full.errors.len().min(scores.len()));
            prop_assert_eq!(&scores[..scored], &full.errors[..scored]);
            // The count-overriding variant is bit-identical when handed
            // the nominal counts (or no overrides at all).
            let nominal: Vec<TypeCounts> =
                (0..s.predefined.len()).map(|i| s.total_counts(i)).collect();
            for overrides in [&nominal[..], &nominal[..1], &[][..]] {
                let mut scores_o = [0u32; rsp_obs::MAX_CANDIDATES];
                let (c3, e3, scored3) = unit.choose_with_scores_overriding(
                    required, current_counts, overrides, current_alloc, &s, &mut scores_o);
                prop_assert_eq!(c3, full.choice);
                prop_assert_eq!(e3, err);
                prop_assert_eq!(scored3, scored);
                prop_assert_eq!(&scores_o[..scored3], &scores[..scored]);
            }
        }

        /// DESIGN.md invariant 4: the selector never returns a candidate
        /// with a strictly higher error than another candidate, and at
        /// equal error the current configuration is never displaced.
        #[test]
        fn prop_selector_minimality(
            errors in proptest::collection::vec(0u32..10, 1..6),
            costs in proptest::collection::vec(0usize..10, 1..6)
        ) {
            let n = errors.len().min(costs.len());
            let errors = &errors[..n];
            let mut costs = costs[..n].to_vec();
            costs[0] = 0; // current configuration needs no reconfiguration
            let best = MinimalErrorSelector.select(errors, &costs);
            let min = *errors.iter().min().unwrap();
            prop_assert_eq!(errors[best], min);
            if errors[0] == min {
                prop_assert_eq!(best, 0, "current must win ties");
            } else {
                // Among predefined candidates at minimal error, the chosen
                // one has minimal reconfiguration cost.
                let best_cost = costs[best];
                for i in 1..n {
                    if errors[i] == min {
                        prop_assert!(best_cost <= costs[i]);
                    }
                }
            }
        }
    }
}

//! # rsp-core — the configuration steering machinery
//!
//! This crate is the paper's primary contribution: a fast configuration
//! selection circuit and the configuration loader it drives (paper §3).
//!
//! The **configuration selection unit** (Fig. 2) has four stages:
//!
//! 1. [`decode`] — *unit decoders*: one one-hot "required unit type"
//!    vector per instruction in the queue that is ready to execute.
//! 2. [`encoder`] — *resource requirement encoders*: sum the one-hot
//!    vectors into five 3-bit counts (the queue holds ≤ 7 instructions,
//!    so 3 bits suffice).
//! 3. [`cem`] — *configuration error metric generators* (Fig. 3): for
//!    each of the four candidate configurations (three predefined + the
//!    live current one), approximate `Σ_t required(t) / available(t)`
//!    with barrel shifters that divide by 4, 2, or 1.
//! 4. [`select`] — *minimal error selection*: pick the candidate with
//!    minimal error; ties go to the candidate needing the least
//!    reconfiguration, and the current configuration always beats a
//!    predefined one at equal error.
//!
//! The **configuration loader** ([`loader`]) takes the 2-bit selection,
//! computes the XOR slot-difference against the current resource
//! allocation vector, and partially reconfigures only the RFUs that are
//! not busy and do not already implement the right unit.
//!
//! [`policy`] packages the above as one [`policy::SteeringPolicy`] and
//! adds the baselines and extensions the experiments compare against
//! (static configurations, full-reload, demand-driven steering, and a
//! zero-knowledge never-reconfigure floor). [`basis`] implements the
//! paper's §5 future-work question: searching for a good *basis* of
//! predefined steering configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
pub mod cem;
pub mod decode;
pub mod encoder;
pub mod hwcost;
pub mod loader;
pub mod policy;
pub mod select;
pub mod smooth;

pub use cem::{cem_error_spec, cem_term_spec, CemKind, CemUnit, ERROR_SCALE};
pub use decode::{unit_decoder, OneHot};
pub use encoder::{requirement_counts_spec, requirement_counts_spec_types, RequirementEncoder};
pub use loader::{ConfigurationLoader, LoaderStats};
pub use policy::{DemandDriven, PaperSteering, PolicyOutcome, StaticPolicy, SteeringPolicy};
pub use select::{ConfigChoice, MinimalErrorSelector, SelectionResult, SelectionUnit, TieBreak};
pub use smooth::{DemandFilter, SmoothedSteering};

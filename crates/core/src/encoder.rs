//! Stage 2 — resource requirement encoders (Fig. 2).
//!
//! "This information is collected from all decoders and transformed into
//! a three-bit binary value … that indicates how many functional units of
//! each type are [required to] execute all of the instructions in the
//! instruction queue."
//!
//! One encoder per unit type: it counts how many of the (up to seven)
//! one-hot decoder outputs assert its bit. Because the queue holds at
//! most seven instructions, each count fits in 3 bits — the encoder
//! saturates at 7 to model the hardware width when fed wider queues in
//! scaling experiments (E9).

use crate::decode::OneHot;
use rsp_isa::units::{TypeCounts, UnitType};
use rsp_isa::Instruction;

/// The bank of five resource requirement encoders.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequirementEncoder {
    /// When `Some(n)`, saturate each per-type count at `n` (hardware
    /// width). `None` disables saturation (idealised encoder for
    /// ablations). The paper's width is 3 bits → saturate at 7.
    pub saturate_at: Option<u8>,
}

impl RequirementEncoder {
    /// The paper's 3-bit encoder bank.
    pub const PAPER: RequirementEncoder = RequirementEncoder {
        saturate_at: Some(7),
    };

    /// Sum one-hot vectors into per-type counts.
    pub fn encode(&self, hots: &[OneHot]) -> TypeCounts {
        let mut counts = TypeCounts::ZERO;
        for &oh in hots {
            counts.add(oh.unit_type(), 1);
        }
        self.clamp(counts)
    }

    /// Convenience: decode + encode a queue snapshot in one step.
    pub fn encode_instructions(&self, instrs: &[Instruction]) -> TypeCounts {
        let mut counts = TypeCounts::ZERO;
        for i in instrs {
            counts.add(i.unit_type(), 1);
        }
        self.clamp(counts)
    }

    fn clamp(&self, counts: TypeCounts) -> TypeCounts {
        let clamped = match self.saturate_at {
            Some(7) => counts.saturating_3bit(),
            Some(n) => {
                let mut c = counts;
                for &t in &UnitType::ALL {
                    c.set(t, c.get(t).min(n));
                }
                c
            }
            None => counts,
        };
        debug_assert_eq!(
            clamped,
            requirement_counts_spec(counts, self.saturate_at),
            "RequirementEncoder diverged from its specification"
        );
        clamped
    }
}

/// The stage-2 requirement encoder bank as a pure specification
/// (mirroring the `*_scan` idiom of `rsp-fabric`): per unit type, count
/// the asserted decoder outputs and saturate the 3-bit (or `width`-wide)
/// hardware counter. [`RequirementEncoder`] is cross-checked against
/// this in debug builds; the bit-sliced lane kernel's differential tests
/// compare against it directly, not against encoder internals.
pub fn requirement_counts_spec(raw: TypeCounts, saturate_at: Option<u8>) -> TypeCounts {
    let mut out = TypeCounts::ZERO;
    for &t in &UnitType::ALL {
        let c = raw.get(t);
        out.set(
            t,
            match saturate_at {
                Some(w) => c.min(w),
                None => c,
            },
        );
    }
    out
}

/// [`requirement_counts_spec`] applied to a queue snapshot given as unit
/// types — exactly the view the lane kernel's stage-1 decoders see (one
/// 3-bit type code per occupied entry). The paper's 3-bit width is
/// hard-wired here, matching [`RequirementEncoder::PAPER`].
pub fn requirement_counts_spec_types(entries: &[UnitType]) -> TypeCounts {
    let mut raw = TypeCounts::ZERO;
    for &t in entries {
        raw.add(t, 1);
    }
    requirement_counts_spec(raw, Some(7))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsp_isa::regs::IReg;
    use rsp_isa::Opcode;

    #[test]
    fn counts_by_type() {
        let hots = vec![
            OneHot::of(UnitType::IntAlu),
            OneHot::of(UnitType::IntAlu),
            OneHot::of(UnitType::Lsu),
            OneHot::of(UnitType::FpMdu),
        ];
        let c = RequirementEncoder::PAPER.encode(&hots);
        assert_eq!(c.get(UnitType::IntAlu), 2);
        assert_eq!(c.get(UnitType::Lsu), 1);
        assert_eq!(c.get(UnitType::FpMdu), 1);
        assert_eq!(c.get(UnitType::IntMdu), 0);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn empty_queue_is_zero_demand() {
        assert!(RequirementEncoder::PAPER.encode(&[]).is_zero());
    }

    #[test]
    fn paper_encoder_saturates_at_seven() {
        let hots = vec![OneHot::of(UnitType::IntAlu); 12];
        let c = RequirementEncoder::PAPER.encode(&hots);
        assert_eq!(c.get(UnitType::IntAlu), 7);
        let ideal = RequirementEncoder { saturate_at: None }.encode(&hots);
        assert_eq!(ideal.get(UnitType::IntAlu), 12);
        let narrow = RequirementEncoder {
            saturate_at: Some(3),
        }
        .encode(&hots);
        assert_eq!(narrow.get(UnitType::IntAlu), 3);
    }

    #[test]
    fn instruction_shortcut_matches_two_stage_path() {
        let q = vec![
            Instruction::rrr(Opcode::Add, IReg::new(1), IReg::new(2), IReg::new(3)),
            Instruction::rrr(Opcode::Div, IReg::new(1), IReg::new(2), IReg::new(3)),
            Instruction::lw(IReg::new(1), IReg::new(2), 0),
        ];
        let hots = crate::decode::decode_queue(&q);
        assert_eq!(
            RequirementEncoder::PAPER.encode(&hots),
            RequirementEncoder::PAPER.encode_instructions(&q)
        );
    }

    proptest! {
        /// With ≤ 7 queue entries (the paper's queue size), saturation
        /// never engages and total demand equals queue length.
        #[test]
        fn prop_no_saturation_within_paper_queue(types in proptest::collection::vec(0usize..5, 0..=7)) {
            let hots: Vec<OneHot> = types
                .iter()
                .map(|&i| OneHot::of(UnitType::from_index(i).unwrap()))
                .collect();
            let c = RequirementEncoder::PAPER.encode(&hots);
            prop_assert_eq!(c.total() as usize, hots.len());
            let ideal = RequirementEncoder { saturate_at: None }.encode(&hots);
            prop_assert_eq!(c, ideal);
        }

        /// The pure specification matches the encoder bank on arbitrary
        /// queue snapshots, clamped and unclamped.
        #[test]
        fn prop_spec_matches_encoder(types in proptest::collection::vec(0usize..5, 0..=12)) {
            let units: Vec<UnitType> =
                types.iter().map(|&i| UnitType::from_index(i).unwrap()).collect();
            let hots: Vec<OneHot> = units.iter().map(|&t| OneHot::of(t)).collect();
            let mut raw = TypeCounts::ZERO;
            for &t in &units {
                raw.add(t, 1);
            }
            prop_assert_eq!(
                RequirementEncoder::PAPER.encode(&hots),
                requirement_counts_spec(raw, Some(7))
            );
            if units.len() <= 7 {
                prop_assert_eq!(
                    RequirementEncoder::PAPER.encode(&hots),
                    requirement_counts_spec_types(&units)
                );
            }
        }
    }
}

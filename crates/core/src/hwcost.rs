//! First-order hardware cost model of the configuration selection unit.
//!
//! The paper's argument for the barrel-shifter CEM is complexity and
//! latency: "a more accurate divider circuit could be implemented, if
//! desired, at the expense of increased complexity and latency" (§3.1).
//! This module quantifies that argument with standard textbook gate
//! estimates, so the claim is checkable rather than rhetorical.
//!
//! Conventions (deliberately simple and stated):
//! * unit of area = one two-input gate; a full adder = 5 gates (depth 2
//!   carry path), a half adder = 2 gates (depth 1), a 2:1 mux = 4 gates
//!   (depth 2);
//! * ripple-carry adders (the paper says "3-bit adders", not CLA);
//! * the three *predefined* configurations' shifters are hard-wired
//!   (pure wiring, zero gates) — the paper's own observation; only the
//!   current configuration pays for controllable shifting;
//! * the exact divider is a 3-iteration restoring array divider per type
//!   (3-bit quotient), the cheapest honest comparison point.
//!
//! Parameterised by queue size and type count so the E9 scaling question
//! ("what would a deeper queue cost in selection hardware?") is
//! answerable too.

use serde::{Deserialize, Serialize};

/// Gate-count / gate-depth estimate of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BlockCost {
    /// Two-input-gate equivalents.
    pub gates: u64,
    /// Critical path in gate levels.
    pub depth: u32,
}

impl BlockCost {
    fn seq(self, next: BlockCost) -> BlockCost {
        BlockCost {
            gates: self.gates + next.gates,
            depth: self.depth + next.depth,
        }
    }

    fn par(self, other: BlockCost) -> BlockCost {
        BlockCost {
            gates: self.gates + other.gates,
            depth: self.depth.max(other.depth),
        }
    }

    fn times(self, n: u64) -> BlockCost {
        BlockCost {
            gates: self.gates * n,
            depth: self.depth,
        }
    }
}

const FA: BlockCost = BlockCost { gates: 5, depth: 2 };
const HA: BlockCost = BlockCost { gates: 2, depth: 1 };
const MUX2: BlockCost = BlockCost { gates: 4, depth: 2 };

/// Ceil(log2(n)) for n ≥ 1.
fn clog2(n: u64) -> u32 {
    64 - n.saturating_sub(1).leading_zeros()
}

/// Width in bits of a count up to `n` inclusive.
fn width(n: u64) -> u32 {
    clog2(n + 1).max(1)
}

/// One unit decoder: `opcode_bits`-wide opcode to a `types`-wide one-hot
/// (an AND plane, one product term per type).
pub fn unit_decoder_cost(opcode_bits: u32, types: u32) -> BlockCost {
    // Each one-hot output: an (opcode_bits)-input AND tree of 2-input
    // gates ≈ opcode_bits-1 gates, depth ⌈log2(opcode_bits)⌉. Realistic
    // decoders share terms; we charge the worst case.
    BlockCost {
        gates: (opcode_bits as u64 - 1) * types as u64,
        depth: clog2(opcode_bits as u64),
    }
}

/// One resource requirement encoder: population count of `queue` request
/// bits into a `width(queue)`-bit count, as a carry-save adder tree.
pub fn popcount_cost(queue: u32) -> BlockCost {
    // A popcount of n bits needs ~n-⌈log2(n+1)⌉ full adders plus change;
    // we charge one FA per eliminated bit and HAs at tree edges.
    let n = queue as u64;
    let fas = n.saturating_sub(width(n) as u64);
    BlockCost {
        gates: fas * FA.gates + width(n) as u64 * HA.gates,
        depth: clog2(n) * FA.depth,
    }
}

/// A `bits`-wide ripple-carry adder.
pub fn adder_cost(bits: u32) -> BlockCost {
    BlockCost {
        gates: bits as u64 * FA.gates,
        depth: bits * FA.depth,
    }
}

/// Barrel shifter for one 3-bit quantity with a **controllable** shift of
/// 0/1/2 (two mux stages) — the current configuration's shifter
/// (Fig. 3c). Predefined configurations' shifters are hard-wired: zero
/// gates.
pub fn controllable_shifter_cost(bits: u32) -> BlockCost {
    MUX2.times(bits as u64).seq(MUX2.times(bits as u64))
}

/// A `bits`-quotient restoring divider (the paper's rejected "more
/// accurate divider"): `bits` iterations of subtract + restore mux.
pub fn restoring_divider_cost(bits: u32) -> BlockCost {
    let iter = adder_cost(bits).seq(MUX2.times(bits as u64));
    BlockCost {
        gates: iter.gates * bits as u64,
        depth: iter.depth * bits,
    }
}

/// A `bits`-wide magnitude comparator (A < B).
pub fn comparator_cost(bits: u32) -> BlockCost {
    // Subtract-based: one adder plus sign pick.
    adder_cost(bits).seq(BlockCost { gates: 1, depth: 1 })
}

/// Full cost of one CEM generator over `types` unit types with counts up
/// to `queue` (errors fit `width(queue)` bits).
pub fn cem_cost(types: u32, queue: u32, exact_divider: bool, hard_wired: bool) -> BlockCost {
    let bits = width(queue as u64);
    let per_type = if exact_divider {
        restoring_divider_cost(bits)
    } else if hard_wired {
        BlockCost::default() // pure wiring
    } else {
        controllable_shifter_cost(bits)
    };
    // `types` parallel division units, then an adder tree summing the
    // terms (types-1 adders, ⌈log2 types⌉ deep).
    let divisions = per_type.times(types as u64);
    let sum_tree = BlockCost {
        gates: adder_cost(bits).gates * (types as u64 - 1),
        depth: adder_cost(bits).depth * clog2(types as u64),
    };
    divisions.seq(sum_tree)
}

/// Cost report for the whole selection unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionUnitCost {
    /// Stage 1: all queue-entry unit decoders (parallel).
    pub decoders: BlockCost,
    /// Stage 2: the five requirement encoders (parallel popcounts).
    pub encoders: BlockCost,
    /// Stage 3: four CEM generators (three hard-wired + one current).
    pub cems: BlockCost,
    /// Stage 4: minimal-error comparator tree + tie logic.
    pub selector: BlockCost,
    /// Whole unit (stages in sequence, blocks within a stage parallel).
    pub total: BlockCost,
}

/// Estimate the full selection unit for a machine with `queue` entries,
/// `types` unit types, `predefined` steering configurations, and
/// `opcode_bits`-wide opcodes. `exact_divider` switches stage 3 to the
/// paper's rejected alternative.
pub fn selection_unit_cost(
    queue: u32,
    types: u32,
    predefined: u32,
    opcode_bits: u32,
    exact_divider: bool,
) -> SelectionUnitCost {
    let decoders = unit_decoder_cost(opcode_bits, types).times(queue as u64);
    let encoders = popcount_cost(queue).times(types as u64);
    // Current configuration's CEM pays for controllable shifters (or a
    // real divider); predefined ones are hard-wired (or dividers too).
    let current = cem_cost(types, queue, exact_divider, false);
    let fixed = cem_cost(types, queue, exact_divider, true).times(predefined as u64);
    let cems = current.par(fixed);
    // Selector: (1+predefined)-way minimum over width(queue)-bit errors,
    // comparator tree + mux steering of the 2-bit index, plus the
    // reconfiguration-cost tie-break comparators.
    let bits = width(queue as u64);
    let candidates = 1 + predefined as u64;
    let one_level = comparator_cost(bits).seq(MUX2.times(2 + bits as u64));
    let selector = BlockCost {
        gates: one_level.gates * (candidates - 1) * 2, // error + tie compare
        depth: one_level.depth * clog2(candidates),
    };
    let total = decoders.seq(encoders).seq(cems).seq(selector);
    SelectionUnitCost {
        decoders,
        encoders,
        cems,
        selector,
        total,
    }
}

/// Render a comparison table used by `experiments e13-hwcost`.
pub fn report(queue: u32) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let shifter = selection_unit_cost(queue, 5, 3, 6, false);
    let divider = selection_unit_cost(queue, 5, 3, 6, true);
    let _ = writeln!(
        s,
        "{:<12} {:>16} {:>16} {:>16} {:>16}",
        "stage", "shifter gates", "shifter depth", "divider gates", "divider depth"
    );
    let row = |s: &mut String, name: &str, a: BlockCost, b: BlockCost| {
        let _ = writeln!(
            s,
            "{:<12} {:>16} {:>16} {:>16} {:>16}",
            name, a.gates, a.depth, b.gates, b.depth
        );
    };
    row(&mut s, "decoders", shifter.decoders, divider.decoders);
    row(&mut s, "encoders", shifter.encoders, divider.encoders);
    row(&mut s, "CEMs", shifter.cems, divider.cems);
    row(&mut s, "selector", shifter.selector, divider.selector);
    row(&mut s, "TOTAL", shifter.total, divider.total);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(7), 3);
        assert_eq!(clog2(8), 3);
        assert_eq!(width(7), 3);
        assert_eq!(width(8), 4);
    }

    #[test]
    fn hard_wired_shifters_are_free() {
        let c = cem_cost(5, 7, false, true);
        let adder_only = adder_cost(3).gates * 4;
        assert_eq!(c.gates, adder_only, "only the sum tree costs gates");
    }

    #[test]
    fn divider_strictly_costlier_than_shifter() {
        for queue in [7u32, 15, 31] {
            let s = selection_unit_cost(queue, 5, 3, 6, false);
            let d = selection_unit_cost(queue, 5, 3, 6, true);
            assert!(d.total.gates > s.total.gates, "queue {queue}");
            assert!(d.total.depth > s.total.depth, "queue {queue}");
            // The paper's qualitative claim, quantified: at the default
            // machine the divider multiplies CEM area several-fold.
            assert!(d.cems.gates >= 3 * s.cems.gates, "queue {queue}");
        }
    }

    #[test]
    fn cost_grows_with_queue_depth() {
        let small = selection_unit_cost(7, 5, 3, 6, false);
        let big = selection_unit_cost(31, 5, 3, 6, false);
        assert!(big.total.gates > small.total.gates);
        assert!(big.total.depth >= small.total.depth);
    }

    #[test]
    fn totals_compose_stages() {
        let c = selection_unit_cost(7, 5, 3, 6, false);
        assert_eq!(
            c.total.gates,
            c.decoders.gates + c.encoders.gates + c.cems.gates + c.selector.gates
        );
        assert_eq!(
            c.total.depth,
            c.decoders.depth + c.encoders.depth + c.cems.depth + c.selector.depth
        );
    }

    #[test]
    fn report_renders() {
        let r = report(7);
        assert!(r.contains("TOTAL"));
        assert!(r.contains("CEMs"));
    }

    #[test]
    fn selection_unit_is_small() {
        // Sanity scale check: the whole unit at the paper's parameters
        // should be on the order of a few hundred gates — trivially
        // pipelineable next to a superscalar core.
        let c = selection_unit_cost(7, 5, 3, 6, false);
        assert!(c.total.gates < 2_000, "{} gates", c.total.gates);
        assert!(c.total.depth < 60, "{} levels", c.total.depth);
    }
}

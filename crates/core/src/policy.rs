//! Steering policies: the paper's mechanism plus the baselines and
//! extensions the experiments compare.
//!
//! A [`SteeringPolicy`] is ticked once per simulated cycle with the
//! demand signature of the ready-but-unscheduled instructions and
//! mutable access to the fabric; it may start partial reconfigurations.
//!
//! * [`PaperSteering`] — the paper's configuration selection unit driving
//!   the configuration loader.
//! * [`StaticPolicy`] — never reconfigures (the fabric keeps whatever it
//!   was initialised with): the per-configuration baselines of E1 and the
//!   "never reconfigure" floor.
//! * [`DemandDriven`] — the paper's §5 future-work idea: steer without
//!   predefined configurations by greedily packing the fabric to match
//!   the live demand (also the *oracle* when run on a zero-latency
//!   fabric).

use crate::loader::ConfigurationLoader;
use crate::select::{ConfigChoice, SelectionUnit};
use rsp_fabric::config::{Configuration, SteeringSet};
use rsp_fabric::fabric::{Fabric, LoadError};
use rsp_isa::units::{TypeCounts, UnitType};
use rsp_obs::{Event, Telemetry, MAX_CANDIDATES};

/// What a policy did this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyOutcome {
    /// The configuration selected (policies without a notion of
    /// configuration choice report `None`).
    pub choice: Option<ConfigChoice>,
    /// Partial reconfigurations started this cycle.
    pub loads_started: usize,
}

/// A per-cycle steering decision-maker.
pub trait SteeringPolicy {
    /// Human-readable policy name for reports.
    fn name(&self) -> String;

    /// Observe this cycle's ready-instruction demand and (possibly)
    /// start reconfigurations.
    fn tick(&mut self, demand: &TypeCounts, fabric: &mut Fabric) -> PolicyOutcome;

    /// [`SteeringPolicy::tick`] with a telemetry handle: policies that
    /// make observable decisions emit them into `obs`. The default
    /// ignores the handle — behaviour must be identical either way (the
    /// fault-free invariance suite pins this).
    fn tick_observed(
        &mut self,
        demand: &TypeCounts,
        fabric: &mut Fabric,
        obs: &mut Telemetry,
    ) -> PolicyOutcome {
        let _ = obs;
        self.tick(demand, fabric)
    }
}

/// The paper's steering mechanism: selection unit + configuration loader.
#[derive(Debug, Clone)]
pub struct PaperSteering {
    /// The four-stage configuration selection unit.
    pub unit: SelectionUnit,
    /// The configuration loader (owns the steering set).
    pub loader: ConfigurationLoader,
}

impl PaperSteering {
    /// Paper defaults: Table-1 steering set, shifter CEMs, favor-current
    /// tie-breaking, partial reconfiguration.
    pub fn paper_default() -> PaperSteering {
        PaperSteering {
            unit: SelectionUnit::PAPER,
            loader: ConfigurationLoader::new(SteeringSet::paper_default()),
        }
    }

    /// Steering over a custom set / selection unit.
    pub fn new(unit: SelectionUnit, set: SteeringSet) -> PaperSteering {
        PaperSteering {
            unit,
            loader: ConfigurationLoader::new(set),
        }
    }
}

impl SteeringPolicy for PaperSteering {
    fn name(&self) -> String {
        let mut n = String::from("paper-steering");
        if !self.loader.partial {
            n.push_str("+full-reload");
        }
        if self.unit.tie != crate::select::TieBreak::FavorCurrent {
            n.push_str("+no-favor-current");
        }
        if self.unit.cem.kind == crate::cem::CemKind::ExactDivider {
            n.push_str("+exact-divider");
        }
        n
    }

    fn tick(&mut self, demand: &TypeCounts, fabric: &mut Fabric) -> PolicyOutcome {
        self.tick_observed(demand, fabric, &mut Telemetry::off())
    }

    fn tick_observed(
        &mut self,
        demand: &TypeCounts,
        fabric: &mut Fabric,
        obs: &mut Telemetry,
    ) -> PolicyOutcome {
        let mut scores = [0u32; MAX_CANDIDATES];
        let (choice, _err, scored) = self.unit.choose_with_scores(
            demand.saturating_3bit(),
            fabric.configured_counts(),
            fabric.alloc(),
            self.loader.set(),
            &mut scores,
        );
        if obs.enabled() {
            let last = self.loader.last_choice();
            obs.emit(Event::SteeringDecision {
                scores,
                candidates: scored as u8,
                chosen: choice.two_bit(),
                changed: last.is_some() && last != Some(choice),
            });
        }
        let loads = self.loader.apply_observed(choice, fabric, obs);
        PolicyOutcome {
            choice: Some(choice),
            loads_started: loads,
        }
    }
}

/// Never reconfigure: the static baseline. The simulator initialises the
/// fabric (typically with one of the predefined configurations); this
/// policy leaves it alone.
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    label: String,
}

impl StaticPolicy {
    /// A static baseline labelled after the configuration it runs on.
    pub fn new(label: impl Into<String>) -> StaticPolicy {
        StaticPolicy {
            label: label.into(),
        }
    }
}

impl SteeringPolicy for StaticPolicy {
    fn name(&self) -> String {
        format!("static:{}", self.label)
    }

    fn tick(&mut self, _demand: &TypeCounts, _fabric: &mut Fabric) -> PolicyOutcome {
        PolicyOutcome::default()
    }
}

/// Greedily pack the fabric to match live demand, without predefined
/// configurations (paper §5: "being able to dynamically reconfigure
/// without using predefined configurations").
///
/// Each cycle it computes a *desired* unit mix: starting from the FFU
/// baseline, repeatedly grant one more unit of the type with the largest
/// unmet demand per slot (deficit / slot-cost) until the fabric is full
/// or demand is met. It then diff-loads toward the canonical placement of
/// that mix, exactly like the configuration loader.
///
/// Run against a zero-latency fabric this is the *oracle* upper bound of
/// experiment E1.
#[derive(Debug, Clone, Default)]
pub struct DemandDriven {
    /// Loads started so far (stat).
    pub loads_started: u64,
    /// Deferred-busy count (stat).
    pub deferred_busy: u64,
}

impl DemandDriven {
    /// Compute the desired RFU unit mix for a demand signature.
    ///
    /// `ffu` is the fixed baseline (already provided for free); `slots`
    /// the fabric capacity.
    pub fn desired_mix(demand: &TypeCounts, ffu: &TypeCounts, slots: usize) -> TypeCounts {
        let mut mix = TypeCounts::ZERO;
        let mut used = 0usize;
        loop {
            // Pick the type with the largest unmet demand per slot.
            let mut best: Option<(UnitType, f64)> = None;
            for &t in &UnitType::ALL {
                let provided = mix.get(t) as i32 + ffu.get(t) as i32;
                let deficit = demand.get(t) as i32 - provided;
                if deficit <= 0 || used + t.slot_cost() > slots {
                    continue;
                }
                let score = deficit as f64 / t.slot_cost() as f64;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((t, score));
                }
            }
            match best {
                Some((t, _)) => {
                    mix.add(t, 1);
                    used += t.slot_cost();
                }
                None => break,
            }
        }
        mix
    }
}

impl SteeringPolicy for DemandDriven {
    fn name(&self) -> String {
        "demand-driven".into()
    }

    fn tick(&mut self, demand: &TypeCounts, fabric: &mut Fabric) -> PolicyOutcome {
        self.tick_observed(demand, fabric, &mut Telemetry::off())
    }

    fn tick_observed(
        &mut self,
        demand: &TypeCounts,
        fabric: &mut Fabric,
        obs: &mut Telemetry,
    ) -> PolicyOutcome {
        // Count the fixed units straight off the parameters (the old
        // `ffu_signals()` path allocated a Vec every cycle).
        let ffu: TypeCounts = fabric.params().ffus.iter().map(|&t| (t, 1)).collect();
        let slots = fabric.params().rfu_slots;
        let mix = Self::desired_mix(demand, &ffu, slots);
        if mix == fabric.rfu_counts() {
            return PolicyOutcome::default();
        }
        let target =
            Configuration::place("demand", mix, slots).expect("desired mix fits by construction");
        let mut started = 0;
        for pu in target.placement.units() {
            match fabric.begin_load(pu.head, pu.unit) {
                Ok(()) => {
                    self.loads_started += 1;
                    started += 1;
                    obs.emit(Event::LoadStarted {
                        head: pu.head as u32,
                        unit: pu.unit,
                    });
                }
                Err(LoadError::SpanBusy) => self.deferred_busy += 1,
                Err(_) => {}
            }
        }
        PolicyOutcome {
            choice: None,
            loads_started: started,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_fabric::fabric::FabricParams;

    fn fabric(latency: u64, ports: usize) -> Fabric {
        Fabric::new(FabricParams {
            per_slot_load_latency: latency,
            reconfig_ports: ports,
            ..FabricParams::default()
        })
    }

    #[test]
    fn paper_steering_converges_to_demanded_config() {
        let mut p = PaperSteering::paper_default();
        let mut f = fabric(1, 8);
        // Persistent FP-heavy demand.
        let demand = TypeCounts::new([0, 0, 2, 2, 2]);
        for _ in 0..50 {
            p.tick(&demand, &mut f);
            f.tick();
        }
        // Fabric must have settled on Config 3.
        let expected = p.loader.set().predefined[2].counts;
        assert_eq!(f.rfu_counts(), expected, "fabric: {}", f.slot_map());
        // And the selection must now be stable at "current".
        let out = p.tick(&demand, &mut f);
        assert_eq!(out.choice, Some(ConfigChoice::Current));
        assert_eq!(out.loads_started, 0);
    }

    #[test]
    fn static_policy_never_touches_fabric() {
        let mut p = StaticPolicy::new("Config 1");
        let mut f = fabric(1, 8);
        let before = f.clone();
        let out = p.tick(&TypeCounts::new([7, 7, 7, 7, 7]), &mut f);
        assert_eq!(out, PolicyOutcome::default());
        assert_eq!(f, before);
        assert_eq!(p.name(), "static:Config 1");
    }

    #[test]
    fn desired_mix_matches_demand_shape() {
        let ffu = TypeCounts::new([1, 1, 1, 1, 1]);
        // Demand: 4 ALU, 2 LSU → mix should grant 3 extra ALUs? 3*2=6
        // slots, plus 1 LSU = 7 ≤ 8, then remaining deficit LSU fits.
        let mix = DemandDriven::desired_mix(&TypeCounts::new([4, 0, 2, 0, 0]), &ffu, 8);
        assert_eq!(mix.get(UnitType::IntAlu), 3);
        assert_eq!(mix.get(UnitType::Lsu), 1);
        assert!(mix.slot_cost() <= 8);
        // Zero demand → empty mix.
        assert!(DemandDriven::desired_mix(&TypeCounts::ZERO, &ffu, 8).is_zero());
        // Demand already covered by FFUs → empty mix.
        assert!(DemandDriven::desired_mix(&TypeCounts::new([1, 1, 1, 1, 1]), &ffu, 8).is_zero());
    }

    #[test]
    fn desired_mix_respects_capacity() {
        let ffu = TypeCounts::new([1, 1, 1, 1, 1]);
        let mix = DemandDriven::desired_mix(&TypeCounts::new([7, 7, 7, 7, 7]), &ffu, 8);
        assert!(mix.slot_cost() <= 8);
        assert!(mix.total() > 0);
    }

    #[test]
    fn demand_driven_reaches_demanded_shape() {
        let mut p = DemandDriven::default();
        let mut f = fabric(1, 8);
        let demand = TypeCounts::new([0, 0, 4, 2, 0]);
        for _ in 0..50 {
            p.tick(&demand, &mut f);
            f.tick();
        }
        let c = f.rfu_counts();
        assert!(c.get(UnitType::Lsu) >= 3, "fabric: {}", f.slot_map());
        assert!(c.get(UnitType::FpAlu) >= 1, "fabric: {}", f.slot_map());
        // Stable: no further loads once converged.
        let out = p.tick(&demand, &mut f);
        assert_eq!(out.loads_started, 0);
    }

    #[test]
    fn policy_names() {
        assert_eq!(PaperSteering::paper_default().name(), "paper-steering");
        let mut p = PaperSteering::paper_default();
        p.loader.partial = false;
        p.unit.tie = crate::select::TieBreak::PreferPredefined;
        p.unit.cem = crate::cem::CemUnit::EXACT;
        assert_eq!(
            p.name(),
            "paper-steering+full-reload+no-favor-current+exact-divider"
        );
        assert_eq!(DemandDriven::default().name(), "demand-driven");
    }
}

//! Steering policies: the paper's mechanism plus the baselines and
//! extensions the experiments compare.
//!
//! A [`SteeringPolicy`] is ticked once per simulated cycle with the
//! demand signature of the ready-but-unscheduled instructions and
//! mutable access to the fabric; it may start partial reconfigurations.
//!
//! * [`PaperSteering`] — the paper's configuration selection unit driving
//!   the configuration loader.
//! * [`StaticPolicy`] — never reconfigures (the fabric keeps whatever it
//!   was initialised with): the per-configuration baselines of E1 and the
//!   "never reconfigure" floor.
//! * [`DemandDriven`] — the paper's §5 future-work idea: steer without
//!   predefined configurations by greedily packing the fabric to match
//!   the live demand (also the *oracle* when run on a zero-latency
//!   fabric).

use crate::loader::ConfigurationLoader;
use crate::select::{ConfigChoice, SelectionUnit};
use rsp_fabric::config::{Configuration, SteeringSet};
use rsp_fabric::fabric::{Fabric, LoadError};
use rsp_isa::units::{TypeCounts, UnitType};
use rsp_obs::{Event, Telemetry, MAX_CANDIDATES};

/// What a policy did this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyOutcome {
    /// The configuration selected (policies without a notion of
    /// configuration choice report `None`).
    pub choice: Option<ConfigChoice>,
    /// Partial reconfigurations started this cycle.
    pub loads_started: usize,
}

/// A per-cycle steering decision-maker.
pub trait SteeringPolicy {
    /// Human-readable policy name for reports.
    fn name(&self) -> String;

    /// Observe this cycle's ready-instruction demand and (possibly)
    /// start reconfigurations.
    fn tick(&mut self, demand: &TypeCounts, fabric: &mut Fabric) -> PolicyOutcome;

    /// [`SteeringPolicy::tick`] with a telemetry handle: policies that
    /// make observable decisions emit them into `obs`. The default
    /// ignores the handle — behaviour must be identical either way (the
    /// fault-free invariance suite pins this).
    fn tick_observed(
        &mut self,
        demand: &TypeCounts,
        fabric: &mut Fabric,
        obs: &mut Telemetry,
    ) -> PolicyOutcome {
        let _ = obs;
        self.tick(demand, fabric)
    }
}

/// Consecutive degraded cycles before the fault-aware selection unit
/// switches from the nominal to the effective capacity view. Transient
/// zombies are force-reloaded by the loader's scrub-hint path within a
/// span's load latency, so the window is sized to outlast a reload: the
/// view only engages for *persistent* capacity loss (dead slots, or a
/// zombie the loader cannot rewrite). A shorter window measurably hurts
/// — re-ranking on a zombie the reloader is about to fix switches
/// configurations twice for nothing (reconfiguration thrash).
pub const DEFAULT_CAPACITY_HYSTERESIS: u32 = 32;

/// The paper's steering mechanism: selection unit + configuration loader.
#[derive(Debug, Clone)]
pub struct PaperSteering {
    /// The four-stage configuration selection unit.
    pub unit: SelectionUnit,
    /// The configuration loader (owns the steering set).
    pub loader: ConfigurationLoader,
    /// Degraded cycles required before switching to the effective
    /// capacity view (and re-ranking candidates against post-fault
    /// capacity). Only consulted when `loader.fault_aware` is set.
    pub hysteresis: u32,
    /// Consecutive cycles the effective capacity has trailed nominal.
    degraded_streak: u32,
    /// True while candidates are scored against effective capacity.
    effective_view: bool,
    /// Dead-slot-aware achievable counts per predefined candidate
    /// (RFU re-placement achievable + FFUs), cached because dead slots
    /// are boot-static.
    candidate_counts: [TypeCounts; MAX_CANDIDATES],
    /// Whether `candidate_counts` has been computed yet.
    counts_cached: bool,
    /// True iff some predefined candidate cannot deliver its nominal
    /// counts because of dead slots (a permanent degradation: zombies
    /// heal via scrub/reload, dead slots do not).
    dead_degraded: bool,
    /// Largest per-candidate capacity deficit (in units) due to dead
    /// slots, for the `CapacityRerank` telemetry.
    max_dead_deficit: u32,
}

impl PaperSteering {
    /// Paper defaults: Table-1 steering set, shifter CEMs, favor-current
    /// tie-breaking, partial reconfiguration.
    pub fn paper_default() -> PaperSteering {
        Self::new(SelectionUnit::PAPER, SteeringSet::paper_default())
    }

    /// Steering over a custom set / selection unit.
    pub fn new(unit: SelectionUnit, set: SteeringSet) -> PaperSteering {
        PaperSteering {
            unit,
            loader: ConfigurationLoader::new(set),
            hysteresis: DEFAULT_CAPACITY_HYSTERESIS,
            degraded_streak: 0,
            effective_view: false,
            candidate_counts: [TypeCounts::ZERO; MAX_CANDIDATES],
            counts_cached: false,
            dead_degraded: false,
            max_dead_deficit: 0,
        }
    }

    /// Enable (or disable) the fault-aware selection/loader paths:
    /// effective-capacity candidate scoring with hysteresis, dead-span
    /// re-placement, and zombie force-reloads. Fault-free behaviour is
    /// bit-identical either way.
    pub fn with_fault_aware(mut self, on: bool) -> PaperSteering {
        self.loader.fault_aware = on;
        self
    }

    /// True iff the fault-aware paths are enabled.
    #[inline]
    pub fn fault_aware(&self) -> bool {
        self.loader.fault_aware
    }

    /// True while the selection unit is scoring against the effective
    /// (post-fault) capacity view.
    #[inline]
    pub fn effective_view(&self) -> bool {
        self.effective_view
    }

    /// Fill the per-candidate achievable-counts cache from the fabric's
    /// (boot-static) dead-slot mask.
    fn cache_candidate_counts(&mut self, fabric: &Fabric) {
        let n = fabric.params().rfu_slots;
        let set = self.loader.set();
        let k = set.predefined.len().min(MAX_CANDIDATES);
        for i in 0..k {
            let rfu = crate::loader::achievable_rfu_counts(&set.predefined[i], n, |s| {
                fabric.slot_dead(s)
            });
            self.candidate_counts[i] = rfu.saturating_add(&set.ffu);
            let deficit = set
                .total_counts(i)
                .total()
                .saturating_sub(self.candidate_counts[i].total());
            if deficit > 0 {
                self.dead_degraded = true;
                self.max_dead_deficit = self.max_dead_deficit.max(deficit);
            }
        }
        self.counts_cached = true;
    }
}

impl SteeringPolicy for PaperSteering {
    fn name(&self) -> String {
        let mut n = String::from("paper-steering");
        if !self.loader.partial {
            n.push_str("+full-reload");
        }
        if self.unit.tie != crate::select::TieBreak::FavorCurrent {
            n.push_str("+no-favor-current");
        }
        if self.unit.cem.kind == crate::cem::CemKind::ExactDivider {
            n.push_str("+exact-divider");
        }
        if self.loader.fault_aware {
            n.push_str("+fault-aware");
        }
        n
    }

    fn tick(&mut self, demand: &TypeCounts, fabric: &mut Fabric) -> PolicyOutcome {
        self.tick_observed(demand, fabric, &mut Telemetry::off())
    }

    fn tick_observed(
        &mut self,
        demand: &TypeCounts,
        fabric: &mut Fabric,
        obs: &mut Telemetry,
    ) -> PolicyOutcome {
        // Fault-aware capacity view: compare effective (zombie- and
        // dead-discounted) capacity against nominal, with hysteresis so
        // one transient upset never re-ranks the candidates. Without
        // faults `effective == nominal` every cycle and this whole block
        // reduces to the nominal path — fault-free runs are bit-identical.
        let nominal = fabric.configured_counts();
        let mut current_counts = nominal;
        if self.loader.fault_aware {
            // Dead slots are boot-static, so the per-candidate achievable
            // counts are computed once on the first fault-aware tick.
            if !self.counts_cached {
                self.cache_candidate_counts(fabric);
            }
            let effective = fabric.effective_counts();
            // Degraded: zombies are eating live capacity, or dead slots
            // cap what a candidate could deliver. The former heals (scrub
            // or zombie reload), the latter never does.
            let degraded = effective != nominal || self.dead_degraded;
            if !degraded {
                self.degraded_streak = 0;
                if self.effective_view {
                    self.effective_view = false;
                    if obs.enabled() {
                        obs.emit(Event::CapacityRerank {
                            degraded: false,
                            lost: 0,
                        });
                    }
                }
            } else {
                self.degraded_streak = self.degraded_streak.saturating_add(1);
                if !self.effective_view && self.degraded_streak >= self.hysteresis {
                    self.effective_view = true;
                    if obs.enabled() {
                        let lost = nominal
                            .total()
                            .saturating_sub(effective.total())
                            .max(self.max_dead_deficit);
                        obs.emit(Event::CapacityRerank {
                            degraded: true,
                            lost: lost.min(255) as u8,
                        });
                    }
                }
            }
            if self.effective_view {
                current_counts = effective;
            }
        }
        let candidate_counts: &[TypeCounts] = if self.effective_view {
            let k = self.loader.set().predefined.len().min(MAX_CANDIDATES);
            &self.candidate_counts[..k]
        } else {
            &[]
        };
        let mut scores = [0u32; MAX_CANDIDATES];
        let (choice, _err, scored) = self.unit.choose_with_scores_overriding(
            demand.saturating_3bit(),
            current_counts,
            candidate_counts,
            fabric.alloc(),
            self.loader.set(),
            &mut scores,
        );
        if obs.enabled() {
            let last = self.loader.last_choice();
            obs.emit(Event::SteeringDecision {
                scores,
                candidates: scored as u8,
                chosen: choice.two_bit(),
                changed: last.is_some() && last != Some(choice),
            });
        }
        let loads = self.loader.apply_observed(choice, fabric, obs);
        PolicyOutcome {
            choice: Some(choice),
            loads_started: loads,
        }
    }
}

/// Never reconfigure: the static baseline. The simulator initialises the
/// fabric (typically with one of the predefined configurations); this
/// policy leaves it alone.
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    label: String,
}

impl StaticPolicy {
    /// A static baseline labelled after the configuration it runs on.
    pub fn new(label: impl Into<String>) -> StaticPolicy {
        StaticPolicy {
            label: label.into(),
        }
    }
}

impl SteeringPolicy for StaticPolicy {
    fn name(&self) -> String {
        format!("static:{}", self.label)
    }

    fn tick(&mut self, _demand: &TypeCounts, _fabric: &mut Fabric) -> PolicyOutcome {
        PolicyOutcome::default()
    }
}

/// Greedily pack the fabric to match live demand, without predefined
/// configurations (paper §5: "being able to dynamically reconfigure
/// without using predefined configurations").
///
/// Each cycle it computes a *desired* unit mix: starting from the FFU
/// baseline, repeatedly grant one more unit of the type with the largest
/// unmet demand per slot (deficit / slot-cost) until the fabric is full
/// or demand is met. It then diff-loads toward the canonical placement of
/// that mix, exactly like the configuration loader.
///
/// Run against a zero-latency fabric this is the *oracle* upper bound of
/// experiment E1.
#[derive(Debug, Clone, Default)]
pub struct DemandDriven {
    /// Loads started so far (stat).
    pub loads_started: u64,
    /// Deferred-busy count (stat).
    pub deferred_busy: u64,
}

impl DemandDriven {
    /// Compute the desired RFU unit mix for a demand signature.
    ///
    /// `ffu` is the fixed baseline (already provided for free); `slots`
    /// the fabric capacity.
    pub fn desired_mix(demand: &TypeCounts, ffu: &TypeCounts, slots: usize) -> TypeCounts {
        let mut mix = TypeCounts::ZERO;
        let mut used = 0usize;
        loop {
            // Pick the type with the largest unmet demand per slot.
            let mut best: Option<(UnitType, f64)> = None;
            for &t in &UnitType::ALL {
                let provided = mix.get(t) as i32 + ffu.get(t) as i32;
                let deficit = demand.get(t) as i32 - provided;
                if deficit <= 0 || used + t.slot_cost() > slots {
                    continue;
                }
                let score = deficit as f64 / t.slot_cost() as f64;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((t, score));
                }
            }
            match best {
                Some((t, _)) => {
                    mix.add(t, 1);
                    used += t.slot_cost();
                }
                None => break,
            }
        }
        mix
    }
}

impl SteeringPolicy for DemandDriven {
    fn name(&self) -> String {
        "demand-driven".into()
    }

    fn tick(&mut self, demand: &TypeCounts, fabric: &mut Fabric) -> PolicyOutcome {
        self.tick_observed(demand, fabric, &mut Telemetry::off())
    }

    fn tick_observed(
        &mut self,
        demand: &TypeCounts,
        fabric: &mut Fabric,
        obs: &mut Telemetry,
    ) -> PolicyOutcome {
        // Count the fixed units straight off the parameters (the old
        // `ffu_signals()` path allocated a Vec every cycle).
        let ffu: TypeCounts = fabric.params().ffus.iter().map(|&t| (t, 1)).collect();
        let slots = fabric.params().rfu_slots;
        let mix = Self::desired_mix(demand, &ffu, slots);
        if mix == fabric.rfu_counts() {
            return PolicyOutcome::default();
        }
        let target =
            Configuration::place("demand", mix, slots).expect("desired mix fits by construction");
        let mut started = 0;
        for pu in target.placement.units() {
            match fabric.begin_load(pu.head, pu.unit) {
                Ok(()) => {
                    self.loads_started += 1;
                    started += 1;
                    obs.emit(Event::LoadStarted {
                        head: pu.head as u32,
                        unit: pu.unit,
                    });
                }
                Err(LoadError::SpanBusy) => self.deferred_busy += 1,
                Err(_) => {}
            }
        }
        PolicyOutcome {
            choice: None,
            loads_started: started,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_fabric::fabric::FabricParams;

    fn fabric(latency: u64, ports: usize) -> Fabric {
        Fabric::new(FabricParams {
            per_slot_load_latency: latency,
            reconfig_ports: ports,
            ..FabricParams::default()
        })
    }

    #[test]
    fn paper_steering_converges_to_demanded_config() {
        let mut p = PaperSteering::paper_default();
        let mut f = fabric(1, 8);
        // Persistent FP-heavy demand.
        let demand = TypeCounts::new([0, 0, 2, 2, 2]);
        for _ in 0..50 {
            p.tick(&demand, &mut f);
            f.tick();
        }
        // Fabric must have settled on Config 3.
        let expected = p.loader.set().predefined[2].counts;
        assert_eq!(f.rfu_counts(), expected, "fabric: {}", f.slot_map());
        // And the selection must now be stable at "current".
        let out = p.tick(&demand, &mut f);
        assert_eq!(out.choice, Some(ConfigChoice::Current));
        assert_eq!(out.loads_started, 0);
    }

    #[test]
    fn static_policy_never_touches_fabric() {
        let mut p = StaticPolicy::new("Config 1");
        let mut f = fabric(1, 8);
        let before = f.clone();
        let out = p.tick(&TypeCounts::new([7, 7, 7, 7, 7]), &mut f);
        assert_eq!(out, PolicyOutcome::default());
        assert_eq!(f, before);
        assert_eq!(p.name(), "static:Config 1");
    }

    #[test]
    fn desired_mix_matches_demand_shape() {
        let ffu = TypeCounts::new([1, 1, 1, 1, 1]);
        // Demand: 4 ALU, 2 LSU → mix should grant 3 extra ALUs? 3*2=6
        // slots, plus 1 LSU = 7 ≤ 8, then remaining deficit LSU fits.
        let mix = DemandDriven::desired_mix(&TypeCounts::new([4, 0, 2, 0, 0]), &ffu, 8);
        assert_eq!(mix.get(UnitType::IntAlu), 3);
        assert_eq!(mix.get(UnitType::Lsu), 1);
        assert!(mix.slot_cost() <= 8);
        // Zero demand → empty mix.
        assert!(DemandDriven::desired_mix(&TypeCounts::ZERO, &ffu, 8).is_zero());
        // Demand already covered by FFUs → empty mix.
        assert!(DemandDriven::desired_mix(&TypeCounts::new([1, 1, 1, 1, 1]), &ffu, 8).is_zero());
    }

    #[test]
    fn desired_mix_respects_capacity() {
        let ffu = TypeCounts::new([1, 1, 1, 1, 1]);
        let mix = DemandDriven::desired_mix(&TypeCounts::new([7, 7, 7, 7, 7]), &ffu, 8);
        assert!(mix.slot_cost() <= 8);
        assert!(mix.total() > 0);
    }

    #[test]
    fn demand_driven_reaches_demanded_shape() {
        let mut p = DemandDriven::default();
        let mut f = fabric(1, 8);
        let demand = TypeCounts::new([0, 0, 4, 2, 0]);
        for _ in 0..50 {
            p.tick(&demand, &mut f);
            f.tick();
        }
        let c = f.rfu_counts();
        assert!(c.get(UnitType::Lsu) >= 3, "fabric: {}", f.slot_map());
        assert!(c.get(UnitType::FpAlu) >= 1, "fabric: {}", f.slot_map());
        // Stable: no further loads once converged.
        let out = p.tick(&demand, &mut f);
        assert_eq!(out.loads_started, 0);
    }

    #[test]
    fn policy_names() {
        assert_eq!(PaperSteering::paper_default().name(), "paper-steering");
        assert_eq!(
            PaperSteering::paper_default().with_fault_aware(true).name(),
            "paper-steering+fault-aware"
        );
        let mut p = PaperSteering::paper_default();
        p.loader.partial = false;
        p.unit.tie = crate::select::TieBreak::PreferPredefined;
        p.unit.cem = crate::cem::CemUnit::EXACT;
        assert_eq!(
            p.name(),
            "paper-steering+full-reload+no-favor-current+exact-divider"
        );
        assert_eq!(DemandDriven::default().name(), "demand-driven");
    }

    #[test]
    fn fault_aware_is_bit_identical_without_faults() {
        let mut plain = PaperSteering::paper_default();
        let mut aware = PaperSteering::paper_default().with_fault_aware(true);
        let mut f_plain = fabric(2, 2);
        let mut f_aware = fabric(2, 2);
        let demands = [
            TypeCounts::new([4, 1, 0, 0, 0]),
            TypeCounts::new([0, 0, 3, 1, 1]),
            TypeCounts::new([1, 1, 2, 0, 0]),
        ];
        for cycle in 0..120 {
            let d = &demands[(cycle / 20) % demands.len()];
            let a = plain.tick(d, &mut f_plain);
            let b = aware.tick(d, &mut f_aware);
            assert_eq!(a, b, "cycle {cycle}");
            f_plain.tick();
            f_aware.tick();
            assert_eq!(f_plain, f_aware, "cycle {cycle}");
        }
        assert!(!aware.effective_view());
    }

    #[test]
    fn dead_slots_engage_effective_view_after_hysteresis() {
        use rsp_fabric::fault::FaultParams;
        let mut p = PaperSteering::paper_default().with_fault_aware(true);
        let mut f = Fabric::new(FabricParams {
            per_slot_load_latency: 1,
            reconfig_ports: 8,
            faults: FaultParams {
                dead_slots: vec![4, 5, 6, 7],
                ..FaultParams::default()
            },
            ..FabricParams::default()
        });
        // Lsu-heavy demand. Nominally Config 1 wins (2 Lsu + FFU); with
        // the upper half of the fabric dead, Config 1's Lsus (slots 6,7)
        // are unachievable while Config 3's (slots 0,1) survive — the
        // effective view must re-rank toward Config 3.
        let demand = TypeCounts::new([0, 0, 3, 0, 0]);
        for cycle in 0..40 {
            p.tick(&demand, &mut f);
            f.tick();
            let engaged = p.effective_view();
            let past = cycle + 1 >= DEFAULT_CAPACITY_HYSTERESIS as usize;
            assert_eq!(engaged, past, "cycle {cycle}");
        }
        assert_eq!(
            f.rfu_counts().get(UnitType::Lsu),
            2,
            "fault-aware steering must deliver Config 3's Lsus: {}",
            f.slot_map()
        );
        // The nominal policy chases Config 1 and loses both Lsus to the
        // dead upper half.
        let mut plain = PaperSteering::paper_default();
        let mut f2 = Fabric::new(FabricParams {
            per_slot_load_latency: 1,
            reconfig_ports: 8,
            faults: FaultParams {
                dead_slots: vec![4, 5, 6, 7],
                ..FaultParams::default()
            },
            ..FabricParams::default()
        });
        for _ in 0..40 {
            plain.tick(&demand, &mut f2);
            f2.tick();
        }
        assert_eq!(
            f2.rfu_counts().get(UnitType::Lsu),
            0,
            "nominal steering cannot place Config 1's Lsus: {}",
            f2.slot_map()
        );
    }
}

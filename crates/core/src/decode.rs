//! Stage 1 — unit decoders (Fig. 2).
//!
//! "The unit decoders … retrieve the opcode of each instruction in the
//! instruction queue that is ready for execution. The output of each unit
//! decoder is a one-hot vector that indicates the functional unit
//! \[required\] by the instruction whose opcode the unit decoded."
//!
//! Bit order follows Fig. 2: bit 0 = Int-ALU, bit 1 = Int-MDU,
//! bit 2 = LSU, bit 3 = FP-ALU, bit 4 = FP-MDU.

use rsp_isa::units::{UnitType, NUM_UNIT_TYPES};
use rsp_isa::{Instruction, Opcode};
use serde::{Deserialize, Serialize};

/// A one-hot required-unit vector: exactly one of the five bits is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OneHot(u8);

impl OneHot {
    /// The one-hot vector for a unit type.
    #[inline]
    pub fn of(t: UnitType) -> OneHot {
        OneHot(1 << t.index())
    }

    /// Raw 5-bit pattern (bit 0 = Int-ALU … bit 4 = FP-MDU).
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// True iff bit `t` is set.
    #[inline]
    pub fn is(self, t: UnitType) -> bool {
        self.0 & (1 << t.index()) != 0
    }

    /// The unit type encoded, recovering it from the single set bit.
    pub fn unit_type(self) -> UnitType {
        debug_assert_eq!(self.0.count_ones(), 1, "one-hot must have exactly one bit");
        UnitType::from_index(self.0.trailing_zeros() as usize).expect("valid one-hot")
    }
}

impl std::fmt::Display for OneHot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:05b}", self.0)
    }
}

/// One unit decoder: opcode in, one-hot required-unit vector out.
#[inline]
pub fn unit_decoder(opcode: Opcode) -> OneHot {
    OneHot::of(opcode.unit_type())
}

/// Decode a whole queue snapshot (one decoder per queue entry, Fig. 2
/// instantiates seven of them).
pub fn decode_queue(instrs: &[Instruction]) -> Vec<OneHot> {
    instrs.iter().map(|i| unit_decoder(i.opcode)).collect()
}

/// Number of decoder output bits — for width assertions in tests.
pub const ONE_HOT_WIDTH: usize = NUM_UNIT_TYPES;

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_isa::regs::{FReg, IReg};

    #[test]
    fn one_hot_per_type() {
        assert_eq!(OneHot::of(UnitType::IntAlu).bits(), 0b00001);
        assert_eq!(OneHot::of(UnitType::IntMdu).bits(), 0b00010);
        assert_eq!(OneHot::of(UnitType::Lsu).bits(), 0b00100);
        assert_eq!(OneHot::of(UnitType::FpAlu).bits(), 0b01000);
        assert_eq!(OneHot::of(UnitType::FpMdu).bits(), 0b10000);
    }

    #[test]
    fn decoder_is_exactly_one_hot_for_every_opcode() {
        for &op in &Opcode::ALL {
            let oh = unit_decoder(op);
            assert_eq!(oh.bits().count_ones(), 1, "{op}");
            assert_eq!(oh.unit_type(), op.unit_type(), "{op}");
            assert!(oh.is(op.unit_type()));
        }
    }

    #[test]
    fn queue_decode_preserves_order() {
        let q = vec![
            Instruction::rrr(Opcode::Mul, IReg::new(1), IReg::new(2), IReg::new(3)),
            Instruction::lw(IReg::new(1), IReg::new(2), 0),
            Instruction::fff(Opcode::Fadd, FReg::new(1), FReg::new(2), FReg::new(3)),
        ];
        let hots = decode_queue(&q);
        assert_eq!(
            hots,
            vec![
                OneHot::of(UnitType::IntMdu),
                OneHot::of(UnitType::Lsu),
                OneHot::of(UnitType::FpAlu),
            ]
        );
    }

    #[test]
    fn display_is_binary() {
        assert_eq!(OneHot::of(UnitType::FpMdu).to_string(), "10000");
    }
}

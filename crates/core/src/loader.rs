//! The configuration loader (paper §3.2).
//!
//! "Once a configuration is chosen, the configuration loader will
//! determine which RFUs need to be reconfigured by determining the
//! difference (XOR) between the chosen configuration and the current
//! configuration using the resource allocation vector. The loader will
//! then choose which RFUs to reconfigure on the basis of their
//! availability. If an RFU is executing a multicycle instruction, the RFU
//! cannot be reconfigured until the instruction finishes execution …
//! The RFU will not be reconfigured if it already implements the
//! specified functional unit."
//!
//! Consequences faithfully modelled here:
//! * choosing the current configuration starts no loads;
//! * only *idle* RFUs are reloaded — busy ones are skipped and may be
//!   picked up by a *different* selection on a later cycle ("by the time
//!   it is available for reconfiguration, a different configuration may
//!   have been selected");
//! * matching units are never reloaded (partial reconfiguration);
//! * in-flight loads are never cancelled;
//! * the live configuration is therefore generally a **hybrid overlap**
//!   of steering configurations.
//!
//! **Fault-aware extension** (DESIGN.md §11): with
//! [`ConfigurationLoader::fault_aware`] set, the loader additionally
//! * re-places units whose canonical span covers a stuck-at-dead slot
//!   into remaining healthy capacity (greedy first-fit over the spans the
//!   rest of the configuration does not claim — see
//!   [`replacement_head`]), instead of dropping them; and
//! * force-reloads *zombie* spans (upset-corrupted but still allocated),
//!   which the partial-reconfiguration skip rule would otherwise leave
//!   dead weight until the next scrub pass.
//!
//! Both paths are inert without faults: `slot_dead`/`slot_corrupted` are
//! always false on a healthy fabric, so fault-free runs are bit-identical
//! whether `fault_aware` is on or off.

use crate::select::ConfigChoice;
use rsp_fabric::alloc::PlacedUnit;
use rsp_fabric::config::{Configuration, SteeringSet};
use rsp_fabric::fabric::{Fabric, LoadError};
use rsp_fabric::fault::FaultEvent;
use rsp_isa::units::TypeCounts;
use rsp_obs::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// First retry delay (in steer cycles) after a failed load.
const BACKOFF_BASE: u64 = 8;
/// Ceiling on the exponential retry delay.
const BACKOFF_CAP: u64 = 256;

/// Loader counters (per-run).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoaderStats {
    /// Selections applied, indexed by two-bit value (0 = current).
    pub selections: Vec<u64>,
    /// Cycles on which the applied selection differed from the previous
    /// cycle's selection (steering-direction changes).
    pub selection_changes: u64,
    /// Loads successfully started.
    pub loads_started: u64,
    /// Load attempts deferred because the target span had a busy unit.
    pub deferred_busy: u64,
    /// Load attempts deferred because no reconfiguration port was free.
    pub deferred_port: u64,
    /// Load attempts skipped because the span already implements the unit.
    pub skipped_matching: u64,
    /// Load attempts skipped because the span is already being loaded.
    pub skipped_loading: u64,
    /// Loads that consumed their latency but failed fabric readback.
    pub load_failures: u64,
    /// Loads restarted on a head after one or more failures there.
    pub retries: u64,
    /// Corrupted spans the fabric's scrub pass reported to the loader.
    pub upsets_detected: u64,
    /// Load attempts deferred because the head was in retry backoff.
    pub deferred_backoff: u64,
    /// Load attempts skipped because the span has a stuck-at-dead slot.
    pub skipped_dead: u64,
    /// Units re-placed into an alternative healthy span because their
    /// canonical span covers a dead slot (fault-aware loader only).
    pub replacements: u64,
    /// Zombie (upset-corrupted) spans force-reloaded ahead of the next
    /// scrub pass (fault-aware loader only).
    pub zombie_reloads: u64,
}

/// Compute the greedy re-placement plan for `config` on a fabric with
/// `n_slots` slots of which `dead(s)` are stuck-at-dead, calling
/// `visit(unit, assigned_head)` for every unit of the configuration in
/// canonical placement order. Units whose canonical span is healthy keep
/// it; displaced units get the first healthy span (respecting their 1/2/3
/// slot footprint and contiguity) not claimed by any other unit of the
/// plan, or `None` if no such span exists. The plan is a pure function of
/// `(config, n_slots, dead)`, so the loader reaches the same steady state
/// every cycle — no placement churn. Fabrics wider than 64 slots fall
/// back to skipping displaced units (the claim set is a `u64` bitmask).
fn replacement_plan(
    config: &Configuration,
    n_slots: usize,
    dead: &impl Fn(usize) -> bool,
    mut visit: impl FnMut(PlacedUnit, Option<usize>),
) {
    let trackable = n_slots <= 64;
    let healthy =
        |pu: &PlacedUnit| pu.head + pu.unit.slot_cost() <= n_slots && !pu.span().any(dead);
    // Pass 1: units keeping their canonical span claim it.
    let mut claimed: u64 = 0;
    for pu in config.placement.units() {
        if trackable && healthy(&pu) {
            for s in pu.span() {
                claimed |= 1 << s;
            }
        }
    }
    // Pass 2: displaced units scan first-fit over unclaimed healthy spans.
    for pu in config.placement.units() {
        if healthy(&pu) {
            visit(pu, Some(pu.head));
            continue;
        }
        let cost = pu.unit.slot_cost();
        if !trackable || cost > n_slots {
            visit(pu, None);
            continue;
        }
        let mut found = None;
        'scan: for head in 0..=n_slots - cost {
            for s in head..head + cost {
                if dead(s) || claimed & (1 << s) != 0 {
                    continue 'scan;
                }
            }
            found = Some(head);
            break;
        }
        if let Some(h) = found {
            for s in h..h + cost {
                claimed |= 1 << s;
            }
        }
        visit(pu, found);
    }
}

/// Where the unit canonically placed at `canonical_head` in `config`
/// lands under the greedy re-placement plan: its own head if the span is
/// healthy, an alternative healthy head if it was displaced by a dead
/// slot and one fits, or `None` if it cannot be placed at all.
pub fn replacement_head(
    config: &Configuration,
    n_slots: usize,
    dead: impl Fn(usize) -> bool,
    canonical_head: usize,
) -> Option<usize> {
    let mut found = None;
    replacement_plan(config, n_slots, &dead, |pu, assigned| {
        if pu.head == canonical_head {
            found = assigned;
        }
    });
    found
}

/// The RFU unit counts `config` can actually deliver on a fabric with
/// dead slots, after the loader's greedy re-placement pass. With no dead
/// slots this equals `config.counts`; the fault-aware selection unit
/// scores steering candidates against these instead of the nominal
/// counts so dead capacity is never promised.
pub fn achievable_rfu_counts(
    config: &Configuration,
    n_slots: usize,
    dead: impl Fn(usize) -> bool,
) -> TypeCounts {
    let mut c = TypeCounts::ZERO;
    replacement_plan(config, n_slots, &dead, |pu, assigned| {
        if assigned.is_some() {
            c.add(pu.unit, 1);
        }
    });
    c
}

/// The configuration loader: applies a selection to the fabric using
/// partial reconfiguration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationLoader {
    set: SteeringSet,
    /// When `false`, reload *every* unit of a newly chosen configuration
    /// even if the span already matches (E2 full-reload ablation).
    pub partial: bool,
    /// Enable the fault-aware paths: dead-span re-placement and zombie
    /// (scrub-hint) force-reloads. Inert without faults — fault-free runs
    /// are bit-identical either way.
    pub fault_aware: bool,
    stats: LoaderStats,
    last_choice: Option<ConfigChoice>,
    /// Steer cycles seen so far (the backoff clock).
    tick: u64,
    /// Per-head-slot: first tick at which a retry may start.
    cooldown_until: Vec<u64>,
    /// Per-head-slot: consecutive load failures (drives the backoff).
    fail_streak: Vec<u32>,
}

impl ConfigurationLoader {
    /// A loader steering over `set`, with the paper's partial
    /// reconfiguration behaviour.
    pub fn new(set: SteeringSet) -> ConfigurationLoader {
        let n = 1 + set.predefined.len();
        ConfigurationLoader {
            set,
            partial: true,
            fault_aware: false,
            stats: LoaderStats {
                selections: vec![0; n],
                ..LoaderStats::default()
            },
            last_choice: None,
            tick: 0,
            cooldown_until: Vec::new(),
            fail_streak: Vec::new(),
        }
    }

    /// Retry delay after the `streak`-th consecutive failure on a head:
    /// exponential from [`BACKOFF_BASE`], capped at [`BACKOFF_CAP`].
    fn backoff(streak: u32) -> u64 {
        (BACKOFF_BASE << (streak.saturating_sub(1)).min(16)).min(BACKOFF_CAP)
    }

    /// Absorb the fabric's fault events from the previous cycle: schedule
    /// retry backoff for failed loads, count scrub detections. Events
    /// live one fabric tick, so each is seen exactly once.
    fn drain_fault_events(&mut self, fabric: &Fabric) {
        let slots = fabric.params().rfu_slots;
        if self.cooldown_until.len() != slots {
            self.cooldown_until.resize(slots, 0);
            self.fail_streak.resize(slots, 0);
        }
        for ev in fabric.fault_events() {
            match *ev {
                FaultEvent::LoadFailed { head, .. } => {
                    self.stats.load_failures += 1;
                    self.fail_streak[head] = self.fail_streak[head].saturating_add(1);
                    self.cooldown_until[head] = self.tick + Self::backoff(self.fail_streak[head]);
                }
                FaultEvent::UpsetDetected { .. } => {
                    self.stats.upsets_detected += 1;
                }
                FaultEvent::LoadPlaced { head, .. } => {
                    // Readback passed: the head's failure streak is over.
                    self.fail_streak[head] = 0;
                    self.cooldown_until[head] = 0;
                }
                // Telemetry-only events (the simulator translates these
                // for its event log); the loader has no bookkeeping.
                FaultEvent::UpsetInjected { .. } | FaultEvent::ScrubPass { .. } => {}
            }
        }
    }

    /// The steering set this loader serves.
    #[inline]
    pub fn set(&self) -> &SteeringSet {
        &self.set
    }

    /// Counters so far.
    #[inline]
    pub fn stats(&self) -> &LoaderStats {
        &self.stats
    }

    /// The selection applied on the previous cycle.
    #[inline]
    pub fn last_choice(&self) -> Option<ConfigChoice> {
        self.last_choice
    }

    /// Apply one cycle's selection: start as many of the chosen
    /// configuration's unit loads as availability and ports allow.
    /// Returns the number of loads started.
    pub fn apply(&mut self, choice: ConfigChoice, fabric: &mut Fabric) -> usize {
        self.apply_observed(choice, fabric, &mut Telemetry::off())
    }

    /// [`ConfigurationLoader::apply`], emitting load-lifecycle telemetry
    /// (start/retry/backoff-deferral/dead-skip) into `obs`. Behaviour is
    /// identical; a disabled handle makes every emit a no-op.
    pub fn apply_observed(
        &mut self,
        choice: ConfigChoice,
        fabric: &mut Fabric,
        obs: &mut Telemetry,
    ) -> usize {
        self.tick += 1;
        self.drain_fault_events(fabric);
        let idx = choice.two_bit() as usize;
        if let Some(c) = self.stats.selections.get_mut(idx) {
            *c += 1;
        }
        if self.last_choice.is_some() && self.last_choice != Some(choice) {
            self.stats.selection_changes += 1;
        }
        self.last_choice = Some(choice);

        let ConfigChoice::Predefined(i) = choice else {
            return 0; // keep the current configuration: no reconfiguration
        };
        let target = &self.set.predefined[i];
        let mut started = 0;
        for pu in target.placement.units() {
            if self.tick < self.cooldown_until[pu.head] {
                self.stats.deferred_backoff += 1;
                obs.emit(Event::LoadBackoffDeferred {
                    head: pu.head as u32,
                    unit: pu.unit,
                });
                continue;
            }
            let res = if self.partial {
                fabric.begin_load(pu.head, pu.unit)
            } else {
                fabric.begin_load_forced(pu.head, pu.unit)
            };
            match res {
                Ok(()) => {
                    self.stats.loads_started += 1;
                    obs.emit(Event::LoadStarted {
                        head: pu.head as u32,
                        unit: pu.unit,
                    });
                    // A restart after a failure is a retry; the streak is
                    // only cleared once a readback *passes* (LoadPlaced),
                    // so backoff keeps growing across repeated failures.
                    if self.fail_streak[pu.head] > 0 {
                        self.stats.retries += 1;
                        obs.emit(Event::LoadRetry {
                            head: pu.head as u32,
                            unit: pu.unit,
                        });
                    }
                    started += 1;
                }
                Err(LoadError::AlreadyConfigured) => {
                    if self.fault_aware && fabric.slot_corrupted(pu.head) {
                        // Scrub-hint path: the span matches the target but
                        // its configuration memory is upset-corrupted (a
                        // zombie). The skip rule would leave it dead weight
                        // until the next scrub pass; rewrite it now.
                        match fabric.begin_load_forced(pu.head, pu.unit) {
                            Ok(()) => {
                                self.stats.loads_started += 1;
                                self.stats.zombie_reloads += 1;
                                obs.emit(Event::LoadStarted {
                                    head: pu.head as u32,
                                    unit: pu.unit,
                                });
                                started += 1;
                            }
                            Err(LoadError::NoPortFree) => self.stats.deferred_port += 1,
                            Err(LoadError::SpanBusy) => self.stats.deferred_busy += 1,
                            Err(LoadError::SpanLoading) => self.stats.skipped_loading += 1,
                            Err(_) => {}
                        }
                    } else {
                        // The span hosts the unit after all (e.g. another
                        // selection loaded it): the failure streak is over.
                        self.fail_streak[pu.head] = 0;
                        self.stats.skipped_matching += 1;
                    }
                }
                Err(LoadError::SpanBusy) => self.stats.deferred_busy += 1,
                Err(LoadError::NoPortFree) => self.stats.deferred_port += 1,
                Err(LoadError::SpanLoading) => self.stats.skipped_loading += 1,
                Err(LoadError::SpanDead) => {
                    // Re-placement pass: try to defragment the displaced
                    // unit into remaining healthy capacity instead of
                    // losing it for the run.
                    let alt = if self.fault_aware {
                        replacement_head(
                            target,
                            fabric.params().rfu_slots,
                            |s| fabric.slot_dead(s),
                            pu.head,
                        )
                    } else {
                        None
                    };
                    match alt {
                        Some(alt_head) if self.tick >= self.cooldown_until[alt_head] => {
                            let res = if self.partial {
                                fabric.begin_load(alt_head, pu.unit)
                            } else {
                                fabric.begin_load_forced(alt_head, pu.unit)
                            };
                            match res {
                                Ok(()) => {
                                    self.stats.loads_started += 1;
                                    self.stats.replacements += 1;
                                    obs.emit(Event::LoadReplaced {
                                        from_head: pu.head as u32,
                                        to_head: alt_head as u32,
                                        unit: pu.unit,
                                    });
                                    obs.emit(Event::LoadStarted {
                                        head: alt_head as u32,
                                        unit: pu.unit,
                                    });
                                    if self.fail_streak[alt_head] > 0 {
                                        self.stats.retries += 1;
                                        obs.emit(Event::LoadRetry {
                                            head: alt_head as u32,
                                            unit: pu.unit,
                                        });
                                    }
                                    started += 1;
                                }
                                Err(LoadError::AlreadyConfigured) => {
                                    // The re-placed unit is already up from
                                    // an earlier cycle's re-placement.
                                    self.fail_streak[alt_head] = 0;
                                    self.stats.skipped_matching += 1;
                                }
                                Err(LoadError::SpanBusy) => self.stats.deferred_busy += 1,
                                Err(LoadError::NoPortFree) => self.stats.deferred_port += 1,
                                Err(LoadError::SpanLoading) => self.stats.skipped_loading += 1,
                                Err(LoadError::SpanDead) | Err(LoadError::OutOfRange) => {
                                    unreachable!("re-placement spans are healthy and in range")
                                }
                            }
                        }
                        Some(alt_head) => {
                            self.stats.deferred_backoff += 1;
                            obs.emit(Event::LoadBackoffDeferred {
                                head: alt_head as u32,
                                unit: pu.unit,
                            });
                        }
                        None => {
                            self.stats.skipped_dead += 1;
                            obs.emit(Event::DeadSlotSkip {
                                head: pu.head as u32,
                                unit: pu.unit,
                            });
                        }
                    }
                }
                Err(LoadError::OutOfRange) => {
                    unreachable!("steering-set placements fit the fabric")
                }
            }
        }
        started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_fabric::fabric::{FabricParams, UnitId};
    use rsp_fabric::fault::{FaultParams, PPM};
    use rsp_isa::UnitType;

    fn fabric(latency: u64, ports: usize) -> Fabric {
        Fabric::new(FabricParams {
            per_slot_load_latency: latency,
            reconfig_ports: ports,
            ..FabricParams::default()
        })
    }

    fn faulty_fabric(faults: FaultParams) -> Fabric {
        Fabric::new(FabricParams {
            per_slot_load_latency: 1,
            reconfig_ports: 8,
            faults,
            ..FabricParams::default()
        })
    }

    fn loader() -> ConfigurationLoader {
        ConfigurationLoader::new(SteeringSet::paper_default())
    }

    #[test]
    fn current_choice_starts_nothing() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        assert_eq!(l.apply(ConfigChoice::Current, &mut f), 0);
        assert_eq!(f.loads_in_flight(), 0);
        assert_eq!(l.stats().selections[0], 1);
    }

    #[test]
    fn empty_fabric_loads_whole_config_with_enough_ports() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        let started = l.apply(ConfigChoice::Predefined(0), &mut f);
        assert_eq!(started, 5, "Config 1 has 5 units");
        // Drain the loads: LSU takes 1 cycle, Int units 2.
        for _ in 0..2 {
            f.tick();
        }
        assert_eq!(f.rfu_counts(), l.set().predefined[0].counts);
    }

    #[test]
    fn single_port_loads_one_unit_per_selection() {
        let mut l = loader();
        let mut f = fabric(1, 1);
        let started = l.apply(ConfigChoice::Predefined(0), &mut f);
        assert_eq!(started, 1);
        assert_eq!(l.stats().deferred_port, 4);
        // Re-applying after completion starts the next unit.
        f.tick();
        f.tick();
        let started = l.apply(ConfigChoice::Predefined(0), &mut f);
        assert_eq!(started, 1);
        assert_eq!(l.stats().skipped_matching, 1, "first unit now matches");
    }

    #[test]
    fn partial_reconfig_skips_overlap() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        // Load Config 1 fully.
        l.apply(ConfigChoice::Predefined(0), &mut f);
        f.tick();
        f.tick();
        // Steer to Config 2: shares the Int-ALU@0 and Int-MDU placement
        // prefix; only the differing tail should reload.
        let started = l.apply(ConfigChoice::Predefined(1), &mut f);
        let c2 = &l.set().predefined[1];
        let overlap = c2.placement.units().count() - started;
        // The shared Int-ALU prefix at slot 0 must not be reloaded.
        assert!(overlap >= 1, "expected ≥1 matching unit, got {overlap}");
        assert_eq!(l.stats().skipped_matching, 1);
        assert_eq!(f.alloc().unit_at(0).unwrap().unit, UnitType::IntAlu);
    }

    #[test]
    fn busy_units_are_skipped_not_waited_for() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        l.apply(ConfigChoice::Predefined(0), &mut f);
        f.tick();
        f.tick();
        // Mark the Int-ALU at slot 0 busy; steer to Config 3 (no ALUs).
        f.set_busy(UnitId::Rfu { head: 0 });
        let before = f.rfu_counts();
        l.apply(ConfigChoice::Predefined(2), &mut f);
        assert!(l.stats().deferred_busy > 0);
        // The busy ALU must still be configured.
        assert_eq!(f.alloc().unit_at(0).unwrap().unit, UnitType::IntAlu);
        assert!(before.get(UnitType::IntAlu) > 0);
    }

    #[test]
    fn full_reload_ablation_reloads_matching_units() {
        let mut l = loader();
        l.partial = false;
        let mut f = fabric(1, 8);
        l.apply(ConfigChoice::Predefined(0), &mut f);
        for _ in 0..2 {
            f.tick();
        }
        let started = l.apply(ConfigChoice::Predefined(0), &mut f);
        assert_eq!(started, 5, "full reload ignores matching spans");
        assert_eq!(l.stats().skipped_matching, 0);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        assert_eq!(ConfigurationLoader::backoff(1), 8);
        assert_eq!(ConfigurationLoader::backoff(2), 16);
        assert_eq!(ConfigurationLoader::backoff(3), 32);
        assert_eq!(ConfigurationLoader::backoff(6), 256);
        assert_eq!(ConfigurationLoader::backoff(7), 256);
        assert_eq!(ConfigurationLoader::backoff(u32::MAX), 256);
    }

    #[test]
    fn failed_loads_back_off_before_retrying() {
        // Every load fails: the loader must not hammer the ports.
        let mut l = loader();
        let mut f = faulty_fabric(FaultParams {
            seed: 1,
            load_failure_ppm: PPM,
            ..FaultParams::default()
        });
        for _ in 0..200 {
            l.apply(ConfigChoice::Predefined(0), &mut f);
            f.tick();
        }
        // Drain the final tick's fault events before checking counters.
        l.apply(ConfigChoice::Current, &mut f);
        let st = l.stats().clone();
        assert!(st.load_failures > 0, "{st:?}");
        assert!(st.deferred_backoff > 0, "{st:?}");
        assert!(st.retries > 0, "restarts after failures are retries");
        assert_eq!(f.rfu_counts().total(), 0);
        // Backoff throttles: far fewer starts than the 200 × 5 attempts a
        // naive loader would make.
        assert!(
            st.loads_started < 5 * 200 / BACKOFF_BASE,
            "backoff must throttle retries: {st:?}"
        );
        // Accounting closes: every attempt is classified somewhere.
        assert_eq!(
            st.loads_started,
            st.load_failures + f.loads_in_flight() as u64,
            "all started loads failed or are in flight"
        );
    }

    #[test]
    fn retries_eventually_succeed_at_partial_failure_rate() {
        // Half the loads fail; with retry the config still comes up.
        let mut l = loader();
        let mut f = faulty_fabric(FaultParams {
            seed: 42,
            load_failure_ppm: PPM / 2,
            ..FaultParams::default()
        });
        for _ in 0..2_000 {
            l.apply(ConfigChoice::Predefined(0), &mut f);
            f.tick();
            if f.rfu_counts() == l.set().predefined[0].counts {
                break;
            }
        }
        assert_eq!(
            f.rfu_counts(),
            l.set().predefined[0].counts,
            "retry must eventually bring the full configuration up"
        );
        let st = l.stats();
        assert!(st.load_failures > 0, "{st:?}");
        assert!(st.retries > 0, "{st:?}");
    }

    #[test]
    fn scrub_detections_reach_loader_stats_and_span_reloads() {
        let mut l = loader();
        let mut f = faulty_fabric(FaultParams {
            seed: 7,
            upset_ppm: PPM,
            scrub_interval: 8,
            ..FaultParams::default()
        });
        // Bring Config 1 up fault-free first (upsets only strike idle
        // configured units, so loads themselves are unaffected).
        for _ in 0..400 {
            l.apply(ConfigChoice::Predefined(0), &mut f);
            f.tick();
        }
        // Drain the final tick's fault events before checking counters.
        l.apply(ConfigChoice::Current, &mut f);
        let st = l.stats();
        assert!(st.upsets_detected > 0, "{st:?}");
        assert_eq!(st.upsets_detected, f.fault_stats().upsets_detected);
        // Scrubbed spans get reloaded (no backoff applies to upsets).
        assert!(st.loads_started > 5, "{st:?}");
        assert_eq!(st.deferred_backoff, 0, "upsets carry no backoff");
    }

    #[test]
    fn dead_spans_are_skipped_every_cycle() {
        let mut l = loader();
        // Config 1 places units across all 8 slots; kill slot 0.
        let mut f = faulty_fabric(FaultParams {
            dead_slots: vec![0],
            ..FaultParams::default()
        });
        let started = l.apply(ConfigChoice::Predefined(0), &mut f);
        assert!(started < 5);
        assert!(l.stats().skipped_dead > 0);
        for _ in 0..4 {
            f.tick();
        }
        l.apply(ConfigChoice::Predefined(0), &mut f);
        assert!(l.stats().skipped_dead >= 2, "dead spans skip forever");
    }

    #[test]
    fn fault_counters_stay_zero_without_faults() {
        // fault_aware on: the fault paths must be inert on a healthy
        // fabric (no dead slots, no corruption → no re-placement, no
        // zombie reloads, identical counters).
        let mut l = loader();
        l.fault_aware = true;
        let mut f = fabric(1, 2);
        for _ in 0..50 {
            l.apply(ConfigChoice::Predefined(0), &mut f);
            f.tick();
        }
        let st = l.stats();
        assert_eq!(st.load_failures, 0);
        assert_eq!(st.retries, 0);
        assert_eq!(st.upsets_detected, 0);
        assert_eq!(st.deferred_backoff, 0);
        assert_eq!(st.skipped_dead, 0);
        assert_eq!(st.replacements, 0);
        assert_eq!(st.zombie_reloads, 0);
    }

    #[test]
    fn dead_span_replacement_recovers_displaced_unit() {
        // Config 3 places Lsu@0, Lsu@1, FpAlu@2-4, FpMdu@5-7. Killing
        // slots 0 and 5 displaces the Lsu@0 (re-placeable: slot 6 is
        // freed by the homeless FpMdu) and the FpMdu (3 contiguous
        // healthy slots no longer exist).
        let mut l = loader();
        l.fault_aware = true;
        let mut f = faulty_fabric(FaultParams {
            dead_slots: vec![0, 5],
            ..FaultParams::default()
        });
        for _ in 0..10 {
            l.apply(ConfigChoice::Predefined(2), &mut f);
            f.tick();
        }
        let lsu_at_6 = f.alloc().unit_at(6).expect("Lsu re-placed to slot 6");
        assert_eq!(lsu_at_6.unit, UnitType::Lsu);
        assert_eq!(lsu_at_6.head, 6);
        assert_eq!(f.rfu_counts().get(UnitType::Lsu), 2);
        assert_eq!(f.rfu_counts().get(UnitType::FpMdu), 0, "FpMdu is homeless");
        let st = l.stats();
        assert_eq!(st.replacements, 1, "re-placement happens once, then sticks");
        assert!(st.skipped_dead > 0, "the homeless FpMdu still skips");
        // Steady state: re-applying finds the re-placed Lsu already up.
        let before = l.stats().loads_started;
        l.apply(ConfigChoice::Predefined(2), &mut f);
        assert_eq!(l.stats().loads_started, before, "no placement churn");
    }

    #[test]
    fn replacement_helpers_degrade_gracefully() {
        let set = SteeringSet::paper_default();
        let c = &set.predefined[2];
        // All slots dead: nothing achievable, no panic.
        assert_eq!(
            achievable_rfu_counts(c, 8, |_| true),
            rsp_isa::units::TypeCounts::ZERO
        );
        assert_eq!(replacement_head(c, 8, |_| true, 0), None);
        // One-slot fabric: only a 1-slot unit could ever fit, and the
        // paper placements all start past it — no panic either way.
        assert_eq!(
            achievable_rfu_counts(c, 1, |_| false).total(),
            u32::from(achievable_rfu_counts(c, 1, |_| false).get(UnitType::Lsu)),
        );
        // No dead slots: achievable equals the nominal counts.
        assert_eq!(achievable_rfu_counts(c, 8, |_| false), c.counts);
        // Dead {0,5}: the displaced Lsu lands on slot 6.
        let dead = |s: usize| s == 0 || s == 5;
        assert_eq!(replacement_head(c, 8, dead, 0), Some(6));
        assert_eq!(
            replacement_head(c, 8, dead, 1),
            Some(1),
            "healthy span keeps its head"
        );
        assert_eq!(
            replacement_head(c, 8, dead, 5),
            None,
            "no 3 contiguous healthy slots"
        );
        let ach = achievable_rfu_counts(c, 8, dead);
        assert_eq!(ach.get(UnitType::Lsu), 2);
        assert_eq!(ach.get(UnitType::FpAlu), 1);
        assert_eq!(ach.get(UnitType::FpMdu), 0);
    }

    #[test]
    fn zombie_spans_are_force_reloaded_when_fault_aware() {
        // No scrub: without the fault-aware path, zombies accumulate and
        // stay (the skip rule sees a matching span); with it, the loader
        // rewrites them as soon as the selection revisits the span.
        let faults = FaultParams {
            seed: 11,
            upset_ppm: PPM / 20,
            scrub_interval: 0,
            ..FaultParams::default()
        };
        let mut plain = loader();
        let mut f_plain = faulty_fabric(faults.clone());
        let mut aware = loader();
        aware.fault_aware = true;
        let mut f_aware = faulty_fabric(faults);
        for _ in 0..500 {
            plain.apply(ConfigChoice::Predefined(0), &mut f_plain);
            f_plain.tick();
            aware.apply(ConfigChoice::Predefined(0), &mut f_aware);
            f_aware.tick();
        }
        assert_eq!(plain.stats().zombie_reloads, 0);
        assert!(aware.stats().zombie_reloads > 0, "{:?}", aware.stats());
        assert!(
            f_aware.corrupted_units() < f_plain.corrupted_units(),
            "zombie reloads must keep corruption from accumulating: \
             aware={} plain={}",
            f_aware.corrupted_units(),
            f_plain.corrupted_units()
        );
    }

    #[test]
    fn selection_change_counting() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        l.apply(ConfigChoice::Current, &mut f);
        l.apply(ConfigChoice::Current, &mut f);
        l.apply(ConfigChoice::Predefined(1), &mut f);
        l.apply(ConfigChoice::Predefined(1), &mut f);
        l.apply(ConfigChoice::Current, &mut f);
        assert_eq!(l.stats().selection_changes, 2);
        assert_eq!(l.stats().selections, vec![3, 0, 2, 0]);
    }
}

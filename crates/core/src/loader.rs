//! The configuration loader (paper §3.2).
//!
//! "Once a configuration is chosen, the configuration loader will
//! determine which RFUs need to be reconfigured by determining the
//! difference (XOR) between the chosen configuration and the current
//! configuration using the resource allocation vector. The loader will
//! then choose which RFUs to reconfigure on the basis of their
//! availability. If an RFU is executing a multicycle instruction, the RFU
//! cannot be reconfigured until the instruction finishes execution …
//! The RFU will not be reconfigured if it already implements the
//! specified functional unit."
//!
//! Consequences faithfully modelled here:
//! * choosing the current configuration starts no loads;
//! * only *idle* RFUs are reloaded — busy ones are skipped and may be
//!   picked up by a *different* selection on a later cycle ("by the time
//!   it is available for reconfiguration, a different configuration may
//!   have been selected");
//! * matching units are never reloaded (partial reconfiguration);
//! * in-flight loads are never cancelled;
//! * the live configuration is therefore generally a **hybrid overlap**
//!   of steering configurations.

use crate::select::ConfigChoice;
use rsp_fabric::config::SteeringSet;
use rsp_fabric::fabric::{Fabric, LoadError};
use serde::{Deserialize, Serialize};

/// Loader counters (per-run).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoaderStats {
    /// Selections applied, indexed by two-bit value (0 = current).
    pub selections: Vec<u64>,
    /// Cycles on which the applied selection differed from the previous
    /// cycle's selection (steering-direction changes).
    pub selection_changes: u64,
    /// Loads successfully started.
    pub loads_started: u64,
    /// Load attempts deferred because the target span had a busy unit.
    pub deferred_busy: u64,
    /// Load attempts deferred because no reconfiguration port was free.
    pub deferred_port: u64,
    /// Load attempts skipped because the span already implements the unit.
    pub skipped_matching: u64,
    /// Load attempts skipped because the span is already being loaded.
    pub skipped_loading: u64,
}

/// The configuration loader: applies a selection to the fabric using
/// partial reconfiguration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationLoader {
    set: SteeringSet,
    /// When `false`, reload *every* unit of a newly chosen configuration
    /// even if the span already matches (E2 full-reload ablation).
    pub partial: bool,
    stats: LoaderStats,
    last_choice: Option<ConfigChoice>,
}

impl ConfigurationLoader {
    /// A loader steering over `set`, with the paper's partial
    /// reconfiguration behaviour.
    pub fn new(set: SteeringSet) -> ConfigurationLoader {
        let n = 1 + set.predefined.len();
        ConfigurationLoader {
            set,
            partial: true,
            stats: LoaderStats {
                selections: vec![0; n],
                ..LoaderStats::default()
            },
            last_choice: None,
        }
    }

    /// The steering set this loader serves.
    #[inline]
    pub fn set(&self) -> &SteeringSet {
        &self.set
    }

    /// Counters so far.
    #[inline]
    pub fn stats(&self) -> &LoaderStats {
        &self.stats
    }

    /// The selection applied on the previous cycle.
    #[inline]
    pub fn last_choice(&self) -> Option<ConfigChoice> {
        self.last_choice
    }

    /// Apply one cycle's selection: start as many of the chosen
    /// configuration's unit loads as availability and ports allow.
    /// Returns the number of loads started.
    pub fn apply(&mut self, choice: ConfigChoice, fabric: &mut Fabric) -> usize {
        let idx = choice.two_bit() as usize;
        if let Some(c) = self.stats.selections.get_mut(idx) {
            *c += 1;
        }
        if self.last_choice.is_some() && self.last_choice != Some(choice) {
            self.stats.selection_changes += 1;
        }
        self.last_choice = Some(choice);

        let ConfigChoice::Predefined(i) = choice else {
            return 0; // keep the current configuration: no reconfiguration
        };
        let target = &self.set.predefined[i];
        let mut started = 0;
        for pu in target.placement.units() {
            let res = if self.partial {
                fabric.begin_load(pu.head, pu.unit)
            } else {
                fabric.begin_load_forced(pu.head, pu.unit)
            };
            match res {
                Ok(()) => {
                    self.stats.loads_started += 1;
                    started += 1;
                }
                Err(LoadError::AlreadyConfigured) => self.stats.skipped_matching += 1,
                Err(LoadError::SpanBusy) => self.stats.deferred_busy += 1,
                Err(LoadError::NoPortFree) => self.stats.deferred_port += 1,
                Err(LoadError::SpanLoading) => self.stats.skipped_loading += 1,
                Err(LoadError::OutOfRange) => {
                    unreachable!("steering-set placements fit the fabric")
                }
            }
        }
        started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_fabric::fabric::{FabricParams, UnitId};
    use rsp_isa::UnitType;

    fn fabric(latency: u64, ports: usize) -> Fabric {
        Fabric::new(FabricParams {
            per_slot_load_latency: latency,
            reconfig_ports: ports,
            ..FabricParams::default()
        })
    }

    fn loader() -> ConfigurationLoader {
        ConfigurationLoader::new(SteeringSet::paper_default())
    }

    #[test]
    fn current_choice_starts_nothing() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        assert_eq!(l.apply(ConfigChoice::Current, &mut f), 0);
        assert_eq!(f.loads_in_flight(), 0);
        assert_eq!(l.stats().selections[0], 1);
    }

    #[test]
    fn empty_fabric_loads_whole_config_with_enough_ports() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        let started = l.apply(ConfigChoice::Predefined(0), &mut f);
        assert_eq!(started, 5, "Config 1 has 5 units");
        // Drain the loads: LSU takes 1 cycle, Int units 2.
        for _ in 0..2 {
            f.tick();
        }
        assert_eq!(f.rfu_counts(), l.set().predefined[0].counts);
    }

    #[test]
    fn single_port_loads_one_unit_per_selection() {
        let mut l = loader();
        let mut f = fabric(1, 1);
        let started = l.apply(ConfigChoice::Predefined(0), &mut f);
        assert_eq!(started, 1);
        assert_eq!(l.stats().deferred_port, 4);
        // Re-applying after completion starts the next unit.
        f.tick();
        f.tick();
        let started = l.apply(ConfigChoice::Predefined(0), &mut f);
        assert_eq!(started, 1);
        assert_eq!(l.stats().skipped_matching, 1, "first unit now matches");
    }

    #[test]
    fn partial_reconfig_skips_overlap() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        // Load Config 1 fully.
        l.apply(ConfigChoice::Predefined(0), &mut f);
        f.tick();
        f.tick();
        // Steer to Config 2: shares the Int-ALU@0 and Int-MDU placement
        // prefix; only the differing tail should reload.
        let started = l.apply(ConfigChoice::Predefined(1), &mut f);
        let c2 = &l.set().predefined[1];
        let overlap = c2.placement.units().count() - started;
        // The shared Int-ALU prefix at slot 0 must not be reloaded.
        assert!(overlap >= 1, "expected ≥1 matching unit, got {overlap}");
        assert_eq!(l.stats().skipped_matching, 1);
        assert_eq!(f.alloc().unit_at(0).unwrap().unit, UnitType::IntAlu);
    }

    #[test]
    fn busy_units_are_skipped_not_waited_for() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        l.apply(ConfigChoice::Predefined(0), &mut f);
        f.tick();
        f.tick();
        // Mark the Int-ALU at slot 0 busy; steer to Config 3 (no ALUs).
        f.set_busy(UnitId::Rfu { head: 0 });
        let before = f.rfu_counts();
        l.apply(ConfigChoice::Predefined(2), &mut f);
        assert!(l.stats().deferred_busy > 0);
        // The busy ALU must still be configured.
        assert_eq!(f.alloc().unit_at(0).unwrap().unit, UnitType::IntAlu);
        assert!(before.get(UnitType::IntAlu) > 0);
    }

    #[test]
    fn full_reload_ablation_reloads_matching_units() {
        let mut l = loader();
        l.partial = false;
        let mut f = fabric(1, 8);
        l.apply(ConfigChoice::Predefined(0), &mut f);
        for _ in 0..2 {
            f.tick();
        }
        let started = l.apply(ConfigChoice::Predefined(0), &mut f);
        assert_eq!(started, 5, "full reload ignores matching spans");
        assert_eq!(l.stats().skipped_matching, 0);
    }

    #[test]
    fn selection_change_counting() {
        let mut l = loader();
        let mut f = fabric(1, 8);
        l.apply(ConfigChoice::Current, &mut f);
        l.apply(ConfigChoice::Current, &mut f);
        l.apply(ConfigChoice::Predefined(1), &mut f);
        l.apply(ConfigChoice::Predefined(1), &mut f);
        l.apply(ConfigChoice::Current, &mut f);
        assert_eq!(l.stats().selection_changes, 2);
        assert_eq!(l.stats().selections, vec![3, 0, 2, 0]);
    }
}

//! Steering-basis search (paper §5, future work).
//!
//! "Designing the predefined steering configurations to be relatively
//! orthogonal to one another may form the basis necessary to permit a
//! large set of actual configurations … The authors are currently
//! investigating how to formulate an optimal basis."
//!
//! This module formulates and solves that problem for the static
//! objective: given a distribution of demand signatures (what the queue
//! asks for), choose `k` predefined configurations minimising the
//! **expected minimal CEM error** — for each demand sample, the best of
//! the `k` candidate configurations (plus the FFU baseline) is assumed
//! reachable, which is exactly the steady state the steering loop drives
//! toward.
//!
//! Two solvers:
//! * [`greedy_basis`] — iterative set-cover-style greedy (near-optimal,
//!   fast);
//! * [`exhaustive_basis`] — exact search over all `C(n, k)` subsets of
//!   the candidate shapes (the maximal-shape space is small: guarded to
//!   keep the search tractable).

use crate::cem::CemUnit;
use crate::loader::achievable_rfu_counts;
use rsp_fabric::config::Configuration;
use rsp_isa::units::{TypeCounts, UnitType};

/// Enumerate every unit-count shape that fits in `slots` RFU slots.
pub fn enumerate_shapes(slots: usize) -> Vec<TypeCounts> {
    let mut out = Vec::new();
    let max = |t: UnitType| (slots / t.slot_cost()) as u8;
    for a in 0..=max(UnitType::IntAlu) {
        for b in 0..=max(UnitType::IntMdu) {
            for c in 0..=max(UnitType::Lsu) {
                for d in 0..=max(UnitType::FpAlu) {
                    for e in 0..=max(UnitType::FpMdu) {
                        let counts = TypeCounts::new([a, b, c, d, e]);
                        if counts.slot_cost() <= slots {
                            out.push(counts);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Shapes to which no further unit can be added — the sensible candidate
/// set for a steering basis (anything else wastes fabric).
pub fn maximal_shapes(slots: usize) -> Vec<TypeCounts> {
    enumerate_shapes(slots)
        .into_iter()
        .filter(|c| {
            let free = slots - c.slot_cost();
            UnitType::ALL.iter().all(|t| t.slot_cost() > free)
        })
        .collect()
}

/// Mean over `samples` of the minimal CEM error achievable by any basis
/// member (each taken together with the FFU baseline). Lower is better.
pub fn basis_score(
    basis: &[TypeCounts],
    ffu: &TypeCounts,
    samples: &[TypeCounts],
    cem: CemUnit,
) -> f64 {
    assert!(!samples.is_empty(), "need at least one demand sample");
    let total: u64 = samples
        .iter()
        .map(|demand| {
            let demand = demand.saturating_3bit();
            basis
                .iter()
                .map(|b| cem.error(&demand, &b.saturating_add(ffu)) as u64)
                .min()
                .unwrap_or_else(|| cem.error(&demand, ffu) as u64)
        })
        .sum();
    total as f64 / samples.len() as f64
}

/// The shape `counts` can actually deliver on a `slots`-wide fabric with
/// stuck-at-dead slots, after the fault-aware loader's greedy
/// re-placement pass (DESIGN.md §11): the canonical placement is
/// computed, displaced units are re-placed first-fit into healthy
/// capacity, and whatever remains homeless is dropped. Shapes that do
/// not fit the fabric at all deliver nothing.
pub fn achievable_shape(
    counts: TypeCounts,
    slots: usize,
    dead: impl Fn(usize) -> bool,
) -> TypeCounts {
    match Configuration::place("achievable", counts, slots) {
        Ok(c) => achievable_rfu_counts(&c, slots, dead),
        Err(_) => TypeCounts::ZERO,
    }
}

/// [`basis_score`] on a degraded fabric: every basis member is first
/// reduced to its [`achievable_shape`], so candidates are ranked by the
/// capacity they can still deliver rather than the capacity they
/// nominally promise — the same substitution the fault-aware selection
/// unit applies at steering time. With no dead slots this is exactly
/// `basis_score`.
pub fn degraded_basis_score(
    basis: &[TypeCounts],
    ffu: &TypeCounts,
    samples: &[TypeCounts],
    cem: CemUnit,
    slots: usize,
    dead: impl Fn(usize) -> bool,
) -> f64 {
    let reduced: Vec<TypeCounts> = basis
        .iter()
        .map(|&b| achievable_shape(b, slots, &dead))
        .collect();
    basis_score(&reduced, ffu, samples, cem)
}

/// Greedy basis construction: start empty, repeatedly add the candidate
/// shape that most reduces the score, `k` times. Returns the basis and
/// its score.
pub fn greedy_basis(
    k: usize,
    candidates: &[TypeCounts],
    ffu: &TypeCounts,
    samples: &[TypeCounts],
    cem: CemUnit,
) -> (Vec<TypeCounts>, f64) {
    let mut basis: Vec<TypeCounts> = Vec::with_capacity(k);
    let mut best_score = f64::INFINITY;
    for _ in 0..k {
        let mut round_best: Option<(TypeCounts, f64)> = None;
        for &cand in candidates {
            if basis.contains(&cand) {
                continue;
            }
            basis.push(cand);
            let s = basis_score(&basis, ffu, samples, cem);
            basis.pop();
            if round_best.is_none_or(|(_, bs)| s < bs) {
                round_best = Some((cand, s));
            }
        }
        match round_best {
            Some((cand, s)) => {
                basis.push(cand);
                best_score = s;
            }
            None => break,
        }
    }
    (basis, best_score)
}

/// Exact search over all `C(n, k)` subsets. Guarded: panics if the
/// search space exceeds ~2 million subsets; use [`greedy_basis`] beyond
/// that.
pub fn exhaustive_basis(
    k: usize,
    candidates: &[TypeCounts],
    ffu: &TypeCounts,
    samples: &[TypeCounts],
    cem: CemUnit,
) -> (Vec<TypeCounts>, f64) {
    let n = candidates.len();
    assert!(k >= 1 && k <= n, "1 ≤ k ≤ candidates");
    let mut subsets = 1u64;
    for i in 0..k as u64 {
        subsets = subsets * (n as u64 - i) / (i + 1);
    }
    assert!(
        subsets <= 2_000_000,
        "search space {subsets} too large; use greedy_basis"
    );

    let mut idx: Vec<usize> = (0..k).collect();
    let mut best: Option<(Vec<TypeCounts>, f64)> = None;
    loop {
        let basis: Vec<TypeCounts> = idx.iter().map(|&i| candidates[i]).collect();
        let s = basis_score(&basis, ffu, samples, cem);
        if best.as_ref().is_none_or(|(_, bs)| s < *bs) {
            best = Some((basis, s));
        }
        // Next k-combination of 0..n in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                return best.unwrap();
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FFU: TypeCounts = TypeCounts::new([1, 1, 1, 1, 1]);

    #[test]
    fn enumeration_counts() {
        let all = enumerate_shapes(8);
        // Every shape fits; spot-check bounds.
        assert!(all.iter().all(|c| c.slot_cost() <= 8));
        assert!(all.contains(&TypeCounts::ZERO));
        assert!(all.contains(&TypeCounts::new([2, 1, 2, 0, 0]))); // Config 1
        assert!(all.contains(&TypeCounts::new([0, 0, 8, 0, 0]))); // 8 LSUs
        assert!(!all.contains(&TypeCounts::new([4, 1, 0, 0, 0]))); // 10 slots — absent
                                                                   // Maximal shapes leave no room for even an LSU.
        let max = maximal_shapes(8);
        assert!(max.iter().all(|c| c.slot_cost() == 8), "LSU costs 1 slot");
        assert!(max.contains(&TypeCounts::new([2, 1, 2, 0, 0])));
        assert!(!max.is_empty() && max.len() < all.len());
    }

    #[test]
    fn paper_configs_are_maximal() {
        let max = maximal_shapes(8);
        for c in [[2, 1, 2, 0, 0], [1, 1, 1, 1, 0], [0, 0, 2, 1, 1]] {
            assert!(max.contains(&TypeCounts::new(c)), "{c:?}");
        }
    }

    #[test]
    fn score_of_perfectly_matched_basis_is_low() {
        let samples = vec![TypeCounts::new([0, 0, 2, 2, 2])];
        let fp = TypeCounts::new([0, 0, 2, 1, 1]);
        let int = TypeCounts::new([2, 1, 2, 0, 0]);
        let s_fp = basis_score(&[fp], &FFU, &samples, CemUnit::PAPER);
        let s_int = basis_score(&[int], &FFU, &samples, CemUnit::PAPER);
        assert!(s_fp < s_int, "{s_fp} !< {s_int}");
        // A basis containing both scores as well as the best single.
        let s_both = basis_score(&[int, fp], &FFU, &samples, CemUnit::PAPER);
        assert_eq!(s_both, s_fp);
    }

    #[test]
    fn empty_basis_scores_against_ffus_only() {
        let samples = vec![TypeCounts::new([2, 0, 0, 0, 0])];
        let s = basis_score(&[], &FFU, &samples, CemUnit::PAPER);
        // 2 ALUs required, 1 available → 2>>0 = 2 (scaled).
        assert_eq!(s, 2.0 * crate::cem::ERROR_SCALE as f64);
    }

    #[test]
    fn achievable_shape_reduces_with_dead_slots() {
        let config3 = TypeCounts::new([0, 0, 2, 1, 1]);
        // Healthy fabric: the full shape survives.
        assert_eq!(achievable_shape(config3, 8, |_| false), config3);
        // Dead {0, 5}: one Lsu re-places, the FpMdu is homeless
        // (mirrors the DESIGN.md §11 worked example).
        let dead = |s: usize| s == 0 || s == 5;
        assert_eq!(
            achievable_shape(config3, 8, dead),
            TypeCounts::new([0, 0, 2, 1, 0])
        );
        // All dead, or a shape that never fit: nothing.
        assert_eq!(achievable_shape(config3, 8, |_| true), TypeCounts::ZERO);
        assert_eq!(
            achievable_shape(TypeCounts::new([4, 1, 0, 0, 0]), 8, |_| false),
            TypeCounts::ZERO,
            "10-slot shape cannot be placed at all"
        );
    }

    #[test]
    fn degraded_score_never_beats_healthy_score() {
        let basis = [
            TypeCounts::new([2, 1, 2, 0, 0]),
            TypeCounts::new([0, 0, 2, 1, 1]),
        ];
        let samples = vec![
            TypeCounts::new([2, 0, 2, 0, 0]),
            TypeCounts::new([0, 0, 1, 1, 1]),
        ];
        let healthy = degraded_basis_score(&basis, &FFU, &samples, CemUnit::PAPER, 8, |_| false);
        assert_eq!(
            healthy,
            basis_score(&basis, &FFU, &samples, CemUnit::PAPER),
            "no dead slots: degraded scoring is plain scoring"
        );
        let degraded = degraded_basis_score(&basis, &FFU, &samples, CemUnit::PAPER, 8, |s| {
            s == 0 || s == 5
        });
        assert!(
            degraded >= healthy,
            "losing capacity cannot reduce expected CEM error: {degraded} < {healthy}"
        );
        // An all-dead fabric scores exactly like the empty basis (only
        // the FFUs remain).
        let floor = degraded_basis_score(&basis, &FFU, &samples, CemUnit::PAPER, 8, |_| true);
        assert_eq!(floor, basis_score(&[], &FFU, &samples, CemUnit::PAPER));
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_space() {
        let candidates = [
            TypeCounts::new([2, 1, 2, 0, 0]),
            TypeCounts::new([1, 1, 1, 1, 0]),
            TypeCounts::new([0, 0, 2, 1, 1]),
            TypeCounts::new([0, 0, 8, 0, 0]),
            TypeCounts::new([4, 0, 0, 0, 0]),
        ];
        let samples = vec![
            TypeCounts::new([4, 0, 2, 0, 0]),
            TypeCounts::new([0, 0, 4, 0, 0]),
            TypeCounts::new([0, 0, 1, 2, 2]),
        ];
        let (gb, gs) = greedy_basis(2, &candidates, &FFU, &samples, CemUnit::PAPER);
        let (eb, es) = exhaustive_basis(2, &candidates, &FFU, &samples, CemUnit::PAPER);
        assert_eq!(gb.len(), 2);
        assert_eq!(eb.len(), 2);
        assert!(gs >= es, "greedy cannot beat exhaustive");
        // On this tiny instance greedy should actually find the optimum.
        assert_eq!(gs, es);
    }

    #[test]
    fn exhaustive_iterates_all_combinations() {
        // k == n degenerates to the full candidate set.
        let candidates = [TypeCounts::new([1, 0, 0, 0, 0]), TypeCounts::ZERO];
        let samples = vec![TypeCounts::new([2, 0, 0, 0, 0])];
        let (b, _) = exhaustive_basis(2, &candidates, &FFU, &samples, CemUnit::PAPER);
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic]
    fn exhaustive_guards_search_space() {
        let candidates: Vec<TypeCounts> = enumerate_shapes(8);
        // C(n, 5) over the full shape space blows the guard.
        let samples = vec![TypeCounts::ZERO];
        let _ = exhaustive_basis(5, &candidates, &FFU, &samples, CemUnit::PAPER);
    }
}

//! DESIGN.md invariant 5, property-tested: starting from any reachable
//! fabric state, repeatedly applying one selection (with ticks, nothing
//! busy) makes the fabric converge to exactly the chosen configuration's
//! placement — and once converged, the loader is quiescent.

use proptest::prelude::*;
use rsp_core::{ConfigChoice, ConfigurationLoader, PaperSteering, SteeringPolicy};
use rsp_fabric::config::SteeringSet;
use rsp_fabric::fabric::{Fabric, FabricParams};
use rsp_isa::units::TypeCounts;

fn fabric(latency: u64, ports: usize) -> Fabric {
    Fabric::new(FabricParams {
        per_slot_load_latency: latency,
        reconfig_ports: ports,
        ..FabricParams::default()
    })
}

/// Scramble a fabric into a reachable hybrid state with a random load
/// sequence.
fn scramble(f: &mut Fabric, seeds: &[(usize, usize)]) {
    for &(slot, unit) in seeds {
        let t = rsp_isa::units::UnitType::from_index(unit % 5).unwrap();
        let _ = f.begin_load(slot % 8, t);
        for _ in 0..4 {
            f.tick();
        }
    }
    while f.loads_in_flight() > 0 {
        f.tick();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn loader_converges_to_chosen_configuration(
        seeds in proptest::collection::vec((0usize..8, 0usize..5), 0..12),
        target in 0usize..3,
        latency in 0u64..5,
        ports in 1usize..4,
    ) {
        let set = SteeringSet::paper_default();
        let mut f = fabric(latency, ports);
        scramble(&mut f, &seeds);

        let mut loader = ConfigurationLoader::new(set.clone());
        // Enough cycles for the worst case: 8 slots × latency, one port.
        let budget = 8 * (latency + 1) * 8 + 64;
        for _ in 0..budget {
            loader.apply(ConfigChoice::Predefined(target), &mut f);
            f.tick();
        }
        prop_assert_eq!(
            f.alloc(),
            &set.predefined[target].placement,
            "fabric did not converge: {}",
            f.slot_map()
        );
        // Quiescent: a further application starts nothing.
        let started = loader.apply(ConfigChoice::Predefined(target), &mut f);
        prop_assert_eq!(started, 0);
        prop_assert_eq!(f.loads_in_flight(), 0);
    }

    /// The full paper policy under *constant demand* converges to a
    /// fabric whose configured counts no longer change, and thereafter
    /// reports "current" forever (steady state of §3.1).
    #[test]
    fn paper_policy_reaches_steady_state(
        demand_raw in proptest::collection::vec(0u8..5, 5),
        seeds in proptest::collection::vec((0usize..8, 0usize..5), 0..8),
    ) {
        let mut demand = TypeCounts::new([
            demand_raw[0], demand_raw[1], demand_raw[2], demand_raw[3], demand_raw[4],
        ]).saturating_3bit();
        // Keep within the 7-entry queue bound.
        while demand.total() > 7 {
            for &t in &rsp_isa::units::UnitType::ALL {
                if demand.total() > 7 && demand.get(t) > 0 {
                    demand.set(t, demand.get(t) - 1);
                }
            }
        }
        let mut f = fabric(2, 1);
        scramble(&mut f, &seeds);
        let mut p = PaperSteering::paper_default();
        for _ in 0..600 {
            p.tick(&demand, &mut f);
            f.tick();
        }
        while f.loads_in_flight() > 0 {
            f.tick();
        }
        // Steady state: the next 50 cycles change nothing and pick
        // "current" every time.
        let settled = f.alloc().clone();
        for _ in 0..50 {
            let out = p.tick(&demand, &mut f);
            f.tick();
            prop_assert_eq!(out.choice, Some(ConfigChoice::Current));
            prop_assert_eq!(out.loads_started, 0);
        }
        prop_assert_eq!(f.alloc(), &settled);
    }
}

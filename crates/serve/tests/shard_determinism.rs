//! Sharding must be invisible to tenants: the same 16-tenant fleet
//! served on 1, 2, or 4 engine shards produces identical per-tenant
//! telemetry streams and final statuses, and the per-tenant SLO
//! counts still sum to the merged aggregate slab. This is the
//! replay-identity argument from DESIGN.md §16 made executable — a
//! tenant's telemetry depends only on (spec, seed, policy, base
//! config), never on which shard or lane group served it.

use rsp_serve::{
    EngineConfig, ServeEngine, ShardedEngine, TenantPhase, TenantRequest, WatermarkScheduler,
    SLO_HISTO_NAMES,
};
use rsp_workloads::{LaneTraceSpec, StreamSpec, SynthSpec, UnitMix};

const TENANTS: u64 = 16;

/// A mixed fleet: three scalar streams with varied seeds and weights,
/// then a lane stream, repeating.
fn fleet_req(i: u64) -> TenantRequest {
    #[allow(unknown_lints, clippy::manual_is_multiple_of)]
    let lane = (i + 1) % 4 == 0;
    let spec = if lane {
        StreamSpec::lane(
            format!("fleet-lane-{i}"),
            LaneTraceSpec::synthetic_mix(200, i),
            200,
        )
    } else {
        StreamSpec::synth(
            format!("fleet-{i}"),
            SynthSpec {
                body_len: 120,
                ..SynthSpec::new("fleet", UnitMix::BALANCED, i * 17 + 3)
            },
            3_000,
        )
    };
    TenantRequest {
        telemetry_capacity: 64,
        ..TenantRequest::new(spec.with_weight((i % 3) as u32 + 1))
    }
}

/// Run the fleet on `shards` shards; return per-tenant (id, phase,
/// cycles, telemetry) in submission order.
fn run(shards: usize) -> Vec<(u64, TenantPhase, u64, String)> {
    let mut fleet = ShardedEngine::new(
        EngineConfig::default(),
        WatermarkScheduler::default(),
        shards,
    );
    let ids: Vec<u64> = (0..TENANTS)
        .map(|i| {
            fleet
                .submit(fleet_req(i))
                .expect("roomy watermarks admit all")
        })
        .collect();
    assert!(fleet.run_until_idle(100_000), "fleet failed to drain");
    ids.iter()
        .map(|&id| {
            let s = fleet.status(id).unwrap();
            let t = fleet.telemetry(id).unwrap_or_default().to_string();
            (id, s.phase, s.cycles, t)
        })
        .collect()
}

#[test]
fn shard_count_does_not_change_tenant_telemetry() {
    let one = run(1);
    let two = run(2);
    let four = run(4);
    assert_eq!(one, two, "2-shard run diverged from single-engine run");
    assert_eq!(one, four, "4-shard run diverged from single-engine run");
    // And the single-shard fleet matches a bare engine byte for byte.
    let mut engine = ServeEngine::new(EngineConfig::default(), WatermarkScheduler::default());
    let ids: Vec<u64> = (0..TENANTS)
        .map(|i| engine.submit(fleet_req(i)).unwrap())
        .collect();
    assert!(engine.run_until_idle(100_000));
    for (row, &id) in one.iter().zip(&ids) {
        assert_eq!(row.3, engine.telemetry(id).unwrap_or_default());
    }
}

#[test]
fn per_tenant_slo_counts_sum_to_merged_aggregate() {
    for shards in [1usize, 2, 4] {
        let mut fleet = ShardedEngine::new(
            EngineConfig::default(),
            WatermarkScheduler::default(),
            shards,
        );
        for i in 0..TENANTS {
            fleet.submit(fleet_req(i)).unwrap();
        }
        assert!(fleet.run_until_idle(100_000));
        let frame = fleet.metrics();
        assert_eq!(frame.tenants.len(), TENANTS as usize);
        for name in SLO_HISTO_NAMES {
            let agg = frame.aggregate.histogram(name).unwrap();
            let per_tenant: u64 = frame
                .tenants
                .iter()
                .map(|t| t.snapshot.histogram(name).map_or(0, |h| h.count))
                .sum();
            assert_eq!(
                agg.count, per_tenant,
                "{name} aggregate count no longer sums over {shards} shard(s)"
            );
            let sum: u64 = frame
                .tenants
                .iter()
                .map(|t| t.snapshot.histogram(name).map_or(0, |h| h.sum))
                .sum();
            assert_eq!(agg.sum, sum, "{name} aggregate sum broke under sharding");
        }
        for counter in ["quanta", "cycles"] {
            let agg = frame.aggregate.counter(counter).unwrap();
            let per_tenant: u64 = frame
                .tenants
                .iter()
                .map(|t| t.snapshot.counter(counter).unwrap_or(0))
                .sum();
            assert_eq!(
                agg, per_tenant,
                "{counter} aggregate no longer sums over {shards} shard(s)"
            );
        }
    }
}

//! Fairness regression tests for the weighted-fair scheduler.
//!
//! Two pins: (1) a 3:1 weight split yields completed-cycle shares
//! within 10% of 3:1 while both tenants are saturating their grants;
//! (2) with all weights equal (or unset) the WFQ scheduler degenerates
//! bit-identically to the plain watermark round-robin — same stats,
//! same telemetry, same metrics frames — so mounting WFQ is free until
//! someone actually asks for skewed weights.

use rsp_serve::{
    EngineConfig, EngineStats, ServeEngine, TenantPhase, TenantRequest, WatermarkScheduler,
    WfqScheduler,
};
use rsp_workloads::{LaneTraceSpec, StreamSpec, SynthSpec, UnitMix};

/// A scalar stream long enough that it cannot finish (or halt) inside
/// the measurement window, so every tick it absorbs its full grant.
fn saturating_req(seed: u64, weight: u32) -> TenantRequest {
    let spec = SynthSpec {
        body_len: 200,
        iterations: 1_000,
        ..SynthSpec::new("fair", UnitMix::BALANCED, seed)
    };
    TenantRequest {
        telemetry_capacity: 0,
        ..TenantRequest::new(
            StreamSpec::synth(format!("fair-w{weight}"), spec, u64::MAX / 2).with_weight(weight),
        )
    }
}

fn tenant_cycles(engine: &ServeEngine<WfqScheduler>, id: u64) -> u64 {
    engine
        .metrics()
        .tenants
        .iter()
        .find(|t| t.id == id)
        .and_then(|t| t.snapshot.counter("cycles"))
        .unwrap_or(0)
}

#[test]
fn three_to_one_weights_yield_three_to_one_cycle_shares() {
    let wm = WatermarkScheduler {
        queue_depth: 8,
        max_active: 8,
        step_lag_watermark: 64,
        quantum: 256,
    };
    let mut engine = ServeEngine::new(
        EngineConfig::default(),
        WfqScheduler {
            watermarks: wm,
            max_weight: 8,
        },
    );
    let heavy = engine.submit(saturating_req(7, 3)).unwrap();
    let light = engine.submit(saturating_req(7, 1)).unwrap();

    for _ in 0..32 {
        engine.tick();
    }

    // Both streams must still be saturating — otherwise the share
    // measurement below would be bounded by completion, not weights.
    for id in [heavy, light] {
        assert_eq!(engine.status(id).unwrap().phase, TenantPhase::Running);
    }

    let h = tenant_cycles(&engine, heavy);
    let l = tenant_cycles(&engine, light);
    assert!(l > 0, "light tenant was starved outright");
    let ratio = h as f64 / l as f64;
    assert!(
        (ratio - 3.0).abs() <= 0.3,
        "completed-cycle shares {h}:{l} (ratio {ratio:.3}) drifted more \
         than 10% from the 3:1 weight split"
    );
}

/// One full run under a scheduler: final stats, every tenant's
/// telemetry, and the merged metrics frame.
fn drive<S: rsp_serve::Scheduler>(sched: S) -> (EngineStats, Vec<Option<String>>, String) {
    let mut engine = ServeEngine::new(EngineConfig::default(), sched);
    let mut ids = Vec::new();
    for seed in 0..4u64 {
        let spec = StreamSpec::synth(
            format!("eq-{seed}"),
            SynthSpec::new("eq", UnitMix::BALANCED, seed),
            4_000,
        );
        ids.push(engine.submit(TenantRequest::new(spec)).unwrap());
    }
    for seed in 0..2u64 {
        let spec = StreamSpec::lane(
            format!("eq-lane-{seed}"),
            LaneTraceSpec::synthetic_mix(256, seed),
            256,
        );
        ids.push(engine.submit(TenantRequest::new(spec)).unwrap());
    }
    assert!(engine.run_until_idle(100_000));
    let telemetry = ids
        .iter()
        .map(|&id| engine.telemetry(id).map(str::to_string))
        .collect();
    let frame = serde_json::to_string(&engine.metrics()).unwrap();
    (engine.stats(), telemetry, frame)
}

#[test]
fn equal_weights_degenerate_to_round_robin_bit_identically() {
    let wm = WatermarkScheduler::default();
    let baseline = drive(wm);
    let wfq = drive(WfqScheduler {
        watermarks: wm,
        ..WfqScheduler::default()
    });
    assert_eq!(baseline.0, wfq.0, "stats diverged under equal weights");
    assert_eq!(baseline.1, wfq.1, "telemetry diverged under equal weights");
    assert_eq!(
        baseline.2, wfq.2,
        "metrics frame diverged under equal weights"
    );
}

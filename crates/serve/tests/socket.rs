//! End-to-end socket tests: a real server thread, a real client, 16
//! tenants through the wire, clean shutdown, replay bit-identity
//! across the transport boundary, the SLO metrics frame and its
//! Prometheus exposition, and flight-recorder dumps on a shed storm.

use rsp_obs::{parse_fleet_jsonl, FleetEvent, PromDump, TriggerKind};
use rsp_serve::{
    replay, ServeClient, Server, ServerConfig, TenantPhase, TenantRequest, WatermarkScheduler,
    SLO_HISTO_NAMES,
};
use rsp_sim::SimConfig;
use rsp_workloads::{LaneTraceSpec, StreamSpec, SynthSpec, UnitMix};
use std::time::{Duration, Instant};

fn scalar_req(i: u64) -> TenantRequest {
    let mixes = UnitMix::named();
    let (_, mix) = mixes[(i as usize) % mixes.len()];
    TenantRequest::new(StreamSpec::synth(
        format!("sock-{i}"),
        SynthSpec {
            body_len: 100,
            ..SynthSpec::new("sock", mix, 100 + i)
        },
        20_000,
    ))
}

fn lane_req(i: u64) -> TenantRequest {
    TenantRequest::new(StreamSpec::lane(
        format!("sock-lane-{i}"),
        LaneTraceSpec::synthetic_mix(512, 200 + i),
        512,
    ))
}

#[test]
fn sixteen_tenants_over_tcp_with_clean_shutdown() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut client = ServeClient::connect(&addr).unwrap();
    let mut admitted = Vec::new();
    for i in 0..16u64 {
        let req = if i % 4 == 3 {
            lane_req(i)
        } else {
            scalar_req(i)
        };
        let id = client.submit(req.clone()).unwrap().expect("admitted");
        admitted.push((id, req));
    }

    let deadline = Instant::now() + Duration::from_secs(120);
    let mut pending: Vec<u64> = admitted.iter().map(|(id, _)| *id).collect();
    while !pending.is_empty() {
        assert!(Instant::now() < deadline, "tenants did not finish in time");
        pending.retain(|&id| {
            let s = client.status(id).unwrap().expect("known tenant");
            !matches!(s.phase, TenantPhase::Done | TenantPhase::Failed)
        });
        std::thread::sleep(Duration::from_millis(20));
    }

    // Every tenant completed with non-empty telemetry; one scalar and
    // one lane tenant replay bit-identically through the wire.
    let base = SimConfig::default();
    let mut checked_scalar = false;
    let mut checked_lane = false;
    for (id, req) in &admitted {
        let status = client.status(*id).unwrap().unwrap();
        assert_eq!(status.phase, TenantPhase::Done, "tenant {id}");
        assert!(status.cycles > 0);
        let jsonl = client.telemetry(*id).unwrap().unwrap();
        assert!(!jsonl.is_empty(), "tenant {id} produced no telemetry");
        if (status.lane && !checked_lane) || (!status.lane && !checked_scalar) {
            let offline = replay(&base, req).unwrap();
            assert_eq!(offline, jsonl, "tenant {id} replay mismatch");
            if status.lane {
                checked_lane = true;
            } else {
                checked_scalar = true;
            }
        }
    }
    assert!(checked_scalar && checked_lane);

    let stats = client.stats().unwrap();
    assert_eq!(stats.admitted, 16);
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.shed_total(), 0);
    assert!(stats.stepped_cycles > 0);

    client.shutdown().unwrap();
    let final_stats = handle.join().unwrap().unwrap();
    assert_eq!(final_stats.completed, 16);
}

#[cfg(unix)]
#[test]
fn tenants_over_unix_socket() {
    let path = std::env::temp_dir().join(format!("rsp-serve-test-{}.sock", std::process::id()));
    let addr = path.to_str().unwrap().to_string();
    let server = Server::bind(&addr, ServerConfig::default()).unwrap();
    let handle = std::thread::spawn(move || server.run());

    let mut client = ServeClient::connect(&addr).unwrap();
    let id = client.submit(scalar_req(0)).unwrap().expect("admitted");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline);
        let s = client.status(id).unwrap().unwrap();
        if s.phase == TenantPhase::Done {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!client.telemetry(id).unwrap().unwrap().is_empty());
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    assert!(!path.exists(), "socket file cleaned up on shutdown");
}

#[test]
fn metrics_frame_and_exposition_answer_over_the_wire() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut client = ServeClient::connect(&addr).unwrap();
    let mut ids = Vec::new();
    for i in 0..6u64 {
        let req = if i % 3 == 2 {
            lane_req(i)
        } else {
            scalar_req(i)
        };
        ids.push(client.submit(req).unwrap().expect("admitted"));
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "tenants did not finish in time");
        let done = ids
            .iter()
            .all(|&id| client.status(id).unwrap().unwrap().phase == TenantPhase::Done);
        if done {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // The metrics frame carries per-tenant SLO histograms whose counts
    // sum to the aggregate snapshot — the wire-level invariant.
    let frame = client.metrics().unwrap();
    assert_eq!(frame.tenants.len(), 6);
    for name in SLO_HISTO_NAMES {
        let agg = frame.aggregate.histogram(name).unwrap();
        let per_tenant: u64 = frame
            .tenants
            .iter()
            .map(|t| t.snapshot.histogram(name).map_or(0, |h| h.count))
            .sum();
        assert_eq!(agg.count, per_tenant, "histogram {name}");
    }

    // The server-rendered exposition parses, and its families agree
    // with the frame the same server just returned.
    let text = client.exposition().unwrap();
    let dump = PromDump::parse(&text).unwrap();
    assert_eq!(
        dump.value_u64("rsp_serve_admitted_total", &[]),
        Some(frame.stats.admitted)
    );
    let agg = dump.histogram("rsp_serve_queue_residency", &[]).unwrap();
    assert_eq!(agg.count, 6, "every tenant records one residency sample");
    for t in &frame.tenants {
        let key = format!("t{}", t.id);
        let h = dump
            .histogram("rsp_serve_tenant_quantum_cycles", &[("tenant", &key)])
            .unwrap();
        assert_eq!(
            h.count,
            t.snapshot.histogram("quantum_cycles").unwrap().count
        );
        assert!(h.count > 0, "tenant {} stepped at least one quantum", t.id);
    }

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn shed_storm_writes_a_wellformed_flight_dump() {
    let dir = std::env::temp_dir().join(format!("rsp-sock-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServerConfig {
        scheduler: WatermarkScheduler {
            queue_depth: 2,
            max_active: 0, // nothing activates → deterministic sheds
            step_lag_watermark: 1_000_000,
            quantum: 64,
        },
        ..ServerConfig::default()
    };
    cfg.engine.flight_dir = Some(dir.clone());
    cfg.engine.shed_storm_threshold = 5;
    // The engine free-runs ticks between round-trips, so pin one
    // unbounded window: every shed counts toward the storm.
    cfg.engine.shed_storm_window = u64::MAX;
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut client = ServeClient::connect(&addr).unwrap();
    let mut shed = 0;
    for i in 0..12u64 {
        if client.submit(scalar_req(i)).unwrap().is_err() {
            shed += 1;
        }
    }
    assert_eq!(shed, 10);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    // Exactly one storm dump (the threshold trips once per window),
    // and it parses back into entries that tell the whole story:
    // admissions, the shed run, and the trigger stamp.
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("flight dir created")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(dumps.len(), 1, "dumps: {dumps:?}");
    let name = dumps[0].file_name().unwrap().to_string_lossy().to_string();
    assert!(
        name.starts_with("flight-") && name.contains("shed_storm") && name.ends_with(".jsonl"),
        "dump name {name:?}"
    );
    let entries = parse_fleet_jsonl(&std::fs::read_to_string(&dumps[0]).unwrap()).unwrap();
    let admitted = entries
        .iter()
        .filter(|e| matches!(e.event, FleetEvent::Admitted))
        .count();
    let sheds = entries
        .iter()
        .filter(|e| matches!(e.event, FleetEvent::Shed { .. }))
        .count();
    assert_eq!(admitted, 2);
    assert_eq!(sheds, 5, "the dump snapshots the ring at trigger time");
    assert!(entries.iter().any(|e| matches!(
        e.event,
        FleetEvent::Trigger {
            kind: TriggerKind::ShedStorm
        }
    )));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn saturated_server_sheds_with_reasons_over_the_wire() {
    // max_active 0: nothing ever activates, so the queue fills to its
    // depth and every later submission sheds — deterministic regardless
    // of how fast the engine thread ticks between round-trips.
    let cfg = ServerConfig {
        scheduler: WatermarkScheduler {
            queue_depth: 2,
            max_active: 0,
            step_lag_watermark: 1_000_000, // queue-depth is the binding watermark
            quantum: 64,
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut client = ServeClient::connect(&addr).unwrap();
    let mut shed = 0;
    let mut ok = 0;
    for i in 0..12u64 {
        match client.submit(scalar_req(i)).unwrap() {
            Ok(_) => ok += 1,
            Err(_) => shed += 1,
        }
    }
    assert_eq!(ok, 2, "queue depth 2 admits exactly two tenants");
    assert_eq!(shed, 10, "every submission past the watermark is shed");
    let stats = client.stats().unwrap();
    assert_eq!(stats.shed_total(), shed);
    assert_eq!(stats.shed_queue_full, shed);
    assert_eq!(stats.admitted, ok);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

//! The `rsp-serve` binary follows the workspace exit-code convention:
//! usage errors exit 2 with the usage string, runtime failures exit 1.

use std::process::{Command, Output};

fn rsp_serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rsp-serve"))
        .args(args)
        .output()
        .expect("spawn rsp-serve")
}

fn assert_usage(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(stderr.contains(needle), "{needle:?} not in:\n{stderr}");
    assert!(stderr.contains("usage:"), "no usage string:\n{stderr}");
}

#[test]
fn usage_errors_exit_2() {
    assert_usage(&rsp_serve(&[]), "missing mode");
    assert_usage(&rsp_serve(&["frobnicate"]), "unknown mode");
    assert_usage(&rsp_serve(&["listen"]), "listen needs ADDR");
    assert_usage(&rsp_serve(&["drive"]), "drive needs ADDR");
    assert_usage(
        &rsp_serve(&["listen", "127.0.0.1:0", "--pool"]),
        "--pool needs a value",
    );
    assert_usage(
        &rsp_serve(&["listen", "127.0.0.1:0", "--quantum", "wat"]),
        "--quantum needs a number",
    );
    assert_usage(
        &rsp_serve(&["listen", "127.0.0.1:0", "--quantum", "0"]),
        "--quantum must be positive",
    );
    assert_usage(
        &rsp_serve(&["drive", "127.0.0.1:1", "--tenants", "0"]),
        "--tenants and --cycles must be positive",
    );
    assert_usage(
        &rsp_serve(&["drive", "127.0.0.1:1", "--bogus"]),
        "unknown argument",
    );
}

#[test]
fn help_exits_0_and_runtime_failure_exits_1() {
    let out = rsp_serve(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    // Nothing listens on a reserved port → connect fails → exit 1.
    let out = rsp_serve(&["drive", "127.0.0.1:1", "--tenants", "1"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("connect"));
}

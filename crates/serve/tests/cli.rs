//! The `rsp-serve` binary follows the workspace exit-code convention:
//! usage errors exit 2 with the usage string, runtime failures exit 1.

use std::process::{Command, Output};

fn rsp_serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rsp-serve"))
        .args(args)
        .output()
        .expect("spawn rsp-serve")
}

fn rsp_top(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rsp-top"))
        .args(args)
        .output()
        .expect("spawn rsp-top")
}

fn assert_usage(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(stderr.contains(needle), "{needle:?} not in:\n{stderr}");
    assert!(stderr.contains("usage:"), "no usage string:\n{stderr}");
}

#[test]
fn usage_errors_exit_2() {
    assert_usage(&rsp_serve(&[]), "missing mode");
    assert_usage(&rsp_serve(&["frobnicate"]), "unknown mode");
    assert_usage(&rsp_serve(&["listen"]), "listen needs ADDR");
    assert_usage(&rsp_serve(&["drive"]), "drive needs ADDR");
    assert_usage(
        &rsp_serve(&["listen", "127.0.0.1:0", "--pool"]),
        "--pool needs a value",
    );
    assert_usage(
        &rsp_serve(&["listen", "127.0.0.1:0", "--quantum", "wat"]),
        "--quantum needs a number",
    );
    assert_usage(
        &rsp_serve(&["listen", "127.0.0.1:0", "--quantum", "0"]),
        "--quantum must be positive",
    );
    assert_usage(
        &rsp_serve(&["drive", "127.0.0.1:1", "--tenants", "0"]),
        "--tenants and --cycles must be positive",
    );
    assert_usage(
        &rsp_serve(&["drive", "127.0.0.1:1", "--bogus"]),
        "unknown argument",
    );
    assert_usage(&rsp_serve(&["stats"]), "stats needs ADDR");
    assert_usage(
        &rsp_serve(&["stats", "127.0.0.1:1", "--bogus"]),
        "unknown argument",
    );
    assert_usage(&rsp_serve(&["shutdown"]), "shutdown needs ADDR");
    assert_usage(
        &rsp_serve(&["listen", "127.0.0.1:0", "--flight-capacity", "wat"]),
        "--flight-capacity needs a number",
    );
}

#[test]
fn rsp_top_usage_errors_exit_2() {
    let out = rsp_top(&[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(stderr.contains("missing ADDR"));
    assert!(stderr.contains("usage:"));

    let out = rsp_top(&["127.0.0.1:1", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));

    let out = rsp_top(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    // Nothing listens on a reserved port → connect fails → exit 1.
    let out = rsp_top(&["127.0.0.1:1", "--iterations", "1"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("connect"));
}

#[test]
fn rsp_top_polls_a_live_server() {
    use rsp_serve::{Server, ServerConfig};

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    // One tenant through the wire so the table has a row.
    let out = rsp_serve(&[
        "drive",
        &addr,
        "--tenants",
        "2",
        "--lane-every",
        "0",
        "--no-shutdown",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "drive: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("queue_full 0") && stderr.contains("server left running"),
        "drive summary:\n{stderr}"
    );

    // Table mode: header plus one row per tenant.
    let out = rsp_top(&[&addr, "--iterations", "1", "--no-clear"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "rsp-top: {stdout}");
    assert!(stdout.contains("rsp-top  tick"), "header:\n{stdout}");
    assert!(stdout.contains("drive-"), "tenant rows:\n{stdout}");
    assert!(stdout.contains("done"), "phase column:\n{stdout}");

    // JSON mode emits a parseable metrics frame.
    let out = rsp_top(&[&addr, "--iterations", "1", "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let line = String::from_utf8_lossy(&out.stdout);
    let frame: rsp_serve::MetricsFrame = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(frame.tenants.len(), 2);
    assert_eq!(frame.stats.completed, 2);

    // stats --prom scrapes the exposition from the still-running server.
    let out = rsp_serve(&["stats", &addr, "--prom"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for family in [
        "rsp_serve_submitted_total",
        "rsp_serve_shed_total",
        "rsp_serve_queue_residency_bucket",
        "rsp_serve_tenant_quantum_cycles_bucket",
    ] {
        assert!(text.contains(family), "{family} missing:\n{text}");
    }

    let out = rsp_serve(&["shutdown", &addr]);
    assert_eq!(out.status.code(), Some(0));
    handle.join().unwrap().unwrap();
}

#[test]
fn help_exits_0_and_runtime_failure_exits_1() {
    let out = rsp_serve(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    // Nothing listens on a reserved port → connect fails → exit 1.
    let out = rsp_serve(&["drive", "127.0.0.1:1", "--tenants", "1"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("connect"));
}

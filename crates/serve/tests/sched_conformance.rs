//! Scheduler conformance kit: one generic harness, every policy.
//!
//! Any [`Scheduler`] the serve engine can mount must uphold the same
//! contract; this suite drives the *same* generic check function over
//! [`WatermarkScheduler`] and [`WfqScheduler`] with zero per-scheduler
//! special cases, under proptest-generated watermarks and arrival
//! schedules. Pinned properties:
//!
//! * admission never exceeds the watermarks (queue depth is a hard
//!   bound on observed queue occupancy);
//! * every shed carries a [`ShedReason`] and each reason is counted —
//!   `submitted = admitted + sheds`, per-reason tallies match;
//! * activations never exceed the ceiling (observed active tenants,
//!   including lane tenants held for packing, stay ≤ `max_active`);
//! * quanta, credits, and bursts are positive, and no weight earns
//!   credit above the burst cap (the DRR deficit bound);
//! * identical `(specs, seeds, arrival schedule)` produce bit-identical
//!   engine telemetry and counters — per scheduler, run-to-run.

use proptest::prelude::*;
use rsp_serve::{
    EngineConfig, EngineStats, Scheduler, ServeEngine, ShedReason, TenantRequest,
    WatermarkScheduler, WfqScheduler,
};
use rsp_workloads::{LaneTraceSpec, StreamSpec, SynthSpec, UnitMix};

/// One planned submission: wait `gap` ticks, then submit a stream
/// derived from `(seed, lane, weight)`.
#[derive(Debug, Clone)]
struct Arrival {
    gap: u8,
    seed: u64,
    lane: bool,
    weight: u32,
}

fn request(a: &Arrival) -> TenantRequest {
    let spec = if a.lane {
        StreamSpec::lane(
            format!("lane-{}", a.seed),
            LaneTraceSpec::synthetic_mix(128, a.seed),
            128,
        )
    } else {
        StreamSpec::synth(
            format!("synth-{}", a.seed),
            SynthSpec {
                body_len: 80,
                ..SynthSpec::new("c", UnitMix::BALANCED, a.seed)
            },
            2_000,
        )
    };
    TenantRequest {
        telemetry_capacity: 64,
        ..TenantRequest::new(spec.with_weight(a.weight))
    }
}

/// Everything one run of the plan observed.
#[derive(Debug, PartialEq)]
struct RunResult {
    stats: EngineStats,
    max_queued: usize,
    max_active: usize,
    shed_reasons: Vec<ShedReason>,
    telemetry: Vec<(u64, String)>,
}

const DRAIN_TICKS: u64 = 3_000;

/// Drive one engine through the plan. Generic over the policy — this
/// is the only driver in the suite, so no scheduler gets special
/// treatment anywhere.
fn drive<S: Scheduler>(sched: S, plan: &[Arrival]) -> RunResult {
    let mut engine = ServeEngine::new(EngineConfig::default(), sched);
    let mut ids = Vec::new();
    let mut shed_reasons = Vec::new();
    let mut max_queued = 0usize;
    let mut max_active = 0usize;
    let observe = |e: &ServeEngine<S>, mq: &mut usize, ma: &mut usize| {
        let s = e.stats();
        *mq = (*mq).max(s.queued);
        *ma = (*ma).max(s.active);
    };
    for a in plan {
        for _ in 0..a.gap {
            engine.tick();
            observe(&engine, &mut max_queued, &mut max_active);
        }
        match engine.submit(request(a)) {
            Ok(id) => ids.push(id),
            Err(r) => shed_reasons.push(r),
        }
        observe(&engine, &mut max_queued, &mut max_active);
    }
    // Drain bounded: schedulers with max_active = 0 never go idle.
    for _ in 0..DRAIN_TICKS {
        if engine.is_idle() {
            break;
        }
        engine.tick();
        observe(&engine, &mut max_queued, &mut max_active);
    }
    let telemetry = ids
        .iter()
        .map(|&id| (id, engine.telemetry(id).unwrap_or_default().to_string()))
        .collect();
    RunResult {
        stats: engine.stats(),
        max_queued,
        max_active,
        shed_reasons,
        telemetry,
    }
}

/// The conformance contract, checked for one policy instance. `wm` is
/// the watermark configuration the policy was built from (both
/// policies under test share it — the outer guard is common law).
fn check<S: Scheduler + Clone>(sched: S, wm: WatermarkScheduler, plan: &[Arrival]) {
    // Quanta, credits, and bursts are positive; credit never exceeds
    // the burst cap (so DRR deficits stay bounded by one burst).
    prop_assert!(sched.quantum() >= 1);
    prop_assert!(sched.burst() >= 1);
    for w in [0u32, 1, 3, 7, u32::MAX] {
        prop_assert!(sched.credit(w) >= 1, "credit({w}) must be positive");
        prop_assert!(
            sched.credit(w) <= sched.burst(),
            "credit({w}) exceeds the burst cap"
        );
    }

    let a = drive(sched.clone(), plan);

    // Watermarks are hard bounds on what the engine ever holds.
    prop_assert!(
        a.max_queued <= wm.queue_depth,
        "queue {} exceeded depth watermark {}",
        a.max_queued,
        wm.queue_depth
    );
    prop_assert!(
        a.max_active <= wm.max_active,
        "active {} exceeded ceiling {}",
        a.max_active,
        wm.max_active
    );

    // Every shed is explained and counted: nothing is silently dropped.
    prop_assert_eq!(
        a.stats.submitted,
        a.stats.admitted + a.stats.shed_total(),
        "submissions must be admitted or counted as shed"
    );
    let mut queue_full = 0u64;
    let mut step_lag = 0u64;
    let mut bad_spec = 0u64;
    for r in &a.shed_reasons {
        match r {
            ShedReason::QueueFull => queue_full += 1,
            ShedReason::StepLag => step_lag += 1,
            ShedReason::BadSpec(_) => bad_spec += 1,
        }
    }
    prop_assert_eq!(a.stats.shed_queue_full, queue_full);
    prop_assert_eq!(a.stats.shed_step_lag, step_lag);
    prop_assert_eq!(a.stats.shed_bad_spec, bad_spec);

    // Identical (specs, seeds, arrival schedule) → bit-identical run.
    let b = drive(sched, plan);
    prop_assert_eq!(a, b, "engine telemetry/counters must be deterministic");
}

fn arrival() -> impl Strategy<Value = Arrival> {
    (0u8..3, 0u64..1_000, any::<bool>(), 0u32..5).prop_map(|(gap, seed, lane, weight)| Arrival {
        gap,
        seed,
        lane,
        weight,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conformance_holds_for_every_scheduler(
        queue_depth in 1usize..6,
        max_active in 0usize..5,
        step_lag_watermark in 1u64..8,
        quantum in 1u64..300,
        plan in proptest::collection::vec(arrival(), 1..8),
    ) {
        let wm = WatermarkScheduler { queue_depth, max_active, step_lag_watermark, quantum };
        check(wm, wm, &plan);
        check(WfqScheduler { watermarks: wm, max_weight: 8 }, wm, &plan);
    }
}

/// Fixed-plan smoke for CI logs: exercises all three shed reasons
/// through the same generic checker (a bad spec, a queue overflow
/// under a tight depth, and a lag shed under a zero ceiling).
#[test]
fn fixed_plan_covers_every_shed_reason() {
    let wm = WatermarkScheduler {
        queue_depth: 2,
        max_active: 0,
        step_lag_watermark: 2,
        quantum: 64,
    };
    let plan: Vec<Arrival> = (0..6)
        .map(|i| Arrival {
            gap: if i < 4 { 0 } else { 4 },
            seed: i,
            lane: false,
            weight: 1,
        })
        .collect();
    check(wm, wm, &plan);
    check(
        WfqScheduler {
            watermarks: wm,
            max_weight: 4,
        },
        wm,
        &plan,
    );

    // Bad specs shed with a counted reason under roomy watermarks too.
    let roomy = WatermarkScheduler::default();
    let mut engine = ServeEngine::new(EngineConfig::default(), roomy);
    let mut bad = request(&Arrival {
        gap: 0,
        seed: 0,
        lane: false,
        weight: 1,
    });
    bad.spec.max_cycles = 0;
    assert!(matches!(engine.submit(bad), Err(ShedReason::BadSpec(_))));
    assert_eq!(engine.stats().shed_bad_spec, 1);
}

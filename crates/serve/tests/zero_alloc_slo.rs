//! Steady-state allocation counting for the observability hot paths.
//!
//! The SLO registry and the flight recorder sit directly on the serve
//! engine's stepping path, so both are written to the workspace's
//! zero-alloc discipline: [`SloRegistry`] records into fixed per-tenant
//! slabs (the one allocating hook is admission, which is already an
//! allocating path) and [`FlightRecorder`] overwrites a preallocated
//! ring once it has wrapped. This test installs a counting wrapper
//! around the system allocator, warms both structures past their
//! high-water marks, and asserts that a long steady-state stretch of
//! recording performs **zero** heap allocations.
//!
//! The assertion only runs in release builds — debug builds allocate
//! inside `debug_assert!` machinery elsewhere in the workspace and the
//! property is about the optimised hot path. The measurement still runs
//! everywhere so the same code is exercised.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rsp_obs::{FleetEntry, FleetEvent, FlightRecorder, ShedKind};

/// Counts every allocation and reallocation routed through the global
/// allocator. Deallocations are not counted: freeing is legal in the
/// hot loop only if nothing was allocated first.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The allocation counter is process-global, so tests that measure a
/// window must not run while another test allocates. Each test holds
/// this for its whole body.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn slo_and_flight_hot_paths_are_allocation_free_in_steady_state() {
    let _serial = SERIAL.lock().unwrap();
    let tenants = 32u64;

    // Construction and admission are the allocating phase: the registry
    // grows one slab per tenant and the flight ring preallocates.
    let mut slo = rsp_serve::SloRegistry::new(true);
    let mut flight = FlightRecorder::new(256);
    for id in 0..tenants {
        slo.admit(id, id);
        flight.record(FleetEntry {
            tick: id,
            tenant: Some(id),
            event: FleetEvent::Admitted,
        });
    }

    // Warm-up: activate every tenant, run enough quanta that every
    // histogram bucket path has been taken, and wrap the flight ring so
    // steady state exercises the overwrite branch, not the push branch.
    for id in 0..tenants {
        slo.activate(id, id + 2);
    }
    for tick in 0..512u64 {
        for id in 0..tenants {
            slo.quantum(id, tick, 64 + id);
            flight.record(FleetEntry {
                tick,
                tenant: Some(id),
                event: FleetEvent::Quantum { cycles: 64 + id },
            });
        }
        slo.end_tick();
    }
    assert!(
        flight.dropped() > 0,
        "ring must have wrapped during warm-up"
    );

    // Steady state: a long stretch of recording — quanta, sheds, storm
    // bookkeeping, tick rollover — must not touch the allocator at all.
    let before = allocations();
    let mut recorded = 0u64;
    for tick in 512..4_608u64 {
        for id in 0..tenants {
            slo.quantum(id, tick, 64 + (tick ^ id) % 512);
            flight.record(FleetEntry {
                tick,
                tenant: Some(id),
                event: FleetEvent::Quantum { cycles: 64 },
            });
            recorded += 2;
        }
        slo.shed(ShedKind::QueueFull);
        flight.record(FleetEntry {
            tick,
            tenant: None,
            event: FleetEvent::Shed {
                reason: ShedKind::QueueFull,
            },
        });
        slo.end_tick();
        recorded += 2;
    }
    let during = allocations() - before;
    assert!(
        recorded > 100_000,
        "steady-state window too short: {recorded}"
    );
    assert!(
        flight.storms() > 0,
        "storm detection must be live in this run"
    );
    assert_eq!(slo.sheds()[ShedKind::QueueFull as usize], 4_096);

    #[cfg(not(debug_assertions))]
    assert_eq!(
        during, 0,
        "SLO/flight hot path allocated {during} times over {recorded} records"
    );
    // Debug builds may allocate inside assertion machinery elsewhere;
    // keep the measurement but skip the assertion there.
    #[cfg(debug_assertions)]
    let _ = during;
}

/// A shed storm against the full engine must not allocate either: the
/// admission gate runs *before* spec validation, so an overloaded
/// engine rejects a submission with nothing but counter bumps, an SLO
/// slab update, and a flight-ring overwrite — even while storm
/// detection is live and has tripped a (dirless) flight dump. The
/// requests themselves are built outside the measured window; the
/// shed path only drops them, and frees are legal when nothing was
/// allocated first.
#[test]
fn engine_shed_storm_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    use rsp_serve::{EngineConfig, ServeEngine, ShedReason, TenantRequest, WatermarkScheduler};
    use rsp_workloads::{StreamSpec, SynthSpec, UnitMix};

    // queue_depth 0: every submission sheds at the queue watermark.
    let sched = WatermarkScheduler {
        queue_depth: 0,
        max_active: 0,
        step_lag_watermark: 4,
        quantum: 64,
    };
    let cfg = EngineConfig {
        flight_capacity: 64,
        shed_storm_threshold: 32,
        shed_storm_window: 16,
        flight_dir: None,
        ..EngineConfig::default()
    };
    let mut engine = ServeEngine::new(cfg, sched);

    let request = || {
        TenantRequest::new(StreamSpec::synth(
            "storm",
            SynthSpec::new("storm", UnitMix::BALANCED, 1),
            1_000,
        ))
    };

    // Warm-up: wrap the flight ring past its capacity and trip storm
    // detection once (the trigger entry lands in the ring; no dump
    // directory is configured, so no file path is ever formatted).
    let warmup: Vec<TenantRequest> = (0..256).map(|_| request()).collect();
    for req in warmup {
        assert!(matches!(engine.submit(req), Err(ShedReason::QueueFull)));
    }
    assert!(engine.flight_triggers() >= 1, "storm must trip in warm-up");

    // The storm proper: a long burst of rejected submissions.
    let storm: Vec<TenantRequest> = (0..4_096).map(|_| request()).collect();
    let before = allocations();
    let mut shed = 0u64;
    for req in storm {
        if engine.submit(req).is_err() {
            shed += 1;
        }
    }
    let during = allocations() - before;
    assert_eq!(shed, 4_096, "every storm submission must shed");
    assert_eq!(engine.stats().shed_queue_full, 256 + 4_096);

    #[cfg(not(debug_assertions))]
    assert_eq!(
        during, 0,
        "engine shed path allocated {during} times over {shed} sheds"
    );
    #[cfg(debug_assertions)]
    let _ = during;
}

#[test]
fn disabled_paths_stay_allocation_free_and_record_nothing() {
    let _serial = SERIAL.lock().unwrap();
    let mut slo = rsp_serve::SloRegistry::new(false);
    let mut flight = FlightRecorder::off();

    let before = allocations();
    for tick in 0..10_000u64 {
        slo.admit(0, tick);
        slo.activate(0, tick);
        slo.quantum(0, tick, 64);
        slo.shed(ShedKind::StepLag);
        slo.end_tick();
        flight.record(FleetEntry {
            tick,
            tenant: None,
            event: FleetEvent::Shed {
                reason: ShedKind::StepLag,
            },
        });
    }
    let during = allocations() - before;
    assert!(slo.tenant_snapshot(0).is_none());
    assert!(flight.is_empty());
    assert_eq!(slo.sheds(), [0; 3]);

    // The disabled path is one branch per hook: allocation-free even in
    // debug builds (nothing behind the branch runs at all).
    assert_eq!(
        during, 0,
        "disabled SLO/flight hooks allocated {during} times"
    );
}

//! Per-tenant SLO metrics and the `Metrics` wire frame (DESIGN.md §15).
//!
//! [`SloRegistry`] keeps one fixed-size [`TenantSlo`] slab per admitted
//! tenant plus an aggregate slab, following the `rsp-obs`
//! `MetricsRegistry` discipline: recording a sample is a couple of
//! array writes — never an allocation, never a hash lookup — so every
//! hook sits directly on the engine's stepping path. The only
//! allocation is one slab push at *admission* (already an allocating
//! path), and the disabled registry reduces every hook to one branch.
//!
//! The aggregate slab is updated alongside the per-tenant slabs from
//! the same samples, so for every SLO histogram the per-tenant counts
//! sum to the aggregate count *by construction* — the invariant the
//! exposition round-trip test pins.
//!
//! [`MetricsFrame`] is the serialisable export a `Request::Metrics`
//! frame returns: engine counters, the aggregate snapshot, and one
//! snapshot per tenant. [`MetricsFrame::to_prometheus`] renders it as
//! the text exposition (`rsp_serve_*` families, tenants labeled
//! `tenant="t<id>"`, sheds labeled by reason).

use crate::engine::EngineStats;
use crate::tenant::{tenant_key, TenantPhase};
use rsp_obs::{
    CounterValue, CycleHistogram, HistogramSnapshot, MetricsSnapshot, PromWriter, ShedKind,
};
use serde::{Deserialize, Serialize};

/// SLO histograms kept per tenant, in slab order.
pub const SLO_HISTOS: usize = 4;

const H_ADMIT_TO_FIRST_STEP: usize = 0;
const H_QUEUE_RESIDENCY: usize = 1;
const H_STEP_LAG: usize = 2;
const H_QUANTUM_CYCLES: usize = 3;

/// Stable names of the per-tenant SLO histograms, in slab order:
/// admission→first-quantum latency (ticks), admission→activation
/// residency (ticks), lag between successive quanta (ticks), and
/// cycles stepped per quantum.
pub const SLO_HISTO_NAMES: [&str; SLO_HISTOS] = [
    "admit_to_first_step",
    "queue_residency",
    "step_lag",
    "quantum_cycles",
];

/// Name of the aggregate-only quanta-per-tick histogram.
pub const QUANTA_PER_TICK: &str = "quanta_per_tick";

/// One tenant's SLO slab: fixed arrays only, `Copy`, allocation-free
/// to update.
#[derive(Debug, Clone, Copy, Default)]
struct TenantSlo {
    admitted_tick: u64,
    /// Tick of the last quantum, +1 (0 = none yet).
    last_quantum_tick: u64,
    first_step_done: bool,
    hists: [CycleHistogram; SLO_HISTOS],
    quanta: u64,
    cycles: u64,
}

impl TenantSlo {
    fn quantum(&mut self, tick: u64, cycles: u64) {
        if !self.first_step_done {
            self.first_step_done = true;
            self.hists[H_ADMIT_TO_FIRST_STEP].record(tick.saturating_sub(self.admitted_tick));
        }
        if self.last_quantum_tick != 0 {
            self.hists[H_STEP_LAG].record(tick.saturating_sub(self.last_quantum_tick - 1));
        }
        self.last_quantum_tick = tick + 1;
        self.hists[H_QUANTUM_CYCLES].record(cycles);
        self.quanta += 1;
        self.cycles += cycles;
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                CounterValue {
                    name: "quanta".to_string(),
                    value: self.quanta,
                },
                CounterValue {
                    name: "cycles".to_string(),
                    value: self.cycles,
                },
            ],
            histograms: SLO_HISTO_NAMES
                .iter()
                .zip(self.hists.iter())
                .map(|(name, h)| HistogramSnapshot::from_histogram(name, h))
                .collect(),
        }
    }
}

/// The engine's SLO registry: per-tenant slabs (indexed by the dense
/// tenant id) plus the aggregate slab and fleet-wide extras.
#[derive(Debug, Clone, Default)]
pub struct SloRegistry {
    enabled: bool,
    tenants: Vec<TenantSlo>,
    aggregate: TenantSlo,
    quanta_per_tick: CycleHistogram,
    quanta_this_tick: u64,
    sheds: [u64; 3],
}

impl SloRegistry {
    /// A fresh registry; disabled, every hook is one branch.
    pub fn new(enabled: bool) -> SloRegistry {
        SloRegistry {
            enabled,
            tenants: Vec::with_capacity(if enabled { 64 } else { 0 }),
            ..SloRegistry::default()
        }
    }

    /// True iff hooks record anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// A tenant was admitted at `tick`. Ids are dense and sequential
    /// (the engine assigns them in admission order), so this indexes a
    /// plain slab vector. The one allocating hook — admission is not
    /// the hot path.
    pub fn admit(&mut self, id: u64, tick: u64) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(id as usize, self.tenants.len(), "tenant ids must be dense");
        self.tenants.push(TenantSlo {
            admitted_tick: tick,
            ..TenantSlo::default()
        });
    }

    /// A submission was shed.
    #[inline]
    pub fn shed(&mut self, kind: ShedKind) {
        if self.enabled {
            self.sheds[kind as usize] += 1;
        }
    }

    /// A queued tenant activated at `tick` (records queue residency,
    /// mirrored into the aggregate).
    #[inline]
    pub fn activate(&mut self, id: u64, tick: u64) {
        if !self.enabled {
            return;
        }
        if let Some(t) = self.tenants.get_mut(id as usize) {
            let residency = tick.saturating_sub(t.admitted_tick);
            t.hists[H_QUEUE_RESIDENCY].record(residency);
            self.aggregate.hists[H_QUEUE_RESIDENCY].record(residency);
        }
    }

    /// A tenant ran one quantum of `cycles` at `tick`.
    #[inline]
    pub fn quantum(&mut self, id: u64, tick: u64, cycles: u64) {
        if !self.enabled {
            return;
        }
        if let Some(t) = self.tenants.get_mut(id as usize) {
            // Mirror exactly the samples the tenant records into the
            // aggregate, so per-tenant counts sum to aggregate counts.
            if !t.first_step_done {
                self.aggregate.hists[H_ADMIT_TO_FIRST_STEP]
                    .record(tick.saturating_sub(t.admitted_tick));
            }
            if t.last_quantum_tick != 0 {
                self.aggregate.hists[H_STEP_LAG]
                    .record(tick.saturating_sub(t.last_quantum_tick - 1));
            }
            t.quantum(tick, cycles);
        }
        self.aggregate.hists[H_QUANTUM_CYCLES].record(cycles);
        self.aggregate.quanta += 1;
        self.aggregate.cycles += cycles;
        self.quanta_this_tick += 1;
    }

    /// Close out one engine tick (records quanta-per-tick).
    #[inline]
    pub fn end_tick(&mut self) {
        if !self.enabled {
            return;
        }
        self.quanta_per_tick.record(self.quanta_this_tick);
        self.quanta_this_tick = 0;
    }

    /// Shed counts by reason, in [`ShedKind::ALL`] order.
    pub fn sheds(&self) -> [u64; 3] {
        self.sheds
    }

    /// Snapshot one tenant's slab (`None` for unknown ids or when
    /// disabled).
    pub fn tenant_snapshot(&self, id: u64) -> Option<MetricsSnapshot> {
        self.tenants.get(id as usize).map(TenantSlo::snapshot)
    }

    /// Snapshot the aggregate slab: the four SLO histograms (sums of
    /// the per-tenant slabs), the quanta-per-tick histogram, quanta and
    /// cycles totals, and shed counts by reason.
    pub fn aggregate_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.aggregate.snapshot();
        for (kind, &count) in ShedKind::ALL.iter().zip(self.sheds.iter()) {
            snap.counters.push(CounterValue {
                name: format!("shed_{}", kind.name()),
                value: count,
            });
        }
        snap.histograms.push(HistogramSnapshot::from_histogram(
            QUANTA_PER_TICK,
            &self.quanta_per_tick,
        ));
        snap
    }
}

/// One tenant's entry in a [`MetricsFrame`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMetrics {
    /// Server-assigned tenant id.
    pub id: u64,
    /// The stream's name (reporting only).
    pub name: String,
    /// Lifecycle phase at frame time.
    pub phase: TenantPhase,
    /// True iff the tenant runs on the lane kernel.
    pub lane: bool,
    /// The tenant's SLO snapshot.
    pub snapshot: MetricsSnapshot,
}

/// The `Request::Metrics` payload: a self-contained view of the fleet.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsFrame {
    /// Engine tick at frame time.
    pub tick: u64,
    /// Aggregate engine counters (live queue/active/pool included).
    pub stats: EngineStats,
    /// Aggregate SLO snapshot ([`SloRegistry::aggregate_snapshot`]).
    pub aggregate: MetricsSnapshot,
    /// Per-tenant SLO snapshots, in id order.
    pub tenants: Vec<TenantMetrics>,
}

impl MetricsFrame {
    /// Render the frame as a Prometheus-style text exposition. Family
    /// names are stable: engine counters under `rsp_serve_*`, sheds as
    /// `rsp_serve_shed_total{reason=...}`, aggregate SLO histograms
    /// under `rsp_serve_<histo>`, and per-tenant families under
    /// `rsp_serve_tenant_<histo>{tenant="t<id>"}`.
    pub fn to_prometheus(&self) -> String {
        let mut w = PromWriter::new();
        let s = &self.stats;
        w.gauge("rsp_serve_tick", &[], self.tick);
        w.counter("rsp_serve_ticks", &[], s.ticks);
        w.counter("rsp_serve_submitted", &[], s.submitted);
        w.counter("rsp_serve_admitted", &[], s.admitted);
        w.counter("rsp_serve_completed", &[], s.completed);
        w.counter("rsp_serve_failed", &[], s.failed);
        w.counter("rsp_serve_stepped_cycles", &[], s.stepped_cycles);
        for (kind, count) in [
            (ShedKind::QueueFull, s.shed_queue_full),
            (ShedKind::StepLag, s.shed_step_lag),
            (ShedKind::BadSpec, s.shed_bad_spec),
        ] {
            w.counter("rsp_serve_shed", &[("reason", kind.name())], count);
        }
        w.gauge("rsp_serve_queued", &[], s.queued as u64);
        w.gauge("rsp_serve_active", &[], s.active as u64);
        w.gauge("rsp_serve_lane_groups", &[], s.lane_groups as u64);
        w.gauge("rsp_serve_lane_tenants", &[], s.lane_tenants as u64);
        w.gauge("rsp_serve_lane_pending", &[], s.lane_pending as u64);
        w.counter("rsp_serve_lane_groups_formed", &[], s.lane_groups_formed);
        w.counter("rsp_serve_pool_leases", &[], s.pool.leases);
        w.counter("rsp_serve_pool_reuses", &[], s.pool.reuses);
        w.counter("rsp_serve_pool_rebuilds", &[], s.pool.rebuilds);
        w.counter("rsp_serve_pool_releases", &[], s.pool.releases);
        w.gauge("rsp_serve_pool_in_use", &[], s.pool.in_use);
        w.gauge("rsp_serve_pool_peak_in_use", &[], s.pool.peak_in_use);
        w.snapshot("rsp_serve_", &[], &self.aggregate);
        for t in &self.tenants {
            let key = tenant_key(t.id);
            w.snapshot("rsp_serve_tenant_", &[("tenant", &key)], &t.snapshot);
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_obs::PromDump;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = SloRegistry::new(false);
        r.admit(0, 1);
        r.activate(0, 2);
        r.quantum(0, 3, 100);
        r.shed(ShedKind::QueueFull);
        r.end_tick();
        assert!(r.tenant_snapshot(0).is_none());
        let agg = r.aggregate_snapshot();
        assert_eq!(agg.counter("quanta"), Some(0));
        assert_eq!(agg.counter("shed_queue_full"), Some(0));
    }

    #[test]
    fn per_tenant_histograms_sum_to_the_aggregate() {
        let mut r = SloRegistry::new(true);
        // Three tenants with staggered lifecycles.
        r.admit(0, 0);
        r.admit(1, 0);
        r.admit(2, 3);
        r.activate(0, 1);
        r.activate(1, 2);
        r.activate(2, 5);
        for tick in 1..20u64 {
            r.quantum(0, tick, 256);
            if tick >= 2 {
                r.quantum(1, tick, 128);
            }
            if tick >= 5 && tick % 2 == 1 {
                r.quantum(2, tick, 64);
            }
            r.end_tick();
        }
        let agg = r.aggregate_snapshot();
        for name in SLO_HISTO_NAMES {
            let total: u64 = (0..3)
                .map(|id| {
                    r.tenant_snapshot(id)
                        .unwrap()
                        .histogram(name)
                        .unwrap()
                        .count
                })
                .sum();
            let a = agg.histogram(name).unwrap();
            assert_eq!(a.count, total, "{name}");
        }
        // Step-lag of the every-other-tick tenant is 2.
        let lag = r.tenant_snapshot(2).unwrap();
        let lag = lag.histogram("step_lag").unwrap();
        assert_eq!(lag.max, 2);
        // Quanta-per-tick is aggregate-only and covers every tick.
        assert_eq!(agg.histogram(QUANTA_PER_TICK).unwrap().count, 19);
        assert_eq!(agg.counter("quanta"), Some(r.aggregate.quanta));
    }

    #[test]
    fn first_step_and_residency_measure_queue_time() {
        let mut r = SloRegistry::new(true);
        r.admit(0, 10);
        r.activate(0, 14);
        r.quantum(0, 15, 256);
        let t = r.tenant_snapshot(0).unwrap();
        assert_eq!(t.histogram("queue_residency").unwrap().sum, 4);
        assert_eq!(t.histogram("admit_to_first_step").unwrap().sum, 5);
        // Only the first quantum records admission latency.
        r.quantum(0, 16, 256);
        let t = r.tenant_snapshot(0).unwrap();
        assert_eq!(t.histogram("admit_to_first_step").unwrap().count, 1);
        assert_eq!(t.histogram("step_lag").unwrap().sum, 1);
    }

    #[test]
    fn frame_exposition_parses_and_matches() {
        let mut r = SloRegistry::new(true);
        r.admit(0, 0);
        r.activate(0, 1);
        r.quantum(0, 1, 200);
        r.quantum(0, 2, 200);
        r.shed(ShedKind::StepLag);
        r.end_tick();
        let frame = MetricsFrame {
            tick: 2,
            stats: EngineStats {
                submitted: 2,
                admitted: 1,
                shed_step_lag: 1,
                ..EngineStats::default()
            },
            aggregate: r.aggregate_snapshot(),
            tenants: vec![TenantMetrics {
                id: 0,
                name: "w".to_string(),
                phase: TenantPhase::Running,
                lane: false,
                snapshot: r.tenant_snapshot(0).unwrap(),
            }],
        };
        let text = frame.to_prometheus();
        let dump = PromDump::parse(&text).unwrap();
        assert_eq!(dump.value_u64("rsp_serve_submitted_total", &[]), Some(2));
        assert_eq!(
            dump.value_u64("rsp_serve_shed_total", &[("reason", "step_lag")]),
            Some(1)
        );
        let agg = dump.histogram("rsp_serve_quantum_cycles", &[]).unwrap();
        let ten = dump
            .histogram("rsp_serve_tenant_quantum_cycles", &[("tenant", "t0")])
            .unwrap();
        assert_eq!(agg.count, 2);
        assert_eq!(ten.count, 2);
        assert_eq!(ten.sum, 400);
        // The frame itself round-trips through JSON (wire payload).
        let json = serde_json::to_string(&frame).unwrap();
        let back: MetricsFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(back, frame);
    }
}

//! Live fleet top: poll a running `rsp-serve` server's metrics frame
//! and render a refreshing per-tenant SLO table.
//!
//! ```text
//! rsp-top ADDR [--interval-ms N] [--iterations N] [--json] [--no-clear]
//! ```
//!
//! Each refresh issues one `Request::Metrics` round-trip and renders:
//! a fleet header (tick, queue/active occupancy, lane-group packing,
//! sheds by reason, pool occupancy) and one row per tenant with queue
//! residency and step-lag p50/p99 (from the embedded histogram bucket
//! bounds), quanta, and cycles. `--json` emits the raw frame as one
//! JSON line per refresh instead (machine-readable watch mode);
//! `--iterations 0` polls until interrupted.
//!
//! Exit codes follow the workspace convention: 1 = runtime failure,
//! 2 = usage error.

use rsp_obs::MetricsSnapshot;
use rsp_serve::{MetricsFrame, ServeClient};
use std::time::Duration;

const USAGE: &str = "usage: rsp-top ADDR [--interval-ms N] [--iterations N] [--json] [--no-clear]
  --interval-ms N   refresh period (default 1000)
  --iterations N    refreshes before exiting; 0 = until interrupted (default 0)
  --json            emit the raw metrics frame as one JSON line per refresh
  --no-clear        append refreshes instead of clearing the screen
ADDR is host:port (TCP) or a path containing '/' (Unix socket).";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    v.unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} needs a number")))
}

/// `p50/p99` of a named histogram in `snap`, or `-/-` when absent or
/// empty.
fn quantiles(snap: &MetricsSnapshot, name: &str) -> String {
    match snap.histogram(name) {
        Some(h) if h.count > 0 => format!("{}/{}", h.quantile(0.5), h.quantile(0.99)),
        _ => "-/-".to_string(),
    }
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

fn render(frame: &MetricsFrame) -> String {
    let s = &frame.stats;
    let mut out = String::new();
    out.push_str(&format!(
        "rsp-top  tick {}  queued {}  active {}  lane-groups {} ({} tenants)\n",
        frame.tick, s.queued, s.active, s.lane_groups, s.lane_tenants
    ));
    out.push_str(&format!(
        "fleet    submitted {}  admitted {}  completed {}  failed {}  \
         shed {} (queue_full {} / step_lag {} / bad_spec {})\n",
        s.submitted,
        s.admitted,
        s.completed,
        s.failed,
        s.shed_total(),
        s.shed_queue_full,
        s.shed_step_lag,
        s.shed_bad_spec
    ));
    out.push_str(&format!(
        "pool     in-use {}  peak {}  reuses {}  rebuilds {}\n",
        s.pool.in_use, s.pool.peak_in_use, s.pool.reuses, s.pool.rebuilds
    ));
    out.push_str(&format!(
        "slo      residency p50/p99 {}  step-lag p50/p99 {}  \
         admit->first-step p50/p99 {}  quanta/tick p50/p99 {}\n",
        quantiles(&frame.aggregate, "queue_residency"),
        quantiles(&frame.aggregate, "step_lag"),
        quantiles(&frame.aggregate, "admit_to_first_step"),
        quantiles(&frame.aggregate, "quanta_per_tick"),
    ));
    out.push('\n');
    out.push_str(&format!(
        "{:>5} {:<20} {:<8} {:>5} {:>9} {:>11} {:>9} {:>9} {:>9}\n",
        "ID", "NAME", "PHASE", "KIND", "QUANTA", "CYCLES", "RES", "LAG", "ADMIT"
    ));
    for t in &frame.tenants {
        let phase = format!("{:?}", t.phase).to_lowercase();
        let mut name = t.name.clone();
        if name.len() > 20 {
            name.truncate(19);
            name.push('…');
        }
        out.push_str(&format!(
            "{:>5} {:<20} {:<8} {:>5} {:>9} {:>11} {:>9} {:>9} {:>9}\n",
            t.id,
            name,
            phase,
            if t.lane { "lane" } else { "mach" },
            counter(&t.snapshot, "quanta"),
            counter(&t.snapshot, "cycles"),
            quantiles(&t.snapshot, "queue_residency"),
            quantiles(&t.snapshot, "step_lag"),
            quantiles(&t.snapshot, "admit_to_first_step"),
        ));
    }
    if frame.tenants.is_empty() {
        out.push_str("(no tenants seen by the SLO registry — is the server running --no-slo?)\n");
    }
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| usage_error("missing ADDR"));
    if addr == "--help" || addr == "-h" {
        eprintln!("{USAGE}");
        return;
    }
    let mut interval = Duration::from_millis(1000);
    let mut iterations: u64 = 0;
    let mut json = false;
    let mut clear = true;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--interval-ms" => interval = Duration::from_millis(parse(&a, args.next())),
            "--iterations" => iterations = parse(&a, args.next()),
            "--json" => json = true,
            "--no-clear" => clear = false,
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let mut client =
        ServeClient::connect(&addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    let mut done: u64 = 0;
    loop {
        let frame = client
            .metrics()
            .unwrap_or_else(|e| fail(&format!("metrics: {e}")));
        if json {
            let line = serde_json::to_string(&frame)
                .unwrap_or_else(|e| fail(&format!("frame encode: {e}")));
            println!("{line}");
        } else {
            if clear {
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render(&frame));
        }
        done += 1;
        if iterations > 0 && done >= iterations {
            break;
        }
        std::thread::sleep(interval);
    }
}

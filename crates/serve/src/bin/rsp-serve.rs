//! CLI for the serve stack.
//!
//! ```text
//! rsp-serve listen ADDR [--queue-depth N] [--max-active N]
//!                       [--lag-watermark N] [--quantum N] [--pool N]
//!                       [--shards N] [--wfq] [--pack-hold N]
//!                       [--telemetry-dir DIR] [--no-slo]
//!                       [--flight-dir DIR] [--flight-capacity N]
//!                       [--shed-storm N] [--shed-window N]
//!                       [--replay-audit N]
//! rsp-serve drive  ADDR [--tenants N] [--seed S] [--lane-every K]
//!                       [--cycles N] [--weights A:B] [--timeout-secs N]
//!                       [--no-verify-replay] [--no-shutdown]
//! rsp-serve stats  ADDR [--prom]
//! rsp-serve shutdown ADDR
//! ```
//!
//! `listen` runs the server until a client sends `Shutdown` —
//! `--shards N` serves over N engine threads with tenant affinity,
//! `--wfq` schedules weighted-fair quanta honouring stream weights,
//! and `--pack-hold N` holds lane tenants up to N ticks to pack fuller
//! groups (DESIGN.md §16). `drive` is the smoke client used by CI: it
//! submits a mixed scalar/lane tenant fleet (alternating `--weights
//! A:B` stream weights when given), waits for completion, asserts
//! non-empty per-tenant telemetry, verifies offline replay
//! bit-identity for one scalar and one lane tenant (against the
//! default base config), prints the final stats JSON with per-reason
//! shed counts, and shuts the server down cleanly (`--no-shutdown`
//! leaves it running so `stats` can scrape it). `stats` prints a live
//! server's counters as JSON, or the full Prometheus text exposition
//! with `--prom`; `shutdown` stops it.
//!
//! Exit codes follow the workspace convention: 1 = runtime failure,
//! 2 = usage error.

use rsp_serve::{
    replay, ServeClient, Server, ServerConfig, ShedReason, TenantPhase, TenantRequest,
};
use rsp_sim::SimConfig;
use rsp_workloads::{LaneTraceSpec, StreamSpec, SynthSpec, UnitMix};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: rsp-serve <listen|drive|stats|shutdown> ADDR [options]
  listen:   --queue-depth N  --max-active N  --lag-watermark N  --quantum N
            --shards N (engine threads)  --wfq (weighted-fair quanta)
            --pack-hold N (lane-group packing hold, ticks)
            --pool N  --telemetry-dir DIR  --no-slo
            --flight-dir DIR  --flight-capacity N
            --shed-storm N  --shed-window N  --replay-audit N
  drive:    --tenants N  --seed S  --lane-every K  --cycles N
            --weights A:B (alternate stream weights, e.g. 3:1)
            --timeout-secs N  --no-verify-replay  --no-shutdown
  stats:    --prom (Prometheus text exposition instead of stats JSON)
  shutdown: (no options)
ADDR is host:port (TCP) or a path containing '/' (Unix socket).";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn need(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    need(flag, v)
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} needs a number")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| usage_error("missing mode"));
    match mode.as_str() {
        "listen" => listen(args),
        "drive" => drive(args),
        "stats" => stats(args),
        "shutdown" => shutdown(args),
        "--help" | "-h" => eprintln!("{USAGE}"),
        other => usage_error(&format!("unknown mode {other:?}")),
    }
}

fn connect(addr: &str) -> ServeClient {
    ServeClient::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")))
}

fn stats(mut args: impl Iterator<Item = String>) {
    let addr = args
        .next()
        .unwrap_or_else(|| usage_error("stats needs ADDR"));
    let mut prom = false;
    for a in args {
        match a.as_str() {
            "--prom" => prom = true,
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let mut client = connect(&addr);
    if prom {
        let text = client
            .exposition()
            .unwrap_or_else(|e| fail(&format!("exposition: {e}")));
        print!("{text}");
    } else {
        let s = client
            .stats()
            .unwrap_or_else(|e| fail(&format!("stats: {e}")));
        let json = serde_json::to_string_pretty(&s)
            .unwrap_or_else(|e| fail(&format!("stats encode: {e}")));
        println!("{json}");
    }
}

fn shutdown(mut args: impl Iterator<Item = String>) {
    let addr = args
        .next()
        .unwrap_or_else(|| usage_error("shutdown needs ADDR"));
    if let Some(other) = args.next() {
        usage_error(&format!("unknown argument {other:?}"));
    }
    connect(&addr)
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    eprintln!("server at {addr} acknowledged shutdown");
}

fn listen(mut args: impl Iterator<Item = String>) {
    let addr = args
        .next()
        .unwrap_or_else(|| usage_error("listen needs ADDR"));
    let mut cfg = ServerConfig::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--queue-depth" => cfg.scheduler.queue_depth = parse(&a, args.next()),
            "--max-active" => cfg.scheduler.max_active = parse(&a, args.next()),
            "--lag-watermark" => cfg.scheduler.step_lag_watermark = parse(&a, args.next()),
            "--quantum" => cfg.scheduler.quantum = parse(&a, args.next()),
            "--shards" => cfg.shards = parse(&a, args.next()),
            "--wfq" => cfg.wfq = true,
            "--pack-hold" => cfg.engine.pack_hold_ticks = parse(&a, args.next()),
            "--pool" => cfg.engine.pool_capacity = parse(&a, args.next()),
            "--telemetry-dir" => {
                cfg.telemetry_dir = Some(PathBuf::from(need("--telemetry-dir", args.next())))
            }
            "--no-slo" => cfg.engine.slo = false,
            "--flight-dir" => {
                cfg.engine.flight_dir = Some(PathBuf::from(need("--flight-dir", args.next())))
            }
            "--flight-capacity" => cfg.engine.flight_capacity = parse(&a, args.next()),
            "--shed-storm" => cfg.engine.shed_storm_threshold = parse(&a, args.next()),
            "--shed-window" => cfg.engine.shed_storm_window = parse(&a, args.next()),
            "--replay-audit" => cfg.engine.replay_audit_every = parse(&a, args.next()),
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if cfg.scheduler.quantum == 0 {
        usage_error("--quantum must be positive");
    }
    let server = Server::bind(&addr, cfg).unwrap_or_else(|e| fail(&format!("bind {addr}: {e}")));
    eprintln!("rsp-serve listening on {}", server.local_addr());
    match server.run() {
        Ok(stats) => {
            let json = serde_json::to_string_pretty(&stats)
                .unwrap_or_else(|e| fail(&format!("stats encode: {e}")));
            println!("{json}");
        }
        Err(e) => fail(&format!("serve: {e}")),
    }
}

/// The drive fleet's request for tenant `i`: every `lane_every`-th is
/// a lane tenant (when enabled), the rest rotate the named mixes.
/// With `--weights A:B`, even tenants carry weight A and odd weight B.
fn drive_request(
    i: u64,
    seed: u64,
    lane_every: u64,
    cycles: u64,
    weights: (u32, u32),
) -> TenantRequest {
    // `is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.82.
    #[allow(unknown_lints, clippy::manual_is_multiple_of)]
    let weight = if i % 2 == 0 { weights.0 } else { weights.1 };
    if lane_every > 0 && i % lane_every == lane_every - 1 {
        let trace_cycles = cycles.min(4096) as u32;
        return TenantRequest::new(
            StreamSpec::lane(
                format!("drive-lane-{i}"),
                LaneTraceSpec::synthetic_mix(trace_cycles, seed + i),
                cycles,
            )
            .with_weight(weight),
        );
    }
    let mixes = UnitMix::named();
    let (mix_name, mix) = mixes[(i as usize) % mixes.len()];
    TenantRequest::new(
        StreamSpec::synth(
            format!("drive-{mix_name}-{i}"),
            SynthSpec {
                body_len: 200,
                ..SynthSpec::new("drive", mix, seed + i)
            },
            cycles,
        )
        .with_weight(weight),
    )
}

/// Parse a `--weights A:B` pair.
fn parse_weights(v: Option<String>) -> (u32, u32) {
    let s = need("--weights", v);
    let parsed = s
        .split_once(':')
        .and_then(|(a, b)| Some((a.trim().parse().ok()?, b.trim().parse().ok()?)));
    parsed.unwrap_or_else(|| usage_error("--weights needs A:B, e.g. 3:1"))
}

fn drive(mut args: impl Iterator<Item = String>) {
    let addr = args
        .next()
        .unwrap_or_else(|| usage_error("drive needs ADDR"));
    let mut tenants: u64 = 16;
    let mut seed: u64 = 1;
    let mut lane_every: u64 = 4;
    let mut cycles: u64 = 20_000;
    let mut weights: (u32, u32) = (0, 0);
    let mut timeout = Duration::from_secs(120);
    let mut verify_replay = true;
    let mut shutdown_after = true;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tenants" => tenants = parse(&a, args.next()),
            "--seed" => seed = parse(&a, args.next()),
            "--lane-every" => lane_every = parse(&a, args.next()),
            "--cycles" => cycles = parse(&a, args.next()),
            "--weights" => weights = parse_weights(args.next()),
            "--timeout-secs" => timeout = Duration::from_secs(parse(&a, args.next())),
            "--no-verify-replay" => verify_replay = false,
            "--no-shutdown" => shutdown_after = false,
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if tenants == 0 || cycles == 0 {
        usage_error("--tenants and --cycles must be positive");
    }

    let mut client =
        ServeClient::connect(&addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    let mut admitted: Vec<(u64, TenantRequest)> = Vec::new();
    let mut shed = 0u64;
    for i in 0..tenants {
        let req = drive_request(i, seed, lane_every, cycles, weights);
        match client.submit(req.clone()) {
            Ok(Ok(id)) => admitted.push((id, req)),
            Ok(Err(reason)) => {
                shed += 1;
                match reason {
                    ShedReason::BadSpec(msg) => fail(&format!("drive spec rejected: {msg}")),
                    _ => eprintln!("tenant {i} shed: {reason}"),
                }
            }
            Err(e) => fail(&format!("submit: {e}")),
        }
    }
    eprintln!(
        "submitted {tenants} tenants: {} admitted, {shed} shed",
        admitted.len()
    );

    let deadline = Instant::now() + timeout;
    let mut pending: Vec<u64> = admitted.iter().map(|(id, _)| *id).collect();
    while !pending.is_empty() {
        if Instant::now() > deadline {
            fail(&format!(
                "timed out with {} tenants unfinished",
                pending.len()
            ));
        }
        pending.retain(|&id| match client.status(id) {
            Ok(Some(s)) => !matches!(s.phase, TenantPhase::Done | TenantPhase::Failed),
            Ok(None) => false,
            Err(e) => fail(&format!("status {id}: {e}")),
        });
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    let mut empty = 0u64;
    let mut verified = 0u64;
    let mut verified_lane = false;
    let mut verified_scalar = false;
    for (id, req) in &admitted {
        let status = client
            .status(*id)
            .unwrap_or_else(|e| fail(&format!("status {id}: {e}")))
            .unwrap_or_else(|| fail(&format!("tenant {id} vanished")));
        if status.phase == TenantPhase::Failed {
            fail(&format!("tenant {id} failed server-side"));
        }
        let jsonl = client
            .telemetry(*id)
            .unwrap_or_else(|e| fail(&format!("telemetry {id}: {e}")))
            .unwrap_or_default();
        if jsonl.is_empty() {
            empty += 1;
            continue;
        }
        let first_of_kind = (status.lane && !verified_lane) || (!status.lane && !verified_scalar);
        if verify_replay && first_of_kind {
            let offline = replay(&SimConfig::default(), req)
                .unwrap_or_else(|e| fail(&format!("replay {id}: {e}")));
            if offline != jsonl {
                fail(&format!(
                    "tenant {id} replay mismatch: served {} bytes, replayed {} bytes",
                    jsonl.len(),
                    offline.len()
                ));
            }
            verified += 1;
            if status.lane {
                verified_lane = true;
            } else {
                verified_scalar = true;
            }
        }
    }
    if empty > 0 {
        fail(&format!("{empty} admitted tenants produced no telemetry"));
    }

    let stats = client
        .stats()
        .unwrap_or_else(|e| fail(&format!("stats: {e}")));
    let json = serde_json::to_string_pretty(&stats)
        .unwrap_or_else(|e| fail(&format!("stats encode: {e}")));
    println!("{json}");
    eprintln!(
        "drive ok: {} tenants completed, {shed} shed \
         (queue_full {}, step_lag {}, bad_spec {}), {verified} replay-verified",
        admitted.len(),
        stats.shed_queue_full,
        stats.shed_step_lag,
        stats.shed_bad_spec,
    );
    if shutdown_after {
        client
            .shutdown()
            .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    } else {
        eprintln!("server left running (--no-shutdown)");
    }
}

//! # rsp-serve — steering-as-a-service over a pooled machine fleet
//!
//! A long-running server that owns a pool of simulated machines and
//! steps many concurrent tenant workload streams (DESIGN.md §14). The
//! paper's selection unit steers one machine; this crate puts that
//! machine behind a service boundary so an *arrival mix* of many
//! independent streams becomes observable — the queuing-model framing
//! under which capacity should be configured to offered load.
//!
//! Four swappable layers:
//!
//! * **transport** ([`protocol`], [`server`], [`client`]) — 4-byte
//!   length-prefixed JSON frames over TCP or Unix sockets, std-only;
//! * **admission** ([`scheduler`]) — the [`Scheduler`] trait separates
//!   policy from stepping; the default [`WatermarkScheduler`] sheds
//!   with explicit [`ShedReason`]s at a queue-depth or step-lag
//!   watermark instead of silently stalling; [`WfqScheduler`] layers
//!   weighted fairness (deficit-round-robin credits per tenant weight)
//!   over the same watermarks (DESIGN.md §16);
//! * **stepping** ([`engine`]) — scalar tenants earn deficit-round-
//!   robin grants on pooled `Machine`s; compatible lane tenants pack
//!   64-per-word onto the bit-sliced lane kernel, optionally held a
//!   few ticks to pack fuller groups;
//! * **sharding** ([`fleet`]) — [`ShardedEngine`] fans tenants over N
//!   engines by a stable affinity hash; stats, SLO slabs, and metrics
//!   frames merge back into one fleet view with the per-tenant-sums-
//!   to-aggregate invariant intact (DESIGN.md §16);
//! * **telemetry** — per-tenant ring-JSONL streams routed through
//!   `rsp_obs::TenantRouter`; any tenant is bit-identically
//!   replayable offline from `(spec, seed)` alone ([`replay`]);
//! * **observability** ([`slo`]) — per-tenant SLO histograms
//!   (admission-to-first-step, queue residency, step lag, quantum
//!   cycles) in fixed slabs off the hot path, exposed over the wire as
//!   a [`MetricsFrame`] and as Prometheus text, plus a bounded flight
//!   recorder that dumps the recent event ring on anomaly triggers
//!   (shed storms, replay mismatches, engine panics — DESIGN.md §15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod fleet;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod slo;
pub mod tenant;

pub use client::ServeClient;
pub use engine::{
    check_request, effective_cfg, lane_transition_line, replay, EngineConfig, EngineStats,
    PanicFlightGuard, ServeEngine, LANES_PER_GROUP,
};
pub use fleet::{merge_frames, merge_snapshots, merge_stats, shard_of, ShardedEngine};
pub use protocol::{Request, Response, MAX_FRAME};
pub use scheduler::{
    LoadSnapshot, Scheduler, SchedulerKind, ShedReason, SpecNote, WatermarkScheduler, WfqScheduler,
    SPEC_NOTE_CAP,
};
pub use server::{Server, ServerConfig};
pub use slo::{MetricsFrame, SloRegistry, TenantMetrics, SLO_HISTO_NAMES};
pub use tenant::{tenant_key, TenantPhase, TenantRequest, TenantStatus};

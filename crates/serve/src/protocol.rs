//! The serve wire protocol: length-prefixed JSON frames.
//!
//! Each frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON (one [`Request`] or [`Response`]). The
//! framing is symmetric, std-only, and transport-agnostic: the same
//! functions drive TCP and Unix-domain streams. Frames larger than
//! [`MAX_FRAME`] are rejected before allocation so a corrupt or
//! hostile peer cannot make the server reserve gigabytes.

use crate::engine::EngineStats;
use crate::scheduler::ShedReason;
use crate::slo::MetricsFrame;
use crate::tenant::{TenantRequest, TenantStatus};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (16 MiB).
pub const MAX_FRAME: usize = 16 << 20;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a tenant for admission.
    Submit(TenantRequest),
    /// Query a tenant's status.
    Status {
        /// The tenant id returned by `Admitted`.
        id: u64,
    },
    /// Fetch a tenant's routed telemetry.
    Telemetry {
        /// The tenant id returned by `Admitted`.
        id: u64,
    },
    /// Fetch aggregate server counters.
    Stats,
    /// Fetch the full SLO metrics frame: engine stats, the aggregate
    /// snapshot, and one snapshot per tenant (DESIGN.md §15).
    Metrics,
    /// Fetch the Prometheus text exposition of the metrics frame,
    /// rendered server-side so any scraper-shaped client needs no
    /// knowledge of the snapshot schema.
    Exposition,
    /// Stop the server after replying `Bye`.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The tenant was admitted under this id.
    Admitted {
        /// Server-assigned tenant id.
        id: u64,
    },
    /// The tenant was shed; nothing was queued.
    Shed {
        /// Why the tenant was rejected.
        reason: ShedReason,
    },
    /// A tenant's status.
    Status(TenantStatus),
    /// A tenant's telemetry (empty string = none routed yet).
    Telemetry {
        /// The queried tenant id.
        id: u64,
        /// The tenant's accumulated JSONL.
        jsonl: String,
    },
    /// Aggregate server counters.
    Stats(EngineStats),
    /// The full SLO metrics frame.
    Metrics(MetricsFrame),
    /// The Prometheus text exposition.
    Exposition {
        /// Prometheus text-format body.
        text: String,
    },
    /// The queried tenant id was never admitted.
    NotFound {
        /// The unknown id.
        id: u64,
    },
    /// The request could not be handled.
    Error {
        /// Human-readable cause.
        msg: String,
    },
    /// Acknowledges `Shutdown`; the connection closes after this.
    Bye,
}

/// Write one frame: 4-byte BE length, then the JSON payload.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> io::Result<()> {
    let body = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` on clean EOF at a frame
/// boundary; errors on torn frames, oversized lengths, or bad UTF-8.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Decode a frame payload into a message.
pub fn decode<T: Deserialize>(text: &str) -> io::Result<T> {
    serde_json::from_str(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_workloads::{StreamSpec, SynthSpec, UnitMix};

    fn sample_requests() -> Vec<Request> {
        let spec = StreamSpec::synth("s", SynthSpec::new("s", UnitMix::INT_HEAVY, 3), 1000);
        vec![
            Request::Submit(TenantRequest::new(spec)),
            Request::Status { id: 7 },
            Request::Telemetry { id: 7 },
            Request::Stats,
            Request::Metrics,
            Request::Exposition,
            Request::Shutdown,
        ]
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        for req in sample_requests() {
            write_frame(&mut buf, &req).unwrap();
        }
        let mut r = &buf[..];
        for want in sample_requests() {
            let text = read_frame(&mut r).unwrap().unwrap();
            let got: Request = decode(&text).unwrap();
            assert_eq!(got, want);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Admitted { id: 3 },
            Response::Shed {
                reason: ShedReason::QueueFull,
            },
            Response::Telemetry {
                id: 3,
                jsonl: "{\"cycle\":1}\n".into(),
            },
            Response::Stats(EngineStats::default()),
            Response::Metrics(MetricsFrame::default()),
            Response::Exposition {
                text: "# TYPE rsp_serve_tick gauge\nrsp_serve_tick 0\n".into(),
            },
            Response::NotFound { id: 9 },
            Response::Error { msg: "nope".into() },
            Response::Bye,
        ];
        let mut buf = Vec::new();
        for r in &responses {
            write_frame(&mut buf, r).unwrap();
        }
        let mut rd = &buf[..];
        for want in &responses {
            let text = read_frame(&mut rd).unwrap().unwrap();
            let got: Response = decode(&text).unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn torn_and_oversized_frames_error() {
        // Torn header.
        let mut r: &[u8] = &[0, 0];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Torn body.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
        // Oversized length prefix rejected before allocation.
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        let mut r = &huge[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}

//! The long-running server: transport layer over the engine.
//!
//! Layering (DESIGN.md §14): connection threads own only framing —
//! each decoded [`Request`] is forwarded over an mpsc channel to the
//! engine side, which interleaves request handling with
//! [`ServeEngine::tick`]. The engine never touches a socket and every
//! admission decision happens on an engine thread, so the serving
//! behaviour is exactly the in-process engine the unit tests drive.
//!
//! Sharded mode (DESIGN.md §16): with [`ServerConfig::shards`] > 1 the
//! command channel feeds a *router* thread instead, which owns the
//! global↔local id table and forwards each request to the tenant's
//! affinity shard ([`crate::fleet::shard_of`]) — one engine thread per
//! shard, each running the same serve loop as the single-engine path.
//! Fleet-wide reads (`Stats`/`Metrics`/`Exposition`) fan out and merge
//! with the [`crate::fleet`] helpers, so clients cannot tell a sharded
//! server from a big single engine.
//!
//! Shutdown: a `Shutdown` request is answered with `Bye`, then the
//! engine thread(s) finish their current drain, telemetry is exported
//! under fleet-global ids (when configured), final stats are merged,
//! and the accept loop exits. Connection reads use a short timeout so
//! every thread observes the shutdown flag promptly instead of
//! blocking forever.

use crate::engine::{EngineConfig, EngineStats, PanicFlightGuard, ServeEngine};
use crate::fleet::{merge_frames, merge_stats, shard_of};
use crate::protocol::{self, Request, Response};
use crate::scheduler::{Scheduler, SchedulerKind, WatermarkScheduler, WfqScheduler};
use crate::slo::MetricsFrame;
use crate::tenant::tenant_key;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine parameters (base machine config, pool size).
    pub engine: EngineConfig,
    /// Admission policy watermarks.
    pub scheduler: WatermarkScheduler,
    /// Serve with weighted-fair (deficit-round-robin) quanta honouring
    /// per-tenant stream weights, instead of flat round-robin. The
    /// watermarks above still gate admission either way.
    pub wfq: bool,
    /// Engine shards (threads); each owns a full machine pool and
    /// scheduler, tenants are pinned by affinity hash. 0 or 1 = the
    /// single-engine path.
    pub shards: usize,
    /// Engine idle-poll interval (how long the engine thread waits for
    /// commands when nothing is running).
    pub idle_poll: Duration,
    /// Export per-tenant telemetry here on shutdown (`None` = skip).
    pub telemetry_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            engine: EngineConfig::default(),
            scheduler: WatermarkScheduler::default(),
            wfq: false,
            shards: 1,
            idle_poll: Duration::from_millis(2),
            telemetry_dir: None,
        }
    }
}

/// Read timeout on connection sockets; bounds how long a connection
/// thread can miss the shutdown flag.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(250);

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

enum ConnStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ConnStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.flush(),
        }
    }
}

/// True iff `addr` names a Unix-domain socket path rather than a TCP
/// address (contains `/`, the convention the CLI documents).
pub fn is_unix_addr(addr: &str) -> bool {
    addr.contains('/')
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: ListenerKind,
    addr: String,
    cfg: ServerConfig,
}

struct Command {
    req: Request,
    reply: mpsc::Sender<Response>,
}

impl Server {
    /// Bind `addr` (TCP `host:port`, or a Unix socket path when the
    /// address contains `/`). TCP port 0 picks a free port; the bound
    /// address is reported by [`Server::local_addr`].
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        if is_unix_addr(addr) {
            #[cfg(unix)]
            {
                let path = PathBuf::from(addr);
                // A stale socket file from a crashed server blocks
                // rebinding; remove it (connect would fail anyway).
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)?;
                return Ok(Server {
                    listener: ListenerKind::Unix(listener, path),
                    addr: addr.to_string(),
                    cfg,
                });
            }
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix socket addresses need a unix platform",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?.to_string();
        Ok(Server {
            listener: ListenerKind::Tcp(listener),
            addr,
            cfg,
        })
    }

    /// The actually bound address (resolves TCP port 0).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Serve until a `Shutdown` request arrives; returns the final
    /// engine counters.
    pub fn run(self) -> io::Result<EngineStats> {
        let Server {
            listener,
            addr: _,
            cfg,
        } = self;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Command>();

        let engine_shutdown = shutdown.clone();
        let engine_cfg = cfg.engine.clone();
        let scheduler = if cfg.wfq {
            SchedulerKind::Wfq(WfqScheduler {
                watermarks: cfg.scheduler,
                ..WfqScheduler::default()
            })
        } else {
            SchedulerKind::Watermark(cfg.scheduler)
        };
        let shards = cfg.shards;
        let idle_poll = cfg.idle_poll;
        let telemetry_dir = cfg.telemetry_dir.clone();
        let engine_thread = std::thread::spawn(move || {
            if shards > 1 {
                router_loop(
                    engine_cfg,
                    scheduler,
                    shards,
                    rx,
                    engine_shutdown,
                    idle_poll,
                    telemetry_dir,
                )
            } else {
                engine_loop(
                    engine_cfg,
                    scheduler,
                    rx,
                    engine_shutdown,
                    idle_poll,
                    telemetry_dir,
                )
            }
        });

        match &listener {
            ListenerKind::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            ListenerKind::Unix(l, _) => l.set_nonblocking(true)?,
        }
        let mut conn_threads = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            let accepted = match &listener {
                ListenerKind::Tcp(l) => l.accept().map(|(s, _)| ConnStream::Tcp(s)),
                #[cfg(unix)]
                ListenerKind::Unix(l, _) => l.accept().map(|(s, _)| ConnStream::Unix(s)),
            };
            match accepted {
                Ok(stream) => {
                    let tx = tx.clone();
                    let shutdown = shutdown.clone();
                    conn_threads.push(std::thread::spawn(move || {
                        conn_loop(stream, tx, shutdown);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    shutdown.store(true, Ordering::SeqCst);
                    drop(tx);
                    let _ = engine_thread.join();
                    return Err(e);
                }
            }
        }
        drop(tx);
        for t in conn_threads {
            let _ = t.join();
        }
        #[cfg(unix)]
        if let ListenerKind::Unix(_, path) = &listener {
            let _ = std::fs::remove_file(path);
        }
        engine_thread
            .join()
            .map_err(|_| io::Error::other("engine thread panicked"))
    }
}

/// One connection: read frames, forward to the engine, write replies.
fn conn_loop(mut stream: ConnStream, tx: mpsc::Sender<Command>, shutdown: Arc<AtomicBool>) {
    let set_timeout = |s: &ConnStream| match s {
        ConnStream::Tcp(s) => s.set_read_timeout(Some(CONN_READ_TIMEOUT)),
        #[cfg(unix)]
        ConnStream::Unix(s) => s.set_read_timeout(Some(CONN_READ_TIMEOUT)),
    };
    if set_timeout(&stream).is_err() {
        return;
    }
    loop {
        let text = match read_frame_interruptible(&mut stream, &shutdown) {
            Ok(Some(t)) => t,
            Ok(None) => return, // clean EOF or shutdown
            Err(_) => return,
        };
        let response = match protocol::decode::<Request>(&text) {
            Ok(req) => {
                let (rtx, rrx) = mpsc::channel();
                if tx.send(Command { req, reply: rtx }).is_err() {
                    Response::Error {
                        msg: "server shutting down".into(),
                    }
                } else {
                    rrx.recv().unwrap_or(Response::Error {
                        msg: "engine dropped the request".into(),
                    })
                }
            }
            Err(e) => Response::Error { msg: e.to_string() },
        };
        let bye = matches!(response, Response::Bye);
        if protocol::write_frame(&mut stream, &response).is_err() || bye {
            return;
        }
    }
}

/// Like [`protocol::read_frame`], but treats read timeouts as a chance
/// to observe the shutdown flag instead of an error. Safe against
/// partial reads: progress within the frame is tracked across retries.
fn read_frame_interruptible(
    stream: &mut ConnStream,
    shutdown: &AtomicBool,
) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    if !read_n(stream, &mut header, shutdown, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > protocol::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut body = vec![0u8; len];
    if !read_n(stream, &mut body, shutdown, false)? {
        return Ok(None);
    }
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Fill `buf`, retrying on timeout until shutdown. Returns false on a
/// clean stop (EOF before any byte when `eof_ok`, or shutdown at a
/// frame boundary with nothing read).
fn read_n(
    stream: &mut ConnStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    eof_ok: bool,
) -> io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) if got == 0 && eof_ok => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if got == 0 && shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn handle<S: Scheduler>(engine: &mut ServeEngine<S>, req: Request, bye: &mut bool) -> Response {
    match req {
        Request::Submit(r) => match engine.submit(r) {
            Ok(id) => Response::Admitted { id },
            Err(reason) => Response::Shed { reason },
        },
        Request::Status { id } => match engine.status(id) {
            Some(s) => Response::Status(s.clone()),
            None => Response::NotFound { id },
        },
        Request::Telemetry { id } => {
            if engine.status(id).is_none() {
                Response::NotFound { id }
            } else {
                Response::Telemetry {
                    id,
                    jsonl: engine.telemetry(id).unwrap_or_default().to_string(),
                }
            }
        }
        Request::Stats => Response::Stats(engine.stats()),
        Request::Metrics => Response::Metrics(engine.metrics()),
        Request::Exposition => Response::Exposition {
            text: engine.metrics().to_prometheus(),
        },
        Request::Shutdown => {
            *bye = true;
            Response::Bye
        }
    }
}

fn engine_loop<S: Scheduler>(
    cfg: EngineConfig,
    scheduler: S,
    rx: mpsc::Receiver<Command>,
    shutdown: Arc<AtomicBool>,
    idle_poll: Duration,
    telemetry_dir: Option<PathBuf>,
) -> EngineStats {
    let mut engine = ServeEngine::new(cfg, scheduler);
    run_engine(&mut engine, rx, idle_poll);
    shutdown.store(true, Ordering::SeqCst);
    if let Some(dir) = telemetry_dir {
        let _ = engine.export_telemetry(&dir);
    }
    engine.stats()
}

/// Ask one shard thread and wait for its reply.
fn ask(tx: &mpsc::Sender<Command>, req: Request) -> Response {
    let (rtx, rrx) = mpsc::channel();
    if tx.send(Command { req, reply: rtx }).is_err() {
        return Response::Error {
            msg: "shard unavailable".into(),
        };
    }
    rrx.recv().unwrap_or(Response::Error {
        msg: "shard dropped the request".into(),
    })
}

/// The sharded serve loop: one engine thread per shard (each running
/// the same [`run_engine`] as the single-engine path), plus this
/// router, which owns the global↔local id table. See the module docs
/// for the routing and merge rules.
fn router_loop<S: Scheduler + Clone + Send + 'static>(
    cfg: EngineConfig,
    scheduler: S,
    shards: usize,
    rx: mpsc::Receiver<Command>,
    shutdown: Arc<AtomicBool>,
    idle_poll: Duration,
    telemetry_dir: Option<PathBuf>,
) -> EngineStats {
    let mut txs = Vec::with_capacity(shards);
    let mut threads = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (stx, srx) = mpsc::channel::<Command>();
        let cfg = cfg.clone();
        let scheduler = scheduler.clone();
        threads.push(std::thread::spawn(move || {
            let mut engine = ServeEngine::new(cfg, scheduler);
            run_engine(&mut engine, srx, idle_poll);
            engine
        }));
        txs.push(stx);
    }
    // Global id → (shard, local id), and its per-shard reverse.
    let mut routes: Vec<(usize, u64)> = Vec::new();
    let mut globals: Vec<Vec<u64>> = vec![Vec::new(); shards];
    let mut bye = false;
    while !bye {
        let Ok(cmd) = rx.recv() else { break };
        let resp = route(cmd.req, &txs, &mut routes, &mut globals, &mut bye);
        let _ = cmd.reply.send(resp);
    }
    for tx in &txs {
        let _ = ask(tx, Request::Shutdown);
    }
    drop(txs);
    let engines: Vec<ServeEngine<S>> = threads
        .into_iter()
        .map(|t| t.join().expect("shard engine thread panicked"))
        .collect();
    shutdown.store(true, Ordering::SeqCst);
    if let Some(dir) = telemetry_dir {
        if std::fs::create_dir_all(&dir).is_ok() {
            for (global, &(shard, local)) in routes.iter().enumerate() {
                if let Some(jsonl) = engines[shard].telemetry(local) {
                    let path = dir.join(format!("{}.jsonl", tenant_key(global as u64)));
                    let _ = std::fs::write(path, jsonl);
                }
            }
        }
    }
    let parts: Vec<EngineStats> = engines.iter().map(ServeEngine::stats).collect();
    merge_stats(&parts)
}

/// Route one request: per-tenant requests go to the owning shard with
/// ids rewritten both ways; fleet-wide reads fan out and merge.
fn route(
    req: Request,
    txs: &[mpsc::Sender<Command>],
    routes: &mut Vec<(usize, u64)>,
    globals: &mut [Vec<u64>],
    bye: &mut bool,
) -> Response {
    let frames = |txs: &[mpsc::Sender<Command>], globals: &[Vec<u64>]| -> MetricsFrame {
        let parts: Vec<MetricsFrame> = txs
            .iter()
            .map(|tx| match ask(tx, Request::Metrics) {
                Response::Metrics(f) => f,
                _ => MetricsFrame::default(),
            })
            .collect();
        merge_frames(&parts, globals)
    };
    match req {
        Request::Submit(r) => {
            // The prospective global id decides affinity; it is only
            // consumed if the shard admits (sheds burn no ids).
            let global = routes.len() as u64;
            let shard = shard_of(global, txs.len());
            match ask(&txs[shard], Request::Submit(r)) {
                Response::Admitted { id: local } => {
                    routes.push((shard, local));
                    globals[shard].push(global);
                    Response::Admitted { id: global }
                }
                other => other,
            }
        }
        Request::Status { id } => match routes.get(id as usize) {
            None => Response::NotFound { id },
            Some(&(shard, local)) => match ask(&txs[shard], Request::Status { id: local }) {
                Response::Status(mut st) => {
                    st.id = id;
                    Response::Status(st)
                }
                Response::NotFound { .. } => Response::NotFound { id },
                other => other,
            },
        },
        Request::Telemetry { id } => match routes.get(id as usize) {
            None => Response::NotFound { id },
            Some(&(shard, local)) => match ask(&txs[shard], Request::Telemetry { id: local }) {
                Response::Telemetry { jsonl, .. } => Response::Telemetry { id, jsonl },
                Response::NotFound { .. } => Response::NotFound { id },
                other => other,
            },
        },
        Request::Stats => {
            let parts: Vec<EngineStats> = txs
                .iter()
                .map(|tx| match ask(tx, Request::Stats) {
                    Response::Stats(s) => s,
                    _ => EngineStats::default(),
                })
                .collect();
            Response::Stats(merge_stats(&parts))
        }
        Request::Metrics => Response::Metrics(frames(txs, globals)),
        Request::Exposition => Response::Exposition {
            text: frames(txs, globals).to_prometheus(),
        },
        Request::Shutdown => {
            *bye = true;
            Response::Bye
        }
    }
}

/// The engine's serve loop, driven through a [`PanicFlightGuard`]: if
/// the loop panics, the guard's `Drop` dumps the flight ring (with an
/// `EnginePanic` trigger entry) before the thread unwinds.
fn run_engine<S: Scheduler>(
    engine: &mut ServeEngine<S>,
    rx: mpsc::Receiver<Command>,
    idle_poll: Duration,
) {
    let guard = PanicFlightGuard::new(engine);
    let mut bye = false;
    loop {
        while let Ok(cmd) = rx.try_recv() {
            let resp = handle(&mut *guard.engine, cmd.req, &mut bye);
            let _ = cmd.reply.send(resp);
        }
        if bye {
            break;
        }
        if guard.engine.is_idle() {
            match rx.recv_timeout(idle_poll) {
                Ok(cmd) => {
                    let resp = handle(&mut *guard.engine, cmd.req, &mut bye);
                    let _ = cmd.reply.send(resp);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        } else {
            guard.engine.tick();
        }
    }
}

//! The long-running server: transport layer over the engine.
//!
//! Layering (DESIGN.md §14): connection threads own only framing —
//! each decoded [`Request`] is forwarded over an mpsc channel to the
//! single engine thread, which interleaves request handling with
//! [`ServeEngine::tick`]. The engine never touches a socket and every
//! admission decision happens on one thread, so the serving behaviour
//! is exactly the in-process engine the unit tests drive.
//!
//! Shutdown: a `Shutdown` request is answered with `Bye`, then the
//! engine thread finishes its current drain, exports telemetry (when
//! configured), publishes final stats, and the accept loop exits.
//! Connection reads use a short timeout so every thread observes the
//! shutdown flag promptly instead of blocking forever.

use crate::engine::{EngineConfig, EngineStats, PanicFlightGuard, ServeEngine};
use crate::protocol::{self, Request, Response};
use crate::scheduler::WatermarkScheduler;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine parameters (base machine config, pool size).
    pub engine: EngineConfig,
    /// Admission policy watermarks.
    pub scheduler: WatermarkScheduler,
    /// Engine idle-poll interval (how long the engine thread waits for
    /// commands when nothing is running).
    pub idle_poll: Duration,
    /// Export per-tenant telemetry here on shutdown (`None` = skip).
    pub telemetry_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            engine: EngineConfig::default(),
            scheduler: WatermarkScheduler::default(),
            idle_poll: Duration::from_millis(2),
            telemetry_dir: None,
        }
    }
}

/// Read timeout on connection sockets; bounds how long a connection
/// thread can miss the shutdown flag.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(250);

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

enum ConnStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ConnStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.flush(),
        }
    }
}

/// True iff `addr` names a Unix-domain socket path rather than a TCP
/// address (contains `/`, the convention the CLI documents).
pub fn is_unix_addr(addr: &str) -> bool {
    addr.contains('/')
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: ListenerKind,
    addr: String,
    cfg: ServerConfig,
}

struct Command {
    req: Request,
    reply: mpsc::Sender<Response>,
}

impl Server {
    /// Bind `addr` (TCP `host:port`, or a Unix socket path when the
    /// address contains `/`). TCP port 0 picks a free port; the bound
    /// address is reported by [`Server::local_addr`].
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        if is_unix_addr(addr) {
            #[cfg(unix)]
            {
                let path = PathBuf::from(addr);
                // A stale socket file from a crashed server blocks
                // rebinding; remove it (connect would fail anyway).
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)?;
                return Ok(Server {
                    listener: ListenerKind::Unix(listener, path),
                    addr: addr.to_string(),
                    cfg,
                });
            }
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix socket addresses need a unix platform",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?.to_string();
        Ok(Server {
            listener: ListenerKind::Tcp(listener),
            addr,
            cfg,
        })
    }

    /// The actually bound address (resolves TCP port 0).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Serve until a `Shutdown` request arrives; returns the final
    /// engine counters.
    pub fn run(self) -> io::Result<EngineStats> {
        let Server {
            listener,
            addr: _,
            cfg,
        } = self;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Command>();

        let engine_shutdown = shutdown.clone();
        let engine_cfg = cfg.engine.clone();
        let scheduler = cfg.scheduler;
        let idle_poll = cfg.idle_poll;
        let telemetry_dir = cfg.telemetry_dir.clone();
        let engine_thread = std::thread::spawn(move || {
            engine_loop(
                engine_cfg,
                scheduler,
                rx,
                engine_shutdown,
                idle_poll,
                telemetry_dir,
            )
        });

        match &listener {
            ListenerKind::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            ListenerKind::Unix(l, _) => l.set_nonblocking(true)?,
        }
        let mut conn_threads = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            let accepted = match &listener {
                ListenerKind::Tcp(l) => l.accept().map(|(s, _)| ConnStream::Tcp(s)),
                #[cfg(unix)]
                ListenerKind::Unix(l, _) => l.accept().map(|(s, _)| ConnStream::Unix(s)),
            };
            match accepted {
                Ok(stream) => {
                    let tx = tx.clone();
                    let shutdown = shutdown.clone();
                    conn_threads.push(std::thread::spawn(move || {
                        conn_loop(stream, tx, shutdown);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    shutdown.store(true, Ordering::SeqCst);
                    drop(tx);
                    let _ = engine_thread.join();
                    return Err(e);
                }
            }
        }
        drop(tx);
        for t in conn_threads {
            let _ = t.join();
        }
        #[cfg(unix)]
        if let ListenerKind::Unix(_, path) = &listener {
            let _ = std::fs::remove_file(path);
        }
        engine_thread
            .join()
            .map_err(|_| io::Error::other("engine thread panicked"))
    }
}

/// One connection: read frames, forward to the engine, write replies.
fn conn_loop(mut stream: ConnStream, tx: mpsc::Sender<Command>, shutdown: Arc<AtomicBool>) {
    let set_timeout = |s: &ConnStream| match s {
        ConnStream::Tcp(s) => s.set_read_timeout(Some(CONN_READ_TIMEOUT)),
        #[cfg(unix)]
        ConnStream::Unix(s) => s.set_read_timeout(Some(CONN_READ_TIMEOUT)),
    };
    if set_timeout(&stream).is_err() {
        return;
    }
    loop {
        let text = match read_frame_interruptible(&mut stream, &shutdown) {
            Ok(Some(t)) => t,
            Ok(None) => return, // clean EOF or shutdown
            Err(_) => return,
        };
        let response = match protocol::decode::<Request>(&text) {
            Ok(req) => {
                let (rtx, rrx) = mpsc::channel();
                if tx.send(Command { req, reply: rtx }).is_err() {
                    Response::Error {
                        msg: "server shutting down".into(),
                    }
                } else {
                    rrx.recv().unwrap_or(Response::Error {
                        msg: "engine dropped the request".into(),
                    })
                }
            }
            Err(e) => Response::Error { msg: e.to_string() },
        };
        let bye = matches!(response, Response::Bye);
        if protocol::write_frame(&mut stream, &response).is_err() || bye {
            return;
        }
    }
}

/// Like [`protocol::read_frame`], but treats read timeouts as a chance
/// to observe the shutdown flag instead of an error. Safe against
/// partial reads: progress within the frame is tracked across retries.
fn read_frame_interruptible(
    stream: &mut ConnStream,
    shutdown: &AtomicBool,
) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    if !read_n(stream, &mut header, shutdown, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > protocol::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut body = vec![0u8; len];
    if !read_n(stream, &mut body, shutdown, false)? {
        return Ok(None);
    }
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Fill `buf`, retrying on timeout until shutdown. Returns false on a
/// clean stop (EOF before any byte when `eof_ok`, or shutdown at a
/// frame boundary with nothing read).
fn read_n(
    stream: &mut ConnStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    eof_ok: bool,
) -> io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) if got == 0 && eof_ok => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if got == 0 && shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn handle(engine: &mut ServeEngine, req: Request, bye: &mut bool) -> Response {
    match req {
        Request::Submit(r) => match engine.submit(r) {
            Ok(id) => Response::Admitted { id },
            Err(reason) => Response::Shed { reason },
        },
        Request::Status { id } => match engine.status(id) {
            Some(s) => Response::Status(s.clone()),
            None => Response::NotFound { id },
        },
        Request::Telemetry { id } => {
            if engine.status(id).is_none() {
                Response::NotFound { id }
            } else {
                Response::Telemetry {
                    id,
                    jsonl: engine.telemetry(id).unwrap_or_default().to_string(),
                }
            }
        }
        Request::Stats => Response::Stats(engine.stats()),
        Request::Metrics => Response::Metrics(engine.metrics()),
        Request::Exposition => Response::Exposition {
            text: engine.metrics().to_prometheus(),
        },
        Request::Shutdown => {
            *bye = true;
            Response::Bye
        }
    }
}

fn engine_loop(
    cfg: EngineConfig,
    scheduler: WatermarkScheduler,
    rx: mpsc::Receiver<Command>,
    shutdown: Arc<AtomicBool>,
    idle_poll: Duration,
    telemetry_dir: Option<PathBuf>,
) -> EngineStats {
    let mut engine = ServeEngine::new(cfg, scheduler);
    run_engine(&mut engine, rx, idle_poll);
    shutdown.store(true, Ordering::SeqCst);
    if let Some(dir) = telemetry_dir {
        let _ = engine.export_telemetry(&dir);
    }
    engine.stats()
}

/// The engine's serve loop, driven through a [`PanicFlightGuard`]: if
/// the loop panics, the guard's `Drop` dumps the flight ring (with an
/// `EnginePanic` trigger entry) before the thread unwinds.
fn run_engine(engine: &mut ServeEngine, rx: mpsc::Receiver<Command>, idle_poll: Duration) {
    let guard = PanicFlightGuard::new(engine);
    let mut bye = false;
    loop {
        while let Ok(cmd) = rx.try_recv() {
            let resp = handle(&mut *guard.engine, cmd.req, &mut bye);
            let _ = cmd.reply.send(resp);
        }
        if bye {
            break;
        }
        if guard.engine.is_idle() {
            match rx.recv_timeout(idle_poll) {
                Ok(cmd) => {
                    let resp = handle(&mut *guard.engine, cmd.req, &mut bye);
                    let _ = cmd.reply.send(resp);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        } else {
            guard.engine.tick();
        }
    }
}

//! Tenant identity and lifecycle types.
//!
//! A tenant is one admitted workload stream: a [`StreamSpec`] plus the
//! per-tenant knobs the server honours (policy override, telemetry
//! ring capacity). Tenants are identified by a server-assigned numeric
//! id; the id's string form ([`tenant_key`]) keys the per-tenant
//! telemetry routed through `rsp_obs::TenantRouter`.

use rsp_sim::PolicyKind;
use rsp_workloads::StreamSpec;
use serde::{Deserialize, Serialize};

/// The string key a tenant's telemetry is routed under (`t<id>`).
/// Server-generated — never a client-supplied string — so it is safe
/// as a file name in telemetry exports.
pub fn tenant_key(id: u64) -> String {
    format!("t{id}")
}

/// A tenant admission request: the stream to run plus per-tenant knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantRequest {
    /// The workload stream (spec + seed + cycle budget).
    pub spec: StreamSpec,
    /// Steering-policy override applied on top of the server's base
    /// [`rsp_sim::SimConfig`] (`None` = serve with the base policy).
    #[serde(default)]
    pub policy: Option<PolicyKind>,
    /// Telemetry ring capacity for scalar tenants (0 = metrics only,
    /// no event log). Ignored by lane tenants, whose telemetry is the
    /// sparse transition stream.
    #[serde(default)]
    pub telemetry_capacity: usize,
}

impl TenantRequest {
    /// A request with the default knobs: base policy, 256-event ring.
    pub fn new(spec: StreamSpec) -> TenantRequest {
        TenantRequest {
            spec,
            policy: None,
            telemetry_capacity: 256,
        }
    }
}

/// Where a tenant is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantPhase {
    /// Admitted, waiting in the activation queue.
    Queued,
    /// Actively stepping on a machine or lane.
    Running,
    /// Finished (halted, budget exhausted, or trace drained).
    Done,
    /// Activation failed server-side (never stepped).
    Failed,
}

/// A tenant's externally visible status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStatus {
    /// Server-assigned tenant id.
    pub id: u64,
    /// The stream's name (reporting only).
    pub name: String,
    /// Lifecycle phase.
    pub phase: TenantPhase,
    /// Cycles stepped so far (the tenant's own clock, not the server's).
    pub cycles: u64,
    /// For scalar tenants: the program halted before the cycle budget.
    /// For lane tenants: the trace was fully drained.
    pub halted: bool,
    /// True iff this tenant runs on the bit-sliced lane kernel.
    pub lane: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_workloads::{StreamSpec, SynthSpec, UnitMix};

    #[test]
    fn requests_round_trip_and_default_optional_knobs() {
        let spec = StreamSpec::synth("s", SynthSpec::new("s", UnitMix::BALANCED, 1), 1000);
        let req = TenantRequest::new(spec.clone());
        let json = serde_json::to_string(&req).unwrap();
        let back: TenantRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);

        // A wire request that omits the optional knobs still parses.
        let minimal = format!("{{\"spec\":{}}}", spec.to_json());
        let back: TenantRequest = serde_json::from_str(&minimal).unwrap();
        assert_eq!(back.policy, None);
        assert_eq!(back.telemetry_capacity, 0);
    }

    #[test]
    fn tenant_keys_are_stable() {
        assert_eq!(tenant_key(0), "t0");
        assert_eq!(tenant_key(41), "t41");
    }
}

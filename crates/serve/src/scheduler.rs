//! Admission policy, separated from stepping (DESIGN.md §14, §16).
//!
//! The engine consults a [`Scheduler`] at three points: on `submit`
//! (admit or shed, with an explicit [`ShedReason`]), on each tick
//! (how many queued tenants to activate), and per active tenant (how
//! many cycles of service credit its weight earns this tick, and the
//! per-tick burst cap that bounds any one tenant's share). Keeping
//! this behind a trait means admission policy is testable in-process —
//! no sockets, no engine — and swappable without touching the stepping
//! loop.
//!
//! [`WatermarkScheduler`] is the default policy: a bounded admission
//! queue (reject `QueueFull` at the depth watermark), a step-lag bound
//! (reject `StepLag` once the oldest queued tenant has waited more
//! than `step_lag_watermark` ticks for a slot — the signal that the
//! fleet is saturated and latency would otherwise collapse), and a
//! fixed activation ceiling with round-robin quanta.
//!
//! [`WfqScheduler`] layers weighted fair queueing on top: the same
//! watermarks stay the outer admission guard, but each active tenant
//! earns `base quantum × weight` cycles of deficit-round-robin credit
//! per tick (clamped to `1..=max_weight`), capped at one burst
//! (`base quantum × max_weight`). With every weight equal to 1 the
//! grant collapses to the flat quantum, so equal-weight WFQ is
//! bit-identical to the watermark round-robin — the degeneration the
//! fairness suite pins.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Capacity of a [`SpecNote`] in bytes. Long validation messages are
/// truncated (at a char boundary) to fit; 120 bytes covers every
/// message `check_request` produces today.
pub const SPEC_NOTE_CAP: usize = 120;

/// A fixed-capacity, inline, `Copy` detail string for `BadSpec` sheds.
///
/// The shed path is a hot path under overload (every rejected
/// submission runs it), so the reason must not allocate. `SpecNote`
/// holds the human-readable detail inline — anything past
/// [`SPEC_NOTE_CAP`] bytes is truncated at a char boundary — which
/// keeps [`ShedReason`] `Copy` and the whole shed path heap-free. On
/// the wire it serialises as a plain JSON string, exactly like the
/// `String` it replaced.
#[derive(Clone, Copy)]
pub struct SpecNote {
    len: u8,
    buf: [u8; SPEC_NOTE_CAP],
}

impl SpecNote {
    /// Render `msg` into an inline note, truncating to fit.
    pub fn new(msg: impl fmt::Display) -> SpecNote {
        let mut note = SpecNote {
            len: 0,
            buf: [0; SPEC_NOTE_CAP],
        };
        // Truncation is expected, never an error.
        let _ = fmt::write(&mut note, format_args!("{msg}"));
        note
    }

    /// The (possibly truncated) detail text.
    pub fn as_str(&self) -> &str {
        // Only complete UTF-8 chars are ever copied in.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

impl fmt::Write for SpecNote {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let space = SPEC_NOTE_CAP - self.len as usize;
        let take = if s.len() <= space {
            s.len()
        } else {
            let mut t = space;
            while t > 0 && !s.is_char_boundary(t) {
                t -= 1;
            }
            t
        };
        let at = self.len as usize;
        self.buf[at..at + take].copy_from_slice(&s.as_bytes()[..take]);
        self.len += take as u8;
        Ok(())
    }
}

impl PartialEq for SpecNote {
    fn eq(&self, other: &SpecNote) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for SpecNote {}

impl fmt::Debug for SpecNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for SpecNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for SpecNote {
    fn from(s: &str) -> SpecNote {
        SpecNote::new(s)
    }
}

// Wire shape: a plain JSON string, byte-compatible with the `String`
// payload `BadSpec` carried before the inline note existed.
impl Serialize for SpecNote {
    fn to_value(&self) -> serde_json::Value {
        serde_json::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for SpecNote {
    fn from_value(v: &serde_json::Value) -> Result<SpecNote, serde_json::Error> {
        match v {
            serde_json::Value::Str(s) => Ok(SpecNote::new(s)),
            other => Err(serde_json::Error::expected("string", other)),
        }
    }
}

/// Why a submission was rejected. Every shed is counted in the engine
/// stats under the matching counter — load is never silently dropped.
/// `Copy` (the `BadSpec` detail lives inline in a [`SpecNote`]) so the
/// shed path never touches the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The admission queue is at its depth watermark.
    QueueFull,
    /// The oldest queued tenant has waited past the step-lag
    /// watermark: the fleet cannot keep up with offered load.
    StepLag,
    /// The stream spec is invalid or unservable (bad kernel size, lane
    /// trace outside the lane-kernel envelope, faulted lane config…).
    BadSpec(SpecNote),
}

impl ShedReason {
    /// The label-only classification of this reason (metric labels,
    /// flight recorder) — drops the `BadSpec` detail.
    pub fn kind(&self) -> rsp_obs::ShedKind {
        match self {
            ShedReason::QueueFull => rsp_obs::ShedKind::QueueFull,
            ShedReason::StepLag => rsp_obs::ShedKind::StepLag,
            ShedReason::BadSpec(_) => rsp_obs::ShedKind::BadSpec,
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "admission queue full"),
            ShedReason::StepLag => write!(f, "step lag over watermark"),
            ShedReason::BadSpec(msg) => write!(f, "bad spec: {msg}"),
        }
    }
}

/// The load signals a scheduler decides from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadSnapshot {
    /// Tenants admitted but not yet activated.
    pub queued: usize,
    /// Tenants actively stepping (scalar machines + live lanes +
    /// pending lane tenants awaiting group formation).
    pub active: usize,
    /// Ticks the oldest queued tenant has been waiting for a slot.
    pub step_lag: u64,
}

/// Admission and pacing policy, decoupled from the stepping engine.
pub trait Scheduler {
    /// Admit a new tenant under `load`, or explain the shed.
    fn admit(&self, load: &LoadSnapshot) -> Result<(), ShedReason>;

    /// How many queued tenants to activate this tick under `load`.
    fn activations(&self, load: &LoadSnapshot) -> usize;

    /// Cycles each active tenant is stepped per tick (the round-robin
    /// quantum; the weight-1 service rate).
    fn quantum(&self) -> u64;

    /// Deficit-round-robin credit in cycles a tenant of `weight` earns
    /// per tick. Weight-blind policies keep the default: the flat
    /// quantum, whatever the weight.
    fn credit(&self, weight: u32) -> u64 {
        let _ = weight;
        self.quantum()
    }

    /// Per-tick cap on the cycles any one tenant may consume (the DRR
    /// burst bound). Credit deferred by the cap carries over as
    /// deficit, itself bounded by one burst.
    fn burst(&self) -> u64 {
        self.quantum()
    }
}

/// The default watermark policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatermarkScheduler {
    /// Admission queue depth watermark (`QueueFull` beyond it).
    pub queue_depth: usize,
    /// Maximum concurrently active tenants.
    pub max_active: usize,
    /// Queue-wait watermark in ticks (`StepLag` beyond it).
    pub step_lag_watermark: u64,
    /// Cycles per active tenant per tick.
    pub quantum: u64,
}

impl Default for WatermarkScheduler {
    fn default() -> WatermarkScheduler {
        WatermarkScheduler {
            queue_depth: 64,
            max_active: 32,
            step_lag_watermark: 16,
            quantum: 256,
        }
    }
}

impl Scheduler for WatermarkScheduler {
    fn admit(&self, load: &LoadSnapshot) -> Result<(), ShedReason> {
        if load.queued >= self.queue_depth {
            return Err(ShedReason::QueueFull);
        }
        if load.step_lag > self.step_lag_watermark {
            return Err(ShedReason::StepLag);
        }
        Ok(())
    }

    fn activations(&self, load: &LoadSnapshot) -> usize {
        self.max_active.saturating_sub(load.active)
    }

    fn quantum(&self) -> u64 {
        self.quantum
    }
}

/// Weighted fair queueing over the watermark guard (DESIGN.md §16).
///
/// Admission and activation are exactly the inner
/// [`WatermarkScheduler`]'s — the watermarks stay the outer guard — but
/// service is apportioned by tenant weight: a weight-`w` tenant earns
/// `quantum × clamp(w, 1..=max_weight)` cycles of DRR credit per tick,
/// and no tenant consumes more than one burst
/// (`quantum × max_weight`) in a single tick. Weights are the priority
/// classes: completed-cycle shares track the weight ratio, which is
/// what the `serve-sched` sweep verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WfqScheduler {
    /// The outer admission guard and base quantum.
    pub watermarks: WatermarkScheduler,
    /// Weight clamp ceiling; also sets the burst to
    /// `quantum × max_weight`.
    pub max_weight: u32,
}

impl Default for WfqScheduler {
    fn default() -> WfqScheduler {
        WfqScheduler {
            watermarks: WatermarkScheduler::default(),
            max_weight: rsp_workloads::MAX_STREAM_WEIGHT,
        }
    }
}

impl Scheduler for WfqScheduler {
    fn admit(&self, load: &LoadSnapshot) -> Result<(), ShedReason> {
        self.watermarks.admit(load)
    }

    fn activations(&self, load: &LoadSnapshot) -> usize {
        self.watermarks.activations(load)
    }

    fn quantum(&self) -> u64 {
        self.watermarks.quantum
    }

    fn credit(&self, weight: u32) -> u64 {
        let w = weight.clamp(1, self.max_weight.max(1));
        self.watermarks.quantum.saturating_mul(u64::from(w))
    }

    fn burst(&self) -> u64 {
        self.watermarks
            .quantum
            .saturating_mul(u64::from(self.max_weight.max(1)))
    }
}

/// Runtime-selectable policy for the server CLI: one concrete type the
/// server threads can own without monomorphising the transport twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Flat round-robin under admission watermarks.
    Watermark(WatermarkScheduler),
    /// Weighted fair queueing under the same watermarks.
    Wfq(WfqScheduler),
}

impl Scheduler for SchedulerKind {
    fn admit(&self, load: &LoadSnapshot) -> Result<(), ShedReason> {
        match self {
            SchedulerKind::Watermark(s) => s.admit(load),
            SchedulerKind::Wfq(s) => s.admit(load),
        }
    }

    fn activations(&self, load: &LoadSnapshot) -> usize {
        match self {
            SchedulerKind::Watermark(s) => s.activations(load),
            SchedulerKind::Wfq(s) => s.activations(load),
        }
    }

    fn quantum(&self) -> u64 {
        match self {
            SchedulerKind::Watermark(s) => s.quantum(),
            SchedulerKind::Wfq(s) => s.quantum(),
        }
    }

    fn credit(&self, weight: u32) -> u64 {
        match self {
            SchedulerKind::Watermark(s) => s.credit(weight),
            SchedulerKind::Wfq(s) => s.credit(weight),
        }
    }

    fn burst(&self) -> u64 {
        match self {
            SchedulerKind::Watermark(s) => s.burst(),
            SchedulerKind::Wfq(s) => s.burst(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(queued: usize, active: usize, step_lag: u64) -> LoadSnapshot {
        LoadSnapshot {
            queued,
            active,
            step_lag,
        }
    }

    #[test]
    fn admits_under_both_watermarks() {
        let s = WatermarkScheduler {
            queue_depth: 4,
            max_active: 2,
            step_lag_watermark: 3,
            quantum: 16,
        };
        assert_eq!(s.admit(&load(3, 2, 3)), Ok(()));
        assert_eq!(s.admit(&load(4, 0, 0)), Err(ShedReason::QueueFull));
        assert_eq!(s.admit(&load(0, 0, 4)), Err(ShedReason::StepLag));
    }

    #[test]
    fn activations_fill_up_to_the_ceiling() {
        let s = WatermarkScheduler {
            max_active: 8,
            ..WatermarkScheduler::default()
        };
        assert_eq!(s.activations(&load(10, 3, 0)), 5);
        assert_eq!(s.activations(&load(10, 8, 0)), 0);
        assert_eq!(s.activations(&load(10, 12, 0)), 0);
    }

    #[test]
    fn shed_reasons_serialise() {
        for r in [
            ShedReason::QueueFull,
            ShedReason::StepLag,
            ShedReason::BadSpec(SpecNote::new("nope")),
        ] {
            let json = serde_json::to_string(&r).unwrap();
            let back: ShedReason = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
        // Wire compatibility: the note is a plain JSON string, exactly
        // the shape the old `BadSpec(String)` produced.
        let json = serde_json::to_string(&ShedReason::BadSpec(SpecNote::new("msg"))).unwrap();
        assert_eq!(json, "{\"BadSpec\":\"msg\"}");
    }

    #[test]
    fn spec_notes_truncate_at_char_boundaries() {
        let short = SpecNote::new("hello");
        assert_eq!(short.as_str(), "hello");
        let long = "x".repeat(SPEC_NOTE_CAP + 40);
        assert_eq!(SpecNote::new(&long).as_str().len(), SPEC_NOTE_CAP);
        // Multi-byte chars never split: é is 2 bytes, so an odd byte
        // budget truncates one char early rather than mid-sequence.
        let accents = "é".repeat(SPEC_NOTE_CAP);
        let note = SpecNote::new(&accents);
        assert!(note.as_str().len() <= SPEC_NOTE_CAP);
        assert!(note.as_str().chars().all(|c| c == 'é'));
    }

    #[test]
    fn wfq_keeps_the_watermark_guard_and_scales_credit() {
        let wfq = WfqScheduler {
            watermarks: WatermarkScheduler {
                queue_depth: 4,
                max_active: 2,
                step_lag_watermark: 3,
                quantum: 100,
            },
            max_weight: 8,
        };
        // Outer guard: identical to the inner watermark policy.
        assert_eq!(wfq.admit(&load(4, 0, 0)), Err(ShedReason::QueueFull));
        assert_eq!(wfq.admit(&load(0, 0, 4)), Err(ShedReason::StepLag));
        assert_eq!(wfq.activations(&load(10, 1, 0)), 1);
        // Credit is quantum × weight, clamped into 1..=max_weight.
        assert_eq!(wfq.credit(0), 100);
        assert_eq!(wfq.credit(1), 100);
        assert_eq!(wfq.credit(3), 300);
        assert_eq!(wfq.credit(100), 800);
        assert_eq!(wfq.burst(), 800);
        // The flat policy is weight-blind.
        let flat = wfq.watermarks;
        assert_eq!(flat.credit(3), 100);
        assert_eq!(flat.burst(), 100);
    }

    #[test]
    fn scheduler_kind_delegates_to_the_wrapped_policy() {
        let wm = WatermarkScheduler::default();
        let kind = SchedulerKind::Watermark(wm);
        assert_eq!(kind.quantum(), wm.quantum());
        assert_eq!(kind.credit(5), wm.quantum());
        let wfq = WfqScheduler::default();
        let kind = SchedulerKind::Wfq(wfq);
        assert_eq!(kind.credit(3), 3 * wfq.watermarks.quantum);
        assert_eq!(kind.burst(), wfq.burst());
    }
}

//! Admission policy, separated from stepping (DESIGN.md §14).
//!
//! The engine consults a [`Scheduler`] at two points: on `submit`
//! (admit or shed, with an explicit [`ShedReason`]) and on each tick
//! (how many queued tenants to activate, and how many cycles each
//! active tenant is stepped per tick). Keeping this behind a trait
//! means admission policy is testable in-process — no sockets, no
//! engine — and swappable without touching the stepping loop.
//!
//! [`WatermarkScheduler`] is the default policy: a bounded admission
//! queue (reject `QueueFull` at the depth watermark), a step-lag bound
//! (reject `StepLag` once the oldest queued tenant has waited more
//! than `step_lag_watermark` ticks for a slot — the signal that the
//! fleet is saturated and latency would otherwise collapse), and a
//! fixed activation ceiling with round-robin quanta.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a submission was rejected. Every shed is counted in the engine
/// stats under the matching counter — load is never silently dropped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The admission queue is at its depth watermark.
    QueueFull,
    /// The oldest queued tenant has waited past the step-lag
    /// watermark: the fleet cannot keep up with offered load.
    StepLag,
    /// The stream spec is invalid or unservable (bad kernel size, lane
    /// trace outside the lane-kernel envelope, faulted lane config…).
    BadSpec(String),
}

impl ShedReason {
    /// The `Copy` classification of this reason (metric labels, flight
    /// recorder) — drops the free-form `BadSpec` detail.
    pub fn kind(&self) -> rsp_obs::ShedKind {
        match self {
            ShedReason::QueueFull => rsp_obs::ShedKind::QueueFull,
            ShedReason::StepLag => rsp_obs::ShedKind::StepLag,
            ShedReason::BadSpec(_) => rsp_obs::ShedKind::BadSpec,
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "admission queue full"),
            ShedReason::StepLag => write!(f, "step lag over watermark"),
            ShedReason::BadSpec(msg) => write!(f, "bad spec: {msg}"),
        }
    }
}

/// The load signals a scheduler decides from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadSnapshot {
    /// Tenants admitted but not yet activated.
    pub queued: usize,
    /// Tenants actively stepping (scalar machines + live lanes).
    pub active: usize,
    /// Ticks the oldest queued tenant has been waiting for a slot.
    pub step_lag: u64,
}

/// Admission and pacing policy, decoupled from the stepping engine.
pub trait Scheduler {
    /// Admit a new tenant under `load`, or explain the shed.
    fn admit(&self, load: &LoadSnapshot) -> Result<(), ShedReason>;

    /// How many queued tenants to activate this tick under `load`.
    fn activations(&self, load: &LoadSnapshot) -> usize;

    /// Cycles each active tenant is stepped per tick (the round-robin
    /// quantum).
    fn quantum(&self) -> u64;
}

/// The default watermark policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatermarkScheduler {
    /// Admission queue depth watermark (`QueueFull` beyond it).
    pub queue_depth: usize,
    /// Maximum concurrently active tenants.
    pub max_active: usize,
    /// Queue-wait watermark in ticks (`StepLag` beyond it).
    pub step_lag_watermark: u64,
    /// Cycles per active tenant per tick.
    pub quantum: u64,
}

impl Default for WatermarkScheduler {
    fn default() -> WatermarkScheduler {
        WatermarkScheduler {
            queue_depth: 64,
            max_active: 32,
            step_lag_watermark: 16,
            quantum: 256,
        }
    }
}

impl Scheduler for WatermarkScheduler {
    fn admit(&self, load: &LoadSnapshot) -> Result<(), ShedReason> {
        if load.queued >= self.queue_depth {
            return Err(ShedReason::QueueFull);
        }
        if load.step_lag > self.step_lag_watermark {
            return Err(ShedReason::StepLag);
        }
        Ok(())
    }

    fn activations(&self, load: &LoadSnapshot) -> usize {
        self.max_active.saturating_sub(load.active)
    }

    fn quantum(&self) -> u64 {
        self.quantum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(queued: usize, active: usize, step_lag: u64) -> LoadSnapshot {
        LoadSnapshot {
            queued,
            active,
            step_lag,
        }
    }

    #[test]
    fn admits_under_both_watermarks() {
        let s = WatermarkScheduler {
            queue_depth: 4,
            max_active: 2,
            step_lag_watermark: 3,
            quantum: 16,
        };
        assert_eq!(s.admit(&load(3, 2, 3)), Ok(()));
        assert_eq!(s.admit(&load(4, 0, 0)), Err(ShedReason::QueueFull));
        assert_eq!(s.admit(&load(0, 0, 4)), Err(ShedReason::StepLag));
    }

    #[test]
    fn activations_fill_up_to_the_ceiling() {
        let s = WatermarkScheduler {
            max_active: 8,
            ..WatermarkScheduler::default()
        };
        assert_eq!(s.activations(&load(10, 3, 0)), 5);
        assert_eq!(s.activations(&load(10, 8, 0)), 0);
        assert_eq!(s.activations(&load(10, 12, 0)), 0);
    }

    #[test]
    fn shed_reasons_serialise() {
        for r in [
            ShedReason::QueueFull,
            ShedReason::StepLag,
            ShedReason::BadSpec("nope".into()),
        ] {
            let json = serde_json::to_string(&r).unwrap();
            let back: ShedReason = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
    }
}
